# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scf "/root/repo/build/examples/scf_hartree_fock" "--molecule" "h2" "--basis" "sto-3g")
set_tests_properties(example_scf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scf_uhf "/root/repo/build/examples/scf_hartree_fock" "--molecule" "h2" "--method" "uhf" "--charge" "1" "--multiplicity" "2")
set_tests_properties(example_scf_uhf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scf_mp2 "/root/repo/build/examples/scf_hartree_fock" "--molecule" "h2" "--method" "mp2")
set_tests_properties(example_scf_mp2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loadbalance "/root/repo/build/examples/loadbalance_compare" "--molecule" "water4" "--procs" "16")
set_tests_properties(example_loadbalance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_sim "/root/repo/build/examples/cluster_sim" "--molecule" "water4" "--procs" "32" "--model" "work-stealing")
set_tests_properties(example_cluster_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_properties "/root/repo/build/examples/properties_demo" "--molecule" "h2")
set_tests_properties(example_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
