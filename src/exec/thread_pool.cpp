#include "exec/thread_pool.hpp"

#include <stdexcept>

namespace emc::exec {

ThreadPool::ThreadPool(int n_threads) : n_threads_(n_threads) {
  if (n_threads < 1) {
    throw std::invalid_argument("ThreadPool: n_threads must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(n_threads - 1));
  for (int t = 1; t < n_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(int thread_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
      body = body_;
    }
    try {
      (*body)(thread_id);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++workers_done_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::run(const std::function<void(int)>& body) {
  if (n_threads_ == 1) {
    body(0);  // caller-only fast path; exceptions propagate directly
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    workers_done_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  try {
    body(0);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_done_ == n_threads_ - 1; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace emc::exec
