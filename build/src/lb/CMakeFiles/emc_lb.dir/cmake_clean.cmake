file(REMOVE_RECURSE
  "CMakeFiles/emc_lb.dir/hypergraph_partition.cpp.o"
  "CMakeFiles/emc_lb.dir/hypergraph_partition.cpp.o.d"
  "CMakeFiles/emc_lb.dir/partition.cpp.o"
  "CMakeFiles/emc_lb.dir/partition.cpp.o.d"
  "CMakeFiles/emc_lb.dir/semi_matching.cpp.o"
  "CMakeFiles/emc_lb.dir/semi_matching.cpp.o.d"
  "CMakeFiles/emc_lb.dir/simple.cpp.o"
  "CMakeFiles/emc_lb.dir/simple.cpp.o.d"
  "libemc_lb.a"
  "libemc_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
