#pragma once

// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in this library (work-stealing victim
// selection, simulator noise models, synthetic workload generators) draws
// from emc::Rng so that experiments are exactly replayable from a printed
// seed. The generator is xoshiro256**, seeded through splitmix64 so that
// small consecutive seeds yield well-decorrelated streams.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace emc {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies UniformRandomBitGenerator so it can feed <random> adapters.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's method with rejection to
  /// avoid modulo bias. n == 0 denotes an empty range — e.g. victim
  /// selection on a 1-proc machine, where there is no one to steal from
  /// — and returns 0 without consuming a draw, so degenerate callers
  /// stay replayable and never hit the multiply-by-zero Lemire path.
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) {
    return -std::log1p(-uniform()) / rate;
  }

  /// Split off an independent child stream (for per-worker RNGs).
  Rng split() {
    std::uint64_t child_seed = (*this)();
    return Rng(child_seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace emc
