file(REMOVE_RECURSE
  "libemc_exec.a"
)
