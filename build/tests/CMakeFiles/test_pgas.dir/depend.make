# Empty dependencies file for test_pgas.
# This may be replaced when dependencies are built.
