// Semi-matching tests, including brute-force optimality verification of
// the Harvey et al. algorithm on small random instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>

#include "lb/semi_matching.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::lb;
using emc::Rng;

BipartiteTaskGraph random_instance(int n_tasks, int n_procs, int max_degree,
                                   bool unit_weights, Rng& rng) {
  BipartiteTaskGraph g;
  g.n_procs = n_procs;
  g.eligible.resize(static_cast<std::size_t>(n_tasks));
  g.weights.resize(static_cast<std::size_t>(n_tasks));
  for (int t = 0; t < n_tasks; ++t) {
    const auto tu = static_cast<std::size_t>(t);
    const int deg =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                std::min(max_degree, n_procs))));
    while (static_cast<int>(g.eligible[tu].size()) < deg) {
      const int p =
          static_cast<int>(rng.below(static_cast<std::uint64_t>(n_procs)));
      if (std::find(g.eligible[tu].begin(), g.eligible[tu].end(), p) ==
          g.eligible[tu].end()) {
        g.eligible[tu].push_back(p);
      }
    }
    g.weights[tu] = unit_weights ? 1.0 : rng.uniform(0.5, 8.0);
  }
  return g;
}

/// Exhaustive search for the lexicographically-minimal sorted load vector
/// over all semi-matchings (unit weights, small instances only).
std::vector<int> brute_force_optimal_loads(const BipartiteTaskGraph& g) {
  const auto n_tasks = g.task_count();
  std::vector<int> best_loads;
  std::vector<int> loads(static_cast<std::size_t>(g.n_procs), 0);

  auto sorted_desc = [](std::vector<int> v) {
    std::sort(v.rbegin(), v.rend());
    return v;
  };

  std::function<void(std::size_t)> recurse = [&](std::size_t t) {
    if (t == n_tasks) {
      auto cand = sorted_desc(loads);
      if (best_loads.empty() || cand < best_loads) best_loads = cand;
      return;
    }
    for (int p : g.eligible[t]) {
      ++loads[static_cast<std::size_t>(p)];
      recurse(t + 1);
      --loads[static_cast<std::size_t>(p)];
    }
  };
  recurse(0);
  return best_loads;
}

TEST(BipartiteGraphTest, ValidationCatchesErrors) {
  BipartiteTaskGraph g;
  g.n_procs = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);

  g.n_procs = 2;
  g.eligible = {{0}, {}};
  g.weights = {1.0, 1.0};
  EXPECT_THROW(g.validate(), std::invalid_argument);  // empty adjacency

  g.eligible = {{0}, {5}};
  EXPECT_THROW(g.validate(), std::invalid_argument);  // out of range

  g.eligible = {{0}};
  EXPECT_THROW(g.validate(), std::invalid_argument);  // size mismatch
}

TEST(CompleteInstanceTest, AllProcsEligible) {
  const auto g = make_complete_instance({1.0, 2.0, 3.0}, 4);
  EXPECT_EQ(g.task_count(), 3u);
  for (const auto& e : g.eligible) {
    EXPECT_EQ(e.size(), 4u);
  }
  g.validate();
}

TEST(OptimalSemiMatchingTest, RespectEligibility) {
  Rng rng(1);
  const auto g = random_instance(30, 6, 3, /*unit=*/true, rng);
  const Assignment a = optimal_semi_matching(g);
  ASSERT_EQ(a.size(), 30u);
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_NE(std::find(g.eligible[t].begin(), g.eligible[t].end(), a[t]),
              g.eligible[t].end())
        << "task " << t << " assigned to ineligible proc";
  }
}

class OptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimalityTest, MatchesBruteForceLexMinimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  // Small enough for exhaustive search: <= 9 tasks, <= 4 procs, deg <= 3.
  const int n_tasks = 4 + static_cast<int>(rng.below(6));
  const int n_procs = 2 + static_cast<int>(rng.below(3));
  const auto g = random_instance(n_tasks, n_procs, 3, /*unit=*/true, rng);

  const Assignment a = optimal_semi_matching(g);
  auto loads = part_loads(g.weights, a, g.n_procs);
  std::vector<int> got(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    got[i] = static_cast<int>(loads[i] + 0.5);
  }
  std::sort(got.rbegin(), got.rend());

  const auto want = brute_force_optimal_loads(g);
  EXPECT_EQ(got, want) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityTest, ::testing::Range(1, 25));

TEST(GreedySemiMatchingTest, CompleteInstanceEqualsLpt) {
  // On a complete instance greedy semi-matching IS the LPT rule, so its
  // makespan must satisfy the LPT bound vs the trivial lower bound.
  Rng rng(5);
  std::vector<double> w(60);
  double total = 0.0, biggest = 0.0;
  for (auto& x : w) {
    x = rng.uniform(0.2, 9.0);
    total += x;
    biggest = std::max(biggest, x);
  }
  const auto g = make_complete_instance(w, 5);
  const Assignment a = greedy_semi_matching(g);
  const double ms = makespan(g.weights, a, g.n_procs);
  const double lower = std::max(total / 5.0, biggest);
  EXPECT_LE(ms, lower * 4.0 / 3.0 + 1e-9);
}

TEST(RefineSemiMatchingTest, NeverWorsensMakespan) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = random_instance(50, 8, 4, /*unit=*/false, rng);
    const Assignment greedy = greedy_semi_matching(g);
    const Assignment refined = refine_semi_matching(g, greedy);
    validate_assignment(refined, g.n_procs);
    EXPECT_LE(makespan(g.weights, refined, g.n_procs),
              makespan(g.weights, greedy, g.n_procs) + 1e-12);
    // Refinement must keep eligibility.
    for (std::size_t t = 0; t < refined.size(); ++t) {
      EXPECT_NE(
          std::find(g.eligible[t].begin(), g.eligible[t].end(), refined[t]),
          g.eligible[t].end());
    }
  }
}

TEST(RefineSemiMatchingTest, FixesObviousImbalance) {
  // All tasks piled on proc 0, all eligible anywhere: refinement must
  // spread them.
  const int n_tasks = 16;
  const auto g =
      make_complete_instance(std::vector<double>(n_tasks, 1.0), 4);
  Assignment bad(n_tasks, 0);
  const Assignment fixed = refine_semi_matching(g, bad);
  EXPECT_DOUBLE_EQ(makespan(g.weights, fixed, 4), 4.0);
}

TEST(SemiMatchingBalanceTest, EndToEnd) {
  Rng rng(13);
  const auto g = random_instance(200, 16, 5, /*unit=*/false, rng);
  const BalanceResult r = semi_matching_balance(g);
  EXPECT_EQ(r.algorithm, "semi-matching");
  EXPECT_GE(r.balance_seconds, 0.0);
  validate_assignment(r.assignment, g.n_procs);
  // Quality sanity: within 2.5x of the no-locality lower bound.
  double total = 0.0, biggest = 0.0;
  for (double w : g.weights) {
    total += w;
    biggest = std::max(biggest, w);
  }
  const double lower = std::max(total / 16.0, biggest);
  EXPECT_LE(makespan(g.weights, r.assignment, 16), 2.5 * lower);
}

TEST(OptimalSemiMatchingTest, ChainInstanceExactLoads) {
  // Tasks 0..3 each eligible on {i, i+1} over 5 procs: optimum puts one
  // task per proc, max load 1.
  BipartiteTaskGraph g;
  g.n_procs = 5;
  g.eligible = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  g.weights = {1.0, 1.0, 1.0, 1.0};
  const Assignment a = optimal_semi_matching(g);
  const auto loads = part_loads(g.weights, a, 5);
  EXPECT_DOUBLE_EQ(*std::max_element(loads.begin(), loads.end()), 1.0);
}

TEST(OptimalSemiMatchingTest, ForcedContentionNeedsAugmenting) {
  // Both tasks only eligible on proc 0 and 1, but task 1 only on proc 0:
  // the algorithm must route task 0 away via an alternating path.
  BipartiteTaskGraph g;
  g.n_procs = 2;
  g.eligible = {{0, 1}, {0}};
  g.weights = {1.0, 1.0};
  const Assignment a = optimal_semi_matching(g);
  const auto loads = part_loads(g.weights, a, 2);
  EXPECT_DOUBLE_EQ(loads[0], 1.0);
  EXPECT_DOUBLE_EQ(loads[1], 1.0);
  EXPECT_EQ(a[1], 0);
}

}  // namespace
