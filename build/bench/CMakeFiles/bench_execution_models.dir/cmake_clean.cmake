file(REMOVE_RECURSE
  "CMakeFiles/bench_execution_models.dir/bench_execution_models.cpp.o"
  "CMakeFiles/bench_execution_models.dir/bench_execution_models.cpp.o.d"
  "bench_execution_models"
  "bench_execution_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_execution_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
