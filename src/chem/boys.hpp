#pragma once

// Boys function F_m(x) = \int_0^1 t^{2m} exp(-x t^2) dt, the radial
// kernel of all Coulomb-type Gaussian integrals.

#include <span>

namespace emc::chem {

/// Fills out[0..m_max] with F_0(x) .. F_m_max(x).
///
/// Fast path: F_{m_max} is read from a precomputed table (grid step 0.1
/// over [0, 35)) via a 7-term Taylor expansion around the nearest grid
/// point — exact to ~1e-14 because d/dx F_m = -F_{m+1}, so the expansion
/// only needs higher table columns — and lower orders follow by the
/// stable downward recursion F_m = (2x F_{m+1} + e^{-x}) / (2m + 1). For
/// large x the asymptotic closed form of F_0 plus upward recursion is
/// used (stable there because e^{-x} is negligible). Orders beyond the
/// table fall back to boys_reference.
void boys(double x, std::span<double> out);

/// Single-order convenience wrapper.
double boys(int m, double x);

/// Reference evaluation (the seed implementation): ascending Kummer
/// series for F_{m_max} plus downward recursion for x below ~45, the
/// asymptotic form above. Slow but independent of the table; used to
/// build the table and as the accuracy oracle in tests.
void boys_reference(double x, std::span<double> out);

}  // namespace emc::chem
