#include "util/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/json.hpp"

namespace emc::util {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One call-path node of a thread's span tree. Counts are relaxed
/// atomics so aggregation can read them while the owner thread updates;
/// the child list is only mutated under the owning buffer's mutex.
struct Node {
  explicit Node(const char* n, Node* p) : name(n), parent(p) {}
  const char* name;
  Node* parent;
  std::vector<std::unique_ptr<Node>> children;
  std::atomic<std::int64_t> calls{0};
  std::atomic<std::int64_t> inclusive_ns{0};
};

/// Per-thread span tree. The owner thread walks/updates it lock-free;
/// the mutex serializes the only cross-thread interactions: child
/// creation vs. aggregation traversal.
struct ThreadBuf {
  std::mutex mutex;
  Node root{"", nullptr};
  Node* current = &root;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuf>> buffers;
};

std::atomic<bool> g_enabled{false};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives thread exits
  return *r;
}

ThreadBuf& thread_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

Node* child_named(ThreadBuf& buf, Node* parent, const char* name) {
  for (const auto& c : parent->children) {
    // Identical literals usually share an address; strcmp catches the
    // same name spelled in different translation units.
    if (c->name == name || std::strcmp(c->name, name) == 0) {
      return c.get();
    }
  }
  std::lock_guard<std::mutex> lock(buf.mutex);
  parent->children.push_back(std::make_unique<Node>(name, parent));
  return parent->children.back().get();
}

struct Agg {
  const char* name = "";
  int depth = 0;
  std::int64_t calls = 0;
  std::int64_t inclusive_ns = 0;
  std::int64_t children_ns = 0;
  std::map<std::string, Agg> children;
};

void merge_node(Agg& agg, const Node& node, int depth) {
  agg.name = node.name;
  agg.depth = depth;
  agg.calls += node.calls.load(std::memory_order_relaxed);
  agg.inclusive_ns += node.inclusive_ns.load(std::memory_order_relaxed);
  for (const auto& c : node.children) {
    merge_node(agg.children[c->name], *c, depth + 1);
  }
}

std::int64_t subtree_calls(const Agg& agg) {
  std::int64_t total = agg.calls;
  for (const auto& [name, child] : agg.children) {
    total += subtree_calls(child);
  }
  return total;
}

void flatten(const Agg& agg, const std::string& prefix,
             std::vector<ProfileSpanStats>& out) {
  std::int64_t children_ns = 0;
  for (const auto& [name, child] : agg.children) {
    children_ns += child.inclusive_ns;
  }
  if (agg.depth > 0) {
    ProfileSpanStats s;
    s.path = prefix;
    s.name = agg.name;
    s.depth = agg.depth;
    s.calls = agg.calls;
    s.inclusive_s = static_cast<double>(agg.inclusive_ns) * 1e-9;
    s.exclusive_s =
        static_cast<double>(std::max<std::int64_t>(
            0, agg.inclusive_ns - children_ns)) *
        1e-9;
    out.push_back(std::move(s));
  }
  for (const auto& [name, child] : agg.children) {
    // Structure survives reset() (open spans still need their nodes),
    // so never-since-recorded subtrees are pruned from reports.
    if (subtree_calls(child) == 0) continue;
    flatten(child, prefix.empty() ? name : prefix + "/" + name, out);
  }
}

void reset_node(Node& node) {
  node.calls.store(0, std::memory_order_relaxed);
  node.inclusive_ns.store(0, std::memory_order_relaxed);
  for (const auto& c : node.children) reset_node(*c);
}

}  // namespace

Profiler& Profiler::global() {
  static Profiler* p = new Profiler();
  return *p;
}

void Profiler::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool Profiler::enabled() const {
  return g_enabled.load(std::memory_order_relaxed);
}

void Profiler::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    reset_node(buf->root);
  }
}

std::vector<ProfileSpanStats> Profiler::aggregate() const {
  Agg root;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& buf : r.buffers) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      merge_node(root, buf->root, 0);
    }
  }
  std::vector<ProfileSpanStats> out;
  flatten(root, "", out);
  return out;
}

void Profiler::write_text(std::ostream& out) const {
  const std::vector<ProfileSpanStats> spans = aggregate();
  out << "profile (" << spans.size() << " span paths)\n";
  for (const ProfileSpanStats& s : spans) {
    for (int i = 1; i < s.depth; ++i) out << "  ";
    out << s.name << "  calls=" << s.calls << " incl="
        << s.inclusive_s << "s excl=" << s.exclusive_s << "s\n";
  }
}

void Profiler::write_json(std::ostream& out) const {
  const std::vector<ProfileSpanStats> spans = aggregate();
  JsonWriter json(out);
  json.begin_object();
  json.field("enabled", enabled());
  json.begin_array("spans");
  for (const ProfileSpanStats& s : spans) {
    json.begin_object();
    json.field("path", s.path);
    json.field("name", s.name);
    json.field("depth", s.depth);
    json.field("calls", s.calls);
    json.field("inclusive_s", s.inclusive_s);
    json.field("exclusive_s", s.exclusive_s);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void Profiler::write_chrome_trace(std::ostream& out) const {
  const std::vector<ProfileSpanStats> spans = aggregate();
  // Lay the aggregated tree out as a flame: each node starts where its
  // parent's cursor stands and advances that cursor by its inclusive
  // time. depth-indexed cursors suffice because aggregate() returns
  // parents immediately before their subtree.
  std::vector<double> cursor_us(2, 0.0);  // next free ts per depth
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const ProfileSpanStats& s : spans) {
    const auto depth = static_cast<std::size_t>(s.depth);
    if (cursor_us.size() < depth + 2) cursor_us.resize(depth + 2, 0.0);
    const double ts = cursor_us[depth];
    const double dur = s.inclusive_s * 1e6;
    cursor_us[depth] += dur;     // next sibling follows us
    cursor_us[depth + 1] = ts;   // our children start where we start
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": " << json_quote(s.name)
        << ", \"cat\": \"profile\", \"ph\": \"X\", \"ts\": "
        << format_double(ts) << ", \"dur\": " << format_double(dur)
        << ", \"pid\": 0, \"tid\": 0, \"args\": {\"calls\": " << s.calls
        << ", \"exclusive_ms\": " << format_double(s.exclusive_s * 1e3)
        << "}}";
  }
  out << "\n]}\n";
}

ProfileSpan::ProfileSpan(const char* name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadBuf& buf = thread_buf();
  Node* node = child_named(buf, buf.current, name);
  buf.current = node;
  node_ = node;
  start_ns_ = now_ns();
}

ProfileSpan::~ProfileSpan() {
  if (node_ == nullptr) return;
  Node* node = static_cast<Node*>(node_);
  const std::int64_t elapsed = now_ns() - start_ns_;
  node->calls.fetch_add(1, std::memory_order_relaxed);
  node->inclusive_ns.fetch_add(std::max<std::int64_t>(0, elapsed),
                               std::memory_order_relaxed);
  thread_buf().current = node->parent;
}

}  // namespace emc::util
