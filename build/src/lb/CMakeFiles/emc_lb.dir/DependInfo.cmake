
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/hypergraph_partition.cpp" "src/lb/CMakeFiles/emc_lb.dir/hypergraph_partition.cpp.o" "gcc" "src/lb/CMakeFiles/emc_lb.dir/hypergraph_partition.cpp.o.d"
  "/root/repo/src/lb/partition.cpp" "src/lb/CMakeFiles/emc_lb.dir/partition.cpp.o" "gcc" "src/lb/CMakeFiles/emc_lb.dir/partition.cpp.o.d"
  "/root/repo/src/lb/semi_matching.cpp" "src/lb/CMakeFiles/emc_lb.dir/semi_matching.cpp.o" "gcc" "src/lb/CMakeFiles/emc_lb.dir/semi_matching.cpp.o.d"
  "/root/repo/src/lb/simple.cpp" "src/lb/CMakeFiles/emc_lb.dir/simple.cpp.o" "gcc" "src/lb/CMakeFiles/emc_lb.dir/simple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/emc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
