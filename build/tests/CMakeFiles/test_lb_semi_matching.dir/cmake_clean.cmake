file(REMOVE_RECURSE
  "CMakeFiles/test_lb_semi_matching.dir/test_lb_semi_matching.cpp.o"
  "CMakeFiles/test_lb_semi_matching.dir/test_lb_semi_matching.cpp.o.d"
  "test_lb_semi_matching"
  "test_lb_semi_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_semi_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
