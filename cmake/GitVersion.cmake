# Stamps emc/version.hpp from cmake/version.hpp.in with the current git
# SHA + dirty flag and the toolchain identity handed in by the caller.
# Run as a -P script both at configure time (so the header exists for
# IDEs and first builds) and from the emc_version_header custom target
# on every build (so the SHA tracks HEAD, not the last reconfigure).
# copy_if_different keeps timestamps stable when nothing changed.
#
# Inputs (all via -D):
#   EMC_SOURCE_DIR, EMC_TEMPLATE, EMC_OUTPUT,
#   EMC_COMPILER, EMC_COMPILER_VERSION, EMC_CXX_FLAGS, EMC_BUILD_TYPE

set(EMC_GIT_SHA "unknown")
set(EMC_GIT_DIRTY "false")

find_program(EMC_GIT_EXECUTABLE git)
if(EMC_GIT_EXECUTABLE)
  execute_process(
    COMMAND ${EMC_GIT_EXECUTABLE} -C "${EMC_SOURCE_DIR}" rev-parse HEAD
    OUTPUT_VARIABLE _sha
    OUTPUT_STRIP_TRAILING_WHITESPACE
    RESULT_VARIABLE _sha_rc
    ERROR_QUIET)
  if(_sha_rc EQUAL 0)
    set(EMC_GIT_SHA "${_sha}")
    execute_process(
      COMMAND ${EMC_GIT_EXECUTABLE} -C "${EMC_SOURCE_DIR}" status --porcelain
      OUTPUT_VARIABLE _status
      RESULT_VARIABLE _status_rc
      ERROR_QUIET)
    if(_status_rc EQUAL 0 AND NOT _status STREQUAL "")
      set(EMC_GIT_DIRTY "true")
    endif()
  endif()
endif()

# The flags land inside a C++ string literal: escape backslashes/quotes.
set(EMC_CXX_FLAGS_ESCAPED "${EMC_CXX_FLAGS}")
string(REPLACE "\\" "\\\\" EMC_CXX_FLAGS_ESCAPED "${EMC_CXX_FLAGS_ESCAPED}")
string(REPLACE "\"" "\\\"" EMC_CXX_FLAGS_ESCAPED "${EMC_CXX_FLAGS_ESCAPED}")

configure_file("${EMC_TEMPLATE}" "${EMC_OUTPUT}.tmp" @ONLY)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E copy_if_different
          "${EMC_OUTPUT}.tmp" "${EMC_OUTPUT}")
file(REMOVE "${EMC_OUTPUT}.tmp")
