#pragma once

// One-electron Gaussian integrals (overlap, kinetic, nuclear attraction)
// over contracted cartesian shells, via the McMurchie–Davidson scheme:
// products of Gaussians are expanded in Hermite Gaussians whose moments
// and Coulomb integrals obey simple recurrences.

#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace emc::chem {

/// Hermite expansion coefficients E_t^{ij} for the 1D product of
/// x^i exp(-a (x-A)^2) and x^j exp(-b (x-B)^2); `t` runs 0..i+j.
/// This is the workhorse recurrence shared by every integral type.
class HermiteE {
 public:
  /// Precomputes E_t^{ij} for all i <= imax, j <= jmax.
  HermiteE(int imax, int jmax, double a, double b, double ax, double bx);

  double operator()(int i, int j, int t) const {
    if (t < 0 || t > i + j) return 0.0;
    return table_[index(i, j, t)];
  }

 private:
  std::size_t index(int i, int j, int t) const {
    return (static_cast<std::size_t>(i) * static_cast<std::size_t>(jmax_ + 1) +
            static_cast<std::size_t>(j)) *
               static_cast<std::size_t>(tmax_ + 1) +
           static_cast<std::size_t>(t);
  }

  int imax_, jmax_, tmax_;
  std::vector<double> table_;
};

/// Hermite Coulomb integrals R^0_{tuv}(p, PC) for t+u+v <= order.
/// Flat accessor: r(t, u, v).
///
/// The order is fixed at construction but the (p, PC) arguments can be
/// re-evaluated in place via `recompute`, so a quartet kernel keeps ONE
/// instance alive across its whole primitive loop instead of paying
/// three heap allocations per primitive quartet.
class HermiteR {
 public:
  /// Allocates workspace for the given order without computing anything;
  /// call `recompute` before reading.
  explicit HermiteR(int order);

  /// Convenience: allocate and evaluate in one step. `reference_boys`
  /// selects the slow series Boys evaluation (the seed kernel's path,
  /// kept for benchmarking old-vs-new and as a test oracle).
  HermiteR(int order, double p, const Vec3& pc, bool reference_boys = false);

  /// Re-evaluates the table for new (p, PC) at the fixed order.
  void recompute(double p, const Vec3& pc, bool reference_boys = false);

  double operator()(int t, int u, int v) const {
    return table_[index(t, u, v)];
  }

 private:
  std::size_t index(int t, int u, int v) const {
    const auto n = static_cast<std::size_t>(order_ + 1);
    return (static_cast<std::size_t>(t) * n + static_cast<std::size_t>(u)) *
               n +
           static_cast<std::size_t>(v);
  }

  int order_;
  std::vector<double> table_;    ///< result level (n = 0)
  std::vector<double> scratch_;  ///< second ping-pong buffer
  std::vector<double> fbuf_;     ///< Boys values F_0..F_order
};

/// Overlap matrix S over all basis functions.
linalg::Matrix overlap_matrix(const BasisSet& basis);

/// Kinetic-energy matrix T.
linalg::Matrix kinetic_matrix(const BasisSet& basis);

/// Nuclear-attraction matrix V (sum over all nuclei of the molecule).
linalg::Matrix nuclear_attraction_matrix(const BasisSet& basis,
                                         const Molecule& molecule);

/// Core Hamiltonian H = T + V.
linalg::Matrix core_hamiltonian(const BasisSet& basis,
                                const Molecule& molecule);

/// Shell-pair block of the overlap matrix (rows = functions of `a`,
/// cols = functions of `b`). Exposed for tests and for screening.
linalg::Matrix shell_overlap(const Shell& a, const Shell& b);

/// Electric-dipole integral matrices <mu| r - origin |nu>, one per
/// cartesian direction.
std::array<linalg::Matrix, 3> dipole_matrices(const BasisSet& basis,
                                              const Vec3& origin = {});

/// Molecular dipole moment (atomic units) for a total density P:
/// mu = sum_A Z_A (R_A - O) - sum_{mu nu} P_{mu nu} <mu|r - O|nu>.
/// Origin defaults to the coordinate origin; the value is
/// origin-independent for neutral molecules.
Vec3 dipole_moment(const linalg::Matrix& density, const BasisSet& basis,
                   const Molecule& molecule, const Vec3& origin = {});

}  // namespace emc::chem
