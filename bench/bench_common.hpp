#pragma once

// Shared helpers for the experiment benches: standard workloads, the
// header every bench prints so runs are self-describing and replayable,
// and (via manifest.hpp) the provenance envelope + run footer every
// artifact-emitting bench stamps into its BENCH_*.json report.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "manifest.hpp"
#include "sim/machine.hpp"
#include "util/json.hpp"

namespace emc::bench {

/// The streaming report emitter now lives in util/json.hpp (one escaping
/// path for every writer); the alias keeps bench code reading naturally.
using JsonWriter = util::JsonWriter;

/// Machine setup shared by every bench driver. `ppn > 0` pins the
/// procs-per-node (clamped to `procs`, typically from a --ppn flag);
/// `ppn == 0` keeps the benches' historical default of min(16, procs).
/// Centralized so the node topology is set one way everywhere and the
/// network model (MachineConfig::network) is layered on consistently.
inline sim::MachineConfig make_machine(int procs, int ppn = 0) {
  sim::MachineConfig config;
  config.n_procs = procs;
  config.procs_per_node =
      ppn > 0 ? std::min(ppn, procs) : std::min(16, procs);
  return config;
}

/// Standard workload for cluster-scale simulations: a 27-molecule water
/// cluster (135 shells, 9180 shell-pair tasks) — large enough for 1024
/// simulated procs, small enough to build in seconds.
inline core::TaskModel standard_workload(
    const std::string& name = "water27") {
  core::TaskModelOptions options;
  options.basis_name = "sto-3g";
  return core::build_task_model(name, options);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim,
                         const core::TaskModel& model,
                         std::uint64_t seed = 1) {
  std::cout << "##############################################\n"
            << "# " << experiment << "\n"
            << "# claim: " << claim << "\n"
            << "# workload: " << model.molecule.size() << " atoms, "
            << model.basis.function_count() << " basis functions, "
            << model.task_count() << " tasks, total cost "
            << model.total_cost() << " sim-seconds\n"
            << "# seed: " << seed << "\n"
            << "##############################################\n";
}

}  // namespace emc::bench
