// EXP-5 — balancer runtime cost (google-benchmark): the abstract calls
// hypergraph partitioning "computationally expensive"; semi-matching is
// the cheap alternative. One benchmark per balancer, swept over task
// count; compare wall time per invocation.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "lb/hypergraph_partition.hpp"
#include "lb/semi_matching.hpp"
#include "lb/simple.hpp"

namespace {

using emc::core::TaskModel;

const TaskModel& workload_for(int size_class) {
  // size classes: 0 -> ~820 tasks, 1 -> ~3240, 2 -> ~9180.
  static const TaskModel small = emc::core::build_task_model("water8");
  static const TaskModel medium = emc::core::build_task_model("water16");
  static const TaskModel large = emc::core::build_task_model("water27");
  switch (size_class) {
    case 0:
      return small;
    case 1:
      return medium;
    default:
      return large;
  }
}

constexpr int kProcs = 256;

void BM_Lpt(benchmark::State& state) {
  const TaskModel& model = workload_for(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(emc::lb::lpt_assignment(model.costs, kProcs));
  }
  state.counters["tasks"] = static_cast<double>(model.task_count());
}
BENCHMARK(BM_Lpt)->Arg(0)->Arg(1)->Arg(2);

void BM_SemiMatching(benchmark::State& state) {
  const TaskModel& model = workload_for(static_cast<int>(state.range(0)));
  const auto instance =
      emc::core::make_locality_instance(model, kProcs, /*window=*/1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emc::lb::semi_matching_balance(instance));
  }
  state.counters["tasks"] = static_cast<double>(model.task_count());
}
BENCHMARK(BM_SemiMatching)->Arg(0)->Arg(1)->Arg(2);

void BM_HypergraphPartition(benchmark::State& state) {
  const TaskModel& model = workload_for(static_cast<int>(state.range(0)));
  const auto hg = emc::core::make_task_hypergraph(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emc::lb::hypergraph_balance(hg, kProcs));
  }
  state.counters["tasks"] = static_cast<double>(model.task_count());
}
BENCHMARK(BM_HypergraphPartition)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(2)  // seconds per run; bound the total bench time
    ->Unit(benchmark::kMillisecond);

}  // namespace
