// Cross-simulator conservation properties, swept over random workloads:
// for EVERY execution model, (1) each task runs exactly once, (2) the
// total busy time equals the total work (no work lost or invented),
// (3) the makespan respects the trivial lower bounds, and (4) repeated
// runs with the same seed are bit-identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::sim;
using emc::lb::Assignment;

struct Workload {
  std::vector<double> costs;
  MachineConfig machine;
  Assignment block;
};

Workload make_workload(std::uint64_t seed) {
  emc::Rng rng(seed);
  Workload w;
  w.machine.n_procs = 4 << rng.below(5);  // 4..64
  w.machine.procs_per_node = 8;
  w.machine.noise_amplitude = rng.uniform() < 0.5 ? 0.0 : 0.2;
  w.machine.seed = seed;
  const std::size_t n = 100 + rng.below(900);
  w.costs.resize(n);
  for (auto& c : w.costs) c = std::exp(rng.uniform(-10.0, -5.0));
  w.block = emc::lb::block_assignment(n, w.machine.n_procs);
  return w;
}

double total_cost(const Workload& w) {
  return std::accumulate(w.costs.begin(), w.costs.end(), 0.0);
}

/// Work lower bound: with noise, the fastest possible completion is the
/// total work divided by the sum of core speeds.
double work_lower_bound(const Workload& w) {
  const auto speeds = draw_core_speeds(w.machine);
  const double speed_sum =
      std::accumulate(speeds.begin(), speeds.end(), 0.0);
  return total_cost(w) / speed_sum;
}

void check_conservation(const Workload& w, const SimResult& r,
                        const char* label) {
  const std::int64_t executed = std::accumulate(
      r.tasks_executed.begin(), r.tasks_executed.end(), std::int64_t{0});
  EXPECT_EQ(executed, static_cast<std::int64_t>(w.costs.size())) << label;

  // Busy time equals total work scaled by the executing cores' speeds;
  // with uniform speeds it equals total work, with noise it is >= it.
  const double busy =
      std::accumulate(r.busy.begin(), r.busy.end(), 0.0);
  EXPECT_GE(busy, total_cost(w) - 1e-9) << label;

  EXPECT_GE(r.makespan, work_lower_bound(w) - 1e-12) << label;
  // And no proc can beat the single heaviest task.
  const double heaviest =
      *std::max_element(w.costs.begin(), w.costs.end());
  EXPECT_GE(r.makespan, heaviest - 1e-12) << label;
}

class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, AllModelsConserveWork) {
  const Workload w =
      make_workload(static_cast<std::uint64_t>(GetParam()) * 1337);

  check_conservation(w, simulate_static(w.machine, w.costs, w.block),
                     "static");
  check_conservation(w, simulate_counter(w.machine, w.costs, 3),
                     "counter");
  {
    CounterOptions guided;
    guided.policy = ChunkPolicy::kGuided;
    check_conservation(w, simulate_counter(w.machine, w.costs, guided),
                       "guided");
  }
  {
    CounterOptions tss;
    tss.policy = ChunkPolicy::kTrapezoid;
    check_conservation(w, simulate_counter(w.machine, w.costs, tss),
                       "trapezoid");
  }
  check_conservation(
      w, simulate_hierarchical_counter(w.machine, w.costs, 32, 2),
      "hierarchical");
  check_conservation(w,
                     simulate_hybrid(w.machine, w.costs, w.block, 0.4, 2),
                     "hybrid");
  check_conservation(w,
                     simulate_work_stealing(w.machine, w.costs, w.block),
                     "stealing");
}

TEST_P(ConservationTest, AllModelsDeterministic) {
  const Workload w =
      make_workload(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);

  auto twice_equal = [&](auto&& run) {
    const SimResult a = run();
    const SimResult b = run();
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.tasks_executed, b.tasks_executed);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.counter_ops, b.counter_ops);
  };

  twice_equal([&] { return simulate_static(w.machine, w.costs, w.block); });
  twice_equal([&] { return simulate_counter(w.machine, w.costs, 5); });
  twice_equal([&] {
    return simulate_hierarchical_counter(w.machine, w.costs, 16, 1);
  });
  twice_equal(
      [&] { return simulate_hybrid(w.machine, w.costs, w.block, 0.25); });
  twice_equal([&] {
    return simulate_work_stealing(w.machine, w.costs, w.block);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Range(1, 15));

TEST(ConservationTest, RetentiveRoundsEachConserve) {
  const Workload w = make_workload(4242);
  const auto rounds =
      simulate_retentive(w.machine, w.costs, w.block, 4);
  for (const auto& r : rounds) {
    check_conservation(w, r, "retentive");
  }
}

TEST(ConservationTest, PersistenceRoundsEachConserve) {
  const Workload w = make_workload(31337);
  const auto rounds =
      simulate_persistence(w.machine, w.costs, w.block, 4);
  for (const auto& r : rounds) {
    check_conservation(w, r, "persistence");
  }
}

}  // namespace
