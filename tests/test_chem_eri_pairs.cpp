// Shell-pair-cached ERI engine tests: the cached kernel must reproduce
// the direct (seed) kernel to near machine precision on randomized
// quartets, the tabulated Boys function must match the series reference,
// and the canonical-quartet full_eri_tensor must be bitwise 8-fold
// symmetric while agreeing with the legacy all-quartets fill.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "chem/basis.hpp"
#include "chem/boys.hpp"
#include "chem/eri.hpp"
#include "chem/molecule.hpp"
#include "chem/shell_pair.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::chem;

Shell random_shell(emc::Rng& rng, int l) {
  Shell s;
  s.l = l;
  s.center = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
              rng.uniform(-2.0, 2.0)};
  const int nprim = static_cast<int>(rng.range(1, 3));
  for (int i = 0; i < nprim; ++i) {
    // Log-uniform exponents across the chemically relevant range, and
    // signed coefficients so cancellation paths are exercised.
    const double a = std::exp(rng.uniform(std::log(0.1), std::log(60.0)));
    const double c =
        rng.uniform(0.2, 1.2) * (rng.uniform() < 0.5 ? -1.0 : 1.0);
    s.exponents.push_back(a);
    s.coefficients.push_back(c * primitive_norm(a, l, 0, 0));
  }
  return s;
}

double max_block_diff(const EriBlock& x, const EriBlock& y) {
  double m = 0.0;
  for (int a = 0; a < x.na(); ++a) {
    for (int b = 0; b < x.nb(); ++b) {
      for (int c = 0; c < x.nc(); ++c) {
        for (int d = 0; d < x.nd(); ++d) {
          m = std::max(m, std::abs(x(a, b, c, d) - y(a, b, c, d)));
        }
      }
    }
  }
  return m;
}

TEST(ShellPairEriTest, CachedMatchesDirectOnRandomQuartets) {
  emc::Rng rng(20260806);
  for (int trial = 0; trial < 60; ++trial) {
    const Shell a = random_shell(rng, static_cast<int>(rng.range(0, 2)));
    const Shell b = random_shell(rng, static_cast<int>(rng.range(0, 2)));
    const Shell c = random_shell(rng, static_cast<int>(rng.range(0, 2)));
    const Shell d = random_shell(rng, static_cast<int>(rng.range(0, 2)));
    const EriBlock direct = eri_shell_quartet_direct(a, b, c, d);
    const EriBlock cached = eri_shell_quartet(a, b, c, d);
    EXPECT_LT(max_block_diff(direct, cached), 1e-12) << "trial " << trial;
  }
}

TEST(ShellPairEriTest, CachedPairsAreReusableAcrossQuartets) {
  // The same ShellPairData object consumed as bra and as ket, repeatedly,
  // must keep producing the direct answer (guards against any hidden
  // mutable state in the pair tables).
  emc::Rng rng(7);
  const Shell a = random_shell(rng, 2);
  const Shell b = random_shell(rng, 1);
  const Shell c = random_shell(rng, 0);
  const ShellPairData ab = make_shell_pair(a, b);
  const ShellPairData cc = make_shell_pair(c, c);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_LT(max_block_diff(eri_shell_quartet_direct(a, b, c, c),
                             eri_shell_quartet(ab, cc)),
              1e-12);
    EXPECT_LT(max_block_diff(eri_shell_quartet_direct(c, c, a, b),
                             eri_shell_quartet(cc, ab)),
              1e-12);
  }
}

TEST(ShellPairEriTest, DeepContractionWaterShells) {
  // STO-3G oxygen 1s against itself: the deepest contraction in the
  // suite's bases, where the pair-level exp(-mu |AB|^2) prefactors and
  // primitive pruning matter most.
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const auto& shells = basis.shells();
  for (std::size_t i = 0; i < shells.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const EriBlock direct =
          eri_shell_quartet_direct(shells[i], shells[j], shells[i],
                                   shells[j]);
      const EriBlock cached =
          eri_shell_quartet(shells[i], shells[j], shells[i], shells[j]);
      EXPECT_LT(max_block_diff(direct, cached), 1e-12)
          << "pair " << i << "," << j;
    }
  }
}

TEST(BoysTableTest, MatchesSeriesReferenceOnGrid) {
  // Tabulated Taylor interpolation vs the ascending-series reference,
  // everywhere the table is consulted: x in [0, 40], orders up to 16.
  std::vector<double> fast(17), ref(17);
  double max_err = 0.0;
  for (int i = 0; i <= 1600; ++i) {
    const double x = 0.025 * i;
    boys(x, fast);
    boys_reference(x, ref);
    for (int m = 0; m <= 16; ++m) {
      max_err = std::max(max_err, std::abs(fast[m] - ref[m]));
    }
  }
  EXPECT_LT(max_err, 1e-13);
}

TEST(BoysTableTest, OffGridPointsAndHighOrderFallback) {
  // Irrational-ish arguments (worst case for the interpolation step) and
  // orders beyond the table, which must fall back to the reference path.
  std::vector<double> fast(25), ref(25);
  for (double x : {0.0333333, 1.0499999, 7.7771, 19.95001, 34.999}) {
    boys(x, fast);
    boys_reference(x, ref);
    for (int m = 0; m <= 24; ++m) {
      EXPECT_NEAR(fast[m], ref[m], 1e-13) << "x=" << x << " m=" << m;
    }
  }
}

TEST(FullEriTensorTest, MatchesLegacyAllQuartetsFill) {
  // The canonical-quartet + symmetric-fill tensor must agree with the
  // legacy fill that evaluates every (i,j,k,l) with the direct kernel.
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const auto& shells = basis.shells();
  const int n = basis.function_count();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> legacy(nn * nn * nn * nn, 0.0);
  for (const Shell& si : shells) {
    for (const Shell& sj : shells) {
      for (const Shell& sk : shells) {
        for (const Shell& sl : shells) {
          const EriBlock block = eri_shell_quartet_direct(si, sj, sk, sl);
          for (int a = 0; a < block.na(); ++a) {
            for (int b = 0; b < block.nb(); ++b) {
              for (int c = 0; c < block.nc(); ++c) {
                for (int d = 0; d < block.nd(); ++d) {
                  const auto mu =
                      static_cast<std::size_t>(si.first_function + a);
                  const auto nu =
                      static_cast<std::size_t>(sj.first_function + b);
                  const auto la =
                      static_cast<std::size_t>(sk.first_function + c);
                  const auto sg =
                      static_cast<std::size_t>(sl.first_function + d);
                  legacy[((mu * nn + nu) * nn + la) * nn + sg] =
                      block(a, b, c, d);
                }
              }
            }
          }
        }
      }
    }
  }

  const std::vector<double> tensor = full_eri_tensor(basis);
  ASSERT_EQ(tensor.size(), legacy.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < tensor.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(tensor[i] - legacy[i]));
  }
  EXPECT_LT(max_diff, 1e-12);
}

TEST(FullEriTensorTest, BitwiseEightFoldSymmetric) {
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const std::vector<double> t = full_eri_tensor(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());
  auto at = [&](std::size_t a, std::size_t b, std::size_t c,
                std::size_t d) { return t[((a * n + b) * n + c) * n + d]; };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b <= a; ++b) {
      for (std::size_t c = 0; c <= a; ++c) {
        for (std::size_t d = 0; d <= c; ++d) {
          const double v = at(a, b, c, d);
          // Bitwise equality, not approximate: the canonical fill writes
          // the identical double to all eight orbit positions.
          EXPECT_EQ(v, at(b, a, c, d));
          EXPECT_EQ(v, at(a, b, d, c));
          EXPECT_EQ(v, at(b, a, d, c));
          EXPECT_EQ(v, at(c, d, a, b));
          EXPECT_EQ(v, at(d, c, a, b));
          EXPECT_EQ(v, at(c, d, b, a));
          EXPECT_EQ(v, at(d, c, b, a));
        }
      }
    }
  }
}

TEST(SchwarzMatrixTest, PairCachePathMatchesBasisPath) {
  const BasisSet basis = BasisSet::build(make_water_cluster(2), "6-31g");
  const ShellPairList pairs(basis);
  const auto via_pairs = schwarz_matrix(pairs);
  const auto via_basis = schwarz_matrix(basis);
  ASSERT_EQ(via_pairs.rows(), via_basis.rows());
  for (std::size_t i = 0; i < via_pairs.rows(); ++i) {
    for (std::size_t j = 0; j < via_pairs.cols(); ++j) {
      EXPECT_NEAR(via_pairs(i, j), via_basis(i, j), 1e-12)
          << "shells " << i << "," << j;
    }
  }
}

TEST(SchwarzMatrixTest, StillBoundsQuartetsWithCachedKernel) {
  // Q(ij) Q(kl) must bound |(ij|kl)| for the values the cached kernel
  // actually produces (the Cauchy-Schwarz guarantee the screening relies
  // on must survive the kernel swap).
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const ShellPairList pairs(basis);
  const auto q = schwarz_matrix(pairs);
  const int n = static_cast<int>(basis.shell_count());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      for (int k = 0; k < n; ++k) {
        for (int l = 0; l <= k; ++l) {
          const EriBlock block =
              eri_shell_quartet(pairs.pair(i, j), pairs.pair(k, l));
          const double bound = q(static_cast<std::size_t>(i),
                                 static_cast<std::size_t>(j)) *
                               q(static_cast<std::size_t>(k),
                                 static_cast<std::size_t>(l));
          EXPECT_LE(block.max_abs(), bound + 1e-14)
              << i << j << k << l;
        }
      }
    }
  }
}

}  // namespace
