# Empty dependencies file for emc_linalg.
# This may be replaced when dependencies are built.
