file(REMOVE_RECURSE
  "CMakeFiles/emc_sim.dir/machine.cpp.o"
  "CMakeFiles/emc_sim.dir/machine.cpp.o.d"
  "CMakeFiles/emc_sim.dir/simulators.cpp.o"
  "CMakeFiles/emc_sim.dir/simulators.cpp.o.d"
  "libemc_sim.a"
  "libemc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
