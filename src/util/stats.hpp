#pragma once

// Descriptive statistics and histograms for task-cost distributions,
// load vectors, and timing samples.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace emc {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Coefficient of variation (stddev / mean); 0 when mean == 0.
  double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Computes summary statistics. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> xs);

/// Interpolated percentile (q in [0,1]) of an unsorted sample.
double percentile(std::span<const double> xs, double q);

/// Load-imbalance ratio: max/mean of per-processor loads (>= 1.0 for a
/// non-empty positive load vector). Returns 1.0 for empty/zero input.
double imbalance_ratio(std::span<const double> loads);

/// Fixed-width histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders an ASCII bar chart, one bin per line.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

/// Streaming mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace emc
