#pragma once

// Scoped hierarchical profiler: RAII spans aggregated per call path.
//
// Each thread owns a private span tree (no locks on the hot path); a
// span entered while profiling is enabled walks one level down the
// tree, and on scope exit adds its elapsed time and call count to that
// node with relaxed atomics. Aggregation merges the per-thread trees by
// path and derives exclusive time (inclusive minus the children's
// inclusive), which is what makes a span profile actionable: inclusive
// tells you where time is *spent*, exclusive where it is *generated*.
//
// Cost model, in order of decreasing concern:
//   - compiled out (cmake -DEMC_PROFILING=OFF): EMC_PROF_SPAN expands
//     to nothing — zero code, zero data;
//   - compiled in, disabled (the default at startup): one out-of-line
//     call + one relaxed load + one branch per span;
//   - enabled: two steady_clock reads plus a child lookup (pointer
//     compare first, strcmp fallback) per span.
//
// Span names must be string literals (or otherwise outlive the
// profiler) — the tree stores the pointer, not a copy.
//
// Usage:
//   void build() {
//     EMC_PROF_SPAN("fock/build_g");
//     ...
//   }
//   util::Profiler::global().set_enabled(true);  // before the run
//   util::Profiler::global().write_text(std::cout);

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace emc::util {

/// One aggregated call-path node, as returned by Profiler::aggregate().
/// `path` joins the span names from the root with '/'; `depth` is the
/// nesting level (1 = top-level span). Exclusive time is clamped at 0:
/// with profiling toggled mid-run a child can outlive its parent's
/// recorded window, and a negative exclusive time helps nobody.
struct ProfileSpanStats {
  std::string path;
  std::string name;
  int depth = 0;
  std::int64_t calls = 0;
  double inclusive_s = 0.0;
  double exclusive_s = 0.0;
};

class Profiler {
 public:
  /// Process-wide profiler the EMC_PROF_SPAN macro records into.
  static Profiler& global();

  void set_enabled(bool on);
  bool enabled() const;

  /// Zeroes every recorded span (structure and outstanding thread
  /// buffers stay valid — safe while spans are open, their exit still
  /// finds its node).
  void reset();

  /// Merges the per-thread trees by path. Depth-first order: a node
  /// appears immediately after its parent. Thread-safe, but counts for
  /// spans still open (or racing on other threads) reflect completed
  /// entries only.
  std::vector<ProfileSpanStats> aggregate() const;

  /// Human-readable table: path, calls, inclusive/exclusive seconds.
  void write_text(std::ostream& out) const;
  /// {"enabled": ..., "spans": [{path, name, depth, calls,
  ///  inclusive_s, exclusive_s}, ...]} — the report embedded by
  /// bench/manifest.hpp's run footer.
  void write_json(std::ostream& out) const;
  /// Aggregated spans as a synthetic Chrome trace-event flame (ph "X",
  /// one lane, children laid out inside their parent's span; ts/dur are
  /// microseconds of aggregated inclusive time). Not a timeline — a
  /// flame graph of where the run's time went, openable in Perfetto
  /// like the simulator traces.
  void write_chrome_trace(std::ostream& out) const;

 private:
  Profiler() = default;
};

/// RAII span. Constructed by EMC_PROF_SPAN; records into
/// Profiler::global() iff profiling was enabled at entry.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name);
  ~ProfileSpan();
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  void* node_ = nullptr;  ///< opaque tree node; null = inert span
  std::int64_t start_ns_ = 0;
};

}  // namespace emc::util

#define EMC_PROF_CONCAT2(a, b) a##b
#define EMC_PROF_CONCAT(a, b) EMC_PROF_CONCAT2(a, b)

#if !defined(EMC_PROFILING_DISABLED)
#define EMC_PROF_SPAN(name_literal)                               \
  ::emc::util::ProfileSpan EMC_PROF_CONCAT(emc_prof_span_,        \
                                           __LINE__) {            \
    name_literal                                                  \
  }
#else
#define EMC_PROF_SPAN(name_literal) static_cast<void>(0)
#endif
