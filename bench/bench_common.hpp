#pragma once

// Shared helpers for the experiment benches: standard workloads and the
// header every bench prints so runs are self-describing and replayable.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/task_model.hpp"

namespace emc::bench {

/// Standard workload for cluster-scale simulations: a 27-molecule water
/// cluster (135 shells, 9180 shell-pair tasks) — large enough for 1024
/// simulated procs, small enough to build in seconds.
inline core::TaskModel standard_workload(
    const std::string& name = "water27") {
  core::TaskModelOptions options;
  options.basis_name = "sto-3g";
  return core::build_task_model(name, options);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim,
                         const core::TaskModel& model,
                         std::uint64_t seed = 1) {
  std::cout << "##############################################\n"
            << "# " << experiment << "\n"
            << "# claim: " << claim << "\n"
            << "# workload: " << model.molecule.size() << " atoms, "
            << model.basis.function_count() << " basis functions, "
            << model.task_count() << " tasks, total cost "
            << model.total_cost() << " sim-seconds\n"
            << "# seed: " << seed << "\n"
            << "##############################################\n";
}

}  // namespace emc::bench
