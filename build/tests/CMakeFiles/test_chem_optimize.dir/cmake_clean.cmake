file(REMOVE_RECURSE
  "CMakeFiles/test_chem_optimize.dir/test_chem_optimize.cpp.o"
  "CMakeFiles/test_chem_optimize.dir/test_chem_optimize.cpp.o.d"
  "test_chem_optimize"
  "test_chem_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
