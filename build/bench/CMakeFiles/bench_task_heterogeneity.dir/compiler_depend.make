# Empty compiler generated dependencies file for bench_task_heterogeneity.
# This may be replaced when dependencies are built.
