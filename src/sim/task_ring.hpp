#pragma once

// Flat chunked ring buffers for the work-stealing simulator's per-proc
// task queues.
//
// The seed kept one std::deque<int64> per simulated proc. At P = 100k
// procs that is 100k independent allocators, each paying a heap
// allocation per 512 tasks and scattering queue nodes across the heap.
// TaskRingPool replaces them with one flat arena of fixed-size task
// chunks shared by every queue: a queue is a doubly-linked chain of
// chunk ids with head/tail offsets, chunks are recycled through an
// intrusive freelist, and the arena grows geometrically — so pushes and
// pops are O(1), steady-state operation performs no heap allocation at
// all, and a task migration (steal) moves an 8-byte id between two
// chains in the same arena.
//
// Deque semantics match the seed exactly: push_back/pop_back at the
// owner's end, pop_front at the thieves' end.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace emc::sim {

class TaskRingPool {
 public:
  /// `n_queues` fixed queues; the arena is pre-sized for
  /// `expected_tasks` total enqueued tasks (it still grows on demand).
  TaskRingPool(int n_queues, std::int64_t expected_tasks) {
    queues_.resize(static_cast<std::size_t>(n_queues));
    const std::size_t chunks =
        static_cast<std::size_t>(expected_tasks / kChunkTasks) +
        static_cast<std::size_t>(n_queues) / 4 + 4;
    grow(chunks);
  }

  std::size_t size(int q) const {
    return static_cast<std::size_t>(
        queues_[static_cast<std::size_t>(q)].count);
  }
  bool empty(int q) const { return size(q) == 0; }

  void push_back(int q, std::int64_t task) {
    Queue& queue = queues_[static_cast<std::size_t>(q)];
    if (queue.count == 0) {
      const std::int32_t c = alloc_chunk();
      queue.head = queue.tail = c;
      queue.head_off = queue.tail_off = 0;
    } else if (queue.tail_off == kChunkTasks) {
      const std::int32_t c = alloc_chunk();
      next_[static_cast<std::size_t>(queue.tail)] = c;
      prev_[static_cast<std::size_t>(c)] = queue.tail;
      queue.tail = c;
      queue.tail_off = 0;
    }
    slots_[slot(queue.tail, queue.tail_off)] = task;
    ++queue.tail_off;
    ++queue.count;
  }

  /// Precondition: !empty(q).
  std::int64_t pop_back(int q) {
    Queue& queue = queues_[static_cast<std::size_t>(q)];
    --queue.tail_off;
    const std::int64_t task = slots_[slot(queue.tail, queue.tail_off)];
    if (--queue.count == 0) {
      release_last(queue);
    } else if (queue.tail_off == 0) {
      const std::int32_t dead = queue.tail;
      queue.tail = prev_[static_cast<std::size_t>(dead)];
      queue.tail_off = kChunkTasks;
      free_chunk(dead);
    }
    return task;
  }

  /// Precondition: !empty(q).
  std::int64_t pop_front(int q) {
    Queue& queue = queues_[static_cast<std::size_t>(q)];
    const std::int64_t task = slots_[slot(queue.head, queue.head_off)];
    ++queue.head_off;
    if (--queue.count == 0) {
      release_last(queue);
    } else if (queue.head_off == kChunkTasks) {
      const std::int32_t dead = queue.head;
      queue.head = next_[static_cast<std::size_t>(dead)];
      queue.head_off = 0;
      free_chunk(dead);
    }
    return task;
  }

 private:
  static constexpr std::int32_t kChunkTasks = 32;

  struct Queue {
    std::int32_t head = -1;
    std::int32_t tail = -1;
    std::int32_t head_off = 0;  ///< first valid slot in the head chunk
    std::int32_t tail_off = 0;  ///< one past the last slot in the tail
    std::int64_t count = 0;
  };

  static std::size_t slot(std::int32_t chunk, std::int32_t offset) {
    return static_cast<std::size_t>(chunk) *
               static_cast<std::size_t>(kChunkTasks) +
           static_cast<std::size_t>(offset);
  }

  void release_last(Queue& queue) {
    free_chunk(queue.head);  // head == tail when the queue empties
    queue.head = queue.tail = -1;
    queue.head_off = queue.tail_off = 0;
  }

  std::int32_t alloc_chunk() {
    if (free_head_ < 0) grow(next_.size() * 2);
    const std::int32_t c = free_head_;
    free_head_ = next_[static_cast<std::size_t>(c)];
    return c;
  }

  void free_chunk(std::int32_t c) {
    next_[static_cast<std::size_t>(c)] = free_head_;
    free_head_ = c;
  }

  void grow(std::size_t min_chunks) {
    const std::size_t old_chunks = next_.size();
    const std::size_t new_chunks =
        std::max(min_chunks, old_chunks > 0 ? old_chunks * 2 : 4);
    slots_.resize(new_chunks * static_cast<std::size_t>(kChunkTasks));
    next_.resize(new_chunks);
    prev_.resize(new_chunks, -1);
    for (std::size_t c = old_chunks; c < new_chunks; ++c) {
      next_[c] = c + 1 < new_chunks ? static_cast<std::int32_t>(c + 1)
                                    : free_head_;
    }
    free_head_ = static_cast<std::int32_t>(old_chunks);
  }

  std::vector<std::int64_t> slots_;  ///< arena: chunk c = slots
                                     ///< [c*kChunkTasks, +kChunkTasks)
  std::vector<std::int32_t> next_;   ///< chain link / freelist link
  std::vector<std::int32_t> prev_;   ///< chain back-link
  std::vector<Queue> queues_;
  std::int32_t free_head_ = -1;
};

}  // namespace emc::sim
