// MP2 tests: minimal-basis H2 against the analytic two-level result,
// sign/decomposition invariants, and basis-set behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/mp2.hpp"
#include "chem/scf.hpp"

namespace {

using namespace emc::chem;

TEST(Mp2Test, H2Sto3gMatchesTwoLevelFormula) {
  // Minimal-basis H2 has one occupied and one virtual orbital, so
  // E(2) = (12|12)^2 / (2 e1 - 2 e2) exactly; with the Szabo & Ostlund
  // values this is about -0.013 Eh.
  const Molecule h2 = make_h2(1.4);
  const BasisSet bs = BasisSet::build(h2, "sto-3g");
  const Mp2Result r = run_mp2(h2, bs);
  EXPECT_NEAR(r.correlation_energy, -0.0132, 5e-4);
  const ScfResult rhf = run_rhf(h2, bs);
  EXPECT_NEAR(r.total_energy, rhf.energy + r.correlation_energy, 1e-10);
  // One occupied pair: all correlation is opposite-spin.
  EXPECT_NEAR(r.same_spin, 0.0, 1e-10);
  EXPECT_NEAR(r.opposite_spin, r.correlation_energy, 1e-10);
}

TEST(Mp2Test, CorrelationEnergyIsNegative) {
  const Molecule water = make_water();
  for (const char* basis_name : {"sto-3g", "6-31g"}) {
    const BasisSet bs = BasisSet::build(water, basis_name);
    const Mp2Result r = run_mp2(water, bs);
    EXPECT_LT(r.correlation_energy, 0.0) << basis_name;
    EXPECT_GT(r.correlation_energy, -0.5) << basis_name;
    EXPECT_NEAR(r.correlation_energy, r.same_spin + r.opposite_spin,
                1e-12);
  }
}

TEST(Mp2Test, LargerBasisRecoversMoreCorrelation) {
  const Molecule water = make_water();
  const Mp2Result small = run_mp2(water, BasisSet::build(water, "sto-3g"));
  const Mp2Result big = run_mp2(water, BasisSet::build(water, "6-31g"));
  EXPECT_LT(big.correlation_energy, small.correlation_energy);
}

TEST(Mp2Test, Water631gLiteratureWindow) {
  // MP2/6-31G water correlation energy is around -0.13 Eh.
  const Molecule water = make_water();
  const Mp2Result r = run_mp2(water, BasisSet::build(water, "6-31g"));
  EXPECT_NEAR(r.correlation_energy, -0.13, 3e-2);
  EXPECT_LT(r.total_energy, -76.0);
}

TEST(Mp2Test, SpinComponentsBothStabilize) {
  const Molecule water = make_water();
  const Mp2Result r = run_mp2(water, BasisSet::build(water, "6-31g"));
  EXPECT_LT(r.opposite_spin, 0.0);
  EXPECT_LE(r.same_spin, 0.0);
  // OS dominates SS for typical closed-shell molecules.
  EXPECT_LT(r.opposite_spin, r.same_spin);
}

}  // namespace
