// exec::ThreadPool (persistent SPMD worker pool) and
// exec::TreeReduction (fixed-shape pairwise tree): the two primitives
// the hybrid Fock build's bitwise-determinism contract rests on. The
// tree tests drive completion from many threads in adversarial orders
// and demand the root stay bitwise identical to a serial reference —
// exactly the property tests/test_distributed_fock.cpp then asserts
// end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "exec/tree_reduction.hpp"
#include "util/rng.hpp"

namespace {

using emc::exec::ThreadPool;
using emc::exec::TreeReduction;

TEST(ThreadPool, RunsBodyOnceOnEveryThread) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, CallerParticipatesAsThreadZero) {
  ThreadPool pool(3);
  std::thread::id thread0_id;
  pool.run([&](int tid) {
    if (tid == 0) thread0_id = std::this_thread::get_id();
  });
  EXPECT_EQ(thread0_id, std::this_thread::get_id());
}

TEST(ThreadPool, SingleThreadPoolSpawnsNothingAndRunsInline) {
  ThreadPool pool(1);
  int runs = 0;
  std::thread::id id;
  pool.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++runs;
    id = std::this_thread::get_id();
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(ThreadPool, ReusableAcrossManyEpochs) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int epoch = 0; epoch < 200; ++epoch) {
    pool.run([&](int tid) {
      total.fetch_add(tid + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * (1 + 2 + 3 + 4));
}

TEST(ThreadPool, RethrowsFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([&](int tid) {
                 if (tid == 2) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The failed epoch fully joined; the pool dispatches again.
  std::atomic<int> hits{0};
  pool.run([&](int) { hits.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ThreadPool, CallerExceptionAlsoWaitsForWorkers) {
  ThreadPool pool(4);
  std::atomic<int> finished{0};
  EXPECT_THROW(pool.run([&](int tid) {
                 if (tid == 0) throw std::logic_error("caller died");
                 finished.fetch_add(1, std::memory_order_relaxed);
               }),
               std::logic_error);
  // All three workers completed their body before run() returned.
  EXPECT_EQ(finished.load(), 3);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool pool(0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// TreeReduction

// Serial reference for the tree's fixed grouping: fold the leaf values
// pairwise over a bit_ceil-wide heap, skipping empty leaves.
double reference_tree_sum(const std::vector<double>& leaves,
                          const std::vector<bool>& present) {
  struct Part {
    double value = 0.0;
    bool empty = true;
  };
  std::size_t width = 1;
  while (width < leaves.size()) width *= 2;
  std::vector<Part> level(width);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    if (present[i]) level[i] = {leaves[i], false};
  }
  while (level.size() > 1) {
    std::vector<Part> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      const Part& l = level[2 * i];
      const Part& r = level[2 * i + 1];
      if (l.empty) {
        next[i] = r;
      } else if (r.empty) {
        next[i] = l;
      } else {
        next[i] = {l.value + r.value, false};
      }
    }
    level = std::move(next);
  }
  return level[0].empty ? 0.0 : level[0].value;
}

// Completes leaves from `threads` threads in a seeded random order and
// returns the root sum (0.0 for an all-empty tree).
double tree_sum_with_order(const std::vector<double>& leaves,
                           const std::vector<bool>& present, int threads,
                           std::uint64_t order_seed) {
  const auto n = static_cast<std::int64_t>(leaves.size());
  std::vector<std::unique_ptr<double>> allocations;
  TreeReduction<double> tree(
      n, [](double& left, double& right) { left += right; },
      [](double*) {});
  std::vector<std::int64_t> order(leaves.size());
  std::iota(order.begin(), order.end(), 0);
  emc::Rng rng(order_seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  allocations.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    allocations.push_back(std::make_unique<double>(leaves[i]));
  }
  std::atomic<std::size_t> cursor{0};
  ThreadPool pool(threads);
  pool.run([&](int) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= order.size()) break;
      const std::int64_t leaf = order[i];
      tree.complete(leaf, present[static_cast<std::size_t>(leaf)]
                              ? allocations[static_cast<std::size_t>(leaf)]
                                    .get()
                              : nullptr);
    }
  });
  const double* root = tree.take_root();
  return root != nullptr ? *root : 0.0;
}

TEST(TreeReduction, RootIsBitwiseIndependentOfCompletionOrderAndThreads) {
  // Values chosen to make grouping matter: wildly mixed magnitudes, so
  // any associativity change flips low-order bits.
  emc::Rng rng(42);
  const std::int64_t n = 37;  // not a power of two: padding in play
  std::vector<double> leaves(static_cast<std::size_t>(n));
  std::vector<bool> present(static_cast<std::size_t>(n), true);
  for (auto& v : leaves) {
    v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.range(-12, 12));
  }
  present[3] = present[17] = present[36] = false;  // empty leaves

  const double expected = reference_tree_sum(leaves, present);
  for (const int threads : {1, 2, 8}) {
    for (std::uint64_t order_seed = 0; order_seed < 5; ++order_seed) {
      const double got =
          tree_sum_with_order(leaves, present, threads, order_seed);
      std::uint64_t got_bits, want_bits;
      std::memcpy(&got_bits, &got, sizeof(double));
      std::memcpy(&want_bits, &expected, sizeof(double));
      EXPECT_EQ(got_bits, want_bits)
          << "threads=" << threads << " order_seed=" << order_seed;
    }
  }
}

TEST(TreeReduction, AllEmptyLeavesYieldNullRoot) {
  TreeReduction<double> tree(
      6, [](double& l, double& r) { l += r; }, [](double*) {});
  for (std::int64_t i = 0; i < 6; ++i) tree.complete(i, nullptr);
  EXPECT_EQ(tree.take_root(), nullptr);
}

TEST(TreeReduction, CompleteMissingClosesOpenLeaves) {
  double seven = 7.0;
  TreeReduction<double> tree(
      5, [](double& l, double& r) { l += r; }, [](double*) {});
  tree.complete(2, &seven);
  tree.complete_missing();
  const double* root = tree.take_root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(*root, 7.0);
}

TEST(TreeReduction, SingleLeafAndZeroLeafEdges) {
  double one = 1.0;
  TreeReduction<double> single(
      1, [](double& l, double& r) { l += r; }, [](double*) {});
  single.complete(0, &one);
  EXPECT_EQ(single.take_root(), &one);

  TreeReduction<double> empty(
      0, [](double& l, double& r) { l += r; }, [](double*) {});
  EXPECT_EQ(empty.take_root(), nullptr);
}

TEST(TreeReduction, ReleasesExactlyTheFoldedBuffers) {
  // n leaves all present: n-1 merges, each releasing its right child;
  // the root is the one surviving buffer.
  const std::int64_t n = 11;
  std::vector<std::unique_ptr<double>> bufs;
  for (std::int64_t i = 0; i < n; ++i) {
    bufs.push_back(std::make_unique<double>(1.0));
  }
  std::atomic<int> released{0};
  TreeReduction<double> tree(
      n, [](double& l, double& r) { l += r; },
      [&](double*) { released.fetch_add(1, std::memory_order_relaxed); });
  for (std::int64_t i = 0; i < n; ++i) {
    tree.complete(i, bufs[static_cast<std::size_t>(i)].get());
  }
  EXPECT_EQ(released.load(), n - 1);
  const double* root = tree.take_root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(*root, static_cast<double>(n));
}

TEST(TreeReduction, GuardsAgainstMisuse) {
  double v = 1.0;
  TreeReduction<double> tree(
      3, [](double& l, double& r) { l += r; }, [](double*) {});
  EXPECT_THROW(tree.complete(-1, &v), std::out_of_range);
  EXPECT_THROW(tree.complete(3, &v), std::out_of_range);
  EXPECT_THROW(tree.take_root(), std::logic_error);  // leaves still open
  tree.complete(1, &v);
  EXPECT_THROW(tree.complete(1, &v), std::logic_error);  // double complete
}

}  // namespace
