#pragma once

// Lightweight runtime-metrics registry: named counters, gauges, and
// log-scale histograms with cheap thread-safe updates.
//
// Intended usage is resolve-once / update-often: a subsystem looks its
// metrics up by name when instrumentation is attached (registration takes
// a lock) and then holds plain references whose updates are single
// relaxed atomics — cheap enough for PGAS one-sided-op and scheduler hot
// paths. Snapshots, reset, and text/JSON export serve the observability
// reports (bench_trace, EXP-3/EXP-8 anatomy).

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace emc::util {

/// Monotonic integer count. Updates are relaxed atomics.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Double-valued level: set to the latest value or accumulated with add
/// (CAS loop — gauges are not meant for per-task hot paths).
class Gauge {
 public:
  void set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale (power-of-two bins) histogram of positive doubles, plus
/// count/sum/min/max. Values spanning many orders of magnitude — task
/// costs, wait times, transfer sizes — land in stable bins without
/// configuration. Bin b covers [2^(b + kMinExp), 2^(b + kMinExp + 1));
/// out-of-range values clamp to the first/last bin.
///
/// Internally each log2 bin is subdivided into kSubBins equal-width
/// LINEAR sub-bins (HdrHistogram-style log-linear binning), so
/// percentile estimates resolve to 1/kSubBins of the value's
/// power-of-two bracket instead of the full factor of 2. The exported
/// log2 bins() aggregate the sub-bins and are bitwise identical to the
/// pre-sub-bin layout — snapshots, text, and JSON reports are unchanged
/// except for the sharper p50/p90/p99 values themselves.
class Histogram {
 public:
  static constexpr int kBins = 64;
  static constexpr int kMinExp = -44;  ///< 2^-44 ~ 5.7e-14 lower edge
  static constexpr int kSubBins = 8;   ///< linear sub-bins per log2 bin
  static constexpr int kFineBins = kBins * kSubBins;

  void record(double value);
  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  /// Snapshot of the per-log2-bin counts (sub-bins aggregated).
  std::array<std::int64_t, kBins> bins() const;
  /// Snapshot of the per-sub-bin counts (percentile resolution).
  std::array<std::int64_t, kFineBins> fine_bins() const;
  /// Lower edge of log2 bin b.
  static double bin_lower_bound(int bin);
  /// Lower edge of sub-bin f (f = bin * kSubBins + sub): the log2 bin's
  /// lower edge L scaled by (1 + sub / kSubBins).
  static double fine_lower_bound(int fine);
  /// Exclusive upper edge of sub-bin f.
  static double fine_upper_bound(int fine);
  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kFineBins> bins_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every registered metric, for reports.
struct MetricsSnapshot {
  struct HistogramValue {
    std::int64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0;
    /// sum / count (0 when empty), precomputed so consumers never
    /// divide by zero themselves.
    double mean = 0.0;
    /// Percentile estimates from the binned counts (see percentile());
    /// filled by MetricsRegistry::snapshot and emitted in text/JSON.
    double p50 = 0.0, p90 = 0.0, p99 = 0.0;
    /// (log2-bin lower edge, count) for non-empty bins only — the
    /// exported granularity, bitwise identical to the pre-sub-bin
    /// snapshots.
    std::vector<std::pair<double, std::int64_t>> bins;
    /// (sub-bin lower edge, count) for non-empty linear sub-bins —
    /// internal percentile resolution, NOT serialized to text/JSON.
    std::vector<std::pair<double, std::int64_t>> fine;

    /// Percentile estimate for q in [0, 1]: cumulative walk over the
    /// linear sub-bins (falling back to the log2 bins when `fine` is
    /// unset, e.g. on hand-built values), linear interpolation inside
    /// the sub-bin holding the q-th sample over the sub-bin's support
    /// intersected with the observed [min, max], and a final clamp to
    /// [min, max] so estimates never leave the true sample range.
    ///
    /// EXACTNESS (regression-tested in tests/test_util.cpp):
    ///   - empty histogram -> 0; q = 0 -> min and q = 1 -> max, exact;
    ///   - a histogram whose samples share one value is exact at every
    ///     q (the [min, max] clamp collapses the estimate);
    ///   - otherwise the error is bounded by the width of one linear
    ///     sub-bin: 1/kSubBins of the sample's power-of-two bracket
    ///     (<= 12.5% relative for kSubBins = 8), versus the factor-of-2
    ///     bound of pure log2 binning.
    double percentile(double q) const;
  };
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;
};

/// Name -> metric registry. Registration (the first counter()/gauge()/
/// histogram() call per name) takes an exclusive lock; later lookups a
/// shared lock; returned references stay valid for the registry's
/// lifetime, so hot paths resolve once and update lock-free. A name
/// registered as one kind cannot be re-registered as another
/// (std::invalid_argument).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every metric's value.
  ///
  /// SNAPSHOT-AFTER-JOIN CONTRACT: all updates are relaxed atomics, so
  /// a snapshot taken while writer threads are still running may
  /// observe torn in-flight aggregates — e.g. a histogram whose count
  /// no longer equals the sum of its bins, or a counter mid-batch.
  /// Each individual load is atomic (never garbage), but there is no
  /// cross-metric or cross-field ordering. Exact, mutually consistent
  /// values are guaranteed only once the writing threads have been
  /// joined (thread join / ThreadPool::run return / Runtime::run return
  /// all publish a happens-before edge). Bench drivers and reports must
  /// therefore snapshot AFTER the run they report on has joined —
  /// enforced by tests/test_util.cpp SnapshotAfterJoinIsExact. The same
  /// caveat applies to exec::WsDeque::size_estimate.
  MetricsSnapshot snapshot() const;
  /// Zeroes every metric's value; registrations (and outstanding
  /// references) stay valid.
  void reset();
  /// Drops all registrations. Outstanding references become dangling —
  /// only for teardown between independent runs.
  void clear();
  std::size_t size() const;

  /// One `name kind value` line per metric, sorted by name.
  void write_text(std::ostream& out) const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& out) const;

  /// Process-wide default registry.
  static MetricsRegistry& global();

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace emc::util
