// Serving-layer tests: cross-request FockCache (LRU + single-flight +
// metrics), ScfServer admission control (bounded-queue reject/shed),
// priority dispatch order, request-level bitwise determinism across
// pool sizes, fault-retry replay, and the const-shareability contract
// of FockBuilder/ShellPairList (run under TSan in CI).
//
// Determinism-sensitive tests submit every job BEFORE start() so that
// admission decisions and dispatch order are pure functions of the
// submission sequence — no sleeps, no timing assumptions.

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chem/basis.hpp"
#include "chem/fock.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"
#include "serve/fock_cache.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"

namespace {

using namespace emc;
using serve::FockCache;
using serve::JobRequest;
using serve::JobResult;
using serve::ScfServer;
using serve::ServerOptions;

JobRequest make_request(const std::string& molecule,
                        const std::string& basis, int priority = 0,
                        int tenant = 0) {
  JobRequest req;
  req.molecule = molecule;
  req.basis = basis;
  req.priority = priority;
  req.tenant = tenant;
  return req;
}

std::map<std::int64_t, JobResult> run_batch(
    const std::vector<JobRequest>& jobs, int workers,
    double fail_prob = 0.0, util::MetricsRegistry* metrics = nullptr) {
  ServerOptions options;
  options.workers = workers;
  options.queue_capacity = jobs.size() + 1;
  options.fail_prob = fail_prob;
  options.metrics = metrics;
  ScfServer server(options);
  std::vector<std::future<JobResult>> futures;
  for (const JobRequest& req : jobs) {
    auto sub = server.submit(req);
    EXPECT_EQ(sub.admit, ScfServer::Admit::kAccepted);
    futures.push_back(std::move(sub.result));
  }
  server.start();
  server.drain();
  server.stop();
  std::map<std::int64_t, JobResult> results;
  for (auto& f : futures) {
    JobResult r = f.get();
    results.emplace(r.job_id, std::move(r));
  }
  return results;
}

// ---------------------------------------------------------------- cache

TEST(FockCacheTest, ConstructorValidatesCapacity) {
  EXPECT_THROW(FockCache cache(0), std::invalid_argument);
}

TEST(FockCacheTest, MissThenHitReturnsSameEntry) {
  FockCache cache(4);
  const auto a = cache.get("h2", "sto-3g");
  const auto b = cache.get("h2", "sto-3g");
  EXPECT_EQ(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.hit_rate(), 0.0);
}

TEST(FockCacheTest, DistinctKeysAreDistinctEntries) {
  FockCache cache(4);
  const auto a = cache.get("h2", "sto-3g");
  const auto b = cache.get("h2", "6-31g");
  const auto c = cache.get("water", "sto-3g");
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(FockCacheTest, LruEvictionFollowsScript) {
  // Capacity 2, sequence A B A C A B: A,B miss; A hits (now MRU); C
  // misses and evicts B; A hits; B misses again and evicts C.
  FockCache cache(2);
  cache.get("h2", "sto-3g");   // A miss
  cache.get("h2", "6-31g");    // B miss
  cache.get("h2", "sto-3g");   // A hit
  cache.get("h2", "6-31g*");   // C miss, evicts B
  cache.get("h2", "sto-3g");   // A hit
  cache.get("h2", "6-31g");    // B miss, evicts C
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FockCacheTest, EvictedEntryStaysUsableWhileHeld) {
  FockCache cache(1);
  const auto held = cache.get("h2", "sto-3g");
  cache.get("water", "sto-3g");  // evicts the held entry
  EXPECT_EQ(cache.stats().evictions, 1);
  // The shared_ptr keeps the evicted chemistry fully alive.
  const auto n = static_cast<std::size_t>(held->basis.function_count());
  const linalg::Matrix g = held->builder->build_g(linalg::Matrix::identity(n));
  EXPECT_EQ(g.rows(), n);
  EXPECT_GT(g.norm(), 0.0);
}

TEST(FockCacheTest, ConstructionFailureIsNotCached) {
  FockCache cache(4);
  EXPECT_THROW(cache.get("not-a-molecule", "sto-3g"),
               std::invalid_argument);
  EXPECT_THROW(cache.get("not-a-molecule", "sto-3g"),
               std::invalid_argument);
  // Each failed lookup was a real construction attempt (miss), and
  // nothing became resident.
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FockCacheTest, SingleFlightMakesMissCountDistinctKeys) {
  // Many threads race the SAME cold key: single-flight must construct
  // exactly once (1 miss) and share the entry with every waiter.
  FockCache cache(4);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const serve::FockCacheEntry>> entries(
      kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&cache, &entries, t] { entries[static_cast<std::size_t>(t)] =
                                    cache.get("water", "sto-3g"); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(entries[0].get(), entries[static_cast<std::size_t>(t)].get());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
}

TEST(FockCacheTest, PublishesMetricsWhenRegistryGiven) {
  util::MetricsRegistry metrics;
  FockCache cache(1, 1e-10, &metrics);
  cache.get("h2", "sto-3g");
  cache.get("h2", "sto-3g");
  cache.get("h2", "6-31g");  // evicts
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve/cache_hits"), 1);
  EXPECT_EQ(snap.counters.at("serve/cache_misses"), 2);
  EXPECT_EQ(snap.counters.at("serve/cache_evictions"), 1);
  EXPECT_EQ(snap.gauges.at("serve/cache_entries"), 1.0);
}

// ------------------------------------------------------------ admission

TEST(ServeAdmissionTest, ConstructorValidatesOptions) {
  ServerOptions bad_workers;
  bad_workers.workers = 0;
  EXPECT_THROW(ScfServer s(bad_workers), std::invalid_argument);
  ServerOptions bad_queue;
  bad_queue.queue_capacity = 0;
  EXPECT_THROW(ScfServer s(bad_queue), std::invalid_argument);
  ServerOptions bad_attempts;
  bad_attempts.max_attempts = 0;
  EXPECT_THROW(ScfServer s(bad_attempts), std::invalid_argument);
}

TEST(ServeAdmissionTest, BoundedQueueRejectsWhenFull) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 3;
  options.overload = ServerOptions::Overload::kReject;
  ScfServer server(options);
  std::vector<ScfServer::Submission> subs;
  for (int i = 0; i < 5; ++i) {
    subs.push_back(server.submit(make_request("h2", "sto-3g")));
  }
  EXPECT_EQ(subs[0].admit, ScfServer::Admit::kAccepted);
  EXPECT_EQ(subs[2].admit, ScfServer::Admit::kAccepted);
  EXPECT_EQ(subs[3].admit, ScfServer::Admit::kRejected);
  EXPECT_EQ(subs[4].admit, ScfServer::Admit::kRejected);
  // Rejected futures resolve immediately with ok = false.
  const JobResult r3 = subs[3].result.get();
  EXPECT_FALSE(r3.ok);
  EXPECT_EQ(r3.error, "rejected");
  server.start();
  server.drain();
  server.stop();
  const auto counts = server.counts();
  EXPECT_EQ(counts.submitted, 5);
  EXPECT_EQ(counts.accepted, 3);
  EXPECT_EQ(counts.rejected, 2);
  EXPECT_EQ(counts.completed, 3);
  EXPECT_EQ(counts.shed, 0);
}

TEST(ServeAdmissionTest, ShedDisplacesWorstVictimOrNewcomer) {
  // Capacity 2 fills with priority-0 A,B. Priority-5 C sheds B (lowest
  // priority, youngest). Priority-0 D cannot outrank the remaining
  // victim (A, priority 0 — ties keep the incumbent) and is shed.
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.overload = ServerOptions::Overload::kShed;
  ScfServer server(options);
  auto a = server.submit(make_request("h2", "sto-3g", 0));
  auto b = server.submit(make_request("h2", "sto-3g", 0));
  auto c = server.submit(make_request("h2", "sto-3g", 5));
  auto d = server.submit(make_request("h2", "sto-3g", 0));
  EXPECT_EQ(a.admit, ScfServer::Admit::kAccepted);
  EXPECT_EQ(b.admit, ScfServer::Admit::kAccepted);
  EXPECT_EQ(c.admit, ScfServer::Admit::kAccepted);
  EXPECT_EQ(d.admit, ScfServer::Admit::kShedNew);
  const JobResult rb = b.result.get();  // victim resolves pre-start
  EXPECT_FALSE(rb.ok);
  EXPECT_EQ(rb.error, "shed");
  EXPECT_EQ(rb.job_id, b.job_id);
  const JobResult rd = d.result.get();
  EXPECT_FALSE(rd.ok);
  EXPECT_EQ(rd.error, "shed");
  server.start();
  server.drain();
  server.stop();
  EXPECT_TRUE(a.result.get().ok);
  EXPECT_TRUE(c.result.get().ok);
  const auto counts = server.counts();
  EXPECT_EQ(counts.accepted, 3);
  EXPECT_EQ(counts.shed, 2);
  EXPECT_EQ(counts.completed, 2);
  EXPECT_EQ(counts.rejected, 0);
}

TEST(ServeAdmissionTest, SubmitAfterStopIsRejected) {
  ServerOptions options;
  options.workers = 1;
  ScfServer server(options);
  server.start();
  server.stop();
  auto sub = server.submit(make_request("h2", "sto-3g"));
  EXPECT_EQ(sub.admit, ScfServer::Admit::kRejected);
  EXPECT_FALSE(sub.result.get().ok);
}

TEST(ServeAdmissionTest, StopWithoutStartFailsQueuedFutures) {
  ServerOptions options;
  options.workers = 1;
  ScfServer server(options);
  auto sub = server.submit(make_request("h2", "sto-3g"));
  server.stop();
  const JobResult r = sub.result.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "rejected");
}

// ------------------------------------------------------------- priority

TEST(ServePriorityTest, DispatchOrderIsPriorityDescThenSeqAsc) {
  // One worker, pre-start submission: completion_seq is the dispatch
  // order. Priorities [0,2,1,2,0] => jobs run as 1,3,2,0,4.
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  ScfServer server(options);
  const int priorities[] = {0, 2, 1, 2, 0};
  std::vector<std::future<JobResult>> futures;
  for (const int p : priorities) {
    futures.push_back(
        server.submit(make_request("h2", "sto-3g", p)).result);
  }
  server.start();
  server.drain();
  server.stop();
  const std::int64_t expected_seq[] = {3, 0, 2, 1, 4};
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.completion_seq, expected_seq[i])
        << "submission index " << i;
  }
}

// ---------------------------------------------------------- determinism

std::uint64_t energy_bits(const JobResult& r) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &r.energy, sizeof(bits));
  return bits;
}

std::vector<JobRequest> mixed_jobs() {
  std::vector<JobRequest> jobs;
  jobs.push_back(make_request("h2", "sto-3g"));
  jobs.push_back(make_request("h2", "6-31g"));
  jobs.push_back(make_request("h2", "sto-3g"));
  JobRequest scf = make_request("h2", "sto-3g");
  scf.kind = JobRequest::Kind::kScf;
  jobs.push_back(scf);
  jobs.push_back(make_request("water", "sto-3g"));
  jobs.push_back(make_request("h2", "6-31g"));
  return jobs;
}

TEST(ServeDeterminismTest, ResultsBitwiseIdenticalAcrossPoolSizes) {
  const auto jobs = mixed_jobs();
  const auto reference = run_batch(jobs, 1);
  for (const int workers : {2, 4}) {
    const auto results = run_batch(jobs, workers);
    ASSERT_EQ(results.size(), reference.size());
    for (const auto& [id, r] : results) {
      const JobResult& ref = reference.at(id);
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.g_digest, ref.g_digest) << "job " << id;
      EXPECT_EQ(energy_bits(r), energy_bits(ref)) << "job " << id;
      EXPECT_EQ(r.scf_converged, ref.scf_converged);
      EXPECT_EQ(r.scf_iterations, ref.scf_iterations);
    }
  }
}

TEST(ServeDeterminismTest, PerTenantMetricsCountEveryJob) {
  std::vector<JobRequest> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(make_request("h2", "sto-3g", 0, /*tenant=*/i % 2));
  }
  util::MetricsRegistry metrics;
  run_batch(jobs, 2, 0.0, &metrics);
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve/t0/completed"), 2);
  EXPECT_EQ(snap.counters.at("serve/t1/completed"), 2);
  EXPECT_EQ(snap.histograms.at("serve/t0/latency_seconds").count, 2);
  EXPECT_EQ(snap.histograms.at("serve/t1/latency_seconds").count, 2);
  EXPECT_EQ(snap.counters.at("serve/accepted"), 4);
}

// --------------------------------------------------------------- faults

TEST(ServeFaultTest, RetriesReplayExactlyAndResultsMatchClean) {
  const auto jobs = mixed_jobs();
  const auto clean = run_batch(jobs, 1);
  std::int64_t retries_ref = -1;
  for (const int workers : {1, 2}) {
    util::MetricsRegistry metrics;
    const auto faulted = run_batch(jobs, workers, /*fail_prob=*/0.5,
                                   &metrics);
    ASSERT_EQ(faulted.size(), clean.size());
    std::int64_t retries = 0;
    for (const auto& [id, r] : faulted) {
      EXPECT_TRUE(r.ok);
      retries += r.attempts - 1;
      const JobResult& ref = clean.at(id);
      EXPECT_EQ(r.g_digest, ref.g_digest);
      EXPECT_EQ(energy_bits(r), energy_bits(ref));
    }
    // Losses are hash(seed, job id, attempt): the total is a pure
    // function of the job list, independent of the pool size.
    EXPECT_GT(retries, 0);
    if (retries_ref < 0) {
      retries_ref = retries;
    } else {
      EXPECT_EQ(retries, retries_ref);
    }
    EXPECT_EQ(metrics.snapshot().counters.at("serve/retries"), retries);
  }
}

// --------------------------------------- const-shareability (TSan gate)

TEST(SharedFockBuilderTest, ConcurrentBuildsOffOneBuilderAreBitwise) {
  // The cross-request cache hands ONE FockBuilder (and its
  // ShellPairList) to every concurrent job. All const methods must be
  // stateless per call: four threads building G off the same builder
  // must reproduce the sequential result bit for bit. Run under TSan in
  // CI — this is the shareability contract's race guard.
  const chem::Molecule molecule = chem::make_named_molecule("water");
  const chem::BasisSet basis = chem::BasisSet::build(molecule, "sto-3g");
  const chem::FockBuilder builder(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());
  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = (i == j ? 1.0 : 0.02);
    }
  }
  const linalg::Matrix reference = builder.build_g(density);

  constexpr int kThreads = 4;
  std::vector<linalg::Matrix> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&builder, &density, &results, t] {
      // Also exercise the shared ShellPairList read path directly.
      const chem::ShellPairList& pairs = builder.shell_pairs();
      (void)pairs.pair(0, 0);
      results[static_cast<std::size_t>(t)] = builder.build_g(density);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    const linalg::Matrix& g = results[static_cast<std::size_t>(t)];
    ASSERT_EQ(g.rows(), reference.rows());
    EXPECT_EQ(std::memcmp(g.data(), reference.data(),
                          n * n * sizeof(double)),
              0)
        << "thread " << t;
  }
}

}  // namespace
