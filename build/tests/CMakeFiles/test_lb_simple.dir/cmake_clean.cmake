file(REMOVE_RECURSE
  "CMakeFiles/test_lb_simple.dir/test_lb_simple.cpp.o"
  "CMakeFiles/test_lb_simple.dir/test_lb_simple.cpp.o.d"
  "test_lb_simple"
  "test_lb_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
