#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace emc {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  Accumulator acc;
  for (double x : xs) acc.add(x);
  s.min = acc.min();
  s.max = acc.max();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.sum = acc.sum();
  s.p50 = percentile(xs, 0.50);
  s.p90 = percentile(xs, 0.90);
  s.p99 = percentile(xs, 0.99);
  return s;
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double imbalance_ratio(std::span<const double> loads) {
  if (loads.empty()) return 1.0;
  double max = 0.0, sum = 0.0;
  for (double x : loads) {
    max = std::max(max, x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(loads.size());
  return mean > 0.0 ? max / mean : 1.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge case
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);

  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    os.setf(std::ios::scientific);
    os.precision(2);
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") ";
    os.unsetf(std::ios::scientific);
    os << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace emc
