
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/emc_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/emc_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/distributed_fock.cpp" "src/core/CMakeFiles/emc_core.dir/distributed_fock.cpp.o" "gcc" "src/core/CMakeFiles/emc_core.dir/distributed_fock.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/emc_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/emc_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/task_model.cpp" "src/core/CMakeFiles/emc_core.dir/task_model.cpp.o" "gcc" "src/core/CMakeFiles/emc_core.dir/task_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chem/CMakeFiles/emc_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/emc_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/emc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/emc_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/emc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
