#pragma once

// Derived molecular properties: Mulliken population analysis and
// numerical geometry optimization on the RHF surface.

#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"

namespace emc::chem {

/// Mulliken atomic partial charges: q_A = Z_A - sum_{mu in A} (P S)_mumu.
/// Charges sum to the molecule's net charge.
std::vector<double> mulliken_charges(const linalg::Matrix& density,
                                     const BasisSet& basis,
                                     const Molecule& molecule);

/// Nuclear gradient of the RHF energy by central finite differences
/// (rebuilds the basis at each displaced geometry). Returns dE/dR in
/// Hartree/Bohr, one Vec3 per atom.
std::vector<Vec3> numerical_gradient(const Molecule& molecule,
                                     const std::string& basis_name,
                                     const ScfOptions& options = {},
                                     double step = 1e-3);

struct OptimizeOptions {
  int max_steps = 50;
  double gradient_tolerance = 1e-4;  ///< max |dE/dR| component
  double initial_step = 0.5;         ///< steepest-descent step (Bohr^2/Eh)
  ScfOptions scf;
  double fd_step = 1e-3;
};

struct OptimizeResult {
  bool converged = false;
  int steps = 0;
  double energy = 0.0;
  double gradient_norm = 0.0;   ///< max-abs component at the final point
  Molecule geometry;
};

/// Steepest-descent geometry optimization with backtracking line search
/// on the RHF surface. Intended for the small molecules in this library.
OptimizeResult optimize_geometry(const Molecule& start,
                                 const std::string& basis_name,
                                 const OptimizeOptions& options = {});

}  // namespace emc::chem
