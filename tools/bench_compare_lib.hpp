#pragma once

// Core of the regression-gating bench_compare pipeline: a structural
// diff of two BENCH_*.json reports that knows which numbers the
// simulator promises bitwise and which ones the host machine owns.
//
// Gating policy (DESIGN.md "Observability pipeline"):
//   - deterministic values — integers, booleans, strings, and simulated
//     floating-point quantities (makespans, wait times, utilizations) —
//     gate EXACTLY (doubles get a tiny abs+rel tolerance so a libm or
//     formatting ulp never pages anyone);
//   - hostware — anything wall-clock, rate, RSS, or inside a metrics
//     subtree — is compared within a configurable noise band and is
//     ADVISORY by default (warns, does not fail), because wall time on
//     shared CI runners is weather, not signal;
//   - the manifest subtree is provenance, not payload: only
//     schema_version is compared;
//   - profiler summaries are timings through and through: skipped.
//
// Cells of arrays-of-objects are matched by identity keys (model,
// procs, topology, ...), not by index, so reordering is not a
// regression but a vanished cell is.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace emc::tools {

struct CompareOptions {
  /// Relative noise band for advisory (hostware) values: warn when
  /// |cand - base| > noise * |base| (candidate magnitude is the
  /// fallback scale when the baseline is 0).
  double noise = 0.5;
  /// Gated doubles pass when |cand - base| <= abs_tol + rel_tol * mag.
  double rel_tol = 1e-7;
  double abs_tol = 1e-9;
  /// Escalate advisory (noise-band) violations to failures.
  bool strict_noise = false;
};

enum class DeltaStatus { kOk, kWarn, kFail };

/// One compared leaf (or structural violation).
struct Delta {
  std::string path;       ///< e.g. "scheduler_sweep[model=ws,procs=256].events"
  std::string baseline;   ///< rendered value ("-" when absent)
  std::string candidate;  ///< rendered value ("-" when absent)
  DeltaStatus status = DeltaStatus::kOk;
  std::string note;       ///< "exact", "noise band", "missing key", ...
};

struct CompareResult {
  std::vector<Delta> deltas;  ///< warn/fail rows plus a few context rows
  int compared = 0;           ///< leaves examined
  int failures = 0;
  int warnings = 0;
  bool ok() const { return failures == 0; }
};

/// Diffs candidate against baseline under the gating policy above.
/// Both documents must already be parsed (use util::parse_json).
CompareResult compare_reports(const util::JsonValue& baseline,
                              const util::JsonValue& candidate,
                              const CompareOptions& options);

/// Renders the delta table as GitHub-flavored markdown: a summary line,
/// then one row per warn/fail delta (capped, most severe first).
std::string markdown_report(const std::string& baseline_name,
                            const std::string& candidate_name,
                            const CompareResult& result);

/// True if `key` names a hostware quantity (wall clock, rates, RSS).
bool is_noisy_key(const std::string& key);

}  // namespace emc::tools
