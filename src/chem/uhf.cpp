#include "chem/uhf.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "chem/fock.hpp"
#include "chem/integrals.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"
#include "linalg/factor.hpp"
#include "util/log.hpp"

namespace emc::chem {

namespace {

using linalg::Matrix;

Matrix symmetrized(const Matrix& m) {
  Matrix s = m;
  s += m.transposed();
  s *= 0.5;
  return s;
}

double trace_product(const Matrix& a, const Matrix& b) {
  double t = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) t += a(r, c) * b(c, r);
  }
  return t;
}

/// Spin-orbital density with occupation 1: P = C_occ C_occ^T.
Matrix spin_density(const Matrix& c, int n_occ) {
  const std::size_t n = c.rows();
  Matrix p(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t s = 0; s < n; ++s) {
      double v = 0.0;
      for (int o = 0; o < n_occ; ++o) {
        v += c(r, static_cast<std::size_t>(o)) *
             c(s, static_cast<std::size_t>(o));
      }
      p(r, s) = v;
    }
  }
  return p;
}

/// DIIS over paired (F_a, F_b) with stacked error metric.
class UhfDiis {
 public:
  explicit UhfDiis(int capacity) : capacity_(capacity) {}

  void push(Matrix fa, Matrix fb, Matrix ea, Matrix eb) {
    fa_.push_back(std::move(fa));
    fb_.push_back(std::move(fb));
    ea_.push_back(std::move(ea));
    eb_.push_back(std::move(eb));
    if (static_cast<int>(fa_.size()) > capacity_) {
      fa_.pop_front();
      fb_.pop_front();
      ea_.pop_front();
      eb_.pop_front();
    }
  }

  bool ready() const { return fa_.size() >= 2; }

  std::pair<Matrix, Matrix> extrapolate() const {
    const std::size_t m = fa_.size();
    Matrix b(m + 1, m + 1);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        b(i, j) = inner(ea_[i], ea_[j]) + inner(eb_[i], eb_[j]);
      }
      b(i, m) = b(m, i) = -1.0;
    }
    std::vector<double> rhs(m + 1, 0.0);
    rhs.back() = -1.0;

    std::vector<double> coeff;
    try {
      coeff = linalg::solve(b, rhs);
    } catch (const std::runtime_error&) {
      return {fa_.back(), fb_.back()};
    }
    Matrix fa(fa_.back().rows(), fa_.back().cols());
    Matrix fb = fa;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t r = 0; r < fa.rows(); ++r) {
        for (std::size_t c = 0; c < fa.cols(); ++c) {
          fa(r, c) += coeff[i] * fa_[i](r, c);
          fb(r, c) += coeff[i] * fb_[i](r, c);
        }
      }
    }
    return {fa, fb};
  }

 private:
  static double inner(const Matrix& x, const Matrix& y) {
    double s = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) s += x(r, c) * y(r, c);
    }
    return s;
  }

  int capacity_;
  std::deque<Matrix> fa_, fb_, ea_, eb_;
};

}  // namespace

UhfResult run_uhf(const Molecule& molecule, const BasisSet& basis,
                  const UhfOptions& options) {
  const int n_electrons = molecule.electron_count(options.net_charge);
  const int excess = options.multiplicity - 1;
  if (excess < 0 || (n_electrons - excess) % 2 != 0 ||
      n_electrons - excess < 0) {
    throw std::invalid_argument(
        "run_uhf: multiplicity " + std::to_string(options.multiplicity) +
        " inconsistent with " + std::to_string(n_electrons) + " electrons");
  }
  const int n_beta = (n_electrons - excess) / 2;
  const int n_alpha = n_beta + excess;
  if (n_alpha > basis.function_count()) {
    throw std::invalid_argument("run_uhf: basis too small");
  }

  const Matrix s = overlap_matrix(basis);
  const Matrix h = core_hamiltonian(basis, molecule);
  const Matrix x = linalg::inverse_sqrt(s);
  const FockBuilder builder(basis, options.screen_threshold);
  const auto tasks = builder.make_tasks();
  const auto n = static_cast<std::size_t>(basis.function_count());

  auto solve_roothaan = [&](const Matrix& f) {
    linalg::EigenResult eig =
        linalg::eigen_symmetric(linalg::congruence(x, f));
    return std::pair<Matrix, std::vector<double>>(
        linalg::matmul(x, eig.vectors), std::move(eig.values));
  };

  // Core guess, with optional alpha/beta symmetry breaking by mixing the
  // beta HOMO and LUMO.
  auto [c0, eps0] = solve_roothaan(h);
  Matrix ca = c0, cb = c0;
  if (options.guess_mix != 0.0 && n_beta >= 1 &&
      n_beta < basis.function_count()) {
    const auto homo = static_cast<std::size_t>(n_beta - 1);
    const auto lumo = static_cast<std::size_t>(n_beta);
    const double mix = options.guess_mix;
    const double norm = 1.0 / std::sqrt(1.0 + mix * mix);
    for (std::size_t r = 0; r < n; ++r) {
      const double old_homo = cb(r, homo);
      cb(r, homo) = norm * (old_homo + mix * cb(r, lumo));
    }
  }
  Matrix pa = spin_density(ca, n_alpha);
  Matrix pb = spin_density(cb, n_beta);

  /// J/K for one spin density via the shared task machinery.
  auto jk_of = [&](const Matrix& p) {
    Matrix j(n, n), k(n, n);
    for (const auto& task : tasks) {
      builder.execute_task(task, p, j, k);
    }
    return std::pair<Matrix, Matrix>(symmetrized(j), symmetrized(k));
  };

  UhfDiis diis(8);
  UhfResult result;
  result.n_alpha = n_alpha;
  result.n_beta = n_beta;
  result.nuclear_repulsion = molecule.nuclear_repulsion();

  std::vector<double> eps_a, eps_b;
  double prev_energy = 0.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    auto [ja, ka] = jk_of(pa);
    auto [jb, kb] = jk_of(pb);

    Matrix fa = h;
    fa += ja;
    fa += jb;
    fa -= ka;
    Matrix fb = h;
    fb += ja;
    fb += jb;
    fb -= kb;

    Matrix p_total = pa;
    p_total += pb;
    const double e_elec = 0.5 * (trace_product(p_total, h) +
                                 trace_product(pa, fa) +
                                 trace_product(pb, fb));

    auto diis_error = [&](const Matrix& f, const Matrix& p) {
      const Matrix fps = linalg::matmul(f, linalg::matmul(p, s));
      Matrix err = fps;
      err -= fps.transposed();
      return linalg::congruence(x, err);
    };
    Matrix ea = diis_error(fa, pa);
    Matrix eb = diis_error(fb, pb);
    const double err_norm = std::max(ea.max_abs(), eb.max_abs());

    diis.push(fa, fb, std::move(ea), std::move(eb));
    if (diis.ready()) {
      std::tie(fa, fb) = diis.extrapolate();
    }

    std::tie(ca, eps_a) = solve_roothaan(fa);
    std::tie(cb, eps_b) = solve_roothaan(fb);
    pa = spin_density(ca, n_alpha);
    pb = spin_density(cb, n_beta);

    const double delta_e = e_elec - prev_energy;
    prev_energy = e_elec;
    EMC_LOG(kDebug) << "uhf iter " << iter << " E=" << e_elec
                    << " dE=" << delta_e << " |err|=" << err_norm;
    result.iterations = iter;
    result.electronic_energy = e_elec;
    if (iter > 1 && std::abs(delta_e) < options.energy_tolerance &&
        err_norm < options.error_tolerance) {
      result.converged = true;
      break;
    }
  }

  // <S^2> = S_z(S_z + 1) + N_b - sum_ij |<phi_i^a | phi_j^b>|^2.
  const double sz = 0.5 * static_cast<double>(n_alpha - n_beta);
  double overlap_sum = 0.0;
  const Matrix sab = linalg::matmul(
      ca.transposed(), linalg::matmul(s, cb));  // MO cross overlaps
  for (int i = 0; i < n_alpha; ++i) {
    for (int j = 0; j < n_beta; ++j) {
      const double o = sab(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(j));
      overlap_sum += o * o;
    }
  }
  result.s_squared = sz * (sz + 1.0) + static_cast<double>(n_beta) -
                     overlap_sum;
  result.energy = result.electronic_energy + result.nuclear_repulsion;
  result.alpha_orbital_energies = std::move(eps_a);
  result.beta_orbital_energies = std::move(eps_b);
  result.density_alpha = std::move(pa);
  result.density_beta = std::move(pb);
  return result;
}

}  // namespace emc::chem
