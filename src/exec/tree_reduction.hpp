#pragma once

// Fixed-shape pairwise tree reduction over a set of leaf partials.
//
// Floating-point addition commutes but does not associate, so a sum's
// bits are fixed only when its GROUPING is fixed. This tree pins the
// grouping: n_leaves slots are laid out as the leaves of a complete
// binary tree (width = bit_ceil(n_leaves), heap indexing, node 1 =
// root), and a parent always merges left-child += right-child. Which
// THREAD delivers a leaf, and in which ORDER leaves arrive, cannot
// change the result — only the leaf→value mapping can. That is the
// determinism anchor of the hybrid Fock build: as long as the slot
// partition and the set of non-empty leaves are schedule-independent,
// the root is bitwise identical for any thread count or interleaving.
//
// Empty leaves (complete(leaf, nullptr), and the padding up to the
// power-of-two width) contribute nothing: a null child passes its
// sibling's buffer through unmerged, which keeps the grouping of the
// REMAINING leaves a pure function of the non-empty set — no merges
// with zero buffers, no -0.0 surprises, and no allocation for slots a
// rank never executed.
//
// Merges run under the tree's mutex, in the completing thread: the last
// sibling to arrive performs the merge and keeps climbing. This
// serializes merge work per tree (documented trade-off — merge cost is
// O(n^2) per node versus the O(n^2 * tasks) kernel work per leaf) but
// makes the structure trivially race-free; right-child buffers are
// handed to the release hook as soon as they fold in, which is what
// bounds the live buffer set to O(threads + log slots) per rank.

#include <bit>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace emc::exec {

template <typename Buffer>
class TreeReduction {
 public:
  /// merge(left, right): fold right into left (left += right).
  using MergeFn = std::function<void(Buffer&, Buffer&)>;
  /// release(buf): recycle a folded-in right-child buffer.
  using ReleaseFn = std::function<void(Buffer*)>;

  TreeReduction(std::int64_t n_leaves, MergeFn merge, ReleaseFn release)
      : n_leaves_(n_leaves), merge_(std::move(merge)),
        release_(std::move(release)) {
    if (n_leaves < 0) {
      throw std::invalid_argument("TreeReduction: negative leaf count");
    }
    if (n_leaves == 0) return;  // take_root() returns nullptr
    width_ = static_cast<std::int64_t>(
        std::bit_ceil(static_cast<std::uint64_t>(n_leaves)));
    nodes_.resize(static_cast<std::size_t>(2 * width_));
    // Padding leaves [n_leaves, width) are permanently empty; complete
    // them now so all-padding subtrees propagate without any caller.
    for (std::int64_t leaf = n_leaves; leaf < width_; ++leaf) {
      complete_node(width_ + leaf);
    }
  }

  std::int64_t leaves() const { return n_leaves_; }

  /// Delivers leaf's partial (nullptr = empty leaf). Each leaf completes
  /// exactly once; the call that closes the last open sibling pair also
  /// performs the merges up the tree. Thread-safe.
  void complete(std::int64_t leaf, Buffer* partial) {
    if (leaf < 0 || leaf >= n_leaves_) {
      throw std::out_of_range("TreeReduction::complete: bad leaf index");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    Node& node = nodes_[static_cast<std::size_t>(width_ + leaf)];
    if (node.done) {
      throw std::logic_error("TreeReduction::complete: leaf completed twice");
    }
    node.buffer = partial;
    complete_node(width_ + leaf);
  }

  /// Completes every still-open leaf as empty. For dynamic schedules
  /// (counter / work stealing) where a rank only learns which slots it
  /// did NOT execute once the global loop terminates.
  void complete_missing() {
    if (n_leaves_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t leaf = 0; leaf < n_leaves_; ++leaf) {
      if (!nodes_[static_cast<std::size_t>(width_ + leaf)].done) {
        complete_node(width_ + leaf);
      }
    }
  }

  /// Root partial once every leaf completed (nullptr when all leaves
  /// were empty). Ownership passes to the caller; callable once.
  Buffer* take_root() {
    if (n_leaves_ == 0) return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!nodes_[1].done) {
      throw std::logic_error("TreeReduction::take_root: leaves still open");
    }
    Buffer* root = nodes_[1].buffer;
    nodes_[1].buffer = nullptr;
    return root;
  }

 private:
  struct Node {
    Buffer* buffer = nullptr;
    bool done = false;
  };

  // Marks node i done and climbs: whenever both siblings are done, the
  // parent takes (left merged with right) and the climb continues.
  // Caller holds mutex_ (the constructor is pre-concurrency).
  void complete_node(std::int64_t i) {
    nodes_[static_cast<std::size_t>(i)].done = true;
    while (i > 1) {
      const std::int64_t sibling = i ^ 1;
      if (!nodes_[static_cast<std::size_t>(sibling)].done) return;
      const std::int64_t parent = i >> 1;
      Node& left = nodes_[static_cast<std::size_t>(parent * 2)];
      Node& right = nodes_[static_cast<std::size_t>(parent * 2 + 1)];
      Node& up = nodes_[static_cast<std::size_t>(parent)];
      if (left.buffer != nullptr && right.buffer != nullptr) {
        merge_(*left.buffer, *right.buffer);
        release_(right.buffer);
        up.buffer = left.buffer;
      } else {
        up.buffer = left.buffer != nullptr ? left.buffer : right.buffer;
      }
      left.buffer = nullptr;
      right.buffer = nullptr;
      up.done = true;
      i = parent;
    }
  }

  std::int64_t n_leaves_ = 0;
  std::int64_t width_ = 0;  // bit_ceil(n_leaves); leaves at [width, 2*width)
  MergeFn merge_;
  ReleaseFn release_;
  std::mutex mutex_;
  std::vector<Node> nodes_;
};

}  // namespace emc::exec
