#include "perfmodel/sweep_ingest.hpp"

#include <set>
#include <stdexcept>

#include "util/report_cells.hpp"

namespace emc::perfmodel {

std::string SweepCell::identity() const {
  std::string key;
  for (const std::string& id : util::cell_identity_keys()) {
    std::string rendered;
    if (const auto it = labels.find(id); it != labels.end()) {
      rendered = it->second;
    } else if (const auto vt = values.find(id); vt != values.end()) {
      rendered = util::format_double(vt->second);
    } else {
      continue;
    }
    if (!key.empty()) key += ",";
    key += id + "=" + rendered;
  }
  return key;
}

bool SweepCell::matches(
    const std::map<std::string, std::string>& filter) const {
  for (const auto& [key, value] : filter) {
    const auto it = labels.find(key);
    if (it == labels.end() || it->second != value) return false;
  }
  return true;
}

Sweep load_sweep(const util::JsonValue& doc,
                 const std::string& array_path) {
  using util::JsonValue;

  const JsonValue* node = &doc;
  std::size_t start = 0;
  while (start <= array_path.size()) {
    const std::size_t dot = array_path.find('.', start);
    const std::string part =
        array_path.substr(start, dot == std::string::npos
                                     ? std::string::npos
                                     : dot - start);
    if (!node->has(part)) {
      throw std::runtime_error("load_sweep: no \"" + part +
                               "\" in report (path " + array_path + ")");
    }
    node = &node->object.at(part);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  if (node->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("load_sweep: \"" + array_path +
                             "\" is not an array");
  }

  Sweep sweep;
  std::set<std::string> seen;
  for (const JsonValue& element : node->array) {
    if (element.kind != JsonValue::Kind::kObject) {
      throw std::runtime_error("load_sweep: \"" + array_path +
                               "\" holds a non-object cell");
    }
    SweepCell cell;
    for (const auto& [key, value] : element.object) {
      if (value.kind == JsonValue::Kind::kString) {
        cell.labels[key] = value.str;
      } else if (value.kind == JsonValue::Kind::kNumber) {
        cell.values[key] = value.number;
      } else if (value.kind == JsonValue::Kind::kBool) {
        cell.values[key] = value.boolean ? 1.0 : 0.0;
      }
      // Nested arrays/objects/nulls carry no sweep data: skipped.
    }
    const std::string id = cell.identity();
    if (id.empty()) {
      throw std::runtime_error("load_sweep: cell without identity in \"" +
                               array_path + "\"");
    }
    if (!seen.insert(id).second) {
      throw std::runtime_error("load_sweep: duplicate cell identity \"" +
                               id + "\" in \"" + array_path + "\"");
    }
    sweep.cells.push_back(std::move(cell));
  }
  return sweep;
}

Sweep load_sweep_text(const std::string& report_text,
                      const std::string& array_path) {
  return load_sweep(util::parse_json(report_text), array_path);
}

std::vector<Sample> to_samples(
    const Sweep& sweep, const std::map<std::string, std::string>& labels,
    const std::vector<std::string>& predictor_keys,
    const std::string& target_key) {
  std::vector<Sample> samples;
  for (const SweepCell& cell : sweep.cells) {
    if (!cell.matches(labels)) continue;
    Sample sample;
    sample.key = cell.identity();
    for (const std::string& predictor : predictor_keys) {
      const auto it = cell.values.find(predictor);
      if (it == cell.values.end()) {
        throw std::runtime_error("to_samples: cell " + sample.key +
                                 " lacks predictor \"" + predictor + "\"");
      }
      sample.predictors[predictor] = it->second;
    }
    const auto target = cell.values.find(target_key);
    if (target == cell.values.end()) {
      throw std::runtime_error("to_samples: cell " + sample.key +
                               " lacks target \"" + target_key + "\"");
    }
    sample.value = target->second;
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace emc::perfmodel
