#pragma once

// Shell-pair data cache for the McMurchie–Davidson integral engine.
//
// Every ERI quartet (ab|cd) factors into bra-pair data (merged exponents,
// weighted centers, contraction products, Hermite E tables), identical ket
// -pair data, and a Boys-function core that couples the two. The naive
// kernel rebuilds the pair data inside the primitive-quartet loop, so a
// Fock build recomputes each shell pair's tables once per quartet it
// appears in — O(n_pairs) redundant rebuilds per pair. Production integral
// codes (the NWChem lineage this study models) precompute the pair data
// once and reuse it across every quartet. ShellPairData is that
// precomputed record; ShellPairList is the per-basis cache indexed by
// canonical pair rank.

#include <cstdint>
#include <vector>

#include "chem/basis.hpp"
#include "chem/integrals.hpp"

namespace emc::chem {

/// Canonical rank of an ordered shell pair (i >= j): i*(i+1)/2 + j.
inline std::uint64_t pair_rank(int i, int j) {
  return static_cast<std::uint64_t>(i) * (static_cast<std::uint64_t>(i) + 1) /
             2 +
         static_cast<std::uint64_t>(j);
}

/// Precomputed quantities of one primitive pair (a, b) of a shell pair.
struct PrimitivePairData {
  double p;             ///< merged exponent a + b
  double coeff_over_p;  ///< c_a c_b / p — the pair's share of the quartet
                        ///< prefactor 2 pi^{5/2} cab ccd / (p q sqrt(p+q))
  Vec3 center;          ///< P = (a A + b B) / p
  /// Schwarz-like magnitude bound: sqrt of the primitive s-approximated
  /// self-repulsion (ab|ab), including the contraction coefficients and
  /// the Gaussian-product prefactor exp(-a b |AB|^2 / p). The product of
  /// two pairs' bounds upper-bounds their s-type primitive quartet and is
  /// used to prune negligible primitive quartets.
  double bound;
  HermiteE ex, ey, ez;  ///< per-dimension Hermite expansion tables
};

/// Everything eri_shell_quartet needs from a (bra or ket) shell pair,
/// computed once per pair instead of once per quartet.
struct ShellPairData {
  int la = 0, lb = 0;            ///< angular momenta of the two shells
  int first_a = 0, first_b = 0;  ///< basis-function offsets of the shells
  std::vector<CartesianComponent> comps_a, comps_b;
  std::vector<double> norm_a, norm_b;  ///< per-component contracted norms
  std::vector<PrimitivePairData> prims;
  double max_bound = 0.0;  ///< max over the primitive pairs' bounds

  int na() const { return static_cast<int>(comps_a.size()); }
  int nb() const { return static_cast<int>(comps_b.size()); }
};

/// Builds the cached pair record for two shells (order matters: `a` is
/// the row/bra-left shell).
ShellPairData make_shell_pair(const Shell& a, const Shell& b);

/// All canonical shell pairs (i >= j) of a basis set, indexed by
/// pair_rank(i, j). This is the cache a FockBuilder owns: bra data is
/// reused across a task's whole ket loop and ket data across all tasks.
///
/// THREAD SAFETY: immutable after construction. Every member is const-
/// qualified read-only access into data fully materialized by the
/// constructor — there is no lazy filling, memoization, or mutable
/// workspace — so one ShellPairList may be shared by any number of
/// concurrent readers (the serving layer's cross-request FockCache
/// relies on this; guarded by the TSan-covered
/// SharedFockBuilderTest.ConcurrentBuildsOffOneBuilderAreBitwise).
class ShellPairList {
 public:
  explicit ShellPairList(const BasisSet& basis);

  /// Requires i >= j (canonical order).
  const ShellPairData& pair(int i, int j) const {
    return pairs_[pair_rank(i, j)];
  }
  std::size_t size() const { return pairs_.size(); }
  const BasisSet& basis() const { return *basis_; }

 private:
  const BasisSet* basis_;
  std::vector<ShellPairData> pairs_;
};

}  // namespace emc::chem
