#pragma once

// Minimal leveled logger. Thread-safe: each log line is formatted into a
// single string and written with one stream insertion.

#include <mutex>
#include <sstream>
#include <string>

namespace emc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Converts a level to its display tag ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}

/// Log with streaming syntax: EMC_LOG(kInfo) << "tasks=" << n;
#define EMC_LOG(level)                                        \
  for (bool emc_log_once =                                    \
           (::emc::LogLevel::level >= ::emc::log_level());    \
       emc_log_once; emc_log_once = false)                    \
  ::emc::detail::LogLine(::emc::LogLevel::level)

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace emc
