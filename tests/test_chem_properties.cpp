// Tests for the extended chemistry features: 6-31G* (d shells), XYZ
// parsing/printing, and dipole moments.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/constants.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"

namespace {

using namespace emc::chem;

TEST(G631StarTest, AddsDShellsOnHeavyAtomsOnly) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "6-31g*");
  // 6-31G water: 9 shells / 13 fn; the O d shell adds 1 shell / 6 fn.
  EXPECT_EQ(bs.shell_count(), 10u);
  EXPECT_EQ(bs.function_count(), 19);

  int d_shells = 0;
  for (const Shell& s : bs.shells()) {
    if (s.l == 2) {
      ++d_shells;
      EXPECT_EQ(s.exponents.size(), 1u);
      EXPECT_DOUBLE_EQ(s.exponents[0], 0.8);
    }
  }
  EXPECT_EQ(d_shells, 1);
}

TEST(G631StarTest, DShellOverlapDiagonalIsOne) {
  // Every cartesian d component (xx, xy, ...) must be unit-normalized —
  // this exercises the component-dependent normalization path.
  const BasisSet bs = BasisSet::build(make_water(), "6-31g*");
  const auto s = overlap_matrix(bs);
  for (int i = 0; i < bs.function_count(); ++i) {
    EXPECT_NEAR(s(static_cast<std::size_t>(i), static_cast<std::size_t>(i)),
                1.0, 1e-10)
        << "function " << i;
  }
}

TEST(G631StarTest, WaterEnergyMatchesLiterature) {
  // RHF/6-31G* water at the experimental geometry: about -76.01 Eh
  // (cartesian d functions).
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "6-31g*");
  const ScfResult r = run_rhf(water, bs);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -76.01, 5e-2);
  // Variational ladder: 6-31G* below 6-31G below STO-3G.
  const ScfResult g631 = run_rhf(water, BasisSet::build(water, "6-31g"));
  EXPECT_LT(r.energy, g631.energy);
}

TEST(XyzTest, RoundTrip) {
  const Molecule original = make_water();
  const std::string text = to_xyz(original, "water monomer");
  const Molecule parsed = parse_xyz(text);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed.atoms()[i].z, original.atoms()[i].z);
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(parsed.atoms()[i].xyz[static_cast<std::size_t>(d)],
                  original.atoms()[i].xyz[static_cast<std::size_t>(d)],
                  1e-6);
    }
  }
}

TEST(XyzTest, ParsesHandWrittenInput) {
  const std::string text =
      "2\n"
      "hydrogen molecule\n"
      "H 0.0 0.0 0.0\n"
      "H 0.0 0.0 0.7408481\n";
  const Molecule m = parse_xyz(text);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.atoms()[0].z, 1);
  EXPECT_NEAR(m.atoms()[1].xyz[2], 0.7408481 * kAngstromToBohr, 1e-9);
}

TEST(XyzTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_xyz(""), std::invalid_argument);
  EXPECT_THROW(parse_xyz("abc\ncomment\n"), std::invalid_argument);
  EXPECT_THROW(parse_xyz("0\ncomment\n"), std::invalid_argument);
  EXPECT_THROW(parse_xyz("2\ncomment\nH 0 0 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_xyz("1\ncomment\nH 0 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_xyz("1\ncomment\nQq 0 0 0\n"), std::invalid_argument);
}

TEST(DipoleTest, HomonuclearDiatomicIsZero) {
  const Molecule h2 = make_h2(1.4);
  const BasisSet bs = BasisSet::build(h2, "sto-3g");
  const ScfResult r = run_rhf(h2, bs);
  const Vec3 mu = dipole_moment(r.density, bs, h2);
  for (double component : mu) {
    EXPECT_NEAR(component, 0.0, 1e-8);
  }
}

TEST(DipoleTest, WaterDipoleAlongSymmetryAxis) {
  // make_water puts the C2v axis along z (H atoms at +z side of O).
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "6-31g");
  const ScfResult r = run_rhf(water, bs);
  const Vec3 mu = dipole_moment(r.density, bs, water);
  EXPECT_NEAR(mu[0], 0.0, 1e-6);
  EXPECT_NEAR(mu[1], 0.0, 1e-6);
  // RHF/6-31G overestimates water's dipole (~1.0 a.u. vs 0.73 exp).
  EXPECT_GT(std::abs(mu[2]), 0.6);
  EXPECT_LT(std::abs(mu[2]), 1.3);
}

TEST(DipoleTest, OriginIndependentForNeutralMolecule) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const ScfResult r = run_rhf(water, bs);
  const Vec3 a = dipole_moment(r.density, bs, water, {0.0, 0.0, 0.0});
  const Vec3 b = dipole_moment(r.density, bs, water, {3.0, -2.0, 5.0});
  for (int d = 0; d < 3; ++d) {
    EXPECT_NEAR(a[static_cast<std::size_t>(d)],
                b[static_cast<std::size_t>(d)], 1e-8);
  }
}

TEST(DipoleTest, MatricesAreSymmetric) {
  const BasisSet bs = BasisSet::build(make_water(), "6-31g*");
  const auto m = dipole_matrices(bs);
  for (const auto& component : m) {
    EXPECT_TRUE(component.is_symmetric(1e-10));
  }
}

TEST(DipoleTest, SPrimitiveMomentEqualsCenter) {
  // For a single normalized s function at R, <x> = R_x exactly.
  Molecule m;
  m.add_atom(1, 1.5, -2.0, 0.75);
  const BasisSet bs = BasisSet::build(m, "sto-3g");
  const auto moments = dipole_matrices(bs);
  EXPECT_NEAR(moments[0](0, 0), 1.5, 1e-10);
  EXPECT_NEAR(moments[1](0, 0), -2.0, 1e-10);
  EXPECT_NEAR(moments[2](0, 0), 0.75, 1e-10);
}

}  // namespace
