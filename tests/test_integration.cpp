// Cross-module integration tests: the parallel executors build the same
// Fock matrices (and hence the same SCF energy) as the sequential
// reference, both via thread-private accumulators and via one-sided
// accumulation into a GlobalArray.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chem/fock.hpp"
#include "chem/scf.hpp"
#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "sim/simulators.hpp"
#include "exec/schedulers.hpp"
#include "lb/simple.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace {

using namespace emc;
using chem::FockBuilder;
using linalg::Matrix;

/// G(P) builder that executes Fock tasks under work stealing with
/// per-rank J/K accumulators, reduced at the end.
chem::GBuilder parallel_g_builder(const FockBuilder& builder,
                                  pgas::Runtime& runtime) {
  return [&builder, &runtime](const Matrix& density) {
    const auto n = static_cast<std::size_t>(
        builder.basis().function_count());
    const auto tasks = builder.make_tasks();
    const auto n_ranks = static_cast<std::size_t>(runtime.size());

    std::vector<Matrix> j_parts(n_ranks, Matrix(n, n));
    std::vector<Matrix> k_parts(n_ranks, Matrix(n, n));

    const auto initial =
        lb::block_assignment(tasks.size(), runtime.size());
    exec::run_work_stealing(
        runtime, static_cast<std::int64_t>(tasks.size()), initial,
        [&](std::int64_t t, int rank) {
          builder.execute_task(tasks[static_cast<std::size_t>(t)], density,
                               j_parts[static_cast<std::size_t>(rank)],
                               k_parts[static_cast<std::size_t>(rank)]);
        });

    Matrix j_total(n, n), k_total(n, n);
    for (std::size_t r = 0; r < n_ranks; ++r) {
      j_total += j_parts[r];
      k_total += k_parts[r];
    }
    return FockBuilder::combine_jk(j_total, k_total);
  };
}

TEST(IntegrationTest, WorkStealingGBuildMatchesSequential) {
  const chem::Molecule mol = chem::make_water();
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());

  Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = (i == j ? 1.0 : 0.05);
    }
  }

  pgas::Runtime runtime(4);
  const Matrix parallel = parallel_g_builder(builder, runtime)(density);
  const Matrix sequential = builder.build_g(density);
  // Same contributions in a different summation order.
  EXPECT_TRUE(parallel.almost_equal(sequential, 1e-10));
}

TEST(IntegrationTest, FullScfThroughParallelExecutor) {
  const chem::Molecule mol = chem::make_water();
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);

  pgas::Runtime runtime(4);
  const chem::ScfResult parallel = chem::run_rhf_with_builder(
      mol, basis, parallel_g_builder(builder, runtime));
  const chem::ScfResult sequential = chem::run_rhf(mol, basis);

  EXPECT_TRUE(parallel.converged);
  EXPECT_NEAR(parallel.energy, sequential.energy, 1e-8);
}

TEST(IntegrationTest, CounterSchedulerScfMatchesToo) {
  const chem::Molecule mol = chem::make_h2(1.4);
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  pgas::Runtime runtime(2);

  const chem::GBuilder counter_builder =
      [&](const Matrix& density) {
        const auto n = static_cast<std::size_t>(basis.function_count());
        const auto tasks = builder.make_tasks();
        std::vector<Matrix> j_parts(2, Matrix(n, n)), k_parts(2, Matrix(n, n));
        exec::run_counter(
            runtime, static_cast<std::int64_t>(tasks.size()), 1,
            [&](std::int64_t t, int rank) {
              builder.execute_task(tasks[static_cast<std::size_t>(t)],
                                   density,
                                   j_parts[static_cast<std::size_t>(rank)],
                                   k_parts[static_cast<std::size_t>(rank)]);
            });
        Matrix j_total(n, n), k_total(n, n);
        for (int r = 0; r < 2; ++r) {
          j_total += j_parts[static_cast<std::size_t>(r)];
          k_total += k_parts[static_cast<std::size_t>(r)];
        }
        return FockBuilder::combine_jk(j_total, k_total);
      };

  const chem::ScfResult a =
      chem::run_rhf_with_builder(mol, basis, counter_builder);
  const chem::ScfResult b = chem::run_rhf(mol, basis);
  EXPECT_NEAR(a.energy, b.energy, 1e-10);
  EXPECT_NEAR(a.energy, -1.1167, 2e-4);
}

TEST(IntegrationTest, GlobalArrayAccumulationPath) {
  // The fully PGAS-flavoured pipeline: ranks accumulate J/K contributions
  // into GlobalArrays with one-sided atomic accumulate, like the GA-based
  // implementation the paper studies.
  const chem::Molecule mol = chem::make_water();
  const chem::BasisSet basis = chem::BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());
  const int n_ranks = 4;

  Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = (i == j ? 0.9 : 0.02);
    }
  }

  pgas::Runtime runtime(n_ranks);
  pgas::GlobalArray j_global(n, n, n_ranks);
  pgas::GlobalArray k_global(n, n, n_ranks);
  const auto tasks = builder.make_tasks();
  const auto assignment =
      lb::cyclic_assignment(tasks.size(), n_ranks);

  runtime.run([&](pgas::Context& ctx) {
    // Each rank digests its tasks locally, then accumulates once.
    Matrix j_local(n, n), k_local(n, n);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      if (assignment[t] != ctx.rank()) continue;
      builder.execute_task(tasks[t], density, j_local, k_local);
    }
    j_global.accumulate(ctx.rank(), 0, 0, n, n,
                        std::span<const double>(j_local.data(), n * n),
                        ctx.cost_model());
    k_global.accumulate(ctx.rank(), 0, 0, n, n,
                        std::span<const double>(k_local.data(), n * n),
                        ctx.cost_model());
  });

  Matrix j_total(n, n), k_total(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      j_total(r, c) = j_global.at(r, c);
      k_total(r, c) = k_global.at(r, c);
    }
  }
  const Matrix g = FockBuilder::combine_jk(j_total, k_total);
  const Matrix reference = builder.build_g(density);
  EXPECT_TRUE(g.almost_equal(reference, 1e-10));
}

TEST(IntegrationTest, TaskModelDrivesSimulatorConsistently) {
  // End-to-end: chemistry -> task costs -> balancer -> simulator, with
  // totals conserved at every hand-off.
  const core::TaskModel model = core::build_task_model("water2");
  core::ExperimentConfig config;
  config.machine.n_procs = 8;

  const auto balance = core::balance_tasks(model, "semi-matching", 8, config);
  const auto result =
      sim::simulate_static(config.machine, model.costs, balance.assignment);

  double busy_total = 0.0;
  for (double b : result.busy) busy_total += b;
  EXPECT_NEAR(busy_total, model.total_cost(), 1e-9);
  EXPECT_GE(result.makespan,
            model.total_cost() / 8.0 - 1e-12);  // mean-load lower bound
}

}  // namespace
