file(REMOVE_RECURSE
  "libemc_pgas.a"
)
