#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::sim {

std::vector<double> draw_core_speeds(const MachineConfig& config) {
  std::vector<double> speeds(static_cast<std::size_t>(config.n_procs), 1.0);
  if (config.noise_amplitude <= 0.0) return speeds;
  emc::Rng rng(config.seed ^ 0xc0ffee);
  for (double& s : speeds) {
    s = 1.0 - config.noise_amplitude * rng.uniform();
  }
  return speeds;
}

std::vector<double> utilization_timeline(const SimResult& result,
                                         int n_procs, int bins) {
  return utilization_timeline(std::span<const TraceEvent>(result.trace),
                              result.makespan, n_procs, bins);
}

std::vector<TraceEvent> merge_round_traces(
    std::span<const SimResult> rounds) {
  std::vector<TraceEvent> merged;
  double offset = 0.0;
  for (std::size_t round = 0; round < rounds.size(); ++round) {
    TraceEvent boundary;
    boundary.type = TraceEventType::kIterationBoundary;
    boundary.proc = 0;
    boundary.task = static_cast<std::int64_t>(round);
    boundary.start = offset;
    boundary.end = offset;
    merged.push_back(boundary);
    for (TraceEvent ev : rounds[round].trace) {
      ev.start += offset;
      ev.end += offset;
      merged.push_back(ev);
    }
    offset += rounds[round].makespan;
  }
  return merged;
}

double SimResult::utilization() const {
  if (busy.empty() || makespan <= 0.0) return 0.0;
  double total = 0.0;
  for (double b : busy) total += b;
  return total / (makespan * static_cast<double>(busy.size()));
}

}  // namespace emc::sim
