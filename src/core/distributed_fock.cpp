#include "core/distributed_fock.hpp"

#include <stdexcept>

#include "lb/simple.hpp"

namespace emc::core {

DistributedFockBuilder::DistributedFockBuilder(
    const chem::BasisSet& basis, pgas::Runtime& runtime,
    DistributedFockOptions options)
    : basis_(&basis), runtime_(&runtime), options_(std::move(options)),
      fock_(basis, options_.screen_threshold), tasks_(fock_.make_tasks()) {}

lb::Assignment DistributedFockBuilder::initial_assignment() const {
  const int ranks = runtime_->size();
  if (options_.static_balancer == "block") {
    return lb::block_assignment(tasks_.size(), ranks);
  }
  if (options_.static_balancer == "cyclic") {
    return lb::cyclic_assignment(tasks_.size(), ranks);
  }
  if (options_.static_balancer == "lpt") {
    std::vector<double> costs;
    costs.reserve(tasks_.size());
    for (const auto& task : tasks_) {
      costs.push_back(fock_.estimate_task_cost(task));
    }
    return lb::lpt_assignment(costs, ranks);
  }
  throw std::invalid_argument(
      "DistributedFockBuilder: unknown static balancer '" +
      options_.static_balancer + "'");
}

linalg::Matrix DistributedFockBuilder::build_g(
    const linalg::Matrix& density) {
  const auto n = static_cast<std::size_t>(basis_->function_count());
  if (density.rows() != n || density.cols() != n) {
    throw std::invalid_argument("build_g: density shape mismatch");
  }
  const int ranks = runtime_->size();

  // Publish the density; ranks will fetch it one-sided.
  pgas::GlobalArray density_ga(n, n, ranks);
  density_ga.put(0, 0, 0, n, n,
                 std::span<const double>(density.data(), n * n),
                 pgas::CommCostModel{});
  pgas::GlobalArray j_ga(n, n, ranks);
  pgas::GlobalArray k_ga(n, n, ranks);

  const lb::Assignment assignment = initial_assignment();
  const auto n_tasks = static_cast<std::int64_t>(tasks_.size());

  // Per-rank working state allocated up front so the SPMD body can use
  // it without synchronization.
  std::vector<linalg::Matrix> local_density(
      static_cast<std::size_t>(ranks), linalg::Matrix(n, n));
  std::vector<linalg::Matrix> local_j(static_cast<std::size_t>(ranks),
                                      linalg::Matrix(n, n));
  std::vector<linalg::Matrix> local_k(static_cast<std::size_t>(ranks),
                                      linalg::Matrix(n, n));

  const exec::TaskBody body = [&](std::int64_t t, int rank) {
    const auto ru = static_cast<std::size_t>(rank);
    fock_.execute_task(tasks_[static_cast<std::size_t>(t)],
                       local_density[ru], local_j[ru], local_k[ru]);
  };

  // Phase 1 (inside each scheduler's SPMD region is not possible here —
  // schedulers own the region), so fetch + accumulate are their own SPMD
  // phases around the scheduled execution. This mirrors GA codes:
  // GA_Get(P) ... do work ... GA_Acc(F) with barriers between phases.
  runtime_->run([&](pgas::Context& ctx) {
    const auto ru = static_cast<std::size_t>(ctx.rank());
    density_ga.get(ctx.rank(), 0, 0, n, n,
                   std::span<double>(local_density[ru].data(), n * n),
                   ctx.cost_model());
  });

  switch (options_.model) {
    case ExecModel::kStatic:
      last_stats_ = exec::run_static(*runtime_, n_tasks, assignment, body);
      break;
    case ExecModel::kCounter:
      last_stats_ = exec::run_counter(*runtime_, n_tasks,
                                      options_.counter_chunk, body);
      break;
    case ExecModel::kWorkStealing:
      last_stats_ = exec::run_work_stealing(*runtime_, n_tasks, assignment,
                                            body, options_.steal);
      break;
  }

  runtime_->run([&](pgas::Context& ctx) {
    const auto ru = static_cast<std::size_t>(ctx.rank());
    j_ga.accumulate(ctx.rank(), 0, 0, n, n,
                    std::span<const double>(local_j[ru].data(), n * n),
                    ctx.cost_model());
    k_ga.accumulate(ctx.rank(), 0, 0, n, n,
                    std::span<const double>(local_k[ru].data(), n * n),
                    ctx.cost_model());
  });

  linalg::Matrix j_total(n, n), k_total(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      j_total(r, c) = j_ga.at(r, c);
      k_total(r, c) = k_ga.at(r, c);
    }
  }
  ++builds_;
  return chem::FockBuilder::combine_jk(j_total, k_total);
}

chem::GBuilder DistributedFockBuilder::as_g_builder() {
  return [this](const linalg::Matrix& density) { return build_g(density); };
}

}  // namespace emc::core
