// Event-scheduler backends (sim/event_queue.hpp), the pooled task rings
// (sim/task_ring.hpp), and the cross-scheduler determinism contract:
// every simulator must produce bitwise-identical SimResults whether it
// drains the binary-heap oracle or the calendar queue — across
// execution models, fault models, and network topologies. This identity
// is what lets the calendar core replace the heap at scale without
// re-validating a single experiment.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "lb/simple.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulators.hpp"
#include "sim/task_ring.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;
using namespace emc::sim;

// --- EventQueue unit tests -----------------------------------------------

/// Drains `queue` and asserts the pop order matches sorting `pushed` by
/// (time, key).
void expect_sorted_drain(EventQueue& queue,
                         std::vector<SimEvent> pushed) {
  std::sort(pushed.begin(), pushed.end(),
            [](const SimEvent& a, const SimEvent& b) {
              return a.time != b.time ? a.time < b.time : a.key < b.key;
            });
  for (const SimEvent& want : pushed) {
    ASSERT_FALSE(queue.empty());
    const SimEvent got = queue.pop();
    ASSERT_EQ(got.time, want.time);
    ASSERT_EQ(got.key, want.key);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PopsInTimeKeyOrderBothBackends) {
  for (SchedulerKind kind :
       {SchedulerKind::kBinaryHeap, SchedulerKind::kCalendarQueue}) {
    EventQueue queue(kind, 16);
    Rng rng(42);
    std::vector<SimEvent> pushed;
    for (int i = 0; i < 5000; ++i) {
      const double t = rng.uniform() * 1e-3;
      const std::uint64_t key = static_cast<std::uint64_t>(i);
      queue.push(t, key);
      pushed.push_back(SimEvent{t, key});
    }
    expect_sorted_drain(queue, pushed);
  }
}

TEST(EventQueue, EqualTimesBreakTiesByKey) {
  for (SchedulerKind kind :
       {SchedulerKind::kBinaryHeap, SchedulerKind::kCalendarQueue}) {
    EventQueue queue(kind, 16);
    // A burst of equal timestamps (the t=0 initial-event burst every
    // simulator produces) must pop in key order.
    std::vector<SimEvent> pushed;
    for (int i = 999; i >= 0; --i) {
      queue.push(0.0, static_cast<std::uint64_t>(i));
      pushed.push_back(SimEvent{0.0, static_cast<std::uint64_t>(i)});
    }
    expect_sorted_drain(queue, pushed);
  }
}

TEST(EventQueue, InterleavedPushPopStaysOrdered) {
  // DES-style usage: pops interleaved with pushes of later timestamps,
  // occasionally far in the future (forcing bucket-year wraparounds).
  EventQueue heap(SchedulerKind::kBinaryHeap, 8);
  EventQueue cal(SchedulerKind::kCalendarQueue, 8);
  Rng rng(7);
  std::uint64_t key = 0;
  for (int p = 0; p < 64; ++p) {
    heap.push(0.0, key);
    cal.push(0.0, key);
    ++key;
  }
  for (int step = 0; step < 20000; ++step) {
    ASSERT_EQ(heap.empty(), cal.empty());
    if (heap.empty()) break;
    const SimEvent a = heap.pop();
    const SimEvent b = cal.pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.key, b.key);
    if (step < 15000) {
      // Mostly small increments; sometimes a jump far past the year.
      const double jump =
          rng.uniform() < 0.01 ? rng.uniform() * 1e2 : rng.uniform() * 1e-6;
      heap.push(a.time + jump, key);
      cal.push(a.time + jump, key);
      ++key;
    }
  }
}

TEST(EventQueue, GrowsAndShrinksThroughPopulationSwings) {
  EventQueue cal(SchedulerKind::kCalendarQueue, 4);
  std::vector<SimEvent> pushed;
  Rng rng(11);
  // Grow to 100k events (many rebuilds), then drain (shrink rebuilds).
  for (int i = 0; i < 100000; ++i) {
    const double t = rng.uniform() * 10.0;
    cal.push(t, static_cast<std::uint64_t>(i));
    pushed.push_back(SimEvent{t, static_cast<std::uint64_t>(i)});
  }
  EXPECT_EQ(cal.size(), pushed.size());
  expect_sorted_drain(cal, pushed);
}

TEST(EventQueue, PushBeforeCurrentEpochRewinds) {
  EventQueue cal(SchedulerKind::kCalendarQueue, 4);
  cal.push(1.0, 1);
  EXPECT_EQ(cal.pop().key, 1u);
  // The scan day is now around t=1.0; an earlier event must still pop
  // first against a later one.
  cal.push(2.0, 2);
  cal.push(0.5, 3);
  EXPECT_EQ(cal.pop().key, 3u);
  EXPECT_EQ(cal.pop().key, 2u);
  EXPECT_TRUE(cal.empty());
}

TEST(EventQueue, ParsesAndNamesSchedulers) {
  EXPECT_EQ(parse_scheduler("heap"), SchedulerKind::kBinaryHeap);
  EXPECT_EQ(parse_scheduler("calendar"), SchedulerKind::kCalendarQueue);
  EXPECT_EQ(parse_scheduler("calendar-queue"),
            SchedulerKind::kCalendarQueue);
  EXPECT_STREQ(scheduler_name(SchedulerKind::kBinaryHeap), "heap");
  EXPECT_STREQ(scheduler_name(SchedulerKind::kCalendarQueue), "calendar");
  EXPECT_THROW(parse_scheduler("splay"), std::invalid_argument);
}

// --- TaskRingPool unit tests ---------------------------------------------

TEST(TaskRingPool, MatchesDequeAcrossChunkBoundaries) {
  // Differential test against std::deque over a scripted op sequence
  // that repeatedly crosses the 32-task chunk boundary in both
  // directions and migrates between queues (the steal pattern).
  const int n_queues = 4;
  TaskRingPool pool(n_queues, 8);  // deliberately undersized: must grow
  std::vector<std::deque<std::int64_t>> ref(n_queues);
  Rng rng(3);
  std::int64_t next = 0;
  for (int step = 0; step < 200000; ++step) {
    const int q = static_cast<int>(rng.below(n_queues));
    const double r = rng.uniform();
    ASSERT_EQ(pool.size(q), ref[static_cast<std::size_t>(q)].size());
    if (r < 0.45 || ref[static_cast<std::size_t>(q)].empty()) {
      pool.push_back(q, next);
      ref[static_cast<std::size_t>(q)].push_back(next);
      ++next;
    } else if (r < 0.75) {
      ASSERT_EQ(pool.pop_back(q), ref[static_cast<std::size_t>(q)].back());
      ref[static_cast<std::size_t>(q)].pop_back();
    } else {
      ASSERT_EQ(pool.pop_front(q),
                ref[static_cast<std::size_t>(q)].front());
      ref[static_cast<std::size_t>(q)].pop_front();
    }
  }
  for (int q = 0; q < n_queues; ++q) {
    while (!ref[static_cast<std::size_t>(q)].empty()) {
      ASSERT_EQ(pool.pop_front(q), ref[static_cast<std::size_t>(q)].front());
      ref[static_cast<std::size_t>(q)].pop_front();
    }
    EXPECT_TRUE(pool.empty(q));
  }
}

TEST(TaskRingPool, ExactChunkMultiples) {
  // Queues that land exactly on chunk boundaries (the off-by-one zone).
  TaskRingPool pool(1, 0);
  for (int round : {32, 64, 96}) {
    for (int i = 0; i < round; ++i) pool.push_back(0, i);
    EXPECT_EQ(pool.size(0), static_cast<std::size_t>(round));
    for (int i = 0; i < round; ++i) {
      EXPECT_EQ(pool.pop_front(0), i);
    }
    EXPECT_TRUE(pool.empty(0));
  }
  for (int round : {32, 64}) {
    for (int i = 0; i < round; ++i) pool.push_back(0, i);
    for (int i = round - 1; i >= 0; --i) {
      EXPECT_EQ(pool.pop_back(0), i);
    }
    EXPECT_TRUE(pool.empty(0));
  }
}

// --- Cross-scheduler bitwise determinism ---------------------------------

void expect_bitwise_equal(const SimResult& a, const SimResult& b,
                          const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.busy, b.busy);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
  EXPECT_EQ(a.counter_ops, b.counter_ops);
  EXPECT_EQ(a.counter_wait, b.counter_wait);
  EXPECT_EQ(a.steal_wait, b.steal_wait);
  EXPECT_EQ(a.op_retries, b.op_retries);
  EXPECT_EQ(a.tasks_reexecuted, b.tasks_reexecuted);
  EXPECT_EQ(a.net_messages, b.net_messages);
  EXPECT_EQ(a.net_congested, b.net_congested);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.net_link_wait, b.net_link_wait);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a.trace[i].type),
              static_cast<int>(b.trace[i].type));
    EXPECT_EQ(a.trace[i].proc, b.trace[i].proc);
    EXPECT_EQ(a.trace[i].peer, b.trace[i].peer);
    EXPECT_EQ(a.trace[i].task, b.trace[i].task);
    EXPECT_EQ(a.trace[i].start, b.trace[i].start);
    EXPECT_EQ(a.trace[i].end, b.trace[i].end);
  }
}

std::vector<double> scheduler_test_costs(std::size_t n,
                                         std::uint64_t seed = 5) {
  std::vector<double> costs(n);
  Rng rng(seed);
  for (double& c : costs) c = rng.uniform(0.2e-6, 8.0e-6);
  return costs;
}

/// Runs `simulate` under both schedulers on otherwise-identical
/// machines and asserts bitwise-equal results.
template <typename F>
void expect_scheduler_invariant(MachineConfig config, F&& simulate,
                                const std::string& what) {
  config.scheduler = SchedulerKind::kBinaryHeap;
  const SimResult heap = simulate(config);
  config.scheduler = SchedulerKind::kCalendarQueue;
  const SimResult cal = simulate(config);
  EXPECT_GT(heap.events_processed, 0) << what;
  expect_bitwise_equal(heap, cal, what);
}

MachineConfig scheduler_test_machine(int procs, bool trace = true) {
  MachineConfig config;
  config.n_procs = procs;
  config.procs_per_node = 8;
  config.noise_amplitude = 0.1;
  config.record_trace = trace;
  return config;
}

TEST(SchedulerDeterminism, AllModelsLegacyNetwork) {
  const auto costs = scheduler_test_costs(700);
  const MachineConfig config = scheduler_test_machine(48);
  const lb::Assignment block = lb::block_assignment(costs.size(), 48);

  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) { return simulate_counter(m, costs, 1); },
      "counter chunk=1");
  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) { return simulate_counter(m, costs, 8); },
      "counter chunk=8");
  CounterOptions guided;
  guided.chunk = 2;
  guided.policy = ChunkPolicy::kGuided;
  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) {
        return simulate_counter(m, costs, guided);
      },
      "counter guided");
  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) {
        return simulate_hierarchical_counter(m, costs, 32, 4);
      },
      "hierarchical counter");
  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) {
        return simulate_hybrid(m, costs, block, 0.3, 2);
      },
      "hybrid");
  for (VictimPolicy victim : {VictimPolicy::kUniform, VictimPolicy::kRing,
                              VictimPolicy::kNodeFirst}) {
    StealOptions steal;
    steal.victim = victim;
    expect_scheduler_invariant(
        config,
        [&](const MachineConfig& m) {
          return simulate_work_stealing(m, costs, block, steal);
        },
        "work stealing victim=" +
            std::to_string(static_cast<int>(victim)));
  }
}

TEST(SchedulerDeterminism, FaultModels) {
  const auto costs = scheduler_test_costs(500);
  MachineConfig config = scheduler_test_machine(32);
  config.faults.fault_prob = 0.3;
  config.faults.onset_min = 0.0;
  config.faults.onset_max = 20.0e-6;
  config.faults.duration = 10.0e-6;
  config.faults.slowdown_factor = 0.0;  // full stalls with re-execution
  config.faults.drop_prob = 0.1;
  config.faults.outage_start = 5.0e-6;
  config.faults.outage_duration = 5.0e-6;
  const lb::Assignment block = lb::block_assignment(costs.size(), 32);

  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) { return simulate_counter(m, costs, 2); },
      "faulted counter");
  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) {
        return simulate_hierarchical_counter(m, costs, 16, 2);
      },
      "faulted hierarchical");
  expect_scheduler_invariant(
      config,
      [&](const MachineConfig& m) {
        return simulate_work_stealing(m, costs, block);
      },
      "faulted work stealing");
}

TEST(SchedulerDeterminism, ContendedTopologies) {
  const auto costs = scheduler_test_costs(600);
  const lb::Assignment block = lb::block_assignment(costs.size(), 32);
  for (net::TopologyKind topo :
       {net::TopologyKind::kCrossbar, net::TopologyKind::kFatTree,
        net::TopologyKind::kTorus}) {
    for (net::CongestionMode mode : {net::CongestionMode::kPerMessage,
                                     net::CongestionMode::kFlow}) {
      MachineConfig config = scheduler_test_machine(32);
      config.network.topology = topo;
      config.network.congestion = mode;
      config.network.oversubscription = 2;
      config.network.link_bandwidth = 1.0e8;  // slow: congestion matters
      config.network.task_payload_bytes = 4096;
      const std::string what =
          std::string(net::topology_name(topo)) + "/" +
          net::congestion_name(mode);
      expect_scheduler_invariant(
          config,
          [&](const MachineConfig& m) {
            return simulate_counter(m, costs, 2);
          },
          what + " counter");
      expect_scheduler_invariant(
          config,
          [&](const MachineConfig& m) {
            return simulate_work_stealing(m, costs, block);
          },
          what + " work stealing");
    }
  }
}

TEST(SchedulerDeterminism, MultiRoundModels) {
  const auto costs = scheduler_test_costs(400);
  MachineConfig config = scheduler_test_machine(24, /*trace=*/false);
  const lb::Assignment block = lb::block_assignment(costs.size(), 24);

  config.scheduler = SchedulerKind::kBinaryHeap;
  const auto heap_rounds = simulate_retentive(config, costs, block, 3);
  config.scheduler = SchedulerKind::kCalendarQueue;
  const auto cal_rounds = simulate_retentive(config, costs, block, 3);
  ASSERT_EQ(heap_rounds.size(), cal_rounds.size());
  for (std::size_t r = 0; r < heap_rounds.size(); ++r) {
    expect_bitwise_equal(heap_rounds[r], cal_rounds[r],
                         "retentive round " + std::to_string(r));
  }
}

// --- Flow congestion mode ------------------------------------------------

TEST(FlowCongestion, DeterministicAndBounded) {
  const auto costs = scheduler_test_costs(800);
  MachineConfig config = scheduler_test_machine(64, /*trace=*/false);
  config.network.topology = net::TopologyKind::kCrossbar;
  config.network.congestion = net::CongestionMode::kFlow;
  config.network.link_bandwidth = 1.0e8;
  const SimResult a = simulate_counter(config, costs, 1);
  const SimResult b = simulate_counter(config, costs, 1);
  expect_bitwise_equal(a, b, "flow replay");
  EXPECT_TRUE(std::isfinite(a.makespan));
  EXPECT_GT(a.makespan, 0.0);
  // The congested fabric must cost something relative to legacy.
  config.network.topology = net::TopologyKind::kLegacyFlat;
  const SimResult flat = simulate_counter(config, costs, 1);
  EXPECT_GE(a.makespan, flat.makespan);
  EXPECT_GT(a.net_link_wait, 0.0);
}

TEST(FlowCongestion, ParsesAndNamesModes) {
  EXPECT_EQ(net::parse_congestion("per-message"),
            net::CongestionMode::kPerMessage);
  EXPECT_EQ(net::parse_congestion("flow"), net::CongestionMode::kFlow);
  EXPECT_STREQ(net::congestion_name(net::CongestionMode::kFlow), "flow");
  EXPECT_THROW(net::parse_congestion("psychic"), std::invalid_argument);
}

// --- Degenerate machines (P = 1) -----------------------------------------

TEST(DegenerateMachines, SingleProcWorkStealingAllPolicies) {
  // P = 1: there is no victim to pick; the run must terminate and
  // execute everything locally with zero steal traffic. Regression for
  // the rng.below(0) / pick_victim(P-1 = 0) edge.
  const auto costs = scheduler_test_costs(100);
  const lb::Assignment all_zero(costs.size(), 0);
  for (VictimPolicy victim : {VictimPolicy::kUniform, VictimPolicy::kRing,
                              VictimPolicy::kNodeFirst}) {
    for (SchedulerKind kind :
         {SchedulerKind::kBinaryHeap, SchedulerKind::kCalendarQueue}) {
      MachineConfig config;
      config.n_procs = 1;
      config.procs_per_node = 1;
      config.scheduler = kind;
      StealOptions steal;
      steal.victim = victim;
      const SimResult r =
          simulate_work_stealing(config, costs, all_zero, steal);
      EXPECT_EQ(r.tasks_executed[0],
                static_cast<std::int64_t>(costs.size()));
      EXPECT_EQ(r.steals, 0);
      EXPECT_EQ(r.steal_attempts, 0);
      EXPECT_GT(r.makespan, 0.0);
    }
  }
}

TEST(DegenerateMachines, SingleProcCounterFamily) {
  const auto costs = scheduler_test_costs(50);
  MachineConfig config;
  config.n_procs = 1;
  config.procs_per_node = 1;
  const SimResult counter = simulate_counter(config, costs, 1);
  EXPECT_EQ(counter.tasks_executed[0],
            static_cast<std::int64_t>(costs.size()));
  const SimResult hier =
      simulate_hierarchical_counter(config, costs, 8, 2);
  EXPECT_EQ(hier.tasks_executed[0],
            static_cast<std::int64_t>(costs.size()));
  const lb::Assignment all_zero(costs.size(), 0);
  const SimResult hybrid = simulate_hybrid(config, costs, all_zero, 0.5);
  EXPECT_EQ(hybrid.tasks_executed[0],
            static_cast<std::int64_t>(costs.size()));
}

TEST(DegenerateMachines, RngBelowZeroIsIdentityWithoutDraw) {
  Rng a(123);
  Rng b(123);
  EXPECT_EQ(a.below(0), 0u);
  // The guarded call must not have consumed a draw: streams stay equal.
  EXPECT_EQ(a(), b());
}

TEST(DegenerateMachines, OversizedProcCountThrows) {
  MachineConfig config;
  config.n_procs = 1 << 21;  // exceeds the event-key proc field
  const std::vector<double> costs(4, 1.0e-6);
  EXPECT_THROW(simulate_counter(config, costs, 1),
               std::invalid_argument);
}

}  // namespace
