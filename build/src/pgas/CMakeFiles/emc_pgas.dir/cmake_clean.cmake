file(REMOVE_RECURSE
  "CMakeFiles/emc_pgas.dir/global_array.cpp.o"
  "CMakeFiles/emc_pgas.dir/global_array.cpp.o.d"
  "CMakeFiles/emc_pgas.dir/runtime.cpp.o"
  "CMakeFiles/emc_pgas.dir/runtime.cpp.o.d"
  "libemc_pgas.a"
  "libemc_pgas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_pgas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
