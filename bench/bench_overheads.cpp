// EXP-8 — runtime-overhead anatomy vs core count: steal traffic (hits,
// misses, wasted round trips) and counter serialization, quantifying the
// "different system and runtime overheads" the abstract blames for
// limiting optimizations.

#include <iostream>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-8: overhead anatomy vs core count",
      "steal traffic and counter contention grow with P", model);

  Table steal_table({"procs", "steals", "failed", "fail_rate_pct",
                     "steal_wait_ms", "makespan_ms"});
  steal_table.set_precision(3);
  Table counter_table({"procs", "counter_ops", "avg_wait_us",
                       "total_wait_ms", "makespan_ms"});
  counter_table.set_precision(3);

  for (int p : {16, 32, 64, 128, 256, 512, 1024}) {
    sim::MachineConfig machine;
    machine.n_procs = p;

    const auto block = lb::block_assignment(model.task_count(), p);
    const sim::SimResult ws =
        sim::simulate_work_stealing(machine, model.costs, block);
    const double failed =
        static_cast<double>(ws.steal_attempts - ws.steals);
    steal_table.add_row(
        {static_cast<std::int64_t>(p), ws.steals,
         ws.steal_attempts - ws.steals,
         ws.steal_attempts > 0
             ? failed / static_cast<double>(ws.steal_attempts) * 100.0
             : 0.0,
         ws.steal_wait * 1e3, ws.makespan * 1e3});

    const sim::SimResult cn = sim::simulate_counter(machine, model.costs, 4);
    counter_table.add_row(
        {static_cast<std::int64_t>(p), cn.counter_ops,
         cn.counter_wait / static_cast<double>(cn.counter_ops) * 1e6,
         cn.counter_wait * 1e3, cn.makespan * 1e3});
  }
  steal_table.print(std::cout, "work-stealing overhead anatomy");
  std::cout << "\n";
  counter_table.print(std::cout, "dynamic-counter overhead anatomy");
  return 0;
}
