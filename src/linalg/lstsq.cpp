#include "linalg/lstsq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace emc::linalg {

namespace {

/// Solves the dense system a x = b by Gaussian elimination with partial
/// pivoting. Returns false when a pivot falls under `pivot_floor`
/// (numerical rank deficiency); `*bad_col` then names the offending
/// column so the caller can drop it and refit.
bool solve_dense(std::vector<std::vector<double>> a, std::vector<double> b,
                 double pivot_floor, std::vector<double>* x,
                 std::size_t* bad_col) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[piv][col])) piv = r;
    }
    if (std::abs(a[piv][col]) <= pivot_floor) {
      *bad_col = col;
      return false;
    }
    std::swap(a[col], a[piv]);
    std::swap(b[col], b[piv]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  x->assign(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double s = b[r];
    for (std::size_t c = r + 1; c < n; ++c) s -= a[r][c] * (*x)[c];
    (*x)[r] = s / a[r][r];
  }
  return true;
}

void check_shape(const std::vector<std::vector<double>>& rows,
                 const std::vector<double>& targets) {
  if (rows.empty()) throw std::invalid_argument("lstsq: no samples");
  if (rows.size() != targets.size()) {
    throw std::invalid_argument("lstsq: rows/targets size mismatch");
  }
  const std::size_t dim = rows.front().size();
  if (dim == 0) throw std::invalid_argument("lstsq: zero-width design");
  for (const auto& row : rows) {
    if (row.size() != dim) {
      throw std::invalid_argument("lstsq: ragged design matrix");
    }
  }
}

double residual_norm(const std::vector<std::vector<double>>& rows,
                     const std::vector<double>& targets,
                     const std::vector<double>& coef) {
  double ss = 0.0;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    double pred = 0.0;
    for (std::size_t i = 0; i < coef.size(); ++i) {
      pred += rows[s][i] * coef[i];
    }
    const double r = targets[s] - pred;
    ss += r * r;
  }
  return std::sqrt(ss);
}

/// Shared active-set loop. Columns leave the active set when their
/// normal-equations pivot degenerates; under `non_negative` additionally
/// when their solved coefficient is the most negative one. Terminates:
/// every iteration either finishes or shrinks the active set.
LstsqResult active_set_fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           const LstsqOptions& options, bool non_negative) {
  check_shape(rows, targets);
  const std::size_t dim = rows.front().size();

  std::vector<bool> active(dim, true);
  LstsqResult result;
  result.coefficients.assign(dim, 0.0);

  for (;;) {
    std::vector<std::size_t> cols;
    for (std::size_t i = 0; i < dim; ++i) {
      if (active[i]) cols.push_back(i);
    }
    if (cols.empty()) break;  // everything degenerate: all-zero fit

    std::vector<std::vector<double>> ata(cols.size(),
                                         std::vector<double>(cols.size()));
    std::vector<double> atb(cols.size(), 0.0);
    for (std::size_t s = 0; s < rows.size(); ++s) {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        atb[i] += rows[s][cols[i]] * targets[s];
        for (std::size_t j = 0; j < cols.size(); ++j) {
          ata[i][j] += rows[s][cols[i]] * rows[s][cols[j]];
        }
      }
    }
    double scale = 0.0;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      scale = std::max(scale, std::abs(ata[i][i]));
    }

    std::vector<double> sol;
    std::size_t bad = 0;
    if (!solve_dense(std::move(ata), std::move(atb),
                     options.pivot_tol * scale, &sol, &bad)) {
      // Elimination processes columns left to right, so `bad` is the
      // first column the earlier ones fully explain (or an all-zero
      // one). Drop it and refit on the survivors.
      result.dropped.push_back(cols[bad]);
      active[cols[bad]] = false;
      continue;
    }

    std::size_t worst = cols.size();
    if (non_negative) {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        if (sol[i] < 0.0 && (worst == cols.size() || sol[i] < sol[worst])) {
          worst = i;
        }
      }
    }
    if (worst == cols.size()) {
      for (std::size_t i = 0; i < cols.size(); ++i) {
        result.coefficients[cols[i]] = sol[i];
      }
      break;
    }
    result.dropped.push_back(cols[worst]);
    active[cols[worst]] = false;
  }

  std::sort(result.dropped.begin(), result.dropped.end());
  result.residual_norm = residual_norm(rows, targets, result.coefficients);
  return result;
}

}  // namespace

LstsqResult lstsq(const std::vector<std::vector<double>>& rows,
                  const std::vector<double>& targets,
                  const LstsqOptions& options) {
  return active_set_fit(rows, targets, options, /*non_negative=*/false);
}

LstsqResult nnls(const std::vector<std::vector<double>>& rows,
                 const std::vector<double>& targets,
                 const LstsqOptions& options) {
  return active_set_fit(rows, targets, options, /*non_negative=*/true);
}

}  // namespace emc::linalg
