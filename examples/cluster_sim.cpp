// Simulated-cluster explorer: run any execution model on any workload
// with configurable machine parameters (core count, node size, noise,
// latencies) and print the makespan, utilization, and overhead anatomy.
//
//   ./build/examples/cluster_sim --model work-stealing --procs 512
//   ./build/examples/cluster_sim --model counter --chunk 8 --noise 0.2

#include <iostream>

#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace emc;

  std::string molecule_name = "water16";
  std::string model_name = "work-stealing";
  std::int64_t procs = 256;
  std::int64_t procs_per_node = 16;
  std::int64_t chunk = 4;
  std::int64_t iterations = 1;
  double noise = 0.0;
  std::int64_t seed = 1;

  Cli cli("cluster_sim", "Replay an execution model on a simulated cluster");
  cli.add_string("molecule", 'm', "workload molecule", &molecule_name);
  cli.add_string("model", 'x',
                 "execution model: static-<balancer>, counter, "
                 "work-stealing, retentive",
                 &model_name);
  cli.add_int("procs", 'p', "processor count", &procs);
  cli.add_int("node-size", 'n', "processors per node", &procs_per_node);
  cli.add_int("chunk", 'c', "counter chunk size", &chunk);
  cli.add_int("iterations", 'i', "rounds for retentive stealing",
              &iterations);
  cli.add_double("noise", 'z', "core-speed noise amplitude [0,1)", &noise);
  cli.add_int("seed", 's', "simulation seed", &seed);
  if (!cli.parse(argc, argv)) return 1;

  const core::TaskModel model = core::build_task_model(molecule_name);

  core::ExperimentConfig config;
  config.machine.n_procs = static_cast<int>(procs);
  config.machine.procs_per_node = static_cast<int>(procs_per_node);
  config.machine.noise_amplitude = noise;
  config.machine.seed = static_cast<std::uint64_t>(seed);
  config.counter_chunk = chunk;
  config.steal.seed = static_cast<std::uint64_t>(seed);

  std::cout << molecule_name << ": " << model.task_count() << " tasks ("
            << model.total_cost() << " sim-seconds of work) on " << procs
            << " procs, noise " << noise * 100 << "%\n";

  Table table({"metric", "value"});
  table.set_precision(4);
  auto report = [&](const sim::SimResult& r, const std::string& label) {
    std::cout << "== " << label << " ==\n";
    table.add_row({std::string("makespan_ms"), r.makespan * 1e3});
    table.add_row({std::string("utilization_pct"), r.utilization() * 100});
    table.add_row({std::string("steals"), r.steals});
    table.add_row(
        {std::string("failed_steals"), r.steal_attempts - r.steals});
    table.add_row({std::string("counter_ops"), r.counter_ops});
    table.add_row({std::string("counter_wait_ms"), r.counter_wait * 1e3});
    table.add_row({std::string("steal_wait_ms"), r.steal_wait * 1e3});
    table.print(std::cout);
  };

  if (model_name == "counter") {
    report(sim::simulate_counter(config.machine, model.costs, chunk),
           "dynamic counter, chunk " + std::to_string(chunk));
  } else if (model_name == "work-stealing") {
    const auto block = lb::block_assignment(
        model.task_count(), static_cast<int>(procs));
    report(sim::simulate_work_stealing(config.machine, model.costs, block,
                                       config.steal),
           "work stealing");
  } else if (model_name == "retentive") {
    const auto block = lb::block_assignment(
        model.task_count(), static_cast<int>(procs));
    const auto rounds =
        sim::simulate_retentive(config.machine, model.costs, block,
                                static_cast<int>(iterations), config.steal);
    for (std::size_t i = 0; i < rounds.size(); ++i) {
      std::cout << "round " << (i + 1) << ": "
                << rounds[i].makespan * 1e3 << " ms, " << rounds[i].steals
                << " steals\n";
    }
  } else if (model_name.rfind("static-", 0) == 0) {
    const std::string balancer = model_name.substr(7);
    const auto b = core::balance_tasks(model, balancer,
                                       static_cast<int>(procs), config);
    report(sim::simulate_static(config.machine, model.costs, b.assignment),
           "static, balanced by " + balancer + " (" +
               std::to_string(b.balance_seconds * 1e3) + " ms to balance)");
  } else {
    std::cerr << "unknown model '" << model_name << "'\n";
    return 1;
  }
  return 0;
}
