#pragma once

// High-level experiment drivers shared by benches and examples: run a
// task model under every execution model / balancer combination on the
// simulated cluster and report comparable rows.

#include <string>
#include <vector>

#include "core/task_model.hpp"
#include "sim/machine.hpp"
#include "sim/simulators.hpp"

namespace emc::core {

struct ExperimentConfig {
  sim::MachineConfig machine;
  std::int64_t counter_chunk = 4;
  sim::StealOptions steal;
  int locality_window = 1;   ///< semi-matching eligibility radius
  std::uint64_t seed = 1;
};

/// Produces a static assignment of the model's tasks with the named
/// balancer: "block", "cyclic", "lpt", "semi-matching", or "hypergraph".
/// Throws std::invalid_argument for unknown names.
lb::BalanceResult balance_tasks(const TaskModel& model,
                                const std::string& algorithm, int n_procs,
                                const ExperimentConfig& config = {});

/// Names of all balancers balance_tasks accepts.
const std::vector<std::string>& balancer_names();

struct ModelRun {
  std::string name;              ///< execution-model label
  sim::SimResult sim;
  double balance_seconds = 0.0;  ///< inspector/balancer cost, if any
};

/// Runs the standard execution-model lineup on the simulated machine:
/// static-block, static-lpt, static-semimatch, static-hypergraph,
/// counter(chunk), work-stealing (seeded from block).
std::vector<ModelRun> run_all_models(const TaskModel& model,
                                     const ExperimentConfig& config);

}  // namespace emc::core
