file(REMOVE_RECURSE
  "CMakeFiles/test_chem_integrals.dir/test_chem_integrals.cpp.o"
  "CMakeFiles/test_chem_integrals.dir/test_chem_integrals.cpp.o.d"
  "test_chem_integrals"
  "test_chem_integrals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_integrals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
