// EXP-2b (extension) — weak scaling: grow the chemical system together
// with the core count (one water molecule per 8 simulated cores) and
// track per-model efficiency. Complements EXP-2's strong scaling; the
// paper's utilization arguments are really about this regime, where the
// per-core task pool stays roughly constant but the cost *distribution*
// widens with system size.

#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  Table table({"procs", "waters", "tasks", "work_s", "static_lpt_ms",
               "counter_ms", "stealing_ms", "stealing_efficiency"});
  table.set_precision(3);

  std::cout << "##############################################\n"
            << "# EXP-2b: weak scaling (1 water per 8 cores)\n"
            << "# claim: dynamic models hold efficiency as the system and\n"
            << "#        machine grow together\n"
            << "##############################################\n";

  for (int p : {16, 32, 64, 128, 256}) {
    const int waters = p / 8;
    const core::TaskModel model =
        core::build_task_model("water" + std::to_string(waters));

    sim::MachineConfig machine = emc::bench::make_machine(p);

    const auto lpt = lb::lpt_assignment(model.costs, p);
    const auto block = lb::block_assignment(model.task_count(), p);
    const double st = sim::simulate_static(machine, model.costs, lpt).makespan;
    const double cn = sim::simulate_counter(machine, model.costs, 2).makespan;
    const double ws =
        sim::simulate_work_stealing(machine, model.costs, block).makespan;

    const double ideal = model.total_cost() / static_cast<double>(p);
    table.add_row({static_cast<std::int64_t>(p),
                   static_cast<std::int64_t>(waters),
                   static_cast<std::int64_t>(model.task_count()),
                   model.total_cost(), st * 1e3, cn * 1e3, ws * 1e3,
                   ideal / ws});
  }
  table.print(std::cout, "weak scaling (efficiency = ideal/actual)");
  return 0;
}
