#pragma once

// Minimal strict JSON parser used to validate the machine-readable
// artifacts the benches emit (Chrome traces, BENCH_*.json reports).
//
// Strictness is the point: invalid documents (trailing garbage,
// unterminated strings) and — deliberately — the non-finite number
// literals some emitters produce (`nan`, `inf`, `NaN`, `Infinity`, an
// overflowing exponent) are rejected with std::runtime_error, so a
// report containing an unguarded NaN/Inf fails its smoke gate instead
// of silently shipping a file no JSON consumer can read.

#include <map>
#include <string>
#include <vector>

namespace emc::util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole document; throws std::runtime_error on any error,
  /// including non-finite number literals.
  JsonValue parse();

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void skip_ws();
  char peek();
  void expect(char c);
  bool consume_literal(const char* lit);

  JsonValue parse_value();
  std::string parse_string();
  JsonValue parse_number();
  JsonValue parse_array();
  JsonValue parse_object();

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Convenience: parses `text`, returning the document. Throws
/// std::runtime_error on invalid JSON.
JsonValue parse_json(const std::string& text);

}  // namespace emc::util
