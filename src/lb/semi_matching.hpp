#pragma once

// Semi-matching load balancing (the paper's novel technique).
//
// Tasks and processors form a bipartite graph: a task is adjacent to the
// processors eligible to run it (e.g. those owning the data blocks it
// touches). A *semi-matching* assigns every task to exactly one adjacent
// processor; load balancing seeks the semi-matching minimizing the
// processor load vector.
//
// For unit-weight tasks, `optimal_semi_matching` implements the
// alternating-BFS algorithm of Harvey, Ladner, Lovász & Tamir (2003):
// process tasks one at a time, and assign each via an alternating path to
// the least-loaded reachable processor. The result lexicographically
// minimizes the sorted load vector (and hence minimizes both max load and
// sum of squared loads).
//
// For weighted tasks (the Fock-build case) exact optimization is NP-hard,
// so `greedy_semi_matching` (LPT order, least-loaded eligible processor)
// plus `refine_semi_matching` (move/swap local search) is used — this
// pairing is what the paper benchmarks against hypergraph partitioning.

#include <vector>

#include "lb/partition.hpp"

namespace emc::lb {

/// Bipartite eligibility structure: task t may run on any processor in
/// eligible[t]; weights[t] is its cost (use 1.0 for the unit problem).
struct BipartiteTaskGraph {
  std::vector<std::vector<int>> eligible;
  std::vector<double> weights;
  int n_procs = 0;

  std::size_t task_count() const { return eligible.size(); }
  /// Throws std::invalid_argument on empty adjacency lists, size
  /// mismatches, or out-of-range processor ids.
  void validate() const;
};

/// Builds a complete bipartite instance (every task eligible everywhere).
BipartiteTaskGraph make_complete_instance(std::vector<double> weights,
                                          int n_procs);

/// Optimal semi-matching for unit weights (weights are ignored).
Assignment optimal_semi_matching(const BipartiteTaskGraph& g);

/// Greedy weighted semi-matching: tasks in decreasing weight, each to its
/// least-loaded eligible processor.
Assignment greedy_semi_matching(const BipartiteTaskGraph& g);

/// Local-search refinement: relocations and pairwise swaps that reduce
/// the maximum of the affected loads; runs until a fixed point or
/// `max_rounds`. Returns the improved assignment.
Assignment refine_semi_matching(const BipartiteTaskGraph& g,
                                Assignment assignment, int max_rounds = 50);

/// One-call pipeline: greedy + refinement. This is the "semi-matching"
/// balancer the experiments cite.
BalanceResult semi_matching_balance(const BipartiteTaskGraph& g);

}  // namespace emc::lb
