#pragma once

// The execution models under study, as real multithreaded schedulers over
// the PGAS runtime:
//
//   * static       — tasks pre-assigned; no runtime redistribution
//   * counter      — GA-nxtval dynamic chunked self-scheduling
//   * work stealing — per-rank Chase–Lev deques, random victims
//   * retentive WS — iterative work stealing that re-seeds each iteration
//                    with the previous iteration's final task placement
//
// Each scheduler executes the same abstract task list and returns per-rank
// accounting so benches can report utilization and overhead anatomy.

#include <cstdint>
#include <functional>
#include <vector>

#include "lb/partition.hpp"
#include "pgas/runtime.hpp"

namespace emc::exec {

/// Task body: invoked exactly once per task index, on the executing rank.
using TaskBody = std::function<void(std::int64_t task, int rank)>;

struct RankStats {
  std::int64_t tasks_executed = 0;
  double busy_seconds = 0.0;        ///< time inside task bodies
  std::int64_t steal_attempts = 0;
  std::int64_t steals = 0;          ///< successful steals
  std::int64_t counter_ops = 0;
};

struct ExecutionStats {
  double wall_seconds = 0.0;
  std::vector<RankStats> ranks;

  std::int64_t total_tasks() const;
  std::int64_t total_steals() const;
  /// Mean over ranks of busy/wall — the utilization metric of EXP-3.
  double utilization() const;
};

/// Runs tasks under a fixed assignment (assignment[t] = rank).
ExecutionStats run_static(pgas::Runtime& runtime, std::int64_t n_tasks,
                          const lb::Assignment& assignment,
                          const TaskBody& body);

/// Runs tasks via a shared global counter; each grab takes `chunk` tasks.
ExecutionStats run_counter(pgas::Runtime& runtime, std::int64_t n_tasks,
                           std::int64_t chunk, const TaskBody& body);

struct WorkStealingOptions {
  bool steal_half = true;    ///< steal half the victim's queue vs one task
  std::uint64_t seed = 7;    ///< victim-selection RNG seed
};

/// Work stealing from an initial assignment. If `executed_by` is non-null
/// it receives, per task, the rank that ran it (for retentive reuse).
ExecutionStats run_work_stealing(pgas::Runtime& runtime,
                                 std::int64_t n_tasks,
                                 const lb::Assignment& initial,
                                 const TaskBody& body,
                                 const WorkStealingOptions& options = {},
                                 std::vector<int>* executed_by = nullptr);

/// Runs `iterations` rounds of the same task list (an SCF-like iterative
/// kernel). Round 1 starts from `initial`; each later round starts from
/// where the previous round's steals left the tasks. Returns stats per
/// round.
std::vector<ExecutionStats> run_retentive_work_stealing(
    pgas::Runtime& runtime, std::int64_t n_tasks,
    const lb::Assignment& initial, const TaskBody& body, int iterations,
    const WorkStealingOptions& options = {});

}  // namespace emc::exec
