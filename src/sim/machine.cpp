#include "sim/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::sim {

std::vector<double> draw_core_speeds(const MachineConfig& config) {
  std::vector<double> speeds(static_cast<std::size_t>(config.n_procs), 1.0);
  if (config.noise_amplitude <= 0.0) return speeds;
  emc::Rng rng(config.seed ^ 0xc0ffee);
  for (double& s : speeds) {
    s = 1.0 - config.noise_amplitude * rng.uniform();
  }
  return speeds;
}

std::vector<double> utilization_timeline(const SimResult& result,
                                         int n_procs, int bins) {
  if (result.trace.empty()) {
    throw std::invalid_argument(
        "utilization_timeline: empty trace (set record_trace)");
  }
  if (bins < 1 || n_procs < 1) {
    throw std::invalid_argument("utilization_timeline: bad bins/procs");
  }
  const double span = result.makespan;
  const double width = span / static_cast<double>(bins);
  std::vector<double> busy_time(static_cast<std::size_t>(bins), 0.0);

  for (const TaskEvent& ev : result.trace) {
    // Distribute this execution's busy time over the bins it overlaps.
    const int first =
        std::clamp(static_cast<int>(ev.start / width), 0, bins - 1);
    const int last =
        std::clamp(static_cast<int>(ev.end / width), 0, bins - 1);
    for (int b = first; b <= last; ++b) {
      const double lo = std::max(ev.start, width * b);
      const double hi = std::min(ev.end, width * (b + 1));
      if (hi > lo) busy_time[static_cast<std::size_t>(b)] += hi - lo;
    }
  }
  for (double& x : busy_time) {
    x /= width * static_cast<double>(n_procs);
  }
  return busy_time;
}

double SimResult::utilization() const {
  if (busy.empty() || makespan <= 0.0) return 0.0;
  double total = 0.0;
  for (double b : busy) total += b;
  return total / (makespan * static_cast<double>(busy.size()));
}

}  // namespace emc::sim
