// EXP-11 driver: execution-model ranking vs interconnect topology.
//
// The same Hartree-Fock task workload is replayed under every execution
// model (static LPT, shared counter, hierarchical counter, hybrid, work
// stealing) on a sweep of interconnects: the seed's contention-free flat
// model, a crossbar (endpoint contention only), fat-trees at 1:1, 2:1,
// and 4:1 trunk oversubscription, and a 2D torus. Messages are sized —
// control ops carry NetworkConfig::control_bytes, dynamically acquired
// tasks pull their density/Fock stripes (core::mean_task_comm_bytes) —
// and concurrent transfers sharing a link serialize, so hot links
// actually saturate.
//
// The paper-level claim under test: execution-model rankings measured on
// one machine do not transfer to another. On the contention-free flat
// model the dynamic schemes win on balance alone; once trunk links
// oversubscribe, the shared counter's centralized control traffic and
// the larger data motion of dynamic task acquisition are charged to the
// same saturated links, and the counter-family vs work-stealing gap
// moves — the divergence this bench quantifies and EXPERIMENTS.md plots.
//
// Per-link bandwidth defaults to "auto": scaled so one task's payload
// costs half a mean task execution per unit link, which puts the fabric
// in the communication-sensitive regime at any workload size (pin an
// absolute value with --bandwidth for machine-matched studies).
//
// Self-checks (exit nonzero on violation, the ctest smoke gate):
//   1. every (topology, model) run replays bitwise (determinism);
//   2. crossbar with infinite bandwidth reproduces the flat counter
//      makespan bitwise (routing adds only exact +0.0 terms);
//   3. the 2:1 fat-tree shows congestion: nonzero link wait and queued
//      messages on the dynamic models;
//   4. the 2:1 fat-tree shows a nonzero execution-model makespan gap.
//
// Flags:
//   --smoke            tiny workload (water3, P=16, 2 procs/node) for CI
//   --model-procs=P    simulated processors (default 64)
//   --ppn=N            procs per node (default 4 — topology experiments
//                      want many nodes, not the benches' usual 16)
//   --molecule=NAME    workload molecule (default water27)
//   --bandwidth=B      per-link bytes/s; 0 = auto-scale (default)
//   --report=PATH      JSON report output (default BENCH_topology.json)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/task_model.hpp"
#include "lb/simple.hpp"
#include "net/topology.hpp"
#include "sim/simulators.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace {

using namespace emc;
using namespace emc::sim;

struct Options {
  bool smoke = false;
  std::string molecule = "water27";
  int procs = 64;
  int ppn = 4;
  double bandwidth = 0.0;  ///< 0 = auto-scale to the workload
  std::string report_path = "BENCH_topology.json";
};

/// One interconnect in the sweep.
struct TopoPoint {
  std::string name;
  net::NetworkConfig network;
};

std::vector<TopoPoint> topology_sweep(const net::NetworkConfig& base) {
  std::vector<TopoPoint> points;
  {
    TopoPoint p{"flat", base};
    p.network.topology = net::TopologyKind::kLegacyFlat;
    points.push_back(p);
  }
  {
    TopoPoint p{"crossbar", base};
    p.network.topology = net::TopologyKind::kCrossbar;
    points.push_back(p);
  }
  for (int oversub : {1, 2, 4}) {
    TopoPoint p{"fat-tree-" + std::to_string(oversub) + ":1", base};
    p.network.topology = net::TopologyKind::kFatTree;
    p.network.nodes_per_switch = 4;
    p.network.oversubscription = oversub;
    points.push_back(p);
  }
  {
    TopoPoint p{"torus", base};
    p.network.topology = net::TopologyKind::kTorus;  // auto near-square
    points.push_back(p);
  }
  return points;
}

struct RunResult {
  std::string model;
  double makespan = 0.0;
  double slowdown = 1.0;  ///< vs the same model on the flat network
  double utilization = 0.0;
  std::int64_t net_messages = 0;
  std::int64_t net_congested = 0;
  double net_bytes = 0.0;
  double net_link_wait = 0.0;
  double counter_wait = 0.0;
  double steal_wait = 0.0;
  std::int64_t steals = 0;
};

struct ModelDef {
  const char* name;
  bool dynamic = true;  ///< moves work (and therefore data) at runtime
  std::function<SimResult(const MachineConfig&)> run;
};

/// Replays the run and requires bitwise agreement — congestion booking
/// may not introduce nondeterminism.
SimResult run_checked(const ModelDef& def, const MachineConfig& config,
                      bool* deterministic) {
  const SimResult a = def.run(config);
  const SimResult b = def.run(config);
  *deterministic = a.makespan == b.makespan &&
                   a.net_messages == b.net_messages &&
                   a.net_link_wait == b.net_link_wait &&
                   a.steals == b.steals && a.counter_ops == b.counter_ops;
  return a;
}

int run(const Options& opt) {
  core::TaskModelOptions model_opts;
  const core::TaskModel model =
      core::build_task_model(opt.molecule, model_opts);
  emc::bench::print_header(
      "bench_topology (EXP-11)",
      "execution-model rankings do not survive a topology change",
      model);

  const std::span<const double> costs = model.costs;
  double total_cost = 0.0;
  for (double c : costs) total_cost += c;
  const double mean_cost =
      costs.empty() ? 0.0 : total_cost / static_cast<double>(costs.size());

  const std::size_t payload = core::mean_task_comm_bytes(model);
  double bandwidth = opt.bandwidth;
  if (bandwidth <= 0.0) {
    // Auto: one task payload = half a mean task execution per unit link.
    bandwidth = mean_cost > 0.0
                    ? static_cast<double>(payload) / (0.5 * mean_cost)
                    : 4.0e9;
  }

  net::NetworkConfig base_net;
  base_net.link_bandwidth = bandwidth;
  base_net.task_payload_bytes = payload;

  MachineConfig base = emc::bench::make_machine(opt.procs, opt.ppn);
  const int n_nodes =
      (base.n_procs + base.procs_per_node - 1) / base.procs_per_node;
  std::cout << "machine: P=" << base.n_procs << ", "
            << base.procs_per_node << " procs/node, " << n_nodes
            << " nodes\n"
            << "payload: " << payload << " B/task, link bandwidth "
            << bandwidth << " B/s"
            << (opt.bandwidth <= 0.0 ? " (auto-scaled)" : "") << "\n";

  std::vector<double> lpt_costs(costs.begin(), costs.end());
  const lb::Assignment lpt = lb::lpt_assignment(lpt_costs, opt.procs);
  const lb::Assignment block = lb::block_assignment(costs.size(), opt.procs);

  const std::vector<ModelDef> models = {
      {"static", false, [&](const MachineConfig& c) {
         return simulate_static(c, costs, lpt);
       }},
      {"counter", true, [&](const MachineConfig& c) {
         return simulate_counter(c, costs, 4);
       }},
      {"hier", true, [&](const MachineConfig& c) {
         return simulate_hierarchical_counter(c, costs, 32, 4);
       }},
      {"hybrid", true, [&](const MachineConfig& c) {
         return simulate_hybrid(c, costs, lpt, 0.3, 4);
       }},
      {"ws", true, [&](const MachineConfig& c) {
         return simulate_work_stealing(c, costs, block);
       }},
  };

  const std::vector<TopoPoint> sweep = topology_sweep(base_net);
  std::vector<std::vector<RunResult>> table;  // [topology][model]
  bool all_deterministic = true;

  // Featured run for the metrics export: counter on the 2:1 fat-tree.
  util::MetricsRegistry featured_metrics;

  for (const TopoPoint& point : sweep) {
    std::vector<RunResult> row;
    for (const ModelDef& def : models) {
      MachineConfig config = base;
      config.network = point.network;
      if (point.name == "fat-tree-2:1" &&
          std::string(def.name) == "counter") {
        config.metrics = &featured_metrics;
      }
      bool deterministic = false;
      const SimResult r = run_checked(def, config, &deterministic);
      if (!deterministic) {
        std::cerr << "FAIL: " << def.name << " on " << point.name
                  << " is not deterministic across replays\n";
        all_deterministic = false;
      }
      RunResult out;
      out.model = def.name;
      out.makespan = r.makespan;
      out.utilization = r.utilization();
      out.net_messages = r.net_messages;
      out.net_congested = r.net_congested;
      out.net_bytes = r.net_bytes;
      out.net_link_wait = r.net_link_wait;
      out.counter_wait = r.counter_wait;
      out.steal_wait = r.steal_wait;
      out.steals = r.steals;
      row.push_back(out);
    }
    table.push_back(std::move(row));
  }
  for (std::size_t t = 0; t < table.size(); ++t) {
    for (std::size_t m = 0; m < models.size(); ++m) {
      const double flat = table[0][m].makespan;
      table[t][m].slowdown =
          flat > 0.0 ? table[t][m].makespan / flat : 1.0;
    }
  }

  // --- console report ---------------------------------------------------
  std::cout << "\nmakespan slowdown vs same model on flat (x1.00):\n"
            << std::left << std::setw(14) << "  topology";
  for (const ModelDef& def : models) {
    std::cout << std::right << std::setw(10) << def.name;
  }
  std::cout << "\n";
  for (std::size_t t = 0; t < table.size(); ++t) {
    std::cout << std::left << std::setw(14) << ("  " + sweep[t].name);
    for (const RunResult& r : table[t]) {
      std::cout << std::right << std::setw(9) << std::fixed
                << std::setprecision(3) << r.slowdown << "x";
    }
    std::cout << "\n";
  }
  std::cout << "\nlink wait (congestion seconds), dynamic models:\n";
  for (std::size_t t = 0; t < table.size(); ++t) {
    std::cout << "  " << std::left << std::setw(12) << sweep[t].name;
    for (std::size_t m = 0; m < models.size(); ++m) {
      if (!models[m].dynamic) continue;
      std::cout << "  " << models[m].name << "="
                << std::setprecision(6) << table[t][m].net_link_wait;
    }
    std::cout << "\n";
  }

  // Ranking (best model first) on the extremes.
  const auto ranking = [&](std::size_t t) {
    std::vector<std::size_t> order(models.size());
    for (std::size_t m = 0; m < order.size(); ++m) order[m] = m;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return table[t][a].makespan < table[t][b].makespan;
    });
    std::string s;
    for (std::size_t m : order) {
      if (!s.empty()) s += " < ";
      s += models[m].name;
    }
    return s;
  };
  const std::size_t flat_idx = 0;
  std::size_t fat2_idx = 0, fat4_idx = 0;
  for (std::size_t t = 0; t < sweep.size(); ++t) {
    if (sweep[t].name == "fat-tree-2:1") fat2_idx = t;
    if (sweep[t].name == "fat-tree-4:1") fat4_idx = t;
  }
  const std::string rank_flat = ranking(flat_idx);
  const std::string rank_fat2 = ranking(fat2_idx);
  const std::string rank_fat4 = ranking(fat4_idx);
  std::cout << "\nranking on flat:         " << rank_flat
            << "\nranking on fat-tree-2:1: " << rank_fat2
            << "\nranking on fat-tree-4:1: " << rank_fat4 << "\n";

  // --- self-checks ------------------------------------------------------
  // 2. Crossbar at infinite bandwidth adds only exact +0.0 terms to the
  //    counter's send legs, so it must match flat bitwise.
  MachineConfig infbw = base;
  infbw.network = base_net;
  infbw.network.topology = net::TopologyKind::kCrossbar;
  infbw.network.link_bandwidth = 0.0;
  infbw.network.task_payload_bytes = 0;
  const double flat_counter = table[flat_idx][1].makespan;
  const double infbw_counter =
      simulate_counter(infbw, costs, 4).makespan;
  const bool backcompat = infbw_counter == flat_counter;
  if (!backcompat) {
    std::cerr << "FAIL: crossbar @ infinite bandwidth diverged from flat: "
              << std::hexfloat << infbw_counter << " vs " << flat_counter
              << std::defaultfloat << "\n";
  }

  // 3/4. The 2:1 fat-tree must congest and split the models apart.
  bool congested = true;
  double gap_lo = 0.0, gap_hi = 0.0;
  for (std::size_t m = 0; m < models.size(); ++m) {
    const RunResult& r = table[fat2_idx][m];
    if (models[m].dynamic &&
        (r.net_link_wait <= 0.0 || r.net_congested <= 0)) {
      std::cerr << "FAIL: no congestion for " << r.model
                << " on fat-tree-2:1 (link_wait=" << r.net_link_wait
                << ", congested=" << r.net_congested << ")\n";
      congested = false;
    }
    const double mk = r.makespan;
    if (m == 0 || mk < gap_lo) gap_lo = mk;
    if (m == 0 || mk > gap_hi) gap_hi = mk;
  }
  const bool gap_ok = gap_lo > 0.0 && gap_hi / gap_lo > 1.0 + 1e-6;
  if (!gap_ok) {
    std::cerr << "FAIL: no execution-model makespan gap on fat-tree-2:1 ("
              << gap_lo << " .. " << gap_hi << ")\n";
  }
  std::cout << "checks: deterministic=" << (all_deterministic ? "ok" : "FAIL")
            << " flat-backcompat=" << (backcompat ? "ok" : "FAIL")
            << " fat2-congested=" << (congested ? "ok" : "FAIL")
            << " fat2-model-gap=" << (gap_ok ? "ok" : "FAIL") << " (x"
            << std::setprecision(3) << (gap_lo > 0.0 ? gap_hi / gap_lo : 0.0)
            << ")\n";

  // --- JSON artifact ----------------------------------------------------
  std::string featured_json;
  {
    std::ostringstream buf;
    featured_metrics.write_json(buf);
    featured_json = buf.str();
    while (!featured_json.empty() && featured_json.back() == '\n') {
      featured_json.pop_back();
    }
  }
  {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
      return 1;
    }
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_topology",
                               opt.smoke ? "smoke" : "full", 0);
    json.field("bench", "bench_topology");
    json.field("experiment", "EXP-11");
    json.field("molecule", opt.molecule);
    json.field("procs", opt.procs);
    json.field("procs_per_node", base.procs_per_node);
    json.field("nodes", n_nodes);
    json.field("tasks", static_cast<std::int64_t>(model.task_count()));
    json.field("task_payload_bytes",
               static_cast<std::int64_t>(payload));
    json.field("link_bandwidth_bps", bandwidth);
    json.field("bandwidth_auto_scaled", opt.bandwidth <= 0.0);
    json.begin_array("topologies");
    for (std::size_t t = 0; t < sweep.size(); ++t) {
      json.begin_object();
      json.field("topology", sweep[t].name);
      json.field("oversubscription", sweep[t].network.oversubscription);
      json.begin_array("models");
      for (const RunResult& r : table[t]) {
        json.begin_object();
        json.field("model", r.model);
        json.field("makespan_s", r.makespan);
        json.field("slowdown_vs_flat", r.slowdown);
        json.field("utilization", r.utilization);
        json.field("net_messages", r.net_messages);
        json.field("net_congested_messages", r.net_congested);
        json.field("net_bytes", r.net_bytes);
        json.field("net_link_wait_s", r.net_link_wait);
        json.field("counter_wait_s", r.counter_wait);
        json.field("steal_wait_s", r.steal_wait);
        json.field("steals", r.steals);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.begin_object("rankings");
    json.field("flat", rank_flat);
    json.field("fat_tree_2_1", rank_fat2);
    json.field("fat_tree_4_1", rank_fat4);
    json.field("diverged", rank_flat != rank_fat4);
    json.end_object();
    json.begin_object("checks");
    json.field("deterministic", all_deterministic);
    json.field("flat_backcompat_bitwise", backcompat);
    json.field("fat2_congested", congested);
    json.field("fat2_model_gap", gap_ok);
    json.field("fat2_gap_ratio", gap_lo > 0.0 ? gap_hi / gap_lo : 0.0);
    json.end_object();
    json.raw("featured_metrics", featured_json);
    emc::bench::write_run_footer(json);
    json.end_object();
  }

  // Validate the artifact with the strict parser (rejects NaN/Inf) and
  // check the manifest envelope.
  {
    std::ifstream in(opt.report_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const util::JsonValue doc = util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: " << opt.report_path
                << " is invalid JSON: " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << opt.report_path << " (validated)\n";

  if (!all_deterministic || !backcompat || !congested || !gap_ok) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
      opt.molecule = "water3";
      opt.procs = 16;
      opt.ppn = 2;
    } else if (arg.rfind("--model-procs=", 0) == 0) {
      opt.procs = std::stoi(arg.substr(14));
    } else if (arg.rfind("--ppn=", 0) == 0) {
      opt.ppn = std::stoi(arg.substr(6));
    } else if (arg.rfind("--molecule=", 0) == 0) {
      opt.molecule = arg.substr(11);
    } else if (arg.rfind("--bandwidth=", 0) == 0) {
      opt.bandwidth = std::stod(arg.substr(12));
    } else if (arg.rfind("--report=", 0) == 0) {
      opt.report_path = arg.substr(9);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
