// Gating semantics of the bench_compare library: identical reports pass,
// deterministic drift fails, hostware noise warns, structure changes
// (missing cells, renamed keys, NaN guards) fail loudly, and the
// manifest validator rejects malformed envelopes.

#include <gtest/gtest.h>

#include <string>

#include "bench_compare_lib.hpp"
#include "manifest.hpp"
#include "util/json.hpp"

namespace {

using emc::tools::CompareOptions;
using emc::tools::CompareResult;
using emc::tools::compare_reports;
using emc::tools::DeltaStatus;
using emc::util::parse_json;

CompareResult compare(const std::string& base, const std::string& cand,
                      const CompareOptions& opt = {}) {
  return compare_reports(parse_json(base), parse_json(cand), opt);
}

bool has_fail_at(const CompareResult& r, const std::string& path) {
  for (const auto& d : r.deltas) {
    if (d.path == path && d.status == DeltaStatus::kFail) return true;
  }
  return false;
}

TEST(BenchCompare, IdenticalReportsPass) {
  const std::string doc = R"({
    "events": 8704, "makespan_s": 1.25, "wall_ms": 3.7,
    "sweep": [{"model": "ws", "procs": 256, "steals": 17}]
  })";
  const CompareResult r = compare(doc, doc);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.warnings, 0);
  EXPECT_GT(r.compared, 0);
}

TEST(BenchCompare, PerturbedCounterFails) {
  const CompareResult r =
      compare(R"({"events": 8704})", R"({"events": 8705})");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_fail_at(r, "events"));
}

TEST(BenchCompare, DeterministicDoubleDriftFails) {
  const CompareResult r =
      compare(R"({"makespan_s": 1.25})", R"({"makespan_s": 1.26})");
  EXPECT_FALSE(r.ok());
}

TEST(BenchCompare, TinyUlpDriftPasses) {
  // Within abs+rel tolerance: a libm ulp, not a regression.
  const CompareResult r = compare(R"({"makespan_s": 1.25})",
                                  R"({"makespan_s": 1.2500000001})");
  EXPECT_TRUE(r.ok());
}

TEST(BenchCompare, NoisyKeyWarnsInsteadOfFailing) {
  const CompareResult r =
      compare(R"({"wall_ms": 10.0})", R"({"wall_ms": 17.0})");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warnings, 1);
}

TEST(BenchCompare, NoisyKeyWithinBandIsSilent) {
  const CompareResult r =
      compare(R"({"wall_ms": 10.0})", R"({"wall_ms": 12.0})");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warnings, 0);
}

TEST(BenchCompare, StrictNoiseEscalatesToFailure) {
  CompareOptions opt;
  opt.strict_noise = true;
  const CompareResult r =
      compare(R"({"wall_ms": 10.0})", R"({"wall_ms": 17.0})", opt);
  EXPECT_FALSE(r.ok());
}

TEST(BenchCompare, MetricsSubtreeIsAdvisoryEvenForIntegers) {
  // Per-rank runtime counters from the real threaded PGAS runtime are
  // nondeterministic; inside "metrics" even integers only warn.
  const CompareResult r =
      compare(R"({"metrics": {"counters": {"pgas/r1/nxtval_ops": 2}}})",
              R"({"metrics": {"counters": {"pgas/r1/nxtval_ops": 8}}})");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warnings, 1);
}

TEST(BenchCompare, MissingKeyFails) {
  const CompareResult r =
      compare(R"({"events": 1, "steals": 2})", R"({"events": 1})");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_fail_at(r, "steals"));
}

TEST(BenchCompare, RenamedKeyFailsOldAndWarnsNew) {
  const CompareResult r =
      compare(R"({"steals": 2})", R"({"steal_count": 2})");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_fail_at(r, "steals"));
  EXPECT_EQ(r.warnings, 1);  // steal_count is new
}

TEST(BenchCompare, MissingCellFailsByIdentityKey) {
  const std::string base = R"({"sweep": [
    {"model": "ws", "procs": 256, "events": 1},
    {"model": "ws", "procs": 4096, "events": 2}
  ]})";
  const std::string cand = R"({"sweep": [
    {"model": "ws", "procs": 256, "events": 1}
  ]})";
  const CompareResult r = compare(base, cand);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_fail_at(r, "sweep[model=ws,procs=4096]"));
}

TEST(BenchCompare, ReorderedCellsAreNotARegression) {
  const std::string base = R"({"sweep": [
    {"model": "static", "events": 1}, {"model": "ws", "events": 2}
  ]})";
  const std::string cand = R"({"sweep": [
    {"model": "ws", "events": 2}, {"model": "static", "events": 1}
  ]})";
  EXPECT_TRUE(compare(base, cand).ok());
}

TEST(BenchCompare, NullVsValueFailsWithNanGuardNote) {
  // A NaN in the candidate run serializes as null (JsonWriter guard);
  // the diff must fail and name the likely cause.
  const CompareResult r =
      compare(R"({"makespan_s": 1.25})", R"({"makespan_s": null})");
  EXPECT_FALSE(r.ok());
  bool noted = false;
  for (const auto& d : r.deltas) {
    if (d.note.find("non-finite") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(BenchCompare, ManifestProvenanceDiffersFreely) {
  const std::string base = R"({"manifest": {"schema_version": 1,
    "git_sha": "aaa", "hostname": "ci-1"}, "events": 5})";
  const std::string cand = R"({"manifest": {"schema_version": 1,
    "git_sha": "bbb", "hostname": "ci-2"}, "events": 5})";
  const CompareResult r = compare(base, cand);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warnings, 0);
}

TEST(BenchCompare, SchemaVersionMismatchFails) {
  const std::string base =
      R"({"manifest": {"schema_version": 1}, "events": 5})";
  const std::string cand =
      R"({"manifest": {"schema_version": 2}, "events": 5})";
  EXPECT_FALSE(compare(base, cand).ok());
}

TEST(BenchCompare, ProfileSubtreeIsSkipped) {
  const std::string base = R"({"profile": {"spans": [1, 2, 3]}})";
  const std::string cand = R"({"profile": {"spans": []}})";
  const CompareResult r = compare(base, cand);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warnings, 0);
}

TEST(ManifestValidator, AcceptsFullEnvelope) {
  const std::string doc = R"({
    "manifest": {
      "schema_version": 1, "bench": "b", "mode": "smoke", "seed": 1,
      "git_sha": "abc", "git_dirty": false, "compiler": "GNU",
      "compiler_version": "12", "cxx_flags": "-O3",
      "build_type": "Release", "hostname": "h",
      "timestamp_utc": "2026-08-08T00:00:00Z"
    },
    "peak_rss_bytes": 1024
  })";
  EXPECT_EQ(emc::bench::manifest_error(parse_json(doc)), "");
}

TEST(ManifestValidator, RejectsMissingManifest) {
  EXPECT_NE(emc::bench::manifest_error(parse_json(R"({"events": 1})")),
            "");
}

TEST(ManifestValidator, RejectsWrongFieldType) {
  const std::string doc = R"({
    "manifest": {
      "schema_version": "one", "bench": "b", "mode": "smoke", "seed": 1,
      "git_sha": "abc", "git_dirty": false, "compiler": "GNU",
      "compiler_version": "12", "cxx_flags": "-O3",
      "build_type": "Release", "hostname": "h",
      "timestamp_utc": "2026-08-08T00:00:00Z"
    },
    "peak_rss_bytes": 1024
  })";
  const std::string err = emc::bench::manifest_error(parse_json(doc));
  EXPECT_NE(err.find("schema_version"), std::string::npos);
}

TEST(MarkdownReport, ContainsSummaryAndRows) {
  const CompareResult r =
      compare(R"({"events": 1})", R"({"events": 2})");
  const std::string md =
      emc::tools::markdown_report("base.json", "cand.json", r);
  EXPECT_NE(md.find("**FAIL**"), std::string::npos);
  EXPECT_NE(md.find("`events`"), std::string::npos);
  EXPECT_NE(md.find("deterministic counter mismatch"), std::string::npos);
}

}  // namespace
