# Empty dependencies file for emc_lb.
# This may be replaced when dependencies are built.
