
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chem_eri_pairs.cpp" "tests/CMakeFiles/test_chem_eri_pairs.dir/test_chem_eri_pairs.cpp.o" "gcc" "tests/CMakeFiles/test_chem_eri_pairs.dir/test_chem_eri_pairs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/emc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pgas/CMakeFiles/emc_pgas.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/emc_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/emc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/emc_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
