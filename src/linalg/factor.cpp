#include "linalg/factor.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace emc::linalg {

Matrix cholesky(const Matrix& a) {
  if (!a.square()) throw std::invalid_argument("cholesky: not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw std::runtime_error("cholesky: matrix not positive definite");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

LuResult lu_decompose(const Matrix& a, double pivot_tol) {
  if (!a.square()) throw std::invalid_argument("lu_decompose: not square");
  const std::size_t n = a.rows();
  LuResult f;
  f.lu = a;
  f.perm.resize(n);
  std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest |entry| in this column at/below the diagonal.
    std::size_t pivot = col;
    double best = std::abs(f.lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(f.lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < pivot_tol) {
      throw std::runtime_error("lu_decompose: matrix is singular");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(f.lu(col, c), f.lu(pivot, c));
      }
      std::swap(f.perm[col], f.perm[pivot]);
      f.sign = -f.sign;
    }
    const double inv = 1.0 / f.lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = f.lu(r, col) * inv;
      f.lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        f.lu(r, c) -= factor * f.lu(col, c);
      }
    }
  }
  return f;
}

std::vector<double> lu_solve(const LuResult& f, std::span<const double> b) {
  const std::size_t n = f.lu.rows();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");

  // Forward substitution on permuted b (L has implicit unit diagonal).
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[f.perm[i]];
    for (std::size_t j = 0; j < i; ++j) s -= f.lu(i, j) * y[j];
    y[i] = s;
  }
  // Back substitution with U.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= f.lu(ii, j) * x[j];
    x[ii] = s / f.lu(ii, ii);
  }
  return x;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
  return lu_solve(lu_decompose(a), b);
}

double determinant(const Matrix& a) {
  LuResult f = lu_decompose(a);
  double det = static_cast<double>(f.sign);
  for (std::size_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

}  // namespace emc::linalg
