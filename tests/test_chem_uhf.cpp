// UHF tests: closed-shell equivalence with RHF, open-shell references,
// spin contamination accounting, and dissociation behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/scf.hpp"
#include "chem/uhf.hpp"

namespace {

using namespace emc::chem;

TEST(UhfTest, ClosedShellMatchesRhf) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const ScfResult rhf = run_rhf(water, bs);
  const UhfResult uhf = run_uhf(water, bs);
  EXPECT_TRUE(uhf.converged);
  EXPECT_NEAR(uhf.energy, rhf.energy, 1e-7);
  EXPECT_EQ(uhf.n_alpha, 5);
  EXPECT_EQ(uhf.n_beta, 5);
  EXPECT_NEAR(uhf.s_squared, 0.0, 1e-8);  // pure singlet
}

TEST(UhfTest, HydrogenAtomDoublet) {
  Molecule h;
  h.add_atom(1, 0.0, 0.0, 0.0);
  const BasisSet bs = BasisSet::build(h, "sto-3g");
  UhfOptions options;
  options.multiplicity = 2;
  const UhfResult r = run_uhf(h, bs, options);
  EXPECT_TRUE(r.converged);
  // E(H, STO-3G) = -0.46658 Eh (basis-set limit is -0.5).
  EXPECT_NEAR(r.energy, -0.46658, 1e-4);
  EXPECT_EQ(r.n_alpha, 1);
  EXPECT_EQ(r.n_beta, 0);
  // Single electron: exactly S(S+1) = 0.75.
  EXPECT_NEAR(r.s_squared, 0.75, 1e-10);
}

TEST(UhfTest, H2PlusCation) {
  // One-electron bond: UHF is exact within the basis.
  const Molecule h2 = make_h2(2.0);
  const BasisSet bs = BasisSet::build(h2, "sto-3g");
  UhfOptions options;
  options.net_charge = 1;
  options.multiplicity = 2;
  const UhfResult r = run_uhf(h2, bs, options);
  EXPECT_TRUE(r.converged);
  // H2+ @ 2.0 a0 / STO-3G: around -0.55 Eh, bound vs H + H+.
  EXPECT_LT(r.energy, -0.46658);
  EXPECT_GT(r.energy, -0.70);
  EXPECT_NEAR(r.s_squared, 0.75, 1e-10);
}

TEST(UhfTest, TripletH2HasTwoAlphaElectrons) {
  const Molecule h2 = make_h2(2.5);
  const BasisSet bs = BasisSet::build(h2, "sto-3g");
  UhfOptions options;
  options.multiplicity = 3;
  const UhfResult r = run_uhf(h2, bs, options);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.n_alpha, 2);
  EXPECT_EQ(r.n_beta, 0);
  // Pure triplet: S(S+1) = 2.
  EXPECT_NEAR(r.s_squared, 2.0, 1e-10);
  // Triplet H2 is unbound: higher energy than two H atoms.
  EXPECT_GT(r.energy, 2.0 * -0.46658);
}

TEST(UhfTest, StretchedH2SymmetryBreaking) {
  // At 5 a0 the RHF singlet is badly above 2 E(H); UHF with guess mixing
  // must break spin symmetry and land near the dissociation limit.
  const Molecule h2 = make_h2(5.0);
  const BasisSet bs = BasisSet::build(h2, "sto-3g");

  const ScfResult rhf = run_rhf(h2, bs);
  UhfOptions options;
  options.guess_mix = 0.3;
  const UhfResult uhf = run_uhf(h2, bs, options);
  EXPECT_TRUE(uhf.converged);

  const double two_atoms = 2.0 * -0.46658;
  EXPECT_GT(rhf.energy, two_atoms + 0.05);  // RHF dissociation failure
  EXPECT_NEAR(uhf.energy, two_atoms, 5e-3); // UHF fixes it
  // Broken-symmetry singlet is heavily spin contaminated (<S^2> -> 1).
  EXPECT_GT(uhf.s_squared, 0.5);
}

TEST(UhfTest, InconsistentMultiplicityThrows) {
  const Molecule water = make_water();  // 10 electrons
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  UhfOptions options;
  options.multiplicity = 2;  // even electron count cannot be a doublet
  EXPECT_THROW(run_uhf(water, bs, options), std::invalid_argument);
  options.multiplicity = 0;
  EXPECT_THROW(run_uhf(water, bs, options), std::invalid_argument);
}

TEST(UhfTest, OrbitalEnergiesSortedPerSpin) {
  Molecule h;
  h.add_atom(1, 0.0, 0.0, 0.0);
  const BasisSet bs = BasisSet::build(h, "6-31g");
  UhfOptions options;
  options.multiplicity = 2;
  const UhfResult r = run_uhf(h, bs, options);
  for (std::size_t i = 1; i < r.alpha_orbital_energies.size(); ++i) {
    EXPECT_LE(r.alpha_orbital_energies[i - 1],
              r.alpha_orbital_energies[i]);
  }
  // The occupied alpha orbital is bound; beta spectrum exists too.
  EXPECT_LT(r.alpha_orbital_energies[0], 0.0);
  EXPECT_EQ(r.beta_orbital_energies.size(),
            r.alpha_orbital_energies.size());
}

}  // namespace
