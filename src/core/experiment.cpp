#include "core/experiment.hpp"

#include <stdexcept>

#include "lb/hypergraph_partition.hpp"
#include "lb/simple.hpp"
#include "util/timer.hpp"

namespace emc::core {

const std::vector<std::string>& balancer_names() {
  static const std::vector<std::string> names{
      "block", "cyclic", "lpt", "semi-matching", "hypergraph"};
  return names;
}

lb::BalanceResult balance_tasks(const TaskModel& model,
                                const std::string& algorithm, int n_procs,
                                const ExperimentConfig& config) {
  lb::BalanceResult r;
  r.algorithm = algorithm;
  emc::Timer timer;

  if (algorithm == "block") {
    r.assignment = lb::block_assignment(model.task_count(), n_procs);
  } else if (algorithm == "cyclic") {
    r.assignment = lb::cyclic_assignment(model.task_count(), n_procs);
  } else if (algorithm == "lpt") {
    r.assignment = lb::lpt_assignment(model.costs, n_procs);
  } else if (algorithm == "semi-matching") {
    const auto instance =
        make_locality_instance(model, n_procs, config.locality_window);
    return lb::semi_matching_balance(instance);
  } else if (algorithm == "hypergraph") {
    const auto hg = make_task_hypergraph(model);
    return lb::hypergraph_balance(hg, n_procs, config.seed);
  } else {
    throw std::invalid_argument("balance_tasks: unknown algorithm '" +
                                algorithm + "'");
  }
  r.balance_seconds = timer.seconds();
  return r;
}

std::vector<ModelRun> run_all_models(const TaskModel& model,
                                     const ExperimentConfig& config) {
  std::vector<ModelRun> runs;
  const int p = config.machine.n_procs;

  auto add_static = [&](const std::string& balancer) {
    const lb::BalanceResult b = balance_tasks(model, balancer, p, config);
    ModelRun run;
    run.name = "static-" + balancer;
    run.balance_seconds = b.balance_seconds;
    run.sim = sim::simulate_static(config.machine, model.costs, b.assignment);
    runs.push_back(std::move(run));
  };

  add_static("block");
  add_static("lpt");
  add_static("semi-matching");
  add_static("hypergraph");

  {
    ModelRun run;
    run.name = "counter";
    run.sim =
        sim::simulate_counter(config.machine, model.costs, config.counter_chunk);
    runs.push_back(std::move(run));
  }
  {
    ModelRun run;
    run.name = "work-stealing";
    const auto initial = lb::block_assignment(model.task_count(), p);
    run.sim = sim::simulate_work_stealing(config.machine, model.costs,
                                          initial, config.steal);
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace emc::core
