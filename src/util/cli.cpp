#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace emc {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_int(const std::string& name, char short_name,
                  const std::string& help, std::int64_t* target) {
  options_.push_back(Option{
      name, short_name, help, /*takes_value=*/true,
      std::to_string(*target),
      [target](const std::string& v) {
        char* end = nullptr;
        const long long parsed = std::strtoll(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0') return false;
        *target = parsed;
        return true;
      }});
}

void Cli::add_double(const std::string& name, char short_name,
                     const std::string& help, double* target) {
  std::ostringstream def;
  def << *target;
  options_.push_back(Option{
      name, short_name, help, /*takes_value=*/true, def.str(),
      [target](const std::string& v) {
        char* end = nullptr;
        const double parsed = std::strtod(v.c_str(), &end);
        if (end == v.c_str() || *end != '\0') return false;
        *target = parsed;
        return true;
      }});
}

void Cli::add_string(const std::string& name, char short_name,
                     const std::string& help, std::string* target) {
  options_.push_back(Option{name, short_name, help, /*takes_value=*/true,
                            *target, [target](const std::string& v) {
                              *target = v;
                              return true;
                            }});
}

void Cli::add_flag(const std::string& name, char short_name,
                   const std::string& help, bool* target) {
  options_.push_back(Option{name, short_name, help, /*takes_value=*/false,
                            *target ? "true" : "false",
                            [target](const std::string&) {
                              *target = true;
                              return true;
                            }});
}

const Cli::Option* Cli::find(const std::string& name) const {
  for (const auto& o : options_) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

const Cli::Option* Cli::find_short(char c) const {
  for (const auto& o : options_) {
    if (o.short_name == c && c != '\0') return &o;
  }
  return nullptr;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }

    const Option* opt = nullptr;
    std::string inline_value;
    bool has_inline = false;

    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        inline_value = body.substr(eq + 1);
        has_inline = true;
        body = body.substr(0, eq);
      }
      opt = find(body);
    } else if (arg.size() == 2 && arg[0] == '-') {
      opt = find_short(arg[1]);
    }

    if (opt == nullptr) {
      std::cerr << program_ << ": unknown option '" << arg << "'\n"
                << "Try '--help'.\n";
      return false;
    }

    std::string value;
    if (opt->takes_value) {
      if (has_inline) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << program_ << ": option '--" << opt->name
                  << "' requires a value\n";
        return false;
      }
    }
    if (!opt->apply(value)) {
      std::cerr << program_ << ": invalid value '" << value
                << "' for option '--" << opt->name << "'\n";
      return false;
    }
  }
  return true;
}

std::string Cli::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& o : options_) {
    os << "  ";
    if (o.short_name != '\0') {
      os << "-" << o.short_name << ", ";
    } else {
      os << "    ";
    }
    os << "--" << o.name;
    if (o.takes_value) os << " <value>";
    os << "\n        " << o.help << " (default: " << o.default_repr << ")\n";
  }
  os << "  -h, --help\n        show this help\n";
  return os.str();
}

}  // namespace emc
