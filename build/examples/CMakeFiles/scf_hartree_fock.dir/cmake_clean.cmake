file(REMOVE_RECURSE
  "CMakeFiles/scf_hartree_fock.dir/scf_hartree_fock.cpp.o"
  "CMakeFiles/scf_hartree_fock.dir/scf_hartree_fock.cpp.o.d"
  "scf_hartree_fock"
  "scf_hartree_fock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scf_hartree_fock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
