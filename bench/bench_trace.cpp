// Observability driver: records a typed event trace of a simulated
// execution-model run, exports it as Chrome trace-event JSON (openable
// in Perfetto / chrome://tracing), runs the trace analyses (utilization
// timeline, idle-gap/critical-path anatomy, steal provenance), and runs
// a real PGAS Fock build with the metrics registry attached so the
// report carries per-rank get/put/acc op+byte totals, nxtval counts, and
// barrier waits. Everything lands in one JSON report.
//
// The exported Chrome trace is always re-read and validated with the
// strict util/json.hpp parser (which also rejects non-finite number
// literals): the file must parse and every event must carry the
// ph/ts/dur/pid/tid fields the trace viewers require. The process exits
// nonzero if validation fails, which is what the bench_trace_smoke ctest
// gate checks.
//
// Flags:
//   --smoke            tiny workload (water, P=8, 2 ranks) for CI
//   --model=NAME       static | counter | hier | hybrid | ws (default ws)
//   --procs=P          simulated processors (default 64)
//   --ppn=N            procs per node (default min(16, procs))
//   --molecule=NAME    workload molecule (default water27)
//   --measured         measure task costs instead of the analytic model
//   --iterations=N     retentive rounds; >1 merges round traces (default 1)
//   --chunk=N          counter chunk (default 4)
//   --ranks=N          PGAS ranks for the real Fock build (default 4)
//   --trace=PATH       Chrome trace output (default BENCH_trace.chrome.json)
//   --report=PATH      JSON report output (default BENCH_trace.json)

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/distributed_fock.hpp"
#include "core/task_model.hpp"
#include "lb/simple.hpp"
#include "linalg/matrix.hpp"
#include "pgas/runtime.hpp"
#include "sim/simulators.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/profiler.hpp"

namespace {

using namespace emc;
using namespace emc::sim;
using util::JsonValue;

/// Re-reads an exported Chrome trace and checks the structure every
/// viewer relies on: top-level object with a traceEvents array whose
/// entries each carry ph/ts/dur/pid/tid (and a name). Parsing uses the
/// strict util parser, so a trace carrying a raw NaN/Inf literal fails
/// here. Returns the event count; -1 on failure (details on stderr).
std::int64_t validate_chrome_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "FAIL: cannot read " << path << "\n";
    return -1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonValue doc;
  try {
    doc = util::parse_json(text);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << path << " is not valid JSON: " << e.what()
              << "\n";
    return -1;
  }
  if (!doc.has("traceEvents") ||
      doc.object["traceEvents"].kind != JsonValue::Kind::kArray) {
    std::cerr << "FAIL: " << path << " has no traceEvents array\n";
    return -1;
  }
  const auto& events = doc.object["traceEvents"].array;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& ev = events[i];
    for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid"}) {
      if (!ev.has(key)) {
        std::cerr << "FAIL: traceEvents[" << i << "] lacks \"" << key
                  << "\"\n";
        return -1;
      }
    }
  }
  return static_cast<std::int64_t>(events.size());
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
  bool smoke = false;
  std::string model = "ws";
  std::string molecule = "water27";
  int procs = 64;
  int ppn = 0;  ///< 0 = make_machine default of min(16, procs)
  int ranks = 4;
  int iterations = 1;
  std::int64_t chunk = 4;
  bool measured = false;
  std::string trace_path = "BENCH_trace.chrome.json";
  std::string report_path = "BENCH_trace.json";
};

struct SimRun {
  SimResult result;                ///< last (or only) round
  std::vector<TraceEvent> trace;   ///< merged across rounds
  double total_makespan = 0.0;     ///< summed across rounds
};

SimRun run_simulation(const Options& opt,
                      std::span<const double> costs) {
  MachineConfig config = emc::bench::make_machine(opt.procs, opt.ppn);
  config.record_trace = true;
  const auto block = lb::block_assignment(costs.size(), opt.procs);

  SimRun run;
  if (opt.model == "static") {
    run.result = simulate_static(config, costs, block);
  } else if (opt.model == "counter") {
    run.result = simulate_counter(config, costs, opt.chunk);
  } else if (opt.model == "hier") {
    run.result = simulate_hierarchical_counter(config, costs,
                                               opt.chunk * 8, opt.chunk);
  } else if (opt.model == "hybrid") {
    run.result = simulate_hybrid(config, costs, block, 0.3, opt.chunk);
  } else if (opt.model == "ws") {
    if (opt.iterations > 1) {
      const auto rounds =
          simulate_retentive(config, costs, block, opt.iterations);
      run.trace = merge_round_traces(rounds);
      for (const SimResult& r : rounds) run.total_makespan += r.makespan;
      run.result = rounds.back();
      return run;
    }
    run.result = simulate_work_stealing(config, costs, block);
  } else {
    throw std::invalid_argument("unknown --model '" + opt.model + "'");
  }
  run.trace = run.result.trace;
  run.total_makespan = run.result.makespan;
  return run;
}

/// Real (threaded) PGAS Fock builds with the registry attached: two
/// "SCF iterations" against a model density, exercising get/put/acc,
/// nxtval, and barrier instrumentation.
void run_pgas_fock(const Options& opt, util::MetricsRegistry& registry) {
  const std::string molecule = opt.molecule == "water27" ? "water2"
                                                         : opt.molecule;
  core::TaskModelOptions model_opts;
  const core::TaskModel model = core::build_task_model(molecule, model_opts);

  pgas::CommCostModel cost;
  cost.remote_ns = 500;
  cost.counter_ns = 300;
  pgas::Runtime runtime(opt.ranks, cost);

  core::DistributedFockOptions fock_opts;
  fock_opts.model = core::ExecModel::kCounter;  // exercises nxtval
  fock_opts.counter_chunk = 2;
  fock_opts.metrics = &registry;
  core::DistributedFockBuilder builder(model.basis, runtime, fock_opts);

  const auto n = static_cast<std::size_t>(model.basis.function_count());
  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) density(i, i) = 1.0;
  builder.build_g(density);
  builder.build_g(density);  // second SCF iteration, totals accumulate
  // Quiesce collectively so the per-rank barrier instruments fire too.
  runtime.run([](pgas::Context& ctx) { ctx.barrier(); });
  std::cout << "pgas Fock build: " << molecule << ", " << opt.ranks
            << " ranks, " << builder.builds() << " builds, "
            << model.task_count() << " tasks/build\n";
}

int run(const Options& opt) {
  // The tracing bench doubles as the profiler's end-to-end exercise: its
  // report always embeds the span summary (bench_compare skips it).
  util::Profiler::global().set_enabled(true);
  core::TaskModelOptions model_opts;
  model_opts.measure_costs = opt.measured;
  const core::TaskModel model =
      core::build_task_model(opt.molecule, model_opts);
  emc::bench::print_header(
      "bench_trace", "typed event traces + runtime metrics", model);

  // --- Simulated run with trace recording -------------------------------
  const SimRun run = run_simulation(opt, model.costs);
  const std::vector<TraceEvent>& trace = run.trace;
  const TraceSummary summary =
      summarize_trace(trace, opt.procs, run.total_makespan);
  const std::vector<double> timeline =
      utilization_timeline(trace, run.total_makespan, opt.procs, 32);
  const std::vector<std::int64_t> provenance =
      steal_provenance(trace, opt.procs);

  std::cout << "model " << opt.model << ", P=" << opt.procs << ": makespan "
            << run.total_makespan << " s, " << summary.events
            << " events, utilization " << run.result.utilization() << "\n"
            << "critical proc " << summary.critical_proc << ": busy "
            << summary.critical_busy << " s, overhead "
            << summary.critical_overhead << " s, idle "
            << summary.critical_idle << " s\n"
            << "longest idle gap " << summary.longest_idle_gap << " s on proc "
            << summary.longest_idle_proc << "\n";

  {
    std::ofstream out(opt.trace_path);
    if (!out) {
      std::cerr << "FAIL: cannot write " << opt.trace_path << "\n";
      return 1;
    }
    write_chrome_trace(
        out, trace,
        emc::bench::make_machine(opt.procs, opt.ppn).procs_per_node);
  }
  const std::int64_t chrome_events = validate_chrome_trace(opt.trace_path);
  if (chrome_events < 0) return 1;
  std::cout << "wrote " << opt.trace_path << " (" << chrome_events
            << " events, validated)\n";

  // --- Real PGAS Fock build with metrics --------------------------------
  util::MetricsRegistry registry;
  run_pgas_fock(opt, registry);

  // --- Report -----------------------------------------------------------
  std::ofstream out(opt.report_path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
    return 1;
  }
  emc::bench::JsonWriter json(out);
  json.begin_object();
  emc::bench::write_manifest(json, "bench_trace",
                             opt.smoke ? "smoke" : "full", 0);
  json.field("bench", "bench_trace");
  json.field("molecule", opt.molecule);
  json.field("tasks", static_cast<std::int64_t>(model.task_count()));
  json.begin_object("sim");
  json.field("model", opt.model);
  json.field("procs", opt.procs);
  json.field("iterations", opt.iterations);
  json.field("makespan_s", run.total_makespan);
  json.field("utilization", run.result.utilization());
  json.field("steals", run.result.steals);
  json.field("steal_attempts", run.result.steal_attempts);
  json.field("counter_ops", run.result.counter_ops);
  json.begin_object("summary");
  json.field("events", summary.events);
  json.field("critical_proc", summary.critical_proc);
  json.field("critical_busy_s", summary.critical_busy);
  json.field("critical_overhead_s", summary.critical_overhead);
  json.field("critical_idle_s", summary.critical_idle);
  json.field("longest_idle_gap_s", summary.longest_idle_gap);
  json.field("longest_idle_proc", summary.longest_idle_proc);
  json.field("total_busy_s", summary.total_busy);
  json.field("total_overhead_s", summary.total_overhead);
  json.field("total_idle_s", summary.total_idle);
  json.end_object();
  json.begin_array("utilization_timeline");
  for (double u : timeline) json.value(u);
  json.end_array();
  json.begin_array("steal_provenance");  // nonzero (thief, victim) cells
  for (int thief = 0; thief < opt.procs; ++thief) {
    for (int victim = 0; victim < opt.procs; ++victim) {
      const std::int64_t count =
          provenance[static_cast<std::size_t>(thief) *
                         static_cast<std::size_t>(opt.procs) +
                     static_cast<std::size_t>(victim)];
      if (count == 0) continue;
      json.begin_object();
      json.field("thief", thief);
      json.field("victim", victim);
      json.field("count", count);
      json.end_object();
    }
  }
  json.end_array();
  json.end_object();
  json.begin_object("chrome_trace");
  json.field("path", opt.trace_path);
  json.field("events", chrome_events);
  json.field("validated", true);
  json.end_object();
  {
    std::ostringstream metrics_json;
    registry.write_json(metrics_json);
    json.raw("metrics", metrics_json.str());
  }
  emc::bench::write_run_footer(json);
  json.end_object();
  out.close();
  std::cout << "wrote " << opt.report_path << "\n";

  // Self-check: re-parse the report and validate the manifest envelope
  // (the chrome trace was already validated above).
  {
    std::ifstream in(opt.report_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const util::JsonValue doc = util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: " << opt.report_path
                << " is invalid JSON: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
      opt.molecule = "water";
      opt.procs = 8;
      opt.ranks = 2;
    } else if (arg == "--measured") {
      opt.measured = true;
    } else if (arg.rfind("--model=", 0) == 0) {
      opt.model = arg.substr(8);
    } else if (arg.rfind("--molecule=", 0) == 0) {
      opt.molecule = arg.substr(11);
    } else if (arg.rfind("--procs=", 0) == 0) {
      opt.procs = std::stoi(arg.substr(8));
    } else if (arg.rfind("--ppn=", 0) == 0) {
      opt.ppn = std::stoi(arg.substr(6));
    } else if (arg.rfind("--ranks=", 0) == 0) {
      opt.ranks = std::stoi(arg.substr(8));
    } else if (arg.rfind("--iterations=", 0) == 0) {
      opt.iterations = std::stoi(arg.substr(13));
    } else if (arg.rfind("--chunk=", 0) == 0) {
      opt.chunk = std::stoll(arg.substr(8));
    } else if (arg.rfind("--trace=", 0) == 0) {
      opt.trace_path = arg.substr(8);
    } else if (arg.rfind("--report=", 0) == 0) {
      opt.report_path = arg.substr(9);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
