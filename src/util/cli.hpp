#pragma once

// Tiny declarative command-line option parser used by examples and
// benchmark drivers.
//
//   emc::Cli cli("scf_water", "Run RHF on a water cluster");
//   int n = 4;
//   cli.add_int("waters", 'n', "number of water molecules", &n);
//   if (!cli.parse(argc, argv)) return 1;   // prints error / --help
//
// Supported syntaxes: --name value, --name=value, -x value, --flag.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace emc {

class Cli {
 public:
  Cli(std::string program, std::string description);

  void add_int(const std::string& name, char short_name,
               const std::string& help, std::int64_t* target);
  void add_double(const std::string& name, char short_name,
                  const std::string& help, double* target);
  void add_string(const std::string& name, char short_name,
                  const std::string& help, std::string* target);
  void add_flag(const std::string& name, char short_name,
                const std::string& help, bool* target);

  /// Parses argv. Returns false (after printing a message to stderr or the
  /// help text to stdout) if parsing failed or --help was requested.
  bool parse(int argc, const char* const* argv);

  std::string help_text() const;

 private:
  struct Option {
    std::string name;
    char short_name;
    std::string help;
    bool takes_value;
    std::string default_repr;
    std::function<bool(const std::string&)> apply;
  };

  const Option* find(const std::string& name) const;
  const Option* find_short(char c) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace emc
