file(REMOVE_RECURSE
  "CMakeFiles/test_chem_uhf.dir/test_chem_uhf.cpp.o"
  "CMakeFiles/test_chem_uhf.dir/test_chem_uhf.cpp.o.d"
  "test_chem_uhf"
  "test_chem_uhf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_uhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
