// Compare every load balancer on a chosen workload: imbalance, makespan
// on the simulated cluster, hypergraph cut (communication proxy), and
// the balancer's own runtime.
//
//   ./build/examples/loadbalance_compare --molecule water16 --procs 128

#include <iostream>

#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "graph/hypergraph.hpp"
#include "lb/partition.hpp"
#include "sim/simulators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace emc;

  std::string molecule_name = "water8";
  std::string basis_name = "sto-3g";
  std::int64_t procs = 64;
  std::int64_t window = 1;

  Cli cli("loadbalance_compare", "Compare static load balancers");
  cli.add_string("molecule", 'm', "workload molecule", &molecule_name);
  cli.add_string("basis", 'b', "basis set", &basis_name);
  cli.add_int("procs", 'p', "simulated processor count", &procs);
  cli.add_int("window", 'w', "semi-matching locality window", &window);
  if (!cli.parse(argc, argv)) return 1;

  core::TaskModelOptions model_options;
  model_options.basis_name = basis_name;
  const core::TaskModel model =
      core::build_task_model(molecule_name, model_options);
  const graph::Hypergraph hg = core::make_task_hypergraph(model);

  std::cout << molecule_name << "/" << basis_name << ": "
            << model.task_count() << " tasks over " << procs
            << " simulated procs\n";

  core::ExperimentConfig config;
  config.machine.n_procs = static_cast<int>(procs);
  config.locality_window = static_cast<int>(window);

  Table table({"balancer", "imbalance", "sim_makespan_ms", "hg_cut",
               "balance_ms"});
  table.set_precision(3);
  for (const std::string& algo : core::balancer_names()) {
    const lb::BalanceResult r = core::balance_tasks(
        model, algo, static_cast<int>(procs), config);
    const auto sim_result =
        sim::simulate_static(config.machine, model.costs, r.assignment);
    const std::vector<int> part(r.assignment.begin(), r.assignment.end());
    table.add_row({algo,
                   lb::imbalance(model.costs, r.assignment,
                                 static_cast<int>(procs)),
                   sim_result.makespan * 1e3,
                   hg.connectivity_cut(part, static_cast<int>(procs)),
                   r.balance_seconds * 1e3});
  }
  table.print(std::cout, "balancer comparison");
  std::cout << "\nideal makespan (total/procs): "
            << model.total_cost() / static_cast<double>(procs) * 1e3
            << " ms\n";
  return 0;
}
