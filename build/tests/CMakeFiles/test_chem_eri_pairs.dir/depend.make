# Empty dependencies file for test_chem_eri_pairs.
# This may be replaced when dependencies are built.
