// EXP-2 — execution-model comparison across core counts (the paper's
// headline figure): static-block vs static-LPT vs dynamic counter vs
// work stealing on the simulated cluster, with speedup relative to the
// serial execution and the work-stealing-vs-static improvement factor
// (the abstract claims ~50%).

#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-2: execution models vs core count",
      "~50% improvement from work stealing over static scheduling",
      model);

  const double serial = model.total_cost();

  Table table({"procs", "model", "makespan_ms", "speedup", "efficiency",
               "vs_static_block"});
  table.set_precision(3);
  Table summary({"procs", "static_block_ms", "work_stealing_ms",
                 "improvement_pct"});
  summary.set_precision(1);

  for (int p : {16, 32, 64, 128, 256, 512, 1024}) {
    core::ExperimentConfig config;
    config.machine.n_procs = p;
    const auto runs = core::run_all_models(model, config);

    double static_block = 0.0, stealing = 0.0;
    for (const auto& run : runs) {
      if (run.name == "static-block") static_block = run.sim.makespan;
      if (run.name == "work-stealing") stealing = run.sim.makespan;
    }
    for (const auto& run : runs) {
      table.add_row({static_cast<std::int64_t>(p), run.name,
                     run.sim.makespan * 1e3, serial / run.sim.makespan,
                     serial / run.sim.makespan / p,
                     static_block / run.sim.makespan});
    }
    summary.add_row({static_cast<std::int64_t>(p), static_block * 1e3,
                     stealing * 1e3,
                     (static_block / stealing - 1.0) * 100.0});
  }

  table.print(std::cout, "per-model results");
  std::cout << "\n";
  summary.print(std::cout,
                "work stealing vs static-block (paper: ~50% improvement)");
  return 0;
}
