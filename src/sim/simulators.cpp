#include "sim/simulators.hpp"

#include <algorithm>
#include <stdexcept>

#include "lb/simple.hpp"
#include "sim/event_queue.hpp"
#include "sim/task_ring.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"

namespace emc::sim {

namespace {

/// Proc ids are packed into event keys below this many bits of
/// sequence number (see simulate_work_stealing), capping the simulated
/// machine at 2M procs — an order of magnitude past the 100k target.
constexpr int kProcBits = 21;

/// Appends one typed event. Call sites guard on config.record_trace so
/// tracing is zero-cost when disabled.
void record(SimResult& result, TraceEventType type, int proc, double start,
            double end, std::int64_t task = -1, int peer = -1) {
  TraceEvent ev;
  ev.type = type;
  ev.proc = proc;
  ev.peer = peer;
  ev.task = task;
  ev.start = start;
  ev.end = end;
  result.trace.push_back(ev);
}

void check_inputs(const MachineConfig& config, std::span<const double> costs) {
  if (config.n_procs < 1) {
    throw std::invalid_argument("simulate: n_procs < 1");
  }
  if (config.n_procs >= (1 << kProcBits)) {
    throw std::invalid_argument("simulate: n_procs exceeds 2^21");
  }
  if (config.procs_per_node < 1) {
    throw std::invalid_argument("simulate: procs_per_node < 1");
  }
  for (double c : costs) {
    if (c < 0.0) throw std::invalid_argument("simulate: negative task cost");
  }
}

/// Sizes the per-proc accounting and, when tracing is on, pre-reserves
/// the trace from the task count — traced runs append at least one
/// event per task, and reserving up front eliminates the reallocation
/// churn that dominated large traced runs.
void init_result(SimResult& result, const MachineConfig& config,
                 std::size_t n_tasks) {
  result.busy.assign(static_cast<std::size_t>(config.n_procs), 0.0);
  result.tasks_executed.assign(static_cast<std::size_t>(config.n_procs), 0);
  if (config.record_trace) {
    result.trace.reserve(n_tasks + n_tasks / 4 + 64);
  }
}

/// Marks every compiled fault window (and the counter outage, attributed
/// to the counter-home proc 0) in the trace as paired
/// kFaultStart/kFaultEnd instants, so timelines show where the machine
/// was perturbed.
void record_fault_windows(SimResult& result, const MachineConfig& config,
                          const FaultSchedule& faults) {
  if (!config.record_trace || !faults.active()) return;
  for (int p = 0; p < config.n_procs; ++p) {
    const FaultWindow& w = faults.window(p);
    if (!w.exists()) continue;
    record(result, TraceEventType::kFaultStart, p, w.start, w.start);
    record(result, TraceEventType::kFaultEnd, p, w.end, w.end);
  }
  const FaultModel& m = faults.model();
  if (m.outage_start >= 0.0 && m.outage_duration > 0.0) {
    record(result, TraceEventType::kFaultStart, 0, m.outage_start,
           m.outage_start, -1, 0);
    record(result, TraceEventType::kFaultEnd, 0,
           m.outage_start + m.outage_duration,
           m.outage_start + m.outage_duration, -1, 0);
  }
}

/// Executes one task on `proc` starting no earlier than `ready`:
/// dispatch overhead, then `exec` seconds of work replayed through the
/// fault schedule (dilation or lost-work restarts). Accounts busy time
/// as the productive `exec` only, so utilization reflects faults.
/// Returns the finish time.
double run_task(const MachineConfig& config, const FaultSchedule& faults,
                SimResult& result, int proc, std::int64_t task,
                double ready, double exec) {
  const double start = ready + config.task_overhead;
  int restarts = 0;
  double last_restart = start;
  const double done =
      faults.finish_time(proc, start, exec, &restarts, &last_restart);
  const auto pu = static_cast<std::size_t>(proc);
  result.busy[pu] += exec;
  ++result.tasks_executed[pu];
  if (restarts > 0) {
    result.tasks_reexecuted += restarts;
    if (config.record_trace) {
      record(result, TraceEventType::kTaskReexec, proc, start, last_restart,
             task);
    }
  }
  if (config.record_trace) {
    record(result, TraceEventType::kTaskExec, proc,
           restarts > 0 ? last_restart : start, done, task);
  }
  return done;
}

/// Data-home proc of a task under the block-stripe distribution the PGAS
/// layer uses: the proc that owns the density/Fock rows the task reads
/// and writes, and therefore the source of its payload transfer when the
/// task runs elsewhere.
int task_home(std::int64_t task, std::int64_t n_tasks, int n_procs) {
  if (n_tasks <= 0) return 0;
  return static_cast<int>(
      std::min<std::int64_t>(n_procs - 1, task * n_procs / n_tasks));
}

/// Copies the network's accumulated congestion stats into the result
/// and, when the machine carries a metrics registry, exports the run's
/// net/* metrics (per-link occupancy, hottest link, ...).
void finish_net(const MachineConfig& config, SimResult& result,
                const net::NetworkModel& network) {
  const net::NetworkModel::Stats& s = network.stats();
  result.net_messages = s.messages;
  result.net_congested = s.congested_messages;
  result.net_bytes = s.bytes;
  result.net_link_wait = s.link_wait;
  if (config.metrics != nullptr) network.write_metrics(*config.metrics);
}

/// Models the data movement behind a dynamically acquired chunk: tasks
/// [first, first + count) grabbed by `proc` at `ready` pull their
/// density/Fock blocks from the chunk's home stripe as one sized message
/// (task_payload_bytes per task). Returns the time the data is local and
/// execution can start. No-op (returns `ready`) for the legacy model,
/// zero payload, or home-local chunks — so the seed cost structure is
/// untouched unless payload modelling is switched on.
double fetch_task_payload(const MachineConfig& config,
                          net::NetworkModel& network, SimResult& result,
                          int proc, std::int64_t first, std::int64_t count,
                          std::int64_t n_tasks, double ready) {
  if (network.legacy() || config.network.task_payload_bytes == 0 ||
      count <= 0) {
    return ready;
  }
  const int home = task_home(first, n_tasks, config.n_procs);
  if (home == proc) return ready;
  const std::size_t bytes =
      config.network.task_payload_bytes * static_cast<std::size_t>(count);
  // Request travels proc -> home uncongested (it is control-sized); the
  // data message home -> proc is the one that occupies links.
  const double request = ready + network.base_latency(proc, home);
  double wait = 0.0;
  const double arrival = network.send(home, proc, request, bytes, &wait);
  if (config.record_trace) {
    record(result, TraceEventType::kNetTransfer, proc, ready, arrival,
           first, home);
    if (wait > 0.0) {
      record(result, TraceEventType::kLinkWait, proc, request,
             request + wait, first, home);
    }
  }
  return arrival;
}

/// Counter-family events. kIssue pops book the proc's request into the
/// network — pops are globally time-ordered, which keeps link occupancy
/// consistent even though request *arrivals* interleave — and push the
/// matching kArrival. Events are keyed (proc << 1) | kind, so the
/// EventQueue's (time, key) order extends the seed's (arrival, proc)
/// ordering exactly: arrivals are served in the seed order and legacy
/// runs stay bitwise identical.
enum class CounterEv : std::uint8_t { kIssue = 0, kArrival = 1 };

std::uint64_t counter_key(int proc, CounterEv kind) {
  return (static_cast<std::uint64_t>(proc) << 1) |
         static_cast<std::uint64_t>(kind);
}
int counter_proc(std::uint64_t key) { return static_cast<int>(key >> 1); }
CounterEv counter_kind(std::uint64_t key) {
  return static_cast<CounterEv>(key & 1);
}

/// Per-proc retry bookkeeping for dropped one-sided ops.
struct RetryState {
  std::vector<std::uint64_t> op_seq;
  std::vector<int> attempt;

  explicit RetryState(int n_procs)
      : op_seq(static_cast<std::size_t>(n_procs), 0),
        attempt(static_cast<std::size_t>(n_procs), 0) {}

  /// Decides whether the round trip issued by `proc` at `issue` is
  /// dropped. On a drop, records the retry (count, trace event whose
  /// span covers the wasted round trip + backoff) and returns the time
  /// the proc reissues; on success resets the attempt streak and
  /// returns a negative sentinel.
  double resolve(const MachineConfig& config, const FaultSchedule& faults,
                 SimResult& result, int proc, double issue, double rtt,
                 int peer) {
    const auto pu = static_cast<std::size_t>(proc);
    if (faults.drop_op(proc, op_seq[pu], attempt[pu])) {
      const double retry_at = issue + rtt + faults.backoff(attempt[pu]);
      ++attempt[pu];
      ++result.op_retries;
      if (config.record_trace) {
        record(result, TraceEventType::kOpRetry, proc, issue, retry_at, -1,
               peer);
      }
      return retry_at;
    }
    attempt[pu] = 0;
    ++op_seq[pu];
    return -1.0;
  }
};

}  // namespace

SimResult simulate_static(const MachineConfig& config,
                          std::span<const double> costs,
                          const lb::Assignment& assignment) {
  EMC_PROF_SPAN("sim/static");
  check_inputs(config, costs);
  if (assignment.size() != costs.size()) {
    throw std::invalid_argument("simulate_static: assignment size mismatch");
  }
  lb::validate_assignment(assignment, config.n_procs);

  const auto speeds = draw_core_speeds(config);
  const FaultSchedule faults(config);
  SimResult result;
  init_result(result, config, costs.size());
  record_fault_windows(result, config, faults);

  std::vector<double> finish(static_cast<std::size_t>(config.n_procs), 0.0);
  for (std::size_t t = 0; t < costs.size(); ++t) {
    const auto p = static_cast<std::size_t>(assignment[t]);
    const double exec = costs[t] / speeds[p];
    finish[p] = run_task(config, faults, result, static_cast<int>(p),
                         static_cast<std::int64_t>(t), finish[p], exec);
    ++result.events_processed;
  }
  result.makespan = *std::max_element(finish.begin(), finish.end());
  return result;
}

SimResult simulate_counter(const MachineConfig& config,
                           std::span<const double> costs,
                           std::int64_t chunk) {
  CounterOptions options;
  options.chunk = chunk;
  return simulate_counter(config, costs, options);
}

SimResult simulate_counter(const MachineConfig& config,
                           std::span<const double> costs,
                           const CounterOptions& options) {
  EMC_PROF_SPAN("sim/counter");
  check_inputs(config, costs);
  if (options.chunk < 1) {
    throw std::invalid_argument("simulate_counter: chunk < 1");
  }

  const auto speeds = draw_core_speeds(config);
  const FaultSchedule faults(config);
  RetryState retries(config.n_procs);
  const auto n_tasks = static_cast<std::int64_t>(costs.size());
  SimResult result;
  init_result(result, config, costs.size());
  record_fault_windows(result, config, faults);

  // Trapezoid self-scheduling parameters (Tzen & Ni): chunks shrink
  // linearly from `first` to the floor across the expected grab count.
  const std::int64_t tss_first = std::max<std::int64_t>(
      options.chunk, n_tasks / (2 * std::max(config.n_procs, 1)));
  const std::int64_t tss_last = options.chunk;
  const std::int64_t tss_grabs = std::max<std::int64_t>(
      1, 2 * n_tasks / std::max<std::int64_t>(1, tss_first + tss_last));
  const double tss_step =
      tss_grabs > 1 ? static_cast<double>(tss_first - tss_last) /
                          static_cast<double>(tss_grabs - 1)
                    : 0.0;

  std::int64_t grab_index = 0;
  auto next_chunk = [&](std::int64_t remaining) -> std::int64_t {
    switch (options.policy) {
      case ChunkPolicy::kFixed:
        return options.chunk;
      case ChunkPolicy::kGuided:
        return std::max(options.chunk,
                        (remaining + config.n_procs - 1) / config.n_procs);
      case ChunkPolicy::kTrapezoid: {
        const double c = static_cast<double>(tss_first) -
                         tss_step * static_cast<double>(grab_index);
        return std::max(tss_last, static_cast<std::int64_t>(c));
      }
    }
    return options.chunk;
  };

  // The counter lives on proc 0's node; requests are served serially in
  // arrival order. Every active proc has exactly one outstanding event:
  // a kIssue books its request message into the network, the matching
  // kArrival is served by the counter home.
  net::NetworkModel network = make_network(config);
  const std::size_t ctrl = config.network.control_bytes;
  EventQueue events(config.scheduler,
                    static_cast<std::size_t>(config.n_procs));
  std::vector<double> issue_time(static_cast<std::size_t>(config.n_procs),
                                 0.0);
  std::vector<double> issue_wait(issue_time.size(), 0.0);
  for (int p = 0; p < config.n_procs; ++p) {
    events.push(0.0, counter_key(p, CounterEv::kIssue));
  }

  double server_free = 0.0;
  std::int64_t next_task = 0;
  double makespan = 0.0;

  while (!events.empty()) {
    const SimEvent ev = events.pop();
    ++result.events_processed;
    const int p = counter_proc(ev.key);
    const auto pu = static_cast<std::size_t>(p);
    if (counter_kind(ev.key) == CounterEv::kIssue) {
      issue_time[pu] = ev.time;
      const double arrival =
          network.send(p, 0, ev.time, ctrl, &issue_wait[pu]);
      events.push(arrival, counter_key(p, CounterEv::kArrival));
      continue;
    }
    const double issue = issue_time[pu];
    const double retry_at = retries.resolve(
        config, faults, result, p, issue,
        2.0 * network.base_latency(p, 0), 0);
    if (retry_at >= 0.0) {
      // Round trip dropped: the proc times out, backs off, reissues.
      events.push(retry_at, counter_key(p, CounterEv::kIssue));
      continue;
    }
    const double start =
        std::max(faults.outage_release(ev.time), server_free);
    server_free = start + config.counter_service;
    double resp_wait = 0.0;
    const double response = network.send(0, p, server_free, ctrl, &resp_wait);
    ++result.counter_ops;
    result.counter_wait += response - issue;

    const std::int64_t first = next_task;
    if (config.record_trace) {
      record(result, TraceEventType::kCounterOp, p, issue, response,
             first < n_tasks ? first : -1, 0);
      const double waited = issue_wait[pu] + resp_wait;
      if (waited > 0.0) {
        record(result, TraceEventType::kLinkWait, p, issue, issue + waited,
               -1, 0);
      }
    }
    if (first >= n_tasks) {
      // Proc learns the work is exhausted and retires.
      makespan = std::max(makespan, response);
      continue;
    }
    next_task = std::min(n_tasks, first + next_chunk(n_tasks - first));
    ++grab_index;

    double t = fetch_task_payload(config, network, result, p, first,
                                  next_task - first, n_tasks, response);
    for (std::int64_t i = first; i < next_task; ++i) {
      const double exec = costs[static_cast<std::size_t>(i)] / speeds[pu];
      t = run_task(config, faults, result, p, i, t, exec);
    }
    makespan = std::max(makespan, t);
    events.push(t, counter_key(p, CounterEv::kIssue));
  }

  result.makespan = makespan;
  finish_net(config, result, network);
  return result;
}

SimResult simulate_hierarchical_counter(const MachineConfig& config,
                                        std::span<const double> costs,
                                        std::int64_t node_chunk,
                                        std::int64_t proc_chunk) {
  EMC_PROF_SPAN("sim/hier_counter");
  check_inputs(config, costs);
  if (node_chunk < 1 || proc_chunk < 1) {
    throw std::invalid_argument(
        "simulate_hierarchical_counter: chunk < 1");
  }

  const auto speeds = draw_core_speeds(config);
  const FaultSchedule faults(config);
  RetryState retries(config.n_procs);
  const auto n_tasks = static_cast<std::int64_t>(costs.size());
  const int n_nodes =
      (config.n_procs + config.procs_per_node - 1) / config.procs_per_node;
  SimResult result;
  init_result(result, config, costs.size());
  record_fault_windows(result, config, faults);

  // Per-node proxy counter state: [range_next, range_end) plus server
  // availability. The global counter (proc 0's node) hands out
  // node_chunk ranges; exhausted nodes stop refilling when the global
  // range is dry.
  std::vector<std::int64_t> node_next(static_cast<std::size_t>(n_nodes), 0);
  std::vector<std::int64_t> node_end(static_cast<std::size_t>(n_nodes), 0);
  std::vector<double> node_free(static_cast<std::size_t>(n_nodes), 0.0);
  double global_free = 0.0;
  std::int64_t global_next = 0;

  net::NetworkModel network = make_network(config);
  const std::size_t ctrl = config.network.control_bytes;
  EventQueue events(config.scheduler,
                    static_cast<std::size_t>(config.n_procs));
  std::vector<double> issue_time(static_cast<std::size_t>(config.n_procs),
                                 0.0);
  std::vector<double> issue_wait(issue_time.size(), 0.0);
  for (int p = 0; p < config.n_procs; ++p) {
    events.push(0.0, counter_key(p, CounterEv::kIssue));
  }

  double makespan = 0.0;
  while (!events.empty()) {
    const SimEvent ev = events.pop();
    ++result.events_processed;
    const int p = counter_proc(ev.key);
    const auto pu = static_cast<std::size_t>(p);
    const int node = config.node_of(p);
    const auto nu = static_cast<std::size_t>(node);
    const int leader = node * config.procs_per_node;

    if (counter_kind(ev.key) == CounterEv::kIssue) {
      issue_time[pu] = ev.time;
      const double arrival =
          network.send(p, leader, ev.time, ctrl, &issue_wait[pu]);
      events.push(arrival, counter_key(p, CounterEv::kArrival));
      continue;
    }
    const double issue = issue_time[pu];
    const double retry_at = retries.resolve(
        config, faults, result, p, issue,
        2.0 * network.base_latency(p, leader), leader);
    if (retry_at >= 0.0) {
      events.push(retry_at, counter_key(p, CounterEv::kIssue));
      continue;
    }

    double t = std::max(ev.time, node_free[nu]);
    t += config.counter_service;  // node-counter serialization
    ++result.counter_ops;
    double refill_wait = 0.0;

    if (node_next[nu] >= node_end[nu]) {
      // Refill from the global counter (leader -> proc 0 round trip);
      // an outage at the global home holds the refill until it ends.
      if (global_next < n_tasks) {
        double up_wait = 0.0;
        const double up = network.send(leader, 0, t, ctrl, &up_wait);
        double g = std::max(faults.outage_release(up), global_free);
        g += config.counter_service;
        global_free = g;
        ++result.counter_ops;
        node_next[nu] = global_next;
        global_next = std::min(n_tasks, global_next + node_chunk);
        node_end[nu] = global_next;
        double down_wait = 0.0;
        t = network.send(0, leader, g, ctrl, &down_wait);
        refill_wait = up_wait + down_wait;
      }
    }
    node_free[nu] = std::max(node_free[nu], t);

    double resp_wait = 0.0;
    const double response = network.send(leader, p, t, ctrl, &resp_wait);
    result.counter_wait += response - issue;

    const bool dry = node_next[nu] >= node_end[nu];
    if (config.record_trace) {
      record(result, TraceEventType::kCounterOp, p, issue, response,
             dry ? -1 : node_next[nu], leader);
      const double waited = issue_wait[pu] + refill_wait + resp_wait;
      if (waited > 0.0) {
        record(result, TraceEventType::kLinkWait, p, issue, issue + waited,
               -1, leader);
      }
    }
    if (dry) {
      // Node dry and global dry: retire.
      makespan = std::max(makespan, response);
      continue;
    }
    const std::int64_t first = node_next[nu];
    const std::int64_t last =
        std::min(node_end[nu], first + proc_chunk);
    node_next[nu] = last;

    double done = fetch_task_payload(config, network, result, p, first,
                                     last - first, n_tasks, response);
    for (std::int64_t i = first; i < last; ++i) {
      const double exec = costs[static_cast<std::size_t>(i)] / speeds[pu];
      done = run_task(config, faults, result, p, i, done, exec);
    }
    makespan = std::max(makespan, done);
    events.push(done, counter_key(p, CounterEv::kIssue));
  }

  result.makespan = makespan;
  finish_net(config, result, network);
  return result;
}

SimResult simulate_hybrid(const MachineConfig& config,
                          std::span<const double> costs,
                          const lb::Assignment& assignment,
                          double dynamic_fraction, std::int64_t chunk) {
  EMC_PROF_SPAN("sim/hybrid");
  check_inputs(config, costs);
  if (assignment.size() != costs.size()) {
    throw std::invalid_argument("simulate_hybrid: assignment mismatch");
  }
  if (dynamic_fraction < 0.0 || dynamic_fraction > 1.0) {
    throw std::invalid_argument(
        "simulate_hybrid: dynamic_fraction outside [0,1]");
  }
  lb::validate_assignment(assignment, config.n_procs);

  // Split point: the task index after which the remaining *cost* is the
  // requested dynamic fraction of the total.
  double total = 0.0;
  for (double c : costs) total += c;
  std::int64_t split = static_cast<std::int64_t>(costs.size());
  double tail = 0.0;
  while (split > 0 && tail < dynamic_fraction * total) {
    tail += costs[static_cast<std::size_t>(split - 1)];
    --split;
  }

  const auto speeds = draw_core_speeds(config);
  const FaultSchedule faults(config);
  RetryState retries(config.n_procs);
  SimResult result;
  init_result(result, config, costs.size());
  record_fault_windows(result, config, faults);

  // Phase 1: static prefix.
  std::vector<double> finish(static_cast<std::size_t>(config.n_procs), 0.0);
  for (std::int64_t i = 0; i < split; ++i) {
    const auto pu =
        static_cast<std::size_t>(assignment[static_cast<std::size_t>(i)]);
    const double exec = costs[static_cast<std::size_t>(i)] / speeds[pu];
    finish[pu] = run_task(config, faults, result, static_cast<int>(pu), i,
                          finish[pu], exec);
    ++result.events_processed;
  }

  // Phase 2: counter-scheduled tail; procs join as they finish.
  net::NetworkModel network = make_network(config);
  const std::size_t ctrl = config.network.control_bytes;
  EventQueue events(config.scheduler,
                    static_cast<std::size_t>(config.n_procs));
  std::vector<double> issue_time(static_cast<std::size_t>(config.n_procs),
                                 0.0);
  std::vector<double> issue_wait(issue_time.size(), 0.0);
  for (int p = 0; p < config.n_procs; ++p) {
    events.push(finish[static_cast<std::size_t>(p)],
                counter_key(p, CounterEv::kIssue));
  }
  double server_free = 0.0;
  std::int64_t next_task = split;
  const auto n_tasks = static_cast<std::int64_t>(costs.size());
  double makespan = 0.0;
  for (double f : finish) makespan = std::max(makespan, f);

  while (!events.empty()) {
    const SimEvent ev = events.pop();
    ++result.events_processed;
    const int p = counter_proc(ev.key);
    const auto pu = static_cast<std::size_t>(p);
    if (counter_kind(ev.key) == CounterEv::kIssue) {
      issue_time[pu] = ev.time;
      const double arrival =
          network.send(p, 0, ev.time, ctrl, &issue_wait[pu]);
      events.push(arrival, counter_key(p, CounterEv::kArrival));
      continue;
    }
    const double issue = issue_time[pu];
    const double retry_at = retries.resolve(
        config, faults, result, p, issue,
        2.0 * network.base_latency(p, 0), 0);
    if (retry_at >= 0.0) {
      events.push(retry_at, counter_key(p, CounterEv::kIssue));
      continue;
    }
    const double start =
        std::max(faults.outage_release(ev.time), server_free);
    server_free = start + config.counter_service;
    double resp_wait = 0.0;
    const double response = network.send(0, p, server_free, ctrl, &resp_wait);
    ++result.counter_ops;
    result.counter_wait += response - issue;

    const std::int64_t first = next_task;
    if (config.record_trace) {
      record(result, TraceEventType::kCounterOp, p, issue, response,
             first < n_tasks ? first : -1, 0);
      const double waited = issue_wait[pu] + resp_wait;
      if (waited > 0.0) {
        record(result, TraceEventType::kLinkWait, p, issue, issue + waited,
               -1, 0);
      }
    }
    if (first >= n_tasks) {
      makespan = std::max(makespan, response);
      continue;
    }
    next_task = std::min(n_tasks, first + chunk);

    double t = fetch_task_payload(config, network, result, p, first,
                                  next_task - first, n_tasks, response);
    for (std::int64_t i = first; i < next_task; ++i) {
      const double exec = costs[static_cast<std::size_t>(i)] / speeds[pu];
      t = run_task(config, faults, result, p, i, t, exec);
    }
    makespan = std::max(makespan, t);
    events.push(t, counter_key(p, CounterEv::kIssue));
  }

  result.makespan = makespan;
  finish_net(config, result, network);
  return result;
}

SimResult simulate_work_stealing(const MachineConfig& config,
                                 std::span<const double> costs,
                                 const lb::Assignment& initial,
                                 const StealOptions& options,
                                 std::vector<int>* executed_by) {
  EMC_PROF_SPAN("sim/work_stealing");
  check_inputs(config, costs);
  if (initial.size() != costs.size()) {
    throw std::invalid_argument(
        "simulate_work_stealing: assignment size mismatch");
  }
  lb::validate_assignment(initial, config.n_procs);

  const auto speeds = draw_core_speeds(config);
  const FaultSchedule faults(config);
  RetryState retries(config.n_procs);
  net::NetworkModel network = make_network(config);
  const std::size_t ctrl = config.network.control_bytes;
  const auto n_procs = static_cast<std::size_t>(config.n_procs);
  SimResult result;
  init_result(result, config, costs.size());
  record_fault_windows(result, config, faults);
  if (executed_by != nullptr) {
    executed_by->assign(costs.size(), -1);
  }

  // Per-proc LIFO queues (pooled chunked rings); thieves take from the
  // front (oldest tasks).
  TaskRingPool queues(config.n_procs,
                      static_cast<std::int64_t>(costs.size()));
  for (std::size_t t = 0; t < initial.size(); ++t) {
    queues.push_back(initial[t], static_cast<std::int64_t>(t));
  }
  std::size_t total_queued = costs.size();

  // Events are keyed by a monotone sequence number packed above the proc
  // id: the (time, seq) order is the seed's deterministic tie-break, and
  // the proc rides along in the low bits.
  EventQueue events(config.scheduler, n_procs);
  std::uint64_t seq = 0;
  auto event_key = [](std::uint64_t s, int proc) {
    return (s << kProcBits) | static_cast<std::uint64_t>(proc);
  };
  for (int p = 0; p < config.n_procs; ++p) {
    events.push(0.0, event_key(seq++, p));
  }

  emc::Rng rng(options.seed);
  double makespan = 0.0;
  // Per-proc state for the non-uniform victim policies.
  std::vector<std::uint64_t> attempt_count(n_procs, 0);

  auto pick_victim = [&](int thief) -> int {
    if (config.n_procs < 2) return thief;  // degenerate single-proc run
    switch (options.victim) {
      case VictimPolicy::kUniform: {
        const int raw = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(config.n_procs - 1)));
        return raw >= thief ? raw + 1 : raw;
      }
      case VictimPolicy::kRing: {
        const auto tu = static_cast<std::size_t>(thief);
        const int offset =
            1 + static_cast<int>(attempt_count[tu]++ %
                                 static_cast<std::uint64_t>(
                                     config.n_procs - 1));
        return (thief + offset) % config.n_procs;
      }
      case VictimPolicy::kNodeFirst: {
        const auto tu = static_cast<std::size_t>(thief);
        const int node = config.node_of(thief);
        const int node_first = node * config.procs_per_node;
        const int node_last =
            std::min(config.n_procs, node_first + config.procs_per_node);
        const int node_size = node_last - node_first;
        // Alternate: even attempts stay on-node (when possible), odd
        // attempts go anywhere — local theft is cheap, remote theft
        // keeps progress when the node is dry.
        const bool local = (attempt_count[tu]++ % 2 == 0) && node_size > 1;
        if (local) {
          const int raw = node_first + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(node_size - 1)));
          return raw >= thief ? raw + 1 : raw;
        }
        const int raw = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(config.n_procs - 1)));
        return raw >= thief ? raw + 1 : raw;
      }
    }
    return thief;
  };

  auto execute = [&](int p, std::int64_t task, double start) {
    const auto pu = static_cast<std::size_t>(p);
    const double exec = costs[static_cast<std::size_t>(task)] / speeds[pu];
    if (executed_by != nullptr) {
      (*executed_by)[static_cast<std::size_t>(task)] = p;
    }
    const double done =
        run_task(config, faults, result, p, task, start, exec);
    makespan = std::max(makespan, done);
    events.push(done, event_key(seq++, p));
  };

  while (!events.empty()) {
    const SimEvent ev = events.pop();
    ++result.events_processed;
    const int proc = static_cast<int>(ev.key & ((1u << kProcBits) - 1));

    if (!queues.empty(proc)) {
      const std::int64_t task = queues.pop_back(proc);
      --total_queued;
      execute(proc, task, ev.time);
      continue;
    }
    if (total_queued == 0) continue;  // park: nothing left to steal
    if (config.n_procs == 1) continue;

    // Steal attempt at a policy-selected victim.
    const int victim = pick_victim(proc);
    const double rtt = 2.0 * network.base_latency(proc, victim);
    const double retry_at = retries.resolve(config, faults, result, proc,
                                            ev.time, rtt, victim);
    if (retry_at >= 0.0) {
      // Steal request dropped in flight: back off and try again.
      events.push(retry_at, event_key(seq++, proc));
      continue;
    }
    ++result.steal_attempts;

    if (queues.empty(victim)) {
      double wait = 0.0;
      const double response =
          network.round_trip(proc, victim, ev.time, ctrl, ctrl, &wait);
      result.steal_wait += response - ev.time;
      if (config.record_trace) {
        record(result, TraceEventType::kStealFail, proc, ev.time,
               response, -1, victim);
        if (wait > 0.0) {
          record(result, TraceEventType::kLinkWait, proc, ev.time,
                 ev.time + wait, -1, victim);
        }
      }
      events.push(response + config.steal_fail_retry,
                  event_key(seq++, proc));
      continue;
    }

    ++result.steals;
    const std::int64_t task = queues.pop_front(victim);
    --total_queued;
    std::size_t migrated = 0;
    if (options.steal_half) {
      // Migrate up to half of the victim's remaining queue.
      std::size_t extra = queues.size(victim) / 2;
      migrated = extra;
      while (extra-- > 0) {
        queues.push_back(proc, queues.pop_front(victim));
      }
    }
    // The response carries the stolen task(s): control header plus one
    // payload per migrated task (zero under the legacy model).
    const std::size_t resp_bytes =
        ctrl + (1 + migrated) * config.network.task_payload_bytes;
    double wait = 0.0;
    const double response = network.round_trip(proc, victim, ev.time,
                                               ctrl, resp_bytes, &wait);
    result.steal_wait += response - ev.time;
    if (config.record_trace) {
      record(result, TraceEventType::kStealSuccess, proc, ev.time,
             response, task, victim);
      if (wait > 0.0) {
        record(result, TraceEventType::kLinkWait, proc, ev.time,
               ev.time + wait, task, victim);
      }
    }
    execute(proc, task, response);
  }

  result.makespan = makespan;
  finish_net(config, result, network);
  return result;
}

std::vector<SimResult> simulate_retentive(const MachineConfig& config,
                                          std::span<const double> costs,
                                          const lb::Assignment& initial,
                                          int iterations,
                                          const StealOptions& options) {
  EMC_PROF_SPAN("sim/retentive");
  std::vector<SimResult> rounds;
  lb::Assignment current = initial;
  std::vector<int> executed_by;
  for (int round = 0; round < iterations; ++round) {
    StealOptions round_options = options;
    round_options.seed = options.seed + static_cast<std::uint64_t>(round);
    rounds.push_back(simulate_work_stealing(config, costs, current,
                                            round_options, &executed_by));
    current.assign(executed_by.begin(), executed_by.end());
  }
  return rounds;
}

std::vector<SimResult> simulate_persistence(
    const MachineConfig& config, std::span<const double> costs,
    const lb::Assignment& initial, int iterations,
    double rebalance_cost_seconds) {
  EMC_PROF_SPAN("sim/persistence");
  if (rebalance_cost_seconds < 0.0) {
    throw std::invalid_argument(
        "simulate_persistence: negative rebalance cost");
  }
  std::vector<SimResult> rounds;
  if (iterations < 1) return rounds;

  rounds.push_back(simulate_static(config, costs, initial));
  if (iterations == 1) return rounds;

  // After round 1 the true task costs are known; LPT over them is the
  // persistence-based static assignment used for every later round.
  const lb::Assignment balanced =
      lb::lpt_assignment(costs, config.n_procs);
  for (int round = 1; round < iterations; ++round) {
    SimResult r = simulate_static(config, costs, balanced);
    r.makespan += rebalance_cost_seconds;
    rounds.push_back(std::move(r));
  }
  return rounds;
}

}  // namespace emc::sim
