// Unit tests for the shared least-squares solvers (linalg/lstsq.hpp):
// synthetic recovery, rank-deficient and zero columns, the NNLS
// active-set elimination, and bitwise determinism.

#include "linalg/lstsq.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace {

using emc::linalg::lstsq;
using emc::linalg::LstsqResult;
using emc::linalg::nnls;

// Small deterministic LCG so the synthetic matrices need no <random>.
double next_uniform(std::uint64_t& state) {
  state = state * 6364136223846793005ULL + 1442695040888963407ULL;
  return static_cast<double>(state >> 11) /
         static_cast<double>(1ULL << 53);
}

std::vector<std::vector<double>> random_rows(std::size_t n, std::size_t k,
                                             std::uint64_t seed) {
  std::uint64_t state = seed;
  std::vector<std::vector<double>> rows(n, std::vector<double>(k));
  for (auto& row : rows) {
    for (double& x : row) x = 0.5 + next_uniform(state);
  }
  return rows;
}

std::vector<double> matvec(const std::vector<std::vector<double>>& rows,
                          const std::vector<double>& x) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    double dot = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) dot += row[j] * x[j];
    out.push_back(dot);
  }
  return out;
}

TEST(Lstsq, RecoversExactSolution) {
  const auto rows = random_rows(24, 4, 7);
  const std::vector<double> truth{1.5, -2.0, 0.25, 3.0};
  const LstsqResult fit = lstsq(rows, matvec(rows, truth));
  ASSERT_EQ(fit.coefficients.size(), truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j) {
    EXPECT_NEAR(fit.coefficients[j], truth[j], 1e-9);
  }
  EXPECT_TRUE(fit.dropped.empty());
  EXPECT_LT(fit.residual_norm, 1e-9);
}

TEST(Lstsq, NnlsRecoversNonNegativeSolution) {
  const auto rows = random_rows(30, 5, 11);
  const std::vector<double> truth{0.5, 0.0, 2.0, 1e-3, 4.0};
  const LstsqResult fit = nnls(rows, matvec(rows, truth));
  ASSERT_EQ(fit.coefficients.size(), truth.size());
  for (std::size_t j = 0; j < truth.size(); ++j) {
    EXPECT_NEAR(fit.coefficients[j], truth[j], 1e-8);
  }
}

TEST(Lstsq, NnlsClampsNegativeComponentToZero) {
  // The unconstrained optimum has a negative weight on column 1; NNLS
  // must eliminate it, keep the survivors non-negative, and fit at
  // least as well as forcing every column to zero.
  const auto rows = random_rows(40, 3, 13);
  const std::vector<double> truth{2.0, -0.2, 1.5};
  const auto targets = matvec(rows, truth);
  const LstsqResult fit = nnls(rows, targets);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_EQ(fit.coefficients[1], 0.0);
  ASSERT_EQ(fit.dropped.size(), 1u);
  EXPECT_EQ(fit.dropped[0], 1u);
  for (const double c : fit.coefficients) EXPECT_GE(c, 0.0);
  EXPECT_GT(fit.residual_norm, 0.0);
}

TEST(Lstsq, DropsDuplicatedColumn) {
  // Column 2 duplicates column 0: AᵀA is singular. One of the pair is
  // dropped, its coefficient is exactly 0, and the fit still
  // reproduces the targets (the weight lands on the survivor).
  auto rows = random_rows(20, 2, 17);
  for (auto& row : rows) row.push_back(row[0]);
  const std::vector<double> truth{1.0, 2.0, 3.0};
  const auto targets = matvec(rows, truth);
  const LstsqResult fit = lstsq(rows, targets);
  ASSERT_EQ(fit.dropped.size(), 1u);
  EXPECT_EQ(fit.coefficients[fit.dropped[0]], 0.0);
  const auto predicted = matvec(rows, fit.coefficients);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(predicted[i], targets[i], 1e-8);
  }
}

TEST(Lstsq, DropsZeroColumn) {
  auto rows = random_rows(16, 2, 19);
  for (auto& row : rows) row.insert(row.begin() + 1, 0.0);
  const std::vector<double> truth{1.25, 0.0, 0.75};
  const LstsqResult fit = nnls(rows, matvec(rows, truth));
  ASSERT_EQ(fit.dropped.size(), 1u);
  EXPECT_EQ(fit.dropped[0], 1u);
  EXPECT_EQ(fit.coefficients[1], 0.0);
  EXPECT_NEAR(fit.coefficients[0], truth[0], 1e-9);
  EXPECT_NEAR(fit.coefficients[2], truth[2], 1e-9);
}

TEST(Lstsq, DeterministicBitwise) {
  const auto rows = random_rows(32, 4, 23);
  std::uint64_t state = 29;
  std::vector<double> targets;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    targets.push_back(next_uniform(state));
  }
  const LstsqResult a = nnls(rows, targets);
  const LstsqResult b = nnls(rows, targets);
  ASSERT_EQ(a.coefficients.size(), b.coefficients.size());
  for (std::size_t j = 0; j < a.coefficients.size(); ++j) {
    // Bitwise, not approximate: identical inputs, identical bits.
    EXPECT_EQ(a.coefficients[j], b.coefficients[j]);
  }
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.residual_norm, b.residual_norm);
}

TEST(Lstsq, RejectsDegenerateInput) {
  EXPECT_THROW(lstsq({}, {}), std::invalid_argument);
  EXPECT_THROW(lstsq({{1.0, 2.0}}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(lstsq({{1.0, 2.0}, {1.0}}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(nnls({{}, {}}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
