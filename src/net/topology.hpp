#pragma once

// Interconnect topologies for the network model (src/net).
//
// A Topology maps a (source node, destination node) pair to the ordered
// list of links a message traverses. Links are directed and shared:
// several in-flight transfers crossing the same link serialize in the
// NetworkModel (network.hpp). Three real shapes are provided next to the
// seed's legacy flat model:
//
//  - kCrossbar: every node owns an injection (up) and ejection (down)
//    NIC link into a non-blocking core. Contention happens only at the
//    endpoints (fan-in to a hot node), never inside the fabric.
//  - kFatTree: two levels. Nodes attach to leaf switches
//    (nodes_per_switch per leaf) through their NIC links; each leaf
//    reaches the non-blocking spine through a trunked uplink/downlink
//    whose capacity is nodes_per_switch / oversubscription NIC-widths.
//    At 1:1 this behaves like the crossbar with one extra hop; at 2:1 or
//    4:1 the uplinks are the hot spot once traffic leaves the leaf.
//  - kTorus: nodes on a 2D wrap-around grid, dimension-order (x then y)
//    routing, one directed link per neighbour direction. Path length —
//    and the number of links a transfer occupies — grows with Manhattan
//    distance, so placement matters.
//
// kLegacyFlat is the seed machine model: a bare intra/inter-node latency
// with no links, no bandwidth, and no contention. It exists so the
// refactored simulators reproduce the seed's results bitwise by default
// (tests/test_net.cpp pins this with golden makespans).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace emc::net {

enum class TopologyKind : std::uint8_t {
  kLegacyFlat = 0,
  kCrossbar,
  kFatTree,
  kTorus,
};

/// Display name ("flat", "crossbar", "fat-tree", "torus").
const char* topology_name(TopologyKind kind);

/// Inverse of topology_name; throws std::invalid_argument on an unknown
/// name (accepts "fattree" as an alias for "fat-tree").
TopologyKind parse_topology(const std::string& name);

/// How shared-link contention is charged (NetworkModel::send).
///
///  - kPerMessage: exact discrete-event occupancy. Every transfer books
///    [start, start + serialization) on each route link and queues
///    behind earlier transfers. Exact, but each send is O(route length)
///    with a serial dependency through link_free_ — the right model up
///    to a few thousand procs.
///  - kFlow: coarse aggregate-flow approximation for the P >= 10k
///    regime. No per-transfer booking; each link tracks cumulative
///    wire-seconds, and a transfer is charged an M/M/1-style expected
///    wait ser * u / (1 - u), where u is the link's utilization so far
///    (clamped below 1). O(1) state per link, no serial coupling between
///    transfers, deterministic — but statistical: bursts no longer queue
///    behind each other, so short-time congestion transients are
///    smeared. EXPERIMENTS.md EXP-12 measures the error envelope.
enum class CongestionMode : std::uint8_t {
  kPerMessage = 0,
  kFlow,
};

/// Display name ("per-message", "flow").
const char* congestion_name(CongestionMode mode);

/// Inverse of congestion_name; throws std::invalid_argument on an
/// unknown name.
CongestionMode parse_congestion(const std::string& name);

/// Complete description of a network: topology shape plus the LogGP-style
/// cost knobs every message pays. The default is the seed's legacy flat
/// model — zero-cost to construct and bitwise-compatible with the
/// pre-net simulators.
struct NetworkConfig {
  TopologyKind topology = TopologyKind::kLegacyFlat;

  /// Fat-tree shape: nodes per leaf switch, and the uplink
  /// oversubscription factor (1 = fully provisioned, 2 = 2:1, ...).
  int nodes_per_switch = 4;
  int oversubscription = 1;

  /// Torus node grid; 0 means a near-square factorization of the node
  /// count is chosen automatically.
  int torus_x = 0;
  int torus_y = 0;

  /// Per-link bandwidth in bytes/second (QDR-InfiniBand-class default);
  /// <= 0 means infinite (no serialization term, no occupancy).
  double link_bandwidth = 4.0e9;

  /// LogGP 'o': sender-side software overhead charged per message.
  double per_message_overhead = 0.0;

  /// Extra latency per traversed link (switch hop cost).
  double per_hop_latency = 0.0;

  /// Payload of a control round trip (counter fetch-and-add, steal
  /// request/response), in bytes.
  std::size_t control_bytes = 8;

  /// Data bytes fetched per *remotely acquired* task: the density/Fock
  /// blocks a proc must move before running work it does not own
  /// (counter grabs, stolen tasks). 0 disables payload modelling. Derive
  /// from the workload with core::mean_task_comm_bytes.
  std::size_t task_payload_bytes = 0;

  /// Contention model; ignored for the legacy flat topology (which has
  /// no links). kPerMessage is exact and the default; kFlow trades
  /// queueing precision for O(1) sends at datacenter scale.
  CongestionMode congestion = CongestionMode::kPerMessage;

  bool legacy() const { return topology == TopologyKind::kLegacyFlat; }
};

/// Routed link graph for one NetworkConfig + node count. Construction
/// validates the shape; route() is allocation-free (appends into a
/// caller-owned scratch vector).
class Topology {
 public:
  /// Legacy flat topology: no links, empty routes.
  Topology() = default;

  /// Throws std::invalid_argument on a malformed config (n_nodes < 1,
  /// nodes_per_switch < 1, oversubscription < 1, or a torus grid too
  /// small for the node count).
  static Topology build(const NetworkConfig& config, int n_nodes);

  TopologyKind kind() const { return kind_; }
  int n_nodes() const { return n_nodes_; }
  int link_count() const { return static_cast<int>(capacity_.size()); }

  /// Parallel-lane multiplier of a link: a transfer's serialization time
  /// on the link is bytes / (bandwidth * capacity). 1 for every link
  /// except fat-tree trunk up/downlinks.
  int link_capacity(int link) const {
    return capacity_[static_cast<std::size_t>(link)];
  }

  /// Human-readable link label ("nic-up[3]", "leaf-up[0]", ...).
  std::string link_name(int link) const;

  /// Appends the links a message from node `a` to node `b` traverses, in
  /// order, to `out` (which is NOT cleared). No-op when a == b or for
  /// the legacy topology.
  void route(int a, int b, std::vector<int>& out) const;

  /// Number of links on the a -> b route (0 for a == b / legacy).
  int hops(int a, int b) const;

 private:
  TopologyKind kind_ = TopologyKind::kLegacyFlat;
  int n_nodes_ = 0;
  // Fat-tree shape.
  int nodes_per_switch_ = 0;
  int n_switches_ = 0;
  // Torus shape.
  int torus_x_ = 0;
  int torus_y_ = 0;
  std::vector<int> capacity_;  ///< per-link lane multiplier
};

}  // namespace emc::net
