# Empty compiler generated dependencies file for test_chem_mp2.
# This may be replaced when dependencies are built.
