#pragma once

// Dense row-major double-precision matrix. This is the linear-algebra
// substrate for the SCF solver; it favours clarity and correctness over
// vendor-BLAS performance (the matrices in this study are a few hundred
// rows at most).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace emc::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// n x n diagonal matrix with the given diagonal entries.
  static Matrix diagonal(std::span<const double> d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix transposed() const;

  /// Frobenius norm.
  double norm() const;
  /// Largest absolute entry.
  double max_abs() const;
  double trace() const;

  /// True if max |a_ij - b_ij| <= tol.
  bool almost_equal(const Matrix& other, double tol) const;
  /// True if max |a_ij - a_ji| <= tol (square matrices only).
  bool is_symmetric(double tol) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  std::string to_string(int precision = 6) const;

 private:
  void check_same_shape(const Matrix& other) const;

  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace emc::linalg
