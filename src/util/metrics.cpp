#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "util/json.hpp"

namespace emc::util {

namespace {

/// Relaxed CAS accumulate for atomic<double> (no fetch_add pre-C++20 on
/// all targets, and we only need eventual consistency).
void atomic_add(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value < observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::add(double delta) { atomic_add(value_, delta); }

void Histogram::record(double value) {
  int fine = 0;
  if (value > 0.0) {
    int exp = 0;
    const double m = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
    int bin = exp - 1 - kMinExp;  // floor(log2(value)) - kMinExp
    int sub = 0;
    if (bin < 0) {
      bin = 0;  // below range: clamp to the very first sub-bin
    } else if (bin >= kBins) {
      bin = kBins - 1;  // above range: clamp to the very last sub-bin
      sub = kSubBins - 1;
    } else {
      // Mantissa in [0.5, 1) maps linearly onto the kSubBins sub-bins.
      sub = static_cast<int>((m - 0.5) * 2.0 * kSubBins);
      if (sub < 0) sub = 0;
      if (sub >= kSubBins) sub = kSubBins - 1;
    }
    fine = bin * kSubBins + sub;
  }
  bins_[static_cast<std::size_t>(fine)].fetch_add(1,
                                                  std::memory_order_relaxed);
  const std::int64_t before =
      count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  if (before == 0) {
    // First sample initializes min/max; races with concurrent first
    // samples resolve through the min/max CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

std::array<std::int64_t, Histogram::kBins> Histogram::bins() const {
  std::array<std::int64_t, kBins> out{};
  for (int f = 0; f < kFineBins; ++f) {
    out[static_cast<std::size_t>(f / kSubBins)] +=
        bins_[static_cast<std::size_t>(f)].load(std::memory_order_relaxed);
  }
  return out;
}

std::array<std::int64_t, Histogram::kFineBins> Histogram::fine_bins() const {
  std::array<std::int64_t, kFineBins> out{};
  for (int f = 0; f < kFineBins; ++f) {
    out[static_cast<std::size_t>(f)] =
        bins_[static_cast<std::size_t>(f)].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::bin_lower_bound(int bin) {
  return std::ldexp(1.0, bin + kMinExp);
}

double Histogram::fine_lower_bound(int fine) {
  const int bin = fine / kSubBins;
  const int sub = fine % kSubBins;
  return bin_lower_bound(bin) *
         (1.0 + static_cast<double>(sub) / static_cast<double>(kSubBins));
}

double Histogram::fine_upper_bound(int fine) {
  const int bin = fine / kSubBins;
  const int sub = fine % kSubBins;
  return bin_lower_bound(bin) *
         (1.0 + static_cast<double>(sub + 1) / static_cast<double>(kSubBins));
}

void Histogram::reset() {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

namespace {

/// Create-or-get under the registry lock; `others` are the same-name
/// maps of the other metric kinds (cross-kind reuse is a bug).
template <typename Map, typename... OtherMaps>
typename Map::mapped_type::element_type& resolve(
    std::shared_mutex& mutex, Map& map, const std::string& name,
    const OtherMaps&... others) {
  {
    std::shared_lock lock(mutex);
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lock(mutex);
  if ((... || (others.find(name) != others.end()))) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another kind");
  }
  auto& slot = map[name];
  if (!slot) {
    slot = std::make_unique<typename Map::mapped_type::element_type>();
  }
  return *slot;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  return resolve(mutex_, counters_, name, gauges_, histograms_);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return resolve(mutex_, gauges_, name, counters_, histograms_);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return resolve(mutex_, histograms_, name, counters_, gauges_);
}

double MetricsSnapshot::HistogramValue::percentile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Prefer the linear sub-bins (1/kSubBins-of-a-power-of-2 resolution);
  // hand-built snapshot values without them fall back to the log2 bins.
  const bool have_fine = !fine.empty();
  const auto& support = have_fine ? fine : bins;
  const double target = q * static_cast<double>(count);
  double seen = 0.0;
  for (const auto& [lower, n] : support) {
    const double here = static_cast<double>(n);
    if (seen + here >= target) {
      const double frac = here > 0.0 ? (target - seen) / here : 0.0;
      // Recover the bin's exclusive upper edge from its lower edge: a
      // linear sub-bin spans 1/kSubBins of its power-of-two bracket
      // [L, 2L) (lower is in [L, 2L), so L = 2^(exp-1)); a log2 bin
      // spans the whole bracket.
      double upper;
      if (have_fine) {
        int exp = 0;
        std::frexp(lower, &exp);
        upper = lower + std::ldexp(1.0, exp - 1) /
                            static_cast<double>(Histogram::kSubBins);
      } else {
        upper = 2.0 * lower;
      }
      // Interpolate over the bin's support intersected with the
      // observed sample range, so the first/last bins don't smear the
      // estimate below min or above max.
      double lo = std::max(lower, min);
      double hi = std::min(upper, max);
      if (hi < lo) {
        lo = lower;
        hi = upper;
      }
      const double estimate = lo + frac * (hi - lo);
      return std::clamp(estimate, min, max);
    }
    seen += here;
  }
  return max;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::shared_lock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue v;
    v.count = h->count();
    v.sum = h->sum();
    v.min = h->min();
    v.max = h->max();
    v.mean = h->mean();
    const auto bins = h->bins();
    for (int b = 0; b < Histogram::kBins; ++b) {
      const std::int64_t n = bins[static_cast<std::size_t>(b)];
      if (n > 0) v.bins.emplace_back(Histogram::bin_lower_bound(b), n);
    }
    const auto fine = h->fine_bins();
    for (int f = 0; f < Histogram::kFineBins; ++f) {
      const std::int64_t n = fine[static_cast<std::size_t>(f)];
      if (n > 0) v.fine.emplace_back(Histogram::fine_lower_bound(f), n);
    }
    v.p50 = v.percentile(0.50);
    v.p90 = v.percentile(0.90);
    v.p99 = v.percentile(0.99);
    snap.histograms.emplace(name, std::move(v));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::shared_lock lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::clear() {
  std::unique_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::size_t MetricsRegistry::size() const {
  std::shared_lock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::write_text(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  for (const auto& [name, value] : snap.counters) {
    out << name << " counter " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out << name << " gauge " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << name << " histogram count=" << h.count << " sum=" << h.sum
        << " min=" << h.min << " max=" << h.max << " mean=" << h.mean
        << " p50=" << h.p50 << " p90=" << h.p90 << " p99=" << h.p99
        << "\n";
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  // Names go through json_quote (shared escaping path) and doubles
  // through format_double, so the artifact re-parses to identical bits.
  const MetricsSnapshot snap = snapshot();
  const auto num = [](double v) { return format_double(v); };
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
        << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
        << num(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "" : ",") << "\n    " << json_quote(name)
        << ": {\"count\": " << h.count << ", \"sum\": " << num(h.sum)
        << ", \"min\": " << num(h.min) << ", \"max\": " << num(h.max)
        << ", \"mean\": " << num(h.mean) << ", \"p50\": " << num(h.p50)
        << ", \"p90\": " << num(h.p90) << ", \"p99\": " << num(h.p99)
        << ", \"bins\": [";
    for (std::size_t b = 0; b < h.bins.size(); ++b) {
      out << (b == 0 ? "" : ", ") << "[" << num(h.bins[b].first) << ", "
          << h.bins[b].second << "]";
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace emc::util
