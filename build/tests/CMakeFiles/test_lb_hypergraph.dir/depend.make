# Empty dependencies file for test_lb_hypergraph.
# This may be replaced when dependencies are built.
