#pragma once

// Distributed Fock build in the Global-Arrays style of the paper's
// implementation: the density lives in a GlobalArray, every rank fetches
// it with one-sided Get at the start of an iteration, Fock tasks are
// scheduled under a configurable execution model, and each rank's J/K
// contributions are merged back with one-sided atomic Accumulate.
//
// Execution is hierarchical — ranks × threads. Each rank owns a
// persistent exec::ThreadPool; within a rank the task loop is scheduled
// by an intra-rank policy mirroring the paper's execution models
// (static slices, shared-counter chunks, Chase–Lev stealing between
// threads). Threads accumulate into pooled J/K buffers, one per
// reduction SLOT (a fixed contiguous cost-balanced range of the task
// list), and the slot partials fold through a fixed-shape pairwise tree
// (exec::TreeReduction) — so for any deterministic task→rank
// assignment the rank's J/K partial is bitwise identical regardless of
// thread count, intra policy, or scheduling interleaving.
//
// The same object plugs into chem::run_rhf_with_builder, so a full SCF
// can be driven end-to-end through any execution model and verified
// against the sequential reference (tests/test_distributed_fock.cpp).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "chem/fock.hpp"
#include "chem/scf.hpp"
#include "exec/schedulers.hpp"
#include "exec/thread_pool.hpp"
#include "lb/partition.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace emc::core {

enum class ExecModel {
  kStatic,        ///< fixed assignment (see DistributedFockOptions)
  kCounter,       ///< GA-nxtval chunked self-scheduling
  kWorkStealing,  ///< Chase-Lev deques, random victims
};

/// Intra-rank scheduling of a rank's reduction slots across its pool
/// threads. Mirrors ExecModel one level down; by the tree-reduction
/// construction the RESULT is policy-independent — only wall clock and
/// steal/counter traffic differ.
enum class IntraPolicy {
  kStatic,        ///< cyclic static slices of the rank's slot list
  kCounter,       ///< rank-local nxtval chunks (atomic fetch_add)
  kWorkStealing,  ///< per-thread Chase-Lev deques, intra-rank victims
};

struct DistributedFockOptions {
  ExecModel model = ExecModel::kWorkStealing;
  /// Balancer for the static model / work-stealing seed: "block",
  /// "cyclic", or "lpt". Operates on reduction slots (see intra_slots).
  std::string static_balancer = "block";
  /// Slots per global-nxtval grab under ExecModel::kCounter.
  std::int64_t counter_chunk = 4;
  exec::WorkStealingOptions steal;
  double screen_threshold = 1e-10;

  /// Pool threads per rank. 1 = the classic serial-per-rank loop (no
  /// workers are spawned). The Fock matrix is bitwise independent of
  /// this knob whenever the task→rank assignment is deterministic
  /// (static model, or any model at 1 rank).
  int threads = 1;
  /// How a rank's pool threads divide its reduction slots.
  IntraPolicy intra_policy = IntraPolicy::kStatic;
  /// Upper bound on reduction slots per build. The task list is cut
  /// into at most this many contiguous cost-balanced ranges — the unit
  /// of intra-rank scheduling AND of the deterministic tree reduction.
  /// The cut depends only on the task list and this value, never on
  /// ranks/threads/policy: that is the determinism anchor, so keep it
  /// fixed when comparing runs bitwise. More slots = finer dynamic
  /// balancing but more buffer traffic; 64 is plenty for the paper's
  /// task counts.
  std::int64_t intra_slots = 64;
  /// Slots per rank-local counter grab under IntraPolicy::kCounter.
  std::int64_t intra_chunk = 1;

  /// Fault injection for task execution. Each (task, attempt) pair is
  /// deemed lost with probability fail_prob — a stateless hash of
  /// (seed, task, attempt), independent of which rank OR THREAD runs
  /// it, so the same tasks are lost under any schedule or interleaving
  /// and the re-execution count is deterministic under threading.
  /// A lost attempt pays reexec_delay_ns of wasted work and is
  /// re-executed. The loss decision is made BEFORE the kernel runs, so
  /// exactly one real execution ever contributes to J/K: a
  /// fault-injected build is bitwise identical to the fault-free one
  /// whenever the accumulate ordering is (as with 2 ranks, where
  /// two-operand addition commutes bitwise). The final attempt always
  /// succeeds, bounding the retry loop at max_attempts.
  struct TaskFaultOptions {
    double fail_prob = 0.0;        ///< per-attempt loss probability
    int max_attempts = 8;          ///< last attempt is forced through
    std::uint64_t seed = 17;       ///< hash seed for loss decisions
    std::uint64_t reexec_delay_ns = 0;  ///< cost of one lost attempt
    bool enabled() const { return fail_prob > 0.0; }
  };
  TaskFaultOptions task_faults;
  /// Optional observability hook. When set, the builder attaches it to
  /// the runtime (per-rank barrier/PGAS counters), the per-build
  /// GlobalArrays (get/put/acc ops + bytes), and records its own
  /// "fock/..." series: per-phase wall time (get / execute /
  /// accumulate), build count, Schwarz screening skip rate, reduction
  /// buffer pool size, and shell-pair-cache stats. Must outlive the
  /// builder. nullptr = fully disabled, no overhead on the build path.
  util::MetricsRegistry* metrics = nullptr;
};

/// One pooled J/K accumulation buffer pair (the payload of a reduction
/// slot / tree node).
struct JkBuffer {
  linalg::Matrix j;
  linalg::Matrix k;
};

/// Thread-safe free list of JkBuffers. acquire() hands out a ZEROED
/// n×n pair, reusing a released buffer when one is available and
/// allocating otherwise (never blocking — the tree reduction may hold
/// buffers that only future merges release, so waiting could deadlock).
/// This is what replaces the old 3·ranks·n² full-replica allocation:
/// the live set is bounded by ranks·(threads + log2 slots), not by
/// ranks·slots, and the pool persists across SCF iterations.
class JkBufferPool {
 public:
  /// Sets the buffer shape; drops all pooled storage on change.
  /// Must not be called while buffers are outstanding.
  void set_shape(std::size_t n);
  JkBuffer* acquire();
  void release(JkBuffer* buffer);
  /// Buffers ever allocated (live + free). Stable after a build joins.
  std::size_t allocated() const;

 private:
  mutable std::mutex mutex_;
  std::size_t n_ = 0;
  std::vector<std::unique_ptr<JkBuffer>> storage_;
  std::vector<JkBuffer*> free_;
};

/// SPMD Fock builder over a PGAS runtime. Not thread-safe to share one
/// instance across concurrent SCF runs; reuse across iterations of one
/// run is the intended pattern.
class DistributedFockBuilder {
 public:
  DistributedFockBuilder(const chem::BasisSet& basis,
                         pgas::Runtime& runtime,
                         DistributedFockOptions options = {});

  /// Builds G(P) = J - K/2 with the configured execution model. The
  /// density is published to a GlobalArray, ranks fetch it one-sided,
  /// execute their tasks ranks × threads, tree-reduce per rank, and
  /// accumulate the rank partials back one-sided.
  linalg::Matrix build_g(const linalg::Matrix& density);

  /// Adapter for chem::run_rhf_with_builder.
  chem::GBuilder as_g_builder();

  /// Execution statistics of the most recent build_g call. Per-rank
  /// tasks_executed counts TASKS (summed over that rank's threads);
  /// busy_seconds sums thread-local kernel time, so it can exceed the
  /// phase wall time when threads > 1.
  const exec::ExecutionStats& last_stats() const { return last_stats_; }
  /// Total build_g invocations (SCF iterations served).
  int builds() const { return builds_; }
  /// Task re-executions forced by fault injection during the most
  /// recent build_g call (0 when task_faults are disabled).
  std::int64_t last_task_reexecutions() const { return last_reexecs_; }
  /// The fixed slot partition (for tests/benches).
  std::int64_t slot_count() const {
    return static_cast<std::int64_t>(slots_.size());
  }

 private:
  void make_slots();
  lb::Assignment slot_assignment() const;
  exec::ExecutionStats run_hybrid(const lb::Assignment& slot_assign,
                                  const std::vector<linalg::Matrix>& density,
                                  std::vector<JkBuffer*>& rank_roots,
                                  std::atomic<std::int64_t>& reexecs);
  void attach_metrics();

  /// Pre-resolved "fock/..." instruments (see DistributedFockOptions::
  /// metrics). Null pointers when no registry is attached.
  struct FockMetrics {
    util::Counter* builds = nullptr;
    util::Counter* tasks = nullptr;
    util::Counter* task_reexecs = nullptr;
    util::Counter* kets_scanned = nullptr;
    util::Counter* kets_survived = nullptr;
    util::Gauge* skip_rate = nullptr;
    util::Gauge* phase_get = nullptr;
    util::Gauge* phase_execute = nullptr;
    util::Gauge* phase_accumulate = nullptr;
    util::Gauge* reduction_buffers = nullptr;
  };

  const chem::BasisSet* basis_;
  pgas::Runtime* runtime_;
  DistributedFockOptions options_;
  chem::FockBuilder fock_;
  std::vector<chem::ShellPairTask> tasks_;
  /// Fixed reduction-slot partition: slots_[s] = [first, last) task
  /// range, slot_costs_[s] = summed cost estimate (for the balancer).
  std::vector<std::pair<std::int64_t, std::int64_t>> slots_;
  std::vector<double> slot_costs_;
  /// One persistent pool per rank (reused across SCF iterations).
  std::vector<std::unique_ptr<exec::ThreadPool>> pools_;
  JkBufferPool buffer_pool_;
  exec::ExecutionStats last_stats_;
  int builds_ = 0;
  std::int64_t last_reexecs_ = 0;
  FockMetrics metrics_;
  // Screening totals over all tasks (density-independent, so computed
  // once at construction): ket pairs scanned vs surviving Schwarz.
  // Tallied into the counters once per build, rounded to nearest.
  double scan_total_ = 0.0;
  double survived_total_ = 0.0;
};

}  // namespace emc::core
