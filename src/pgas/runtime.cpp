#include "pgas/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/log.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emc::pgas {

void inject_delay(std::uint64_t nanoseconds) {
  if (nanoseconds == 0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(nanoseconds);
  // Busy-wait: sleeping would invite the OS scheduler into measurements.
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

namespace {

/// Stateless drop decision, same construction as the simulator's
/// FaultSchedule::drop_op so both layers replay from a printed seed.
bool attempt_dropped(const CommCostModel& cost, int rank,
                     std::uint64_t op_seq, int attempt) {
  std::uint64_t h = cost.fault_seed ^
                    (static_cast<std::uint64_t>(rank) + 2) *
                        0x9e3779b97f4a7c15ULL ^
                    (op_seq + 1) * 0xbf58476d1ce4e5b9ULL ^
                    (static_cast<std::uint64_t>(attempt) + 1) *
                        0x94d049bb133111ebULL;
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  return u < cost.drop_prob;
}

std::uint64_t backoff_ns(const CommCostModel& cost, int attempt) {
  double delay = static_cast<double>(cost.retry_backoff_ns);
  for (int i = 0; i < attempt; ++i) delay *= cost.backoff_multiplier;
  return static_cast<std::uint64_t>(delay);
}

}  // namespace

CommCostModel CommCostModel::from_topology(const net::NetworkConfig& network,
                                           int n_ranks, int ranks_per_node,
                                           double intra_latency_s,
                                           double inter_latency_s) {
  if (n_ranks < 1 || ranks_per_node < 1) {
    throw std::invalid_argument(
        "CommCostModel::from_topology: bad rank counts");
  }
  CommCostModel cost;
  cost.local_ns =
      static_cast<std::uint64_t>(std::llround(intra_latency_s * 1e9));
  if (network.legacy()) {
    cost.remote_ns =
        static_cast<std::uint64_t>(std::llround(inter_latency_s * 1e9));
    cost.counter_ns = 2 * cost.remote_ns;
    return cost;
  }
  const int n_nodes = (n_ranks + ranks_per_node - 1) / ranks_per_node;
  const net::Topology topology = net::Topology::build(network, n_nodes);

  // Mean hop count and mean per-byte serialization over all distinct
  // node pairs — the expected route of a one-sided op under a uniform
  // access pattern. Congestion is not modelled here (threads contend for
  // real memory bandwidth instead); only the uncongested LogGP terms are.
  double mean_hops = 0.0;
  double mean_ser_per_byte = 0.0;
  int pairs = 0;
  std::vector<int> path;
  for (int a = 0; a < n_nodes; ++a) {
    for (int b = 0; b < n_nodes; ++b) {
      if (a == b) continue;
      path.clear();
      topology.route(a, b, path);
      mean_hops += static_cast<double>(path.size());
      if (network.link_bandwidth > 0.0) {
        for (int link : path) {
          mean_ser_per_byte +=
              1.0 / (network.link_bandwidth * topology.link_capacity(link));
        }
      }
      ++pairs;
    }
  }
  if (pairs > 0) {
    mean_hops /= pairs;
    mean_ser_per_byte /= pairs;
  }
  const double remote_s = inter_latency_s + network.per_message_overhead +
                          network.per_hop_latency * mean_hops;
  cost.remote_ns = static_cast<std::uint64_t>(std::llround(remote_s * 1e9));
  cost.per_byte_ns =
      static_cast<std::uint64_t>(std::llround(mean_ser_per_byte * 1e9));
  cost.counter_ns = 2 * cost.remote_ns;
  return cost;
}

int resolve_with_retries(const CommCostModel& cost, int rank,
                         std::uint64_t op_seq,
                         std::uint64_t op_latency_ns) {
  if (!cost.faults_enabled()) return 0;
  int attempt = 0;
  while (attempt_dropped(cost, rank, op_seq, attempt)) {
    // The dropped attempt paid its full round trip before it was
    // declared lost; back off before reissuing.
    inject_delay(op_latency_ns + backoff_ns(cost, attempt));
    ++attempt;
    if (attempt >= cost.max_attempts) {
      throw std::runtime_error(
          "pgas: one-sided operation timed out after " +
          std::to_string(cost.max_attempts) + " attempts (rank " +
          std::to_string(rank) + ", op " + std::to_string(op_seq) + ")");
    }
  }
  return attempt;
}

int Context::size() const { return runtime_->size(); }

void Context::barrier() {
  EMC_PROF_SPAN("pgas/barrier");
  Runtime& rt = *runtime_;
  if (rt.metrics_ == nullptr) {
    rt.barrier_.arrive_and_wait();
    return;
  }
  auto& mine = rt.rank_metrics_[static_cast<std::size_t>(rank_)];
  emc::Timer wait;
  rt.barrier_.arrive_and_wait();
  mine.wait_seconds->add(wait.seconds());
  mine.barriers->add(1);
}

const CommCostModel& Context::cost_model() const {
  return runtime_->cost_model_;
}

void Context::all_reduce_sum(std::span<double> data) {
  EMC_PROF_SPAN("pgas/all_reduce");
  Runtime& rt = *runtime_;
  // Rank 0 prepares the shared accumulator before anyone adds to it.
  if (rank_ == 0) {
    rt.collective_buffer_.assign(data.size(), 0.0);
  }
  barrier();
  {
    std::lock_guard<std::mutex> lock(rt.collective_mutex_);
    if (rt.collective_buffer_.size() != data.size()) {
      throw std::invalid_argument(
          "all_reduce_sum: ranks passed different buffer sizes");
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      rt.collective_buffer_[i] += data[i];
    }
  }
  barrier();
  inject_delay(cost_model().transfer_cost(rank_ != 0,
                                          data.size() * sizeof(double)));
  std::copy(rt.collective_buffer_.begin(), rt.collective_buffer_.end(),
            data.begin());
  barrier();  // nobody reuses the scratch until all have copied out
}

void Context::broadcast(std::span<double> data, int root) {
  EMC_PROF_SPAN("pgas/broadcast");
  Runtime& rt = *runtime_;
  if (root < 0 || root >= rt.size()) {
    throw std::invalid_argument("broadcast: root out of range");
  }
  if (rank_ == root) {
    rt.collective_buffer_.assign(data.begin(), data.end());
  }
  barrier();
  if (rank_ != root) {
    if (rt.collective_buffer_.size() != data.size()) {
      throw std::invalid_argument(
          "broadcast: ranks passed different buffer sizes");
    }
    inject_delay(
        cost_model().transfer_cost(true, data.size() * sizeof(double)));
    std::copy(rt.collective_buffer_.begin(), rt.collective_buffer_.end(),
              data.begin());
  }
  barrier();
}

Runtime::Runtime(int n_ranks, CommCostModel cost_model)
    : n_ranks_(n_ranks), cost_model_(cost_model), barrier_(n_ranks) {
  if (n_ranks < 1) throw std::invalid_argument("Runtime: n_ranks < 1");
}

void Runtime::set_metrics(util::MetricsRegistry* registry) {
  metrics_ = registry;
  rank_metrics_.clear();
  if (registry == nullptr) return;
  rank_metrics_.resize(static_cast<std::size_t>(n_ranks_));
  for (int r = 0; r < n_ranks_; ++r) {
    const std::string prefix = "pgas/r" + std::to_string(r) + "/";
    auto& slot = rank_metrics_[static_cast<std::size_t>(r)];
    slot.barriers = &registry->counter(prefix + "barriers");
    slot.wait_seconds = &registry->gauge(prefix + "barrier_wait_seconds");
  }
}

void Runtime::run(const std::function<void(Context&)>& body) {
  EMC_PROF_SPAN("pgas/run");
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_ranks_));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < n_ranks_; ++r) {
    threads.emplace_back([this, r, &body, &first_error, &error_mutex] {
      set_log_thread_tag("r" + std::to_string(r));
      Context ctx(this, r);
      try {
        body(ctx);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Other ranks may be waiting at a barrier; there is no safe way
        // to cancel them, so a throwing SPMD body must not use barriers
        // after the point of failure. Tests exercise the no-barrier case.
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void GlobalCounter::attach_metrics(util::MetricsRegistry& registry,
                                   int n_ranks) {
  total_ops_ = &registry.counter("pgas/nxtval_ops");
  retry_ops_ = &registry.counter("pgas/nxtval_retries");
  rank_ops_.clear();
  rank_ops_.reserve(static_cast<std::size_t>(std::max(n_ranks, 0)));
  for (int r = 0; r < n_ranks; ++r) {
    rank_ops_.push_back(
        &registry.counter("pgas/r" + std::to_string(r) + "/nxtval_ops"));
  }
}

}  // namespace emc::pgas
