file(REMOVE_RECURSE
  "CMakeFiles/properties_demo.dir/properties_demo.cpp.o"
  "CMakeFiles/properties_demo.dir/properties_demo.cpp.o.d"
  "properties_demo"
  "properties_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/properties_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
