#pragma once

// Minimal strict JSON parser used to validate the machine-readable
// artifacts the benches emit (Chrome traces, BENCH_*.json reports),
// plus the shared emitter side: json_escape() and the streaming
// JsonWriter every artifact writer goes through, so strings are escaped
// one way everywhere.
//
// Strictness is the point: invalid documents (trailing garbage,
// unterminated strings) and — deliberately — the non-finite number
// literals some emitters produce (`nan`, `inf`, `NaN`, `Infinity`, an
// overflowing exponent) are rejected with std::runtime_error, so a
// report containing an unguarded NaN/Inf fails its smoke gate instead
// of silently shipping a file no JSON consumer can read.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace emc::util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole document; throws std::runtime_error on any error,
  /// including non-finite number literals.
  JsonValue parse();

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void skip_ws();
  char peek();
  void expect(char c);
  bool consume_literal(const char* lit);

  JsonValue parse_value();
  std::string parse_string();
  JsonValue parse_number();
  JsonValue parse_array();
  JsonValue parse_object();

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Convenience: parses `text`, returning the document. Throws
/// std::runtime_error on invalid JSON.
JsonValue parse_json(const std::string& text);

/// Escapes `s` for inclusion inside a JSON string literal (no
/// surrounding quotes): quote, backslash, and the common control
/// characters get their two-character escapes, remaining control
/// characters become \u00XX. Every emitter in the tree goes through
/// this so escaping cannot diverge between writers.
std::string json_escape(const std::string& s);

/// json_escape with the surrounding quotes.
std::string json_quote(const std::string& s);

/// Formats a finite double as the shortest decimal string that parses
/// back to the identical bits (tries 15, 16, then 17 significant
/// digits), so artifact round trips through the parser are exact and
/// bench_compare never sees formatting-induced drift.
std::string format_double(double v);

/// Streaming JSON emitter with automatic comma/indent management,
/// shared by every artifact writer (BENCH_*.json reports, profiler
/// exports). Usage mirrors the document structure:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.field("bench", "bench_kernel");
///   w.begin_array("classes");
///   w.begin_object(); w.field("speedup", 3.1); w.end_object();
///   w.end_array();
///   w.end_object();
///
/// raw() splices pre-rendered JSON (e.g. MetricsRegistry::write_json
/// output) as a value without re-parsing it. Keys and string values are
/// escaped through json_escape(); doubles are written round-trip exact
/// (NaN/Inf become null — they have no JSON representation).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object() { open('{'); }
  void begin_object(const std::string& key) { open_keyed(key, '{'); }
  void end_object() { close('}'); }
  void begin_array(const std::string& key) { open_keyed(key, '['); }
  void end_array() { close(']'); }

  void field(const std::string& key, const std::string& value) {
    key_prefix(key);
    out_ << json_quote(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    key_prefix(key);
    write_double(value);
  }
  void field(const std::string& key, std::int64_t value) {
    key_prefix(key);
    out_ << value;
  }
  void field(const std::string& key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(const std::string& key, std::uint64_t value) {
    key_prefix(key);
    out_ << value;
  }
  void field(const std::string& key, bool value) {
    key_prefix(key);
    out_ << (value ? "true" : "false");
  }
  /// Splices `json` verbatim as the value of `key`.
  void raw(const std::string& key, const std::string& json) {
    key_prefix(key);
    out_ << json;
  }
  /// Scalar array element (null for NaN/Inf, as with field()).
  void value(double v) {
    element_prefix();
    write_double(v);
  }

 private:
  void write_double(double v);

  struct Frame {
    bool is_array = false;
    int count = 0;
  };

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
  /// Comma + newline + indent before an element of the enclosing frame.
  void element_prefix() {
    if (!stack_.empty()) {
      if (stack_.back().count++ > 0) out_ << ",";
      out_ << "\n";
      indent();
    }
  }
  void key_prefix(const std::string& key) {
    element_prefix();
    out_ << json_quote(key) << ": ";
  }
  void open(char bracket) {
    element_prefix();
    out_ << bracket;
    stack_.push_back(Frame{bracket == '[', 0});
  }
  void open_keyed(const std::string& key, char bracket) {
    key_prefix(key);
    out_ << bracket;
    stack_.push_back(Frame{bracket == '[', 0});
  }
  void close(char bracket) {
    const bool had_elements = !stack_.empty() && stack_.back().count > 0;
    if (!stack_.empty()) stack_.pop_back();
    if (had_elements) {
      out_ << "\n";
      indent();
    }
    out_ << bracket;
    if (stack_.empty()) out_ << "\n";
  }

  std::ostream& out_;
  std::vector<Frame> stack_;
};

}  // namespace emc::util
