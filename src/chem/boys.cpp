#include "chem/boys.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "chem/constants.hpp"

namespace emc::chem {

namespace {

/// Ascending series for F_m(x):
///   F_m(x) = e^{-x} / 2 * sum_{k>=0} (2m-1)!! (2x)^k / (2m+2k+1)!!
/// expressed as the equivalent Kummer series; converges fast for x < ~45.
double boys_series(int m, double x) {
  const double expmx = std::exp(-x);
  double term = 1.0 / (2.0 * static_cast<double>(m) + 1.0);
  double sum = term;
  for (int k = 1; k < 300; ++k) {
    term *= 2.0 * x / (2.0 * static_cast<double>(m + k) + 1.0);
    sum += term;
    if (term < 1e-17 * sum) break;
  }
  return expmx * sum;
}

/// Asymptotic large-x evaluation: F_0 = sqrt(pi/(4x)) and upward
/// recursion with the (negligible there) e^{-x} term dropped.
void boys_asymptotic(double x, std::span<double> out) {
  out[0] = 0.5 * std::sqrt(kPi / x);
  const double inv2x = 1.0 / (2.0 * x);
  for (std::size_t m = 1; m < out.size(); ++m) {
    out[m] = out[m - 1] * (2.0 * static_cast<double>(m) - 1.0) * inv2x;
  }
}

// Table layout: kGridPoints rows at x = i * kGridStep, each holding
// orders 0..kTableOrders-1. The Taylor expansion of order m needs table
// columns m..m+kTaylorTerms-1, so the fast path serves m <= kTableMaxM.
constexpr double kLargeX = 35.0;     ///< switch to asymptotic evaluation
constexpr double kSeriesMax = 45.0;  ///< reference: series below this
constexpr int kTaylorTerms = 7;      ///< |delta| <= 0.05 -> error ~1e-14
constexpr double kGridStep = 0.1;
constexpr double kInvGridStep = 10.0;
constexpr int kGridPoints = 352;  ///< covers x in [0, 35.1)
constexpr int kTableMaxM = 20;
constexpr int kTableOrders = kTableMaxM + kTaylorTerms;

struct BoysTable {
  std::vector<double> f;

  BoysTable() : f(static_cast<std::size_t>(kGridPoints) * kTableOrders) {
    for (int i = 0; i < kGridPoints; ++i) {
      const double x = kGridStep * static_cast<double>(i);
      double* row = &f[static_cast<std::size_t>(i) * kTableOrders];
      row[kTableOrders - 1] = boys_series(kTableOrders - 1, x);
      const double expmx = std::exp(-x);
      for (int m = kTableOrders - 2; m >= 0; --m) {
        row[m] = (2.0 * x * row[m + 1] + expmx) /
                 (2.0 * static_cast<double>(m) + 1.0);
      }
    }
  }
};

const BoysTable& boys_table() {
  static const BoysTable table;
  return table;
}

}  // namespace

void boys_reference(double x, std::span<double> out) {
  if (out.empty()) return;
  if (x < 0.0) throw std::invalid_argument("boys: x must be >= 0");
  if (x >= kSeriesMax) {
    boys_asymptotic(x, out);
    return;
  }
  const int m_max = static_cast<int>(out.size()) - 1;
  out[static_cast<std::size_t>(m_max)] = boys_series(m_max, x);
  const double expmx = std::exp(-x);
  for (int m = m_max - 1; m >= 0; --m) {
    out[static_cast<std::size_t>(m)] =
        (2.0 * x * out[static_cast<std::size_t>(m + 1)] + expmx) /
        (2.0 * static_cast<double>(m) + 1.0);
  }
}

void boys(double x, std::span<double> out) {
  if (out.empty()) return;
  if (x < 0.0) throw std::invalid_argument("boys: x must be >= 0");
  if (x >= kLargeX) {
    boys_asymptotic(x, out);
    return;
  }
  const int m_max = static_cast<int>(out.size()) - 1;
  if (m_max > kTableMaxM) {
    boys_reference(x, out);
    return;
  }

  const BoysTable& table = boys_table();
  const int i = static_cast<int>(x * kInvGridStep + 0.5);
  const double* row = &table.f[static_cast<std::size_t>(i) * kTableOrders];
  // F_m(x_i + d) = sum_j F_{m+j}(x_i) (-d)^j / j!  since F_m' = -F_{m+1}.
  const double s = kGridStep * static_cast<double>(i) - x;
  double acc = row[m_max + kTaylorTerms - 1];
  for (int j = kTaylorTerms - 1; j >= 1; --j) {
    acc = acc * s / static_cast<double>(j) + row[m_max + j - 1];
  }
  out[static_cast<std::size_t>(m_max)] = acc;

  const double expmx = std::exp(-x);
  for (int m = m_max - 1; m >= 0; --m) {
    out[static_cast<std::size_t>(m)] =
        (2.0 * x * out[static_cast<std::size_t>(m + 1)] + expmx) /
        (2.0 * static_cast<double>(m) + 1.0);
  }
}

double boys(int m, double x) {
  std::vector<double> buf(static_cast<std::size_t>(m) + 1);
  boys(x, buf);
  return buf[static_cast<std::size_t>(m)];
}

}  // namespace emc::chem
