# Empty dependencies file for test_chem_uhf.
# This may be replaced when dependencies are built.
