#include "net/topology.hpp"

#include <cmath>
#include <stdexcept>

namespace emc::net {

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kLegacyFlat:
      return "flat";
    case TopologyKind::kCrossbar:
      return "crossbar";
    case TopologyKind::kFatTree:
      return "fat-tree";
    case TopologyKind::kTorus:
      return "torus";
  }
  return "?";
}

TopologyKind parse_topology(const std::string& name) {
  if (name == "flat" || name == "legacy") return TopologyKind::kLegacyFlat;
  if (name == "crossbar") return TopologyKind::kCrossbar;
  if (name == "fat-tree" || name == "fattree") return TopologyKind::kFatTree;
  if (name == "torus") return TopologyKind::kTorus;
  throw std::invalid_argument("unknown topology '" + name + "'");
}

const char* congestion_name(CongestionMode mode) {
  switch (mode) {
    case CongestionMode::kPerMessage:
      return "per-message";
    case CongestionMode::kFlow:
      return "flow";
  }
  return "?";
}

CongestionMode parse_congestion(const std::string& name) {
  if (name == "per-message" || name == "permessage") {
    return CongestionMode::kPerMessage;
  }
  if (name == "flow") return CongestionMode::kFlow;
  throw std::invalid_argument("unknown congestion mode '" + name + "'");
}

namespace {

// Link-id layout. Every topology with links gives each node an up
// (injection) and down (ejection) NIC link first, so endpoint fan-in
// contention is modelled uniformly; fabric links follow.
//   crossbar:  [0, n)        nic-up,   [n, 2n)       nic-down
//   fat-tree:  as crossbar, then [2n, 2n+s) leaf-up, [2n+s, 2n+2s)
//              leaf-down for s leaf switches
//   torus:     4 directed links per grid cell: id = cell * 4 + dir with
//              dir 0 = +x, 1 = -x, 2 = +y, 3 = -y
constexpr int kTorusDirs = 4;

}  // namespace

Topology Topology::build(const NetworkConfig& config, int n_nodes) {
  if (n_nodes < 1) {
    throw std::invalid_argument("Topology: n_nodes < 1");
  }
  Topology topo;
  topo.kind_ = config.topology;
  topo.n_nodes_ = n_nodes;
  switch (config.topology) {
    case TopologyKind::kLegacyFlat:
      return topo;
    case TopologyKind::kCrossbar:
      topo.capacity_.assign(static_cast<std::size_t>(2 * n_nodes), 1);
      return topo;
    case TopologyKind::kFatTree: {
      if (config.nodes_per_switch < 1) {
        throw std::invalid_argument("Topology: nodes_per_switch < 1");
      }
      if (config.oversubscription < 1) {
        throw std::invalid_argument("Topology: oversubscription < 1");
      }
      topo.nodes_per_switch_ = config.nodes_per_switch;
      topo.n_switches_ = (n_nodes + config.nodes_per_switch - 1) /
                         config.nodes_per_switch;
      // Trunked uplink capacity in NIC-widths; an oversubscription of k
      // means k nodes share one uplink lane.
      const int trunk = std::max(
          1, config.nodes_per_switch / config.oversubscription);
      topo.capacity_.assign(
          static_cast<std::size_t>(2 * n_nodes + 2 * topo.n_switches_), 1);
      for (int s = 0; s < 2 * topo.n_switches_; ++s) {
        topo.capacity_[static_cast<std::size_t>(2 * n_nodes + s)] = trunk;
      }
      return topo;
    }
    case TopologyKind::kTorus: {
      int x = config.torus_x;
      int y = config.torus_y;
      if (x <= 0 || y <= 0) {
        x = static_cast<int>(std::ceil(std::sqrt(
            static_cast<double>(n_nodes))));
        y = (n_nodes + x - 1) / x;
      }
      if (x * y < n_nodes) {
        throw std::invalid_argument(
            "Topology: torus grid smaller than node count");
      }
      topo.torus_x_ = x;
      topo.torus_y_ = y;
      topo.capacity_.assign(static_cast<std::size_t>(x * y * kTorusDirs),
                            1);
      return topo;
    }
  }
  throw std::invalid_argument("Topology: unknown kind");
}

std::string Topology::link_name(int link) const {
  switch (kind_) {
    case TopologyKind::kLegacyFlat:
      break;
    case TopologyKind::kCrossbar:
    case TopologyKind::kFatTree: {
      if (link < n_nodes_) {
        return "nic-up[" + std::to_string(link) + "]";
      }
      if (link < 2 * n_nodes_) {
        return "nic-down[" + std::to_string(link - n_nodes_) + "]";
      }
      const int s = link - 2 * n_nodes_;
      if (s < n_switches_) {
        return "leaf-up[" + std::to_string(s) + "]";
      }
      return "leaf-down[" + std::to_string(s - n_switches_) + "]";
    }
    case TopologyKind::kTorus: {
      static const char* kDir[] = {"+x", "-x", "+y", "-y"};
      return "torus[" + std::to_string(link / kTorusDirs) + "]" +
             kDir[link % kTorusDirs];
    }
  }
  return "link[" + std::to_string(link) + "]";
}

void Topology::route(int a, int b, std::vector<int>& out) const {
  if (a == b || kind_ == TopologyKind::kLegacyFlat) return;
  switch (kind_) {
    case TopologyKind::kLegacyFlat:
      return;
    case TopologyKind::kCrossbar:
      out.push_back(a);              // nic-up[a]
      out.push_back(n_nodes_ + b);   // nic-down[b]
      return;
    case TopologyKind::kFatTree: {
      const int sa = a / nodes_per_switch_;
      const int sb = b / nodes_per_switch_;
      out.push_back(a);
      if (sa != sb) {
        out.push_back(2 * n_nodes_ + sa);                 // leaf-up[sa]
        out.push_back(2 * n_nodes_ + n_switches_ + sb);   // leaf-down[sb]
      }
      out.push_back(n_nodes_ + b);
      return;
    }
    case TopologyKind::kTorus: {
      // Dimension-order routing with shortest wrap direction (ties go
      // positive). Links may cross grid cells that hold no node; only
      // the wiring matters.
      int cx = a % torus_x_;
      int cy = a / torus_x_;
      const int tx = b % torus_x_;
      const int ty = b / torus_x_;
      auto step = [](int from, int to, int size) {
        const int fwd = (to - from + size) % size;
        const int back = (from - to + size) % size;
        return fwd <= back ? +1 : -1;
      };
      while (cx != tx) {
        const int dir = step(cx, tx, torus_x_);
        out.push_back((cy * torus_x_ + cx) * kTorusDirs +
                      (dir > 0 ? 0 : 1));
        cx = (cx + dir + torus_x_) % torus_x_;
      }
      while (cy != ty) {
        const int dir = step(cy, ty, torus_y_);
        out.push_back((cy * torus_x_ + cx) * kTorusDirs +
                      (dir > 0 ? 2 : 3));
        cy = (cy + dir + torus_y_) % torus_y_;
      }
      return;
    }
  }
}

int Topology::hops(int a, int b) const {
  if (a == b) return 0;
  switch (kind_) {
    case TopologyKind::kLegacyFlat:
      return 0;
    case TopologyKind::kCrossbar:
      return 2;
    case TopologyKind::kFatTree:
      return a / nodes_per_switch_ == b / nodes_per_switch_ ? 2 : 4;
    case TopologyKind::kTorus: {
      auto wrap_dist = [](int from, int to, int size) {
        const int fwd = (to - from + size) % size;
        return std::min(fwd, size - fwd);
      };
      return wrap_dist(a % torus_x_, b % torus_x_, torus_x_) +
             wrap_dist(a / torus_x_, b / torus_x_, torus_y_);
    }
  }
  return 0;
}

}  // namespace emc::net
