#pragma once

// Contention-aware network model: LogGP-style message costs on top of a
// routed Topology, with discrete-event link occupancy so concurrent
// transfers crossing a shared link serialize.
//
// The model is deliberately simple and fully deterministic:
//
//   delivery = issue + o                        (per-message overhead)
//            + sum over route links of (queue wait + bytes/(bw*cap)
//                                       + per-hop latency)
//            + endpoint latency (intra- or inter-node)
//
// Each link keeps the time it next becomes free; a transfer arriving
// earlier queues (store-and-forward at link granularity — pessimistic
// against cut-through, but it keeps per-link occupancy exact and the
// saturation point right). Queue wait is the congestion signal: it is
// accumulated in Stats, surfaced as net/* metrics, and the simulators
// record it as kLinkWait trace events.
//
// Transfers are booked in call order. The simulators issue sends in
// (approximately) nondecreasing simulated time, so inversions are rare
// and bounded; determinism — the property the test suite pins — is
// unconditional.
//
// With a legacy-flat NetworkConfig the model degenerates to the seed
// machine model: send() is exactly `issue + link_latency(src, dst)` and
// round_trip() exactly `issue + 2 * latency`, the same floating-point
// expressions the seed simulators evaluated, so default-configured runs
// are bitwise identical to the pre-net code.
//
// NetworkConfig::congestion selects how shared links are charged:
// kPerMessage (default) is the exact discrete-event occupancy described
// above; kFlow replaces per-transfer booking with an aggregate
// utilization-based wait (see CongestionMode in topology.hpp) for the
// P >= 10k regime, where exact booking's serial link_free_ coupling and
// memory traffic dominate.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/topology.hpp"
#include "util/metrics.hpp"

namespace emc::net {

/// LogGP-style decomposition of one message's uncongested cost.
struct MessageCost {
  double overhead = 0.0;       ///< o: sender software overhead
  double latency = 0.0;        ///< L: endpoint + per-hop wire latency
  double serialization = 0.0;  ///< bytes / bandwidth, summed over links

  double total() const { return overhead + latency + serialization; }
};

/// Stateful per-run network: construct one per simulation (or reset()
/// between runs) so link occupancy starts empty.
class NetworkModel {
 public:
  /// `intra_latency` / `inter_latency` are the endpoint latencies in
  /// seconds (the seed MachineConfig values). Throws on a malformed
  /// config (Topology::build) or n_procs/procs_per_node < 1.
  NetworkModel(const NetworkConfig& config, int n_procs,
               int procs_per_node, double intra_latency,
               double inter_latency);

  bool legacy() const { return config_.legacy(); }
  const NetworkConfig& config() const { return config_; }
  const Topology& topology() const { return topology_; }
  int node_of(int proc) const { return proc / procs_per_node_; }

  /// Stateless one-way latency floor: 0 for src == dst, else the intra-
  /// or inter-node endpoint latency plus per-hop latency. For a legacy
  /// config this is exactly the seed MachineConfig::link_latency.
  double base_latency(int src_proc, int dst_proc) const;

  /// Uncongested LogGP cost of one message.
  MessageCost message_cost(int src_proc, int dst_proc,
                           std::size_t bytes) const;

  /// Books one one-sided message into the network and returns its
  /// delivery time. Shared-link conflicts with earlier transfers push
  /// the start back; the queueing delay is added to Stats::link_wait
  /// and written to *wait when non-null.
  double send(int src_proc, int dst_proc, double issue, std::size_t bytes,
              double* wait = nullptr);

  /// Request/response round trip (response issued on request delivery);
  /// returns the response's delivery time at src. Legacy: exactly
  /// issue + 2 * base_latency (the seed simulators' expression).
  double round_trip(int src_proc, int dst_proc, double issue,
                    std::size_t request_bytes, std::size_t response_bytes,
                    double* wait = nullptr);

  struct Stats {
    std::int64_t messages = 0;
    std::int64_t congested_messages = 0;  ///< waited on >= 1 link
    double bytes = 0.0;
    double link_wait = 0.0;       ///< total queueing delay, seconds
    double serialization = 0.0;   ///< total bytes-on-wire time, seconds
  };
  const Stats& stats() const { return stats_; }

  /// Accumulated wire occupancy per link since construction/reset().
  std::span<const double> link_busy() const { return link_busy_; }
  /// Occupancy of the busiest link (0 when there are no links).
  double max_link_busy() const;

  /// Clears link occupancy and stats (for multi-round runs).
  void reset();

  /// Writes "net/..." counters and gauges into a registry: messages,
  /// bytes, link-wait and serialization seconds, congested-message
  /// count, and the busiest link's name + occupancy.
  void write_metrics(util::MetricsRegistry& registry) const;

 private:
  NetworkConfig config_;
  Topology topology_;
  int n_procs_ = 0;
  int procs_per_node_ = 0;
  double intra_latency_ = 0.0;
  double inter_latency_ = 0.0;
  std::vector<double> link_free_;   ///< earliest next use per link
  std::vector<double> link_busy_;   ///< accumulated occupancy per link
  std::vector<int> route_scratch_;
  Stats stats_;
};

}  // namespace emc::net
