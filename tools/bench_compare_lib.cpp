#include "bench_compare_lib.hpp"

#include "util/report_cells.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace emc::tools {

namespace {

using util::JsonValue;

/// Subtrees owned by the host, not the workload: everything under them
/// is advisory.
bool is_metrics_key(const std::string& key) {
  return key == "metrics" || key == "featured_metrics" ||
         key == "histograms";
}

std::string render(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return util::format_double(v.number);
    case JsonValue::Kind::kString: return v.str;
    case JsonValue::Kind::kArray:
      return "[" + std::to_string(v.array.size()) + " items]";
    case JsonValue::Kind::kObject:
      return "{" + std::to_string(v.object.size()) + " keys}";
  }
  return "?";
}

bool is_integral(double x) {
  return std::isfinite(x) && x == std::floor(x) &&
         std::abs(x) < 9.007199254740992e15;  // 2^53: exactly representable
}

struct Walker {
  const CompareOptions& opt;
  CompareResult result;

  void add(const std::string& path, const std::string& base,
           const std::string& cand, DeltaStatus status,
           const std::string& note) {
    if (status == DeltaStatus::kFail) ++result.failures;
    if (status == DeltaStatus::kWarn) ++result.warnings;
    if (status != DeltaStatus::kOk) {
      result.deltas.push_back(Delta{path, base, cand, status, note});
    }
  }

  /// Advisory violations escalate to kFail under --strict-noise.
  DeltaStatus advisory() const {
    return opt.strict_noise ? DeltaStatus::kFail : DeltaStatus::kWarn;
  }

  void compare_number(const std::string& path, double base, double cand,
                      bool noisy) {
    ++result.compared;
    if (noisy) {
      // Band is relative to the BASELINE (falling back to the candidate
      // only when the baseline is 0), so a 2x regression is outside a
      // 0.5 band no matter which side grew.
      const double mag =
          std::abs(base) > 0.0 ? std::abs(base) : std::abs(cand);
      const double diff = std::abs(cand - base);
      if (mag > 0.0 && diff > opt.noise * mag) {
        std::ostringstream note;
        note << "outside noise band (" << util::format_double(opt.noise)
             << ")";
        add(path, util::format_double(base), util::format_double(cand),
            advisory(), note.str());
      }
      return;
    }
    if (is_integral(base) && is_integral(cand)) {
      if (base != cand) {
        add(path, util::format_double(base), util::format_double(cand),
            DeltaStatus::kFail, "deterministic counter mismatch");
      }
      return;
    }
    const double mag = std::max(std::abs(base), std::abs(cand));
    if (std::abs(cand - base) > opt.abs_tol + opt.rel_tol * mag) {
      add(path, util::format_double(base), util::format_double(cand),
          DeltaStatus::kFail, "deterministic value drifted");
    }
  }

  void compare(const std::string& path, const std::string& key,
               const JsonValue& base, const JsonValue& cand, bool noisy) {
    if (base.kind != cand.kind) {
      ++result.compared;
      // Null on one side is the JsonWriter's NaN/Inf guard firing:
      // name it, since "kind mismatch" hides the real story.
      const bool nan_guard = base.kind == JsonValue::Kind::kNull ||
                             cand.kind == JsonValue::Kind::kNull;
      add(path, render(base), render(cand), DeltaStatus::kFail,
          nan_guard ? "null vs value (non-finite guard?)"
                    : "type changed");
      return;
    }
    switch (base.kind) {
      case JsonValue::Kind::kNull:
        ++result.compared;
        return;
      case JsonValue::Kind::kBool:
        ++result.compared;
        if (base.boolean != cand.boolean) {
          add(path, render(base), render(cand), DeltaStatus::kFail,
              "flag flipped");
        }
        return;
      case JsonValue::Kind::kString:
        ++result.compared;
        if (base.str != cand.str) {
          add(path, render(base), render(cand),
              noisy ? advisory() : DeltaStatus::kFail, "string changed");
        }
        return;
      case JsonValue::Kind::kNumber:
        compare_number(path, base.number, cand.number, noisy);
        return;
      case JsonValue::Kind::kObject:
        compare_object(path, base, cand, noisy);
        return;
      case JsonValue::Kind::kArray:
        compare_array(path, base, cand, noisy);
        return;
    }
  }

  void compare_object(const std::string& path, const JsonValue& base,
                      const JsonValue& cand, bool noisy) {
    for (const auto& [key, bval] : base.object) {
      const std::string child =
          path.empty() ? key : path + "." + key;
      if (key == "manifest") {
        compare_manifest(child, bval,
                         cand.has(key) ? &cand.object.at(key) : nullptr);
        continue;
      }
      if (key == "profile") continue;  // profiler timings: skipped
      if (!cand.has(key)) {
        add(child, render(bval), "-", DeltaStatus::kFail,
            "key missing from candidate (renamed?)");
        continue;
      }
      compare(child, key, bval, cand.object.at(key),
              noisy || is_noisy_key(key) || is_metrics_key(key));
    }
    for (const auto& [key, cval] : cand.object) {
      if (key == "profile") continue;
      if (!base.object.count(key)) {
        add(path.empty() ? key : path + "." + key, "-", render(cval),
            DeltaStatus::kWarn, "new key (update baseline to adopt)");
      }
    }
  }

  void compare_manifest(const std::string& path, const JsonValue& base,
                        const JsonValue* cand) {
    if (cand == nullptr) {
      add(path, "{manifest}", "-", DeltaStatus::kFail,
          "candidate has no manifest");
      return;
    }
    // Provenance (SHA, host, timestamp) legitimately differs between
    // runs; only the schema version must agree for a diff to be
    // meaningful at all.
    const bool b = base.has("schema_version");
    const bool c = cand->has("schema_version");
    if (!b || !c) {
      add(path + ".schema_version", b ? "present" : "-",
          c ? "present" : "-", DeltaStatus::kFail,
          "manifest lacks schema_version");
      return;
    }
    ++result.compared;
    const double bv = base.object.at("schema_version").number;
    const double cv = cand->object.at("schema_version").number;
    if (bv != cv) {
      add(path + ".schema_version", util::format_double(bv),
          util::format_double(cv), DeltaStatus::kFail,
          "schema version changed: reports are not comparable");
    }
  }

  void compare_array(const std::string& path, const JsonValue& base,
                     const JsonValue& cand, bool noisy) {
    // Cell-matched comparison when every baseline element is an object
    // with an identity key; positional otherwise.
    std::map<std::string, const JsonValue*> base_cells, cand_cells;
    bool keyed = !base.array.empty();
    for (const JsonValue& cell : base.array) {
      const std::string key = util::cell_identity(cell);
      if (key.empty() || base_cells.count(key)) {
        keyed = false;
        break;
      }
      base_cells[key] = &cell;
    }
    if (keyed) {
      for (const JsonValue& cell : cand.array) {
        const std::string key = util::cell_identity(cell);
        if (key.empty() || cand_cells.count(key)) {
          keyed = false;
          break;
        }
        cand_cells[key] = &cell;
      }
    }
    if (keyed) {
      for (const auto& [key, bcell] : base_cells) {
        const std::string child = path + "[" + key + "]";
        const auto it = cand_cells.find(key);
        if (it == cand_cells.end()) {
          add(child, render(*bcell), "-", DeltaStatus::kFail,
              "cell missing from candidate");
          continue;
        }
        compare(child, "", *bcell, *it->second, noisy);
      }
      for (const auto& [key, ccell] : cand_cells) {
        if (!base_cells.count(key)) {
          add(path + "[" + key + "]", "-", render(*ccell),
              DeltaStatus::kWarn, "new cell (update baseline to adopt)");
        }
      }
      return;
    }
    if (base.array.size() != cand.array.size()) {
      add(path, std::to_string(base.array.size()) + " items",
          std::to_string(cand.array.size()) + " items",
          noisy ? advisory() : DeltaStatus::kFail, "array length changed");
      return;
    }
    for (std::size_t i = 0; i < base.array.size(); ++i) {
      compare(path + "[" + std::to_string(i) + "]", "", base.array[i],
              cand.array[i], noisy);
    }
  }
};

}  // namespace

bool is_noisy_key(const std::string& key) {
  // "path" covers output-location fields (chrome_trace.path): where an
  // artifact landed is configuration, not payload.
  for (const char* marker :
       {"wall", "per_sec", "_ns", "_ms", "rss", "speedup", "seconds",
        "timestamp", "path"}) {
    if (key.find(marker) != std::string::npos) return true;
  }
  return false;
}

CompareResult compare_reports(const JsonValue& baseline,
                              const JsonValue& candidate,
                              const CompareOptions& options) {
  Walker walker{options, {}};
  walker.compare("", "", baseline, candidate, false);
  auto severity = [](DeltaStatus s) { return s == DeltaStatus::kFail ? 0 : 1; };
  std::stable_sort(walker.result.deltas.begin(), walker.result.deltas.end(),
                   [&](const Delta& a, const Delta& b) {
                     return severity(a.status) < severity(b.status);
                   });
  return std::move(walker.result);
}

std::string markdown_report(const std::string& baseline_name,
                            const std::string& candidate_name,
                            const CompareResult& result) {
  std::ostringstream out;
  out << "## bench_compare: `" << candidate_name << "` vs baseline `"
      << baseline_name << "`\n\n";
  out << (result.ok() ? "**PASS**" : "**FAIL**") << " — "
      << result.compared << " values compared, " << result.failures
      << " deterministic regression" << (result.failures == 1 ? "" : "s")
      << ", " << result.warnings << " advisory deviation"
      << (result.warnings == 1 ? "" : "s") << ".\n\n";
  if (result.deltas.empty()) return out.str();

  constexpr std::size_t kMaxRows = 200;
  out << "| status | cell / key | baseline | candidate | note |\n"
      << "|---|---|---|---|---|\n";
  std::size_t rows = 0;
  for (const Delta& d : result.deltas) {
    if (rows++ == kMaxRows) {
      out << "| ... | " << (result.deltas.size() - kMaxRows)
          << " more rows elided | | | |\n";
      break;
    }
    out << "| " << (d.status == DeltaStatus::kFail ? "FAIL" : "warn")
        << " | `" << d.path << "` | " << d.baseline << " | "
        << d.candidate << " | " << d.note << " |\n";
  }
  return out.str();
}

}  // namespace emc::tools
