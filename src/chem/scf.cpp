#include "chem/scf.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "chem/integrals.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen.hpp"
#include "linalg/factor.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"

namespace emc::chem {

namespace {

/// DIIS (Pulay) extrapolation over a bounded history of Fock/error pairs.
class Diis {
 public:
  explicit Diis(int capacity) : capacity_(capacity) {}

  void push(linalg::Matrix fock, linalg::Matrix error) {
    focks_.push_back(std::move(fock));
    errors_.push_back(std::move(error));
    if (static_cast<int>(focks_.size()) > capacity_) {
      focks_.pop_front();
      errors_.pop_front();
    }
  }

  bool ready() const { return focks_.size() >= 2; }

  /// Solves the DIIS system and returns the extrapolated Fock matrix.
  /// Falls back to the newest Fock if the system is singular.
  linalg::Matrix extrapolate() const {
    const std::size_t m = focks_.size();
    linalg::Matrix b(m + 1, m + 1);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        double s = 0.0;
        const auto& ei = errors_[i];
        const auto& ej = errors_[j];
        for (std::size_t r = 0; r < ei.rows(); ++r) {
          for (std::size_t c = 0; c < ei.cols(); ++c) {
            s += ei(r, c) * ej(r, c);
          }
        }
        b(i, j) = s;
      }
      b(i, m) = b(m, i) = -1.0;
    }
    b(m, m) = 0.0;

    std::vector<double> rhs(m + 1, 0.0);
    rhs.back() = -1.0;

    std::vector<double> coeff;
    try {
      coeff = linalg::solve(b, rhs);
    } catch (const std::runtime_error&) {
      return focks_.back();
    }

    linalg::Matrix f(focks_.back().rows(), focks_.back().cols());
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t r = 0; r < f.rows(); ++r) {
        for (std::size_t c = 0; c < f.cols(); ++c) {
          f(r, c) += coeff[i] * focks_[i](r, c);
        }
      }
    }
    return f;
  }

 private:
  int capacity_;
  std::deque<linalg::Matrix> focks_;
  std::deque<linalg::Matrix> errors_;
};

/// Total density P = 2 C_occ C_occ^T from the lowest `n_occ` orbitals.
linalg::Matrix density_from_orbitals(const linalg::Matrix& c, int n_occ) {
  const std::size_t n = c.rows();
  linalg::Matrix p(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t s = 0; s < n; ++s) {
      double v = 0.0;
      for (int o = 0; o < n_occ; ++o) {
        v += c(r, static_cast<std::size_t>(o)) *
             c(s, static_cast<std::size_t>(o));
      }
      p(r, s) = 2.0 * v;
    }
  }
  return p;
}

double trace_product(const linalg::Matrix& a, const linalg::Matrix& b) {
  double t = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      t += a(r, c) * b(c, r);
    }
  }
  return t;
}

}  // namespace

ScfResult run_rhf_with_builder(const Molecule& molecule,
                               const BasisSet& basis, const GBuilder& g,
                               const ScfOptions& options) {
  EMC_PROF_SPAN("scf/run");
  const int n_electrons = molecule.electron_count(options.net_charge);
  if (n_electrons % 2 != 0) {
    throw std::invalid_argument(
        "run_rhf: RHF requires an even electron count; got " +
        std::to_string(n_electrons));
  }
  const int n_occ = n_electrons / 2;
  if (n_occ > basis.function_count()) {
    throw std::invalid_argument("run_rhf: more occupied orbitals than basis "
                                "functions");
  }

  const linalg::Matrix s = overlap_matrix(basis);
  const linalg::Matrix t = kinetic_matrix(basis);
  linalg::Matrix h = t;
  h += nuclear_attraction_matrix(basis, molecule);
  const linalg::Matrix x = linalg::inverse_sqrt(s);

  // Core-Hamiltonian initial guess.
  auto solve_roothaan = [&](const linalg::Matrix& f) {
    EMC_PROF_SPAN("scf/diagonalize");
    const linalg::Matrix f_ortho = linalg::congruence(x, f);
    linalg::EigenResult eig = linalg::eigen_symmetric(f_ortho);
    return std::pair<linalg::Matrix, std::vector<double>>(
        linalg::matmul(x, eig.vectors), std::move(eig.values));
  };

  auto [c, eps] = solve_roothaan(h);
  linalg::Matrix p = density_from_orbitals(c, n_occ);

  Diis diis(options.diis_size);
  ScfResult result;
  result.nuclear_repulsion = molecule.nuclear_repulsion();

  double prev_energy = 0.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    linalg::Matrix fock = h;
    {
      EMC_PROF_SPAN("scf/fock_build");
      fock += g(p);
    }

    // Electronic energy: 1/2 tr(P (H + F)).
    const double e_elec =
        0.5 * (trace_product(p, h) + trace_product(p, fock));

    // DIIS error e = F P S - S P F, expressed in the orthonormal basis.
    const linalg::Matrix fps =
        linalg::matmul(fock, linalg::matmul(p, s));
    linalg::Matrix err = fps;
    err -= fps.transposed();
    err = linalg::congruence(x, err);
    const double err_norm = err.max_abs();

    if (options.diis_size > 0) {
      diis.push(fock, std::move(err));
      if (diis.ready()) fock = diis.extrapolate();
    }

    std::tie(c, eps) = solve_roothaan(fock);
    p = density_from_orbitals(c, n_occ);

    const double delta_e = e_elec - prev_energy;
    prev_energy = e_elec;
    EMC_LOG(kDebug) << "scf iter " << iter << " E_elec=" << e_elec
                    << " dE=" << delta_e << " |err|=" << err_norm;

    result.iterations = iter;
    result.electronic_energy = e_elec;
    if (iter > 1 && std::abs(delta_e) < options.energy_tolerance &&
        err_norm < options.error_tolerance) {
      result.converged = true;
      result.fock = fock;
      break;
    }
    result.fock = fock;
  }

  result.energy = result.electronic_energy + result.nuclear_repulsion;
  result.kinetic_energy = trace_product(p, t);
  result.orbital_energies = eps;
  result.density = std::move(p);
  return result;
}

ScfResult run_rhf(const Molecule& molecule, const BasisSet& basis,
                  const ScfOptions& options) {
  const FockBuilder builder(basis, options.screen_threshold);
  return run_rhf_with_builder(
      molecule, basis,
      [&builder](const linalg::Matrix& p) { return builder.build_g(p); },
      options);
}

}  // namespace emc::chem
