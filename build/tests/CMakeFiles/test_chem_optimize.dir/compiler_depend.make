# Empty compiler generated dependencies file for test_chem_optimize.
# This may be replaced when dependencies are built.
