#pragma once

// Minimal leveled logger. Thread-safe: each log line is formatted into a
// single string and written with one stream insertion. Every line carries
// a monotonic elapsed-time stamp (seconds since process start) and a
// thread tag, so interleaved output from the pgas runtime's rank threads
// stays attributable:
//
//   [INFO +0.001234s r3] fetched density stripe
//
// Threads get an automatic "T<n>" tag on first use; set_log_thread_tag
// overrides it for the calling thread (the pgas Runtime tags its rank
// threads "r<rank>").

#include <mutex>
#include <sstream>
#include <string>

namespace emc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Converts a level to its display tag ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Overrides the calling thread's log tag (empty restores the automatic
/// "T<n>" tag).
void set_log_thread_tag(const std::string& tag);
/// The calling thread's current tag (assigns the automatic one if unset).
const std::string& log_thread_tag();

namespace detail {
void log_write(LogLevel level, const std::string& message);
/// The full line log_write emits (minus the trailing newline); split out
/// so tests can check the format without capturing stderr.
std::string format_log_line(LogLevel level, const std::string& message);
}  // namespace detail

/// Log with streaming syntax: EMC_LOG(kInfo) << "tasks=" << n;
#define EMC_LOG(level)                                        \
  for (bool emc_log_once =                                    \
           (::emc::LogLevel::level >= ::emc::log_level());    \
       emc_log_once; emc_log_once = false)                    \
  ::emc::detail::LogLine(::emc::LogLevel::level)

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace emc
