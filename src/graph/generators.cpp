#include "graph/generators.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

namespace emc::graph {

CsrGraph make_grid_graph(int rows, int cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("make_grid_graph: empty grid");
  }
  CsrGraph::Builder b(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

CsrGraph make_random_graph(VertexId n, double p, emc::Rng& rng) {
  CsrGraph::Builder b(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.uniform() < p) b.add_edge(u, v);
    }
  }
  return b.build();
}

Hypergraph make_random_hypergraph(VertexId n_vertices, NetId n_nets,
                                  int pins_per_net, double w_lo, double w_hi,
                                  emc::Rng& rng) {
  if (pins_per_net > n_vertices) {
    throw std::invalid_argument("make_random_hypergraph: too many pins");
  }
  Hypergraph::Builder b(n_vertices);
  const double log_lo = std::log(w_lo), log_hi = std::log(w_hi);
  for (VertexId v = 0; v < n_vertices; ++v) {
    b.set_vertex_weight(v, std::exp(rng.uniform(log_lo, log_hi)));
  }
  for (NetId e = 0; e < n_nets; ++e) {
    std::set<VertexId> pins;
    while (static_cast<int>(pins.size()) < pins_per_net) {
      pins.insert(static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(n_vertices))));
    }
    b.add_net(std::vector<VertexId>(pins.begin(), pins.end()));
  }
  return b.build();
}

}  // namespace emc::graph
