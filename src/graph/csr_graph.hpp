#pragma once

// Compressed-sparse-row undirected graph with vertex and edge weights.

#include <cstdint>
#include <span>
#include <vector>

namespace emc::graph {

using VertexId = std::int32_t;

/// Immutable CSR graph. Build through Builder (handles dedup/symmetry).
class CsrGraph {
 public:
  class Builder {
   public:
    explicit Builder(VertexId n_vertices);

    /// Adds an undirected edge; duplicate (u,v) insertions accumulate
    /// weight. Self-loops are rejected.
    void add_edge(VertexId u, VertexId v, double weight = 1.0);
    void set_vertex_weight(VertexId v, double w);

    CsrGraph build();

   private:
    VertexId n_;
    std::vector<std::vector<std::pair<VertexId, double>>> adj_;
    std::vector<double> vertex_weights_;
  };

  VertexId vertex_count() const {
    return static_cast<VertexId>(offsets_.size()) - 1;
  }
  std::size_t edge_count() const { return targets_.size() / 2; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[static_cast<std::size_t>(v)],
            targets_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }
  std::span<const double> edge_weights(VertexId v) const {
    return {weights_.data() + offsets_[static_cast<std::size_t>(v)],
            weights_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }
  double vertex_weight(VertexId v) const {
    return vertex_weights_[static_cast<std::size_t>(v)];
  }
  std::size_t degree(VertexId v) const { return neighbors(v).size(); }
  double total_vertex_weight() const;

 private:
  CsrGraph() = default;

  std::vector<std::size_t> offsets_;
  std::vector<VertexId> targets_;
  std::vector<double> weights_;
  std::vector<double> vertex_weights_;
};

}  // namespace emc::graph
