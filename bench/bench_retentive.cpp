// EXP-9 — retentive work stealing over SCF iterations: the iterative
// kernel repeats the same task list every SCF cycle, so seeding each
// iteration with the previous iteration's final placement amortizes the
// balancing work. Compare per-iteration steals and makespan against
// independent (non-retentive) work stealing.

#include <iostream>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-9: retentive work stealing across SCF iterations (P = 256)",
      "retention drives steal traffic toward zero across iterations",
      model);

  sim::MachineConfig machine = emc::bench::make_machine(256);
  const auto block = lb::block_assignment(model.task_count(), 256);
  const int iterations = 10;

  const auto retentive =
      sim::simulate_retentive(machine, model.costs, block, iterations);

  // Persistence-based inspector-executor alternative: rebalance cost =
  // the LPT balancer's measured wall time on this very instance.
  emc::Timer lpt_timer;
  (void)lb::lpt_assignment(model.costs, machine.n_procs);
  const double lpt_cost = lpt_timer.seconds();
  const auto persistence = sim::simulate_persistence(
      machine, model.costs, block, iterations, lpt_cost);

  Table table({"iteration", "retentive_ms", "retentive_steals",
               "plain_ms", "plain_steals", "persistence_ms"});
  table.set_precision(3);
  double retentive_total = 0.0, plain_total = 0.0, persist_total = 0.0;
  for (int i = 0; i < iterations; ++i) {
    // "Plain" restarts from the block distribution every iteration (only
    // the victim-selection seed varies).
    sim::StealOptions options;
    options.seed = 7 + static_cast<std::uint64_t>(i);
    const sim::SimResult plain =
        sim::simulate_work_stealing(machine, model.costs, block, options);
    const auto& ret = retentive[static_cast<std::size_t>(i)];
    const auto& per = persistence[static_cast<std::size_t>(i)];
    retentive_total += ret.makespan;
    plain_total += plain.makespan;
    persist_total += per.makespan;
    table.add_row({static_cast<std::int64_t>(i + 1), ret.makespan * 1e3,
                   ret.steals, plain.makespan * 1e3, plain.steals,
                   per.makespan * 1e3});
  }
  table.print(std::cout, "per-iteration comparison");
  std::cout << "\ncumulative makespan over " << iterations
            << " iterations:\n  retentive stealing " << retentive_total * 1e3
            << " ms\n  plain stealing     " << plain_total * 1e3
            << " ms\n  persistence (LPT)  " << persist_total * 1e3
            << " ms (includes " << lpt_cost * 1e3
            << " ms rebalance per round)\n";
  return 0;
}
