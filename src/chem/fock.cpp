#include "chem/fock.hpp"

#include <array>
#include <cmath>

#include "chem/eri.hpp"

namespace emc::chem {

FockBuilder::FockBuilder(const BasisSet& basis, double screen_threshold)
    : basis_(&basis), screen_threshold_(screen_threshold), pairs_(basis),
      schwarz_(schwarz_matrix(pairs_)) {}

std::vector<ShellPairTask> FockBuilder::make_tasks() const {
  std::vector<ShellPairTask> tasks;
  const int n = static_cast<int>(basis_->shell_count());
  tasks.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) + 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      tasks.push_back(ShellPairTask{i, j, pair_rank(i, j)});
    }
  }
  return tasks;
}

template <typename QuartetFn>
void FockBuilder::for_each_ket_pair(const ShellPairTask& task,
                                    QuartetFn&& fn) const {
  const double q_bra =
      schwarz_(static_cast<std::size_t>(task.si),
               static_cast<std::size_t>(task.sj));
  const int n = static_cast<int>(basis_->shell_count());
  for (int k = 0; k < n; ++k) {
    for (int l = 0; l <= k; ++l) {
      if (pair_rank(k, l) > task.rank) return;
      const double q_ket = schwarz_(static_cast<std::size_t>(k),
                                    static_cast<std::size_t>(l));
      if (screen_threshold_ > 0.0 && q_bra * q_ket < screen_threshold_) {
        continue;
      }
      fn(k, l);
    }
  }
}

std::uint64_t FockBuilder::count_task_quartets(
    const ShellPairTask& task) const {
  std::uint64_t count = 0;
  for_each_ket_pair(task, [&](int, int) { ++count; });
  return count;
}

TaskCostFeatures FockBuilder::task_cost_features(
    const ShellPairTask& task) const {
  const auto& shells = basis_->shells();
  const Shell& si = shells[static_cast<std::size_t>(task.si)];
  const Shell& sj = shells[static_cast<std::size_t>(task.sj)];
  const double bra_fn =
      static_cast<double>(si.function_count() * sj.function_count());
  const double bra_prim =
      static_cast<double>(si.exponents.size() * sj.exponents.size());

  TaskCostFeatures f;
  // Even a fully-screened task pays its ket screening scan.
  f.scan = static_cast<double>(task.rank + 1);
  for_each_ket_pair(task, [&](int k, int l) {
    const Shell& sk = shells[static_cast<std::size_t>(k)];
    const Shell& sl = shells[static_cast<std::size_t>(l)];
    const double prim =
        bra_prim *
        static_cast<double>(sk.exponents.size() * sl.exponents.size());
    const double fn =
        bra_fn *
        static_cast<double>(sk.function_count() * sl.function_count());
    f.quartets += 1.0;
    f.prim_quartets += prim;
    f.prim_fn += prim * fn;
  });
  return f;
}

double FockBuilder::estimate_task_cost(const ShellPairTask& task) const {
  // Quartet cost model (in abstract flop units): a fixed dispatch cost,
  // a per-ket-pair screening-scan term, a per-quartet term (block setup,
  // digestion), a per-primitive-quartet term (Boys + HermiteR recurrence
  // — the HermiteE tables are now amortized by the shell-pair cache),
  // and a per-primitive-quartet-function term (the t/u/v contraction
  // loops), which defines the unit. Constants re-fitted by least squares
  // against wall-time measurements of the shell-pair-cached kernel
  // (bench_kernel --calibrate; water/water2 in STO-3G, 6-31G, 6-31G* and
  // alkane4/STO-3G, 534 tasks; non-negative active-set fit, Pearson 0.95
  // / Spearman 0.98). Versus the seed kernel the prim-quartet weight
  // collapsed (3.0 -> 0.43: tabulated Boys plus reused HermiteR
  // workspace). Only the two primitive-scaling weights are resolvable
  // from wall time; dispatch, scan, and per-quartet overheads sit below
  // timer noise and keep nominal sub-resolution values (~100ns call
  // overhead, ~2.5ns per screening lookup, ~250ns block setup + digest)
  // so that screened-out tasks still carry their real, tiny cost floor.
  constexpr double kPerQuartet = 5.0;
  constexpr double kPerPrimQuartet = 0.43;
  constexpr double kTaskDispatch = 2.0;
  constexpr double kKetScanPerPair = 0.05;

  const TaskCostFeatures f = task_cost_features(task);
  return kTaskDispatch + kKetScanPerPair * f.scan + kPerQuartet * f.quartets +
         kPerPrimQuartet * f.prim_quartets + f.prim_fn;
}

namespace {

/// Digests quartet block (ij|kl) into J/K for every distinct index
/// permutation of the 8-fold symmetry orbit.
void digest_quartet(const Shell& si, const Shell& sj, const Shell& sk,
                    const Shell& sl, const EriBlock& block,
                    const linalg::Matrix& density, linalg::Matrix& j_accum,
                    linalg::Matrix& k_accum) {
  // Shell-level orbit of (i,j,k,l) under the 8 permutational symmetries.
  struct Perm {
    int shells[4];
    // maps orbit-member function indices back to block indices
    int order[4];
  };
  const int i = si.first_function, j = sj.first_function,
            k = sk.first_function, l = sl.first_function;
  const std::array<Perm, 8> orbit{{
      {{i, j, k, l}, {0, 1, 2, 3}},
      {{j, i, k, l}, {1, 0, 2, 3}},
      {{i, j, l, k}, {0, 1, 3, 2}},
      {{j, i, l, k}, {1, 0, 3, 2}},
      {{k, l, i, j}, {2, 3, 0, 1}},
      {{l, k, i, j}, {3, 2, 0, 1}},
      {{k, l, j, i}, {2, 3, 1, 0}},
      {{l, k, j, i}, {3, 2, 1, 0}},
  }};

  // Deduplicate orbit members that coincide (when shells repeat). Two
  // members generate the same set of (mu,nu,la,sg) tuples iff their shell
  // base offsets agree in all four slots: equal offsets mean the same
  // shell, so the slot covers the same function range either way.
  std::array<bool, 8> use{};
  for (std::size_t m = 0; m < orbit.size(); ++m) {
    use[m] = true;
    for (std::size_t prev = 0; prev < m; ++prev) {
      if (!use[prev]) continue;
      const bool same = orbit[m].shells[0] == orbit[prev].shells[0] &&
                        orbit[m].shells[1] == orbit[prev].shells[1] &&
                        orbit[m].shells[2] == orbit[prev].shells[2] &&
                        orbit[m].shells[3] == orbit[prev].shells[3];
      if (same) {
        use[m] = false;
        break;
      }
    }
  }

  const int counts[4] = {block.na(), block.nb(), block.nc(), block.nd()};
  for (std::size_t m = 0; m < orbit.size(); ++m) {
    if (!use[m]) continue;
    const Perm& perm = orbit[m];
    // Function counts as seen in this permutation's slot order.
    const int n0 = counts[perm.order[0]];
    const int n1 = counts[perm.order[1]];
    const int n2 = counts[perm.order[2]];
    const int n3 = counts[perm.order[3]];
    for (int f0 = 0; f0 < n0; ++f0) {
      for (int f1 = 0; f1 < n1; ++f1) {
        for (int f2 = 0; f2 < n2; ++f2) {
          for (int f3 = 0; f3 < n3; ++f3) {
            int fblock[4];
            fblock[perm.order[0]] = f0;
            fblock[perm.order[1]] = f1;
            fblock[perm.order[2]] = f2;
            fblock[perm.order[3]] = f3;
            const double g =
                block(fblock[0], fblock[1], fblock[2], fblock[3]);
            if (g == 0.0) continue;
            const auto mu = static_cast<std::size_t>(perm.shells[0] + f0);
            const auto nu = static_cast<std::size_t>(perm.shells[1] + f1);
            const auto la = static_cast<std::size_t>(perm.shells[2] + f2);
            const auto sg = static_cast<std::size_t>(perm.shells[3] + f3);
            // J(mu,nu) += P(la,sg) (mu nu|la sg)
            j_accum(mu, nu) += density(la, sg) * g;
            // K(mu,la) += P(nu,sg) (mu nu|la sg)
            k_accum(mu, la) += density(nu, sg) * g;
          }
        }
      }
    }
  }
}

}  // namespace

void FockBuilder::execute_task(const ShellPairTask& task,
                               const linalg::Matrix& density,
                               linalg::Matrix& j_accum,
                               linalg::Matrix& k_accum) const {
  const auto& shells = basis_->shells();
  const Shell& si = shells[static_cast<std::size_t>(task.si)];
  const Shell& sj = shells[static_cast<std::size_t>(task.sj)];
  const ShellPairData& bra = pairs_.pair(task.si, task.sj);

  for_each_ket_pair(task, [&](int k, int l) {
    const Shell& sk = shells[static_cast<std::size_t>(k)];
    const Shell& sl = shells[static_cast<std::size_t>(l)];
    const EriBlock block = eri_shell_quartet(bra, pairs_.pair(k, l));
    digest_quartet(si, sj, sk, sl, block, density, j_accum, k_accum);
  });
}

linalg::Matrix FockBuilder::combine_jk(const linalg::Matrix& j_accum,
                                       const linalg::Matrix& k_accum) {
  const std::size_t n = j_accum.rows();
  linalg::Matrix g(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const double jv = 0.5 * (j_accum(r, c) + j_accum(c, r));
      const double kv = 0.5 * (k_accum(r, c) + k_accum(c, r));
      g(r, c) = jv - 0.5 * kv;
    }
  }
  return g;
}

linalg::Matrix FockBuilder::build_g(const linalg::Matrix& density) const {
  const auto n = static_cast<std::size_t>(basis_->function_count());
  linalg::Matrix j_accum(n, n), k_accum(n, n);
  for (const ShellPairTask& task : make_tasks()) {
    execute_task(task, density, j_accum, k_accum);
  }
  return combine_jk(j_accum, k_accum);
}

}  // namespace emc::chem
