#pragma once

// Chase–Lev work-stealing deque (fixed capacity), after Chase & Lev
// (SPAA'05) with the C11 memory-order treatment of Lê et al. (PPoPP'13).
//
// The owner pushes and pops at the bottom without contention; thieves
// steal from the top with a CAS. Capacity is fixed at construction —
// callers size it to the total task count, which bounds any rank's queue.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace emc::exec {

class WsDeque {
 public:
  explicit WsDeque(std::size_t capacity)
      : buffer_(capacity), top_(0), bottom_(0) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  /// Owner-only. Returns false if the deque is full.
  bool push(std::int64_t value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(buffer_.size())) return false;
    buffer_[index(b)].store(value, std::memory_order_relaxed);
    // Publish the element before making it visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner-only. Takes the most recently pushed element.
  std::optional<std::int64_t> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {  // deque was empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::int64_t value =
        buffer_[index(b)].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // Lost the race: a thief took the element.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Thief-side. Takes the oldest element, or nullopt if empty/raced.
  std::optional<std::int64_t> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    const std::int64_t value =
        buffer_[index(t)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost to another thief or the owner
    }
    return value;
  }

  /// Approximate size. Safe to call concurrently, but both loads are
  /// relaxed: mid-run the value may be stale or torn relative to any
  /// other observation (it can even exceed the number of elements a
  /// subsequent pop/steal sequence yields). Use it only as a heuristic
  /// (steal-half sizing) or AFTER the owning run has joined — the
  /// snapshot-after-join contract of MetricsRegistry::snapshot.
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  std::size_t index(std::int64_t i) const {
    return static_cast<std::size_t>(i) % buffer_.size();
  }

  std::vector<std::atomic<std::int64_t>> buffer_;
  std::atomic<std::int64_t> top_;
  std::atomic<std::int64_t> bottom_;
};

}  // namespace emc::exec
