#include "chem/integrals.hpp"

#include <cmath>
#include <vector>

#include "chem/boys.hpp"
#include "chem/constants.hpp"

namespace emc::chem {

HermiteE::HermiteE(int imax, int jmax, double a, double b, double ax,
                   double bx)
    : imax_(imax), jmax_(jmax), tmax_(imax + jmax),
      table_(static_cast<std::size_t>(imax + 1) *
                 static_cast<std::size_t>(jmax + 1) *
                 static_cast<std::size_t>(imax + jmax + 1),
             0.0) {
  const double p = a + b;
  const double mu = a * b / p;
  const double qx = ax - bx;
  const double px = (a * ax + b * bx) / p;
  const double pa = px - ax;
  const double pb = px - bx;
  const double inv2p = 1.0 / (2.0 * p);

  auto at = [this](int i, int j, int t) -> double& {
    return table_[index(i, j, t)];
  };
  auto get = [this](int i, int j, int t) -> double {
    if (t < 0 || t > i + j) return 0.0;
    return table_[index(i, j, t)];
  };

  at(0, 0, 0) = std::exp(-mu * qx * qx);

  // Raise i along the j = 0 column.
  for (int i = 0; i < imax_; ++i) {
    for (int t = 0; t <= i + 1; ++t) {
      at(i + 1, 0, t) = inv2p * get(i, 0, t - 1) + pa * get(i, 0, t) +
                        static_cast<double>(t + 1) * get(i, 0, t + 1);
    }
  }
  // Raise j for every i.
  for (int i = 0; i <= imax_; ++i) {
    for (int j = 0; j < jmax_; ++j) {
      for (int t = 0; t <= i + j + 1; ++t) {
        at(i, j + 1, t) = inv2p * get(i, j, t - 1) + pb * get(i, j, t) +
                          static_cast<double>(t + 1) * get(i, j, t + 1);
      }
    }
  }
}

HermiteR::HermiteR(int order)
    : order_(order),
      table_(static_cast<std::size_t>(order + 1) *
                 static_cast<std::size_t>(order + 1) *
                 static_cast<std::size_t>(order + 1),
             0.0),
      scratch_(table_.size(), 0.0),
      fbuf_(static_cast<std::size_t>(order) + 1, 0.0) {}

HermiteR::HermiteR(int order, double p, const Vec3& pc, bool reference_boys)
    : HermiteR(order) {
  recompute(p, pc, reference_boys);
}

void HermiteR::recompute(double p, const Vec3& pc, bool reference_boys) {
  const int order = order_;
  const double r2 = pc[0] * pc[0] + pc[1] * pc[1] + pc[2] * pc[2];
  if (reference_boys) {
    boys_reference(p * r2, fbuf_);
  } else {
    boys(p * r2, fbuf_);
  }

  // aux[n] holds R^n_{tuv} for t+u+v <= order - n; build n downward,
  // ping-ponging between scratch_ (the level being filled) and table_
  // (the level above it). The loop runs an odd number of swaps, so the
  // final level n = 0 always lands in table_.
  const auto n1 = static_cast<std::size_t>(order + 1);
  auto idx = [n1](int t, int u, int v) {
    return (static_cast<std::size_t>(t) * n1 + static_cast<std::size_t>(u)) *
               n1 +
           static_cast<std::size_t>(v);
  };

  std::vector<double>& next = table_;
  std::vector<double>& cur = scratch_;
  std::fill(next.begin(), next.end(), 0.0);
  // Scale in place: fbuf_[n] becomes R^n_{000} = (-2p)^n F_n.
  double minus2p_pow = 1.0;
  for (int n = 0; n <= order; ++n) {
    fbuf_[static_cast<std::size_t>(n)] *= minus2p_pow;
    minus2p_pow *= -2.0 * p;
  }

  for (int n = order; n >= 0; --n) {
    std::fill(cur.begin(), cur.end(), 0.0);
    cur[idx(0, 0, 0)] = fbuf_[static_cast<std::size_t>(n)];
    const int budget = order - n;
    // Fill increasing total order so dependencies (one index lower, read
    // from `next` = level n+1) are available.
    for (int total = 1; total <= budget; ++total) {
      for (int t = 0; t <= total; ++t) {
        for (int u = 0; u + t <= total; ++u) {
          const int v = total - t - u;
          double val = 0.0;
          if (t > 0) {
            val = (t > 1 ? static_cast<double>(t - 1) *
                               next[idx(t - 2, u, v)]
                         : 0.0) +
                  pc[0] * next[idx(t - 1, u, v)];
          } else if (u > 0) {
            val = (u > 1 ? static_cast<double>(u - 1) *
                               next[idx(t, u - 2, v)]
                         : 0.0) +
                  pc[1] * next[idx(t, u - 1, v)];
          } else {  // v > 0
            val = (v > 1 ? static_cast<double>(v - 1) *
                               next[idx(t, u, v - 2)]
                         : 0.0) +
                  pc[2] * next[idx(t, u, v - 1)];
          }
          cur[idx(t, u, v)] = val;
        }
      }
    }
    // The just-filled level becomes "next" for level n-1; after the
    // final iteration this leaves level 0 in table_.
    std::swap(cur, next);
  }
}

namespace {

/// Iterates a shell pair's primitive products, invoking
/// fn(ca*cb, a, b) for each primitive pair with combined coefficient.
template <typename Fn>
void for_each_primitive_pair(const Shell& sa, const Shell& sb, Fn&& fn) {
  for (std::size_t pa = 0; pa < sa.exponents.size(); ++pa) {
    for (std::size_t pb = 0; pb < sb.exponents.size(); ++pb) {
      fn(sa.coefficients[pa] * sb.coefficients[pb], sa.exponents[pa],
         sb.exponents[pb]);
    }
  }
}

/// Generic one-electron shell-pair block driver: `prim` computes the
/// (component-a, component-b) primitive integral given the three
/// per-dimension HermiteE tables and the exponents.
template <typename PrimFn>
linalg::Matrix one_electron_block(const Shell& sa, const Shell& sb,
                                  int extra_order, PrimFn&& prim) {
  const auto comps_a = cartesian_components(sa.l);
  const auto comps_b = cartesian_components(sb.l);
  linalg::Matrix block(comps_a.size(), comps_b.size());

  for_each_primitive_pair(sa, sb, [&](double cc, double a, double b) {
    const HermiteE ex(sa.l, sb.l + extra_order, a, b, sa.center[0],
                      sb.center[0]);
    const HermiteE ey(sa.l, sb.l + extra_order, a, b, sa.center[1],
                      sb.center[1]);
    const HermiteE ez(sa.l, sb.l + extra_order, a, b, sa.center[2],
                      sb.center[2]);
    for (std::size_t ia = 0; ia < comps_a.size(); ++ia) {
      for (std::size_t ib = 0; ib < comps_b.size(); ++ib) {
        block(ia, ib) += cc * prim(ex, ey, ez, a, b, comps_a[ia], comps_b[ib]);
      }
    }
  });

  // Apply per-component contracted normalization.
  for (std::size_t ia = 0; ia < comps_a.size(); ++ia) {
    const double na =
        sa.component_norm(comps_a[ia].lx, comps_a[ia].ly, comps_a[ia].lz);
    for (std::size_t ib = 0; ib < comps_b.size(); ++ib) {
      const double nb =
          sb.component_norm(comps_b[ib].lx, comps_b[ib].ly, comps_b[ib].lz);
      block(ia, ib) *= na * nb;
    }
  }
  return block;
}

/// Assembles a full matrix from a shell-pair block functor.
template <typename BlockFn>
linalg::Matrix assemble(const BasisSet& basis, BlockFn&& block_fn) {
  linalg::Matrix m(static_cast<std::size_t>(basis.function_count()),
                   static_cast<std::size_t>(basis.function_count()));
  const auto& shells = basis.shells();
  for (std::size_t i = 0; i < shells.size(); ++i) {
    for (std::size_t j = i; j < shells.size(); ++j) {
      const linalg::Matrix block = block_fn(shells[i], shells[j]);
      const auto r0 = static_cast<std::size_t>(shells[i].first_function);
      const auto c0 = static_cast<std::size_t>(shells[j].first_function);
      for (std::size_t r = 0; r < block.rows(); ++r) {
        for (std::size_t c = 0; c < block.cols(); ++c) {
          m(r0 + r, c0 + c) = block(r, c);
          m(c0 + c, r0 + r) = block(r, c);
        }
      }
    }
  }
  return m;
}

/// 1D overlap factor including sqrt(pi/p).
double s1d(const HermiteE& e, int i, int j, double p) {
  return e(i, j, 0) * std::sqrt(kPi / p);
}

}  // namespace

linalg::Matrix shell_overlap(const Shell& sa, const Shell& sb) {
  return one_electron_block(
      sa, sb, /*extra_order=*/0,
      [](const HermiteE& ex, const HermiteE& ey, const HermiteE& ez, double a,
         double b, const CartesianComponent& ca,
         const CartesianComponent& cb) {
        const double p = a + b;
        return s1d(ex, ca.lx, cb.lx, p) * s1d(ey, ca.ly, cb.ly, p) *
               s1d(ez, ca.lz, cb.lz, p);
      });
}

linalg::Matrix overlap_matrix(const BasisSet& basis) {
  return assemble(basis, [](const Shell& a, const Shell& b) {
    return shell_overlap(a, b);
  });
}

linalg::Matrix kinetic_matrix(const BasisSet& basis) {
  auto block = [](const Shell& sa, const Shell& sb) {
    // Need E up to j+2 for the shifted overlaps in the 1D kinetic form.
    return one_electron_block(
        sa, sb, /*extra_order=*/2,
        [](const HermiteE& ex, const HermiteE& ey, const HermiteE& ez,
           double a, double b, const CartesianComponent& ca,
           const CartesianComponent& cb) {
          const double p = a + b;
          auto t1d = [&](const HermiteE& e, int i, int j) {
            // T_ij = -2 b^2 S_{i,j+2} + b(2j+1) S_ij - j(j-1)/2 S_{i,j-2}
            double t = -2.0 * b * b * s1d(e, i, j + 2, p) +
                       b * (2.0 * static_cast<double>(j) + 1.0) *
                           s1d(e, i, j, p);
            if (j >= 2) {
              t -= 0.5 * static_cast<double>(j) *
                   static_cast<double>(j - 1) * s1d(e, i, j - 2, p);
            }
            return t;
          };
          const double sx = s1d(ex, ca.lx, cb.lx, p);
          const double sy = s1d(ey, ca.ly, cb.ly, p);
          const double sz = s1d(ez, ca.lz, cb.lz, p);
          return t1d(ex, ca.lx, cb.lx) * sy * sz +
                 sx * t1d(ey, ca.ly, cb.ly) * sz +
                 sx * sy * t1d(ez, ca.lz, cb.lz);
        });
  };
  return assemble(basis, block);
}

linalg::Matrix nuclear_attraction_matrix(const BasisSet& basis,
                                         const Molecule& molecule) {
  auto block = [&molecule](const Shell& sa, const Shell& sb) {
    const auto comps_a = cartesian_components(sa.l);
    const auto comps_b = cartesian_components(sb.l);
    linalg::Matrix out(comps_a.size(), comps_b.size());

    for_each_primitive_pair(sa, sb, [&](double cc, double a, double b) {
      const double p = a + b;
      const Vec3 pcenter{(a * sa.center[0] + b * sb.center[0]) / p,
                         (a * sa.center[1] + b * sb.center[1]) / p,
                         (a * sa.center[2] + b * sb.center[2]) / p};
      const HermiteE ex(sa.l, sb.l, a, b, sa.center[0], sb.center[0]);
      const HermiteE ey(sa.l, sb.l, a, b, sa.center[1], sb.center[1]);
      const HermiteE ez(sa.l, sb.l, a, b, sa.center[2], sb.center[2]);
      const double pref = 2.0 * kPi / p;

      for (const Atom& atom : molecule.atoms()) {
        const Vec3 pc{pcenter[0] - atom.xyz[0], pcenter[1] - atom.xyz[1],
                      pcenter[2] - atom.xyz[2]};
        const HermiteR r(sa.l + sb.l, p, pc);
        for (std::size_t ia = 0; ia < comps_a.size(); ++ia) {
          for (std::size_t ib = 0; ib < comps_b.size(); ++ib) {
            const auto& A = comps_a[ia];
            const auto& B = comps_b[ib];
            double sum = 0.0;
            for (int t = 0; t <= A.lx + B.lx; ++t) {
              const double et = ex(A.lx, B.lx, t);
              if (et == 0.0) continue;
              for (int u = 0; u <= A.ly + B.ly; ++u) {
                const double eu = ey(A.ly, B.ly, u);
                if (eu == 0.0) continue;
                for (int v = 0; v <= A.lz + B.lz; ++v) {
                  sum += et * eu * ez(A.lz, B.lz, v) * r(t, u, v);
                }
              }
            }
            out(ia, ib) -= cc * pref * static_cast<double>(atom.z) * sum;
          }
        }
      }
    });

    for (std::size_t ia = 0; ia < comps_a.size(); ++ia) {
      const double na =
          sa.component_norm(comps_a[ia].lx, comps_a[ia].ly, comps_a[ia].lz);
      for (std::size_t ib = 0; ib < comps_b.size(); ++ib) {
        const double nb = sb.component_norm(comps_b[ib].lx, comps_b[ib].ly,
                                            comps_b[ib].lz);
        out(ia, ib) *= na * nb;
      }
    }
    return out;
  };
  return assemble(basis, block);
}

std::array<linalg::Matrix, 3> dipole_matrices(const BasisSet& basis,
                                              const Vec3& origin) {
  std::array<linalg::Matrix, 3> out;
  for (int dim = 0; dim < 3; ++dim) {
    auto block = [dim, &origin](const Shell& sa, const Shell& sb) {
      return one_electron_block(
          sa, sb, /*extra_order=*/0,
          [dim, &origin, &sa, &sb](const HermiteE& ex, const HermiteE& ey,
                                   const HermiteE& ez, double a, double b,
                                   const CartesianComponent& ca,
                                   const CartesianComponent& cb) {
            const double p = a + b;
            // <a| x |b> = (E_1 + Px E_0) sqrt(pi/p) in the moment
            // dimension, plain overlaps in the others; shift by origin.
            const HermiteE* es[3] = {&ex, &ey, &ez};
            const int la[3] = {ca.lx, ca.ly, ca.lz};
            const int lb[3] = {cb.lx, cb.ly, cb.lz};
            double value = 1.0;
            for (int d = 0; d < 3; ++d) {
              const HermiteE& e = *es[d];
              if (d == dim) {
                const double pd =
                    (a * sa.center[static_cast<std::size_t>(d)] +
                     b * sb.center[static_cast<std::size_t>(d)]) /
                    p;
                value *= (e(la[d], lb[d], 1) +
                          (pd - origin[static_cast<std::size_t>(d)]) *
                              e(la[d], lb[d], 0)) *
                         std::sqrt(kPi / p);
              } else {
                value *= s1d(e, la[d], lb[d], p);
              }
            }
            return value;
          });
    };
    out[static_cast<std::size_t>(dim)] = assemble(basis, block);
  }
  return out;
}

Vec3 dipole_moment(const linalg::Matrix& density, const BasisSet& basis,
                   const Molecule& molecule, const Vec3& origin) {
  const auto moments = dipole_matrices(basis, origin);
  Vec3 mu{};
  for (int d = 0; d < 3; ++d) {
    const auto du = static_cast<std::size_t>(d);
    double nuclear = 0.0;
    for (const Atom& atom : molecule.atoms()) {
      nuclear += static_cast<double>(atom.z) * (atom.xyz[du] - origin[du]);
    }
    double electronic = 0.0;
    const linalg::Matrix& m = moments[du];
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        electronic += density(r, c) * m(r, c);
      }
    }
    mu[du] = nuclear - electronic;
  }
  return mu;
}

linalg::Matrix core_hamiltonian(const BasisSet& basis,
                                const Molecule& molecule) {
  linalg::Matrix h = kinetic_matrix(basis);
  h += nuclear_attraction_matrix(basis, molecule);
  return h;
}

}  // namespace emc::chem
