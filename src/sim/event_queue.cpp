#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::sim {

const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBinaryHeap:
      return "heap";
    case SchedulerKind::kCalendarQueue:
      return "calendar";
  }
  return "?";
}

SchedulerKind parse_scheduler(const std::string& name) {
  if (name == "heap") return SchedulerKind::kBinaryHeap;
  if (name == "calendar" || name == "calendar-queue") {
    return SchedulerKind::kCalendarQueue;
  }
  throw std::invalid_argument("parse_scheduler: unknown scheduler '" +
                              name + "'");
}

EventQueue::EventQueue(SchedulerKind kind, std::size_t expected)
    : kind_(kind) {
  if (kind_ == SchedulerKind::kBinaryHeap) {
    std::vector<SimEvent> storage;
    storage.reserve(expected);
    heap_ = std::priority_queue<SimEvent, std::vector<SimEvent>,
                                EventGreater>(EventGreater{},
                                              std::move(storage));
    return;
  }
  const std::size_t n_buckets =
      std::bit_ceil(std::max<std::size_t>(16, expected));
  buckets_.resize(n_buckets);
  mask_ = n_buckets - 1;
}

void EventQueue::push(double time, std::uint64_t key) {
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_.push(SimEvent{time, key});
    ++size_;
    return;
  }
  cal_push(time, key);
}

SimEvent EventQueue::pop() {
  if (kind_ == SchedulerKind::kBinaryHeap) {
    const SimEvent ev = heap_.top();
    heap_.pop();
    --size_;
    return ev;
  }
  return cal_pop();
}

void EventQueue::cal_push(double time, std::uint64_t key) {
  const Entry entry{std::bit_cast<std::uint64_t>(time), key};
  // Eager width fit: while the width is still the unfitted default,
  // pushing into an already-hot bucket that spans distinct times means
  // the default is badly wrong for this population — re-fit now instead
  // of paying a long memmove per push until the rate limit expires.
  // Equal-time bursts (min == max) never trigger this; they stay on the
  // O(1) append path and a re-fit could not spread them anyway.
  if (!fitted_ && size_ >= 64) {
    const Bucket& b = buckets_[epoch_of(time) & mask_];
    if (b.entries.size() - b.head > kHotBucket &&
        b.entries[b.head].tbits != b.entries.back().tbits) {
      rebuild(size_);
    }
  }
  const std::uint64_t epoch = epoch_of(time);
  Bucket& bucket = buckets_[epoch & mask_];
  if (bucket.empty()) {
    // Reclaim the dead prefix before starting a new population.
    bucket.entries.clear();
    bucket.head = 0;
    bucket.entries.push_back(entry);
  } else if (!(entry < bucket.entries.back())) {
    bucket.entries.push_back(entry);
  } else {
    // Out-of-order push: binary-insert into the live range. Rare in
    // DES usage (times and tie-break keys are pushed near-monotone);
    // cost is the tail memmove, not a later re-sort.
    const auto it = std::upper_bound(
        bucket.entries.begin() +
            static_cast<std::ptrdiff_t>(bucket.head),
        bucket.entries.end(), entry);
    bucket.entries.insert(it, entry);
  }
  ++size_;
  ++ops_since_rebuild_;
  // An event scheduled before the current scan day rewinds the scan so
  // it cannot be skipped (DES pops are monotone, so this is rare).
  if (epoch < cur_epoch_) cur_epoch_ = epoch;
  if (size_ > 2 * (mask_ + 1)) rebuild(size_);
}

SimEvent EventQueue::take_front(Bucket& bucket) {
  const Entry e = bucket.min();
  ++bucket.head;
  if (bucket.empty()) {
    bucket.entries.clear();
    bucket.head = 0;
  }
  --size_;
  const std::size_t n_buckets = mask_ + 1;
  if (n_buckets > 64 && size_ * 4 < n_buckets) rebuild(n_buckets / 2);
  return SimEvent{entry_time(e), e.key};
}

SimEvent EventQueue::cal_pop() {
  ++ops_since_rebuild_;
  std::size_t scanned = 0;
  while (true) {
    Bucket& bucket = buckets_[cur_epoch_ & mask_];
    if (!bucket.empty()) {
      // A bucket holding many live events means the day width is far
      // too wide for the population (clustered event times), making
      // every out-of-order push pay a long memmove. Re-fit the width to
      // the population's actual spread — rate-limited to once per
      // `size_` operations so an irreducible equal-time burst (span 0,
      // width unchanged) cannot thrash.
      if (bucket.entries.size() - bucket.head > kHotBucket &&
          size_ >= 64 &&
          (ops_since_rebuild_ > size_ ||
           (!fitted_ &&
            bucket.entries[bucket.head].tbits !=
                bucket.entries.back().tbits))) {
        rebuild(size_);
        scanned = 0;
        continue;
      }
      if (epoch_of(entry_time(bucket.min())) <= cur_epoch_) {
        return take_front(bucket);
      }
    }
    ++cur_epoch_;
    if (++scanned > mask_ + 1) {
      // A whole year of days without a due event: the population is
      // sparse relative to the current width. Re-fit (widening the
      // days) when allowed; otherwise fall back to a direct minimum
      // search.
      if (size_ >= 64 && ops_since_rebuild_ > size_) {
        rebuild(size_);
        scanned = 0;
        continue;
      }
      return direct_search();
    }
  }
}

SimEvent EventQueue::direct_search() {
  Bucket* best = nullptr;
  for (Bucket& bucket : buckets_) {
    if (bucket.empty()) continue;
    if (best == nullptr || bucket.min() < best->min()) {
      best = &bucket;
    }
  }
  // size_ > 0 is the caller's precondition, so best is never null.
  cur_epoch_ = epoch_of(entry_time(best->min()));
  return take_front(*best);
}

void EventQueue::rebuild(std::size_t n_buckets) {
  ops_since_rebuild_ = 0;
  const std::size_t nb =
      std::bit_ceil(std::max<std::size_t>(16, n_buckets));
  // Collect the live population and its time spread.
  std::vector<Entry> all;
  all.reserve(size_);
  for (Bucket& bucket : buckets_) {
    all.insert(all.end(),
               bucket.entries.begin() +
                   static_cast<std::ptrdiff_t>(bucket.head),
               bucket.entries.end());
    bucket.entries.clear();
    bucket.entries.shrink_to_fit();
    bucket.head = 0;
  }
  buckets_.resize(nb);
  mask_ = nb - 1;
  if (all.empty()) return;
  std::uint64_t min_bits = all.front().tbits;
  std::uint64_t max_bits = all.front().tbits;
  for (const Entry& e : all) {
    min_bits = std::min(min_bits, e.tbits);
    max_bits = std::max(max_bits, e.tbits);
  }
  const double span = std::bit_cast<double>(max_bits) -
                      std::bit_cast<double>(min_bits);
  if (span > 0.0) {
    // Aim for ~0.5 events per day at the current population: the day
    // is twice the mean inter-event gap.
    width_ = std::max(kMinWidth,
                      2.0 * span / static_cast<double>(all.size()));
    fitted_ = true;
  }
  cur_epoch_ = epoch_of(std::bit_cast<double>(min_bits));
  // Insert in globally sorted order so every bucket append hits the
  // O(1) fast path.
  std::sort(all.begin(), all.end());
  for (const Entry& e : all) {
    Bucket& bucket = buckets_[epoch_of(entry_time(e)) & mask_];
    bucket.entries.push_back(e);
  }
}

}  // namespace emc::sim
