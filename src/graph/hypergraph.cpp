#include "graph/hypergraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::graph {

Hypergraph::Builder::Builder(VertexId n_vertices)
    : n_(n_vertices),
      vertex_weights_(static_cast<std::size_t>(n_vertices), 1.0) {
  if (n_vertices < 0) {
    throw std::invalid_argument("Hypergraph: negative vertex count");
  }
}

NetId Hypergraph::Builder::add_net(std::vector<VertexId> pins,
                                   double weight) {
  for (VertexId v : pins) {
    if (v < 0 || v >= n_) {
      throw std::out_of_range("Hypergraph: pin out of range");
    }
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  nets_.push_back(std::move(pins));
  net_weights_.push_back(weight);
  return static_cast<NetId>(nets_.size()) - 1;
}

void Hypergraph::Builder::set_vertex_weight(VertexId v, double w) {
  vertex_weights_.at(static_cast<std::size_t>(v)) = w;
}

Hypergraph Hypergraph::Builder::build() {
  Hypergraph h;
  h.vertex_weights_ = std::move(vertex_weights_);
  h.net_weights_ = std::move(net_weights_);

  h.net_offsets_.resize(nets_.size() + 1, 0);
  for (std::size_t e = 0; e < nets_.size(); ++e) {
    h.net_offsets_[e + 1] = h.net_offsets_[e] + nets_[e].size();
  }
  h.pins_.reserve(h.net_offsets_.back());
  for (const auto& net : nets_) {
    h.pins_.insert(h.pins_.end(), net.begin(), net.end());
  }

  // Dual direction: nets per vertex.
  const auto nv = h.vertex_weights_.size();
  h.vertex_offsets_.assign(nv + 1, 0);
  for (VertexId v : h.pins_) {
    ++h.vertex_offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t v = 0; v < nv; ++v) {
    h.vertex_offsets_[v + 1] += h.vertex_offsets_[v];
  }
  h.vertex_nets_.resize(h.pins_.size());
  std::vector<std::size_t> cursor(h.vertex_offsets_.begin(),
                                  h.vertex_offsets_.end() - 1);
  for (std::size_t e = 0; e < nets_.size(); ++e) {
    for (VertexId v : nets_[e]) {
      h.vertex_nets_[cursor[static_cast<std::size_t>(v)]++] =
          static_cast<NetId>(e);
    }
  }
  return h;
}

double Hypergraph::total_vertex_weight() const {
  double s = 0.0;
  for (double w : vertex_weights_) s += w;
  return s;
}

double Hypergraph::connectivity_cut(std::span<const int> part,
                                    int n_parts) const {
  if (part.size() != vertex_weights_.size()) {
    throw std::invalid_argument("connectivity_cut: partition size mismatch");
  }
  double cut = 0.0;
  std::vector<int> seen_mark(static_cast<std::size_t>(n_parts), -1);
  for (NetId e = 0; e < net_count(); ++e) {
    int lambda = 0;
    for (VertexId v : pins(e)) {
      const int p = part[static_cast<std::size_t>(v)];
      if (p < 0 || p >= n_parts) {
        throw std::out_of_range("connectivity_cut: part id out of range");
      }
      if (seen_mark[static_cast<std::size_t>(p)] != e) {
        seen_mark[static_cast<std::size_t>(p)] = e;
        ++lambda;
      }
    }
    if (lambda > 1) {
      cut += net_weight(e) * static_cast<double>(lambda - 1);
    }
  }
  return cut;
}

}  // namespace emc::graph
