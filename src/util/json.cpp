#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace emc::util {

JsonValue JsonParser::parse() {
  JsonValue v = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing characters");
  return v;
}

void JsonParser::fail(const std::string& what) const {
  throw std::runtime_error("JSON parse error at byte " +
                           std::to_string(pos_) + ": " + what);
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

char JsonParser::peek() {
  skip_ws();
  if (pos_ >= text_.size()) fail("unexpected end");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool JsonParser::consume_literal(const char* lit) {
  const std::size_t n = std::string(lit).size();
  if (text_.compare(pos_, n, lit) == 0) {
    pos_ += n;
    return true;
  }
  return false;
}

JsonValue JsonParser::parse_value() {
  const char c = peek();
  if (c == '{') return parse_object();
  if (c == '[') return parse_array();
  if (c == '"') {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = parse_string();
    return v;
  }
  JsonValue v;
  if (consume_literal("true")) {
    v.kind = JsonValue::Kind::kBool;
    v.boolean = true;
    return v;
  }
  if (consume_literal("false")) {
    v.kind = JsonValue::Kind::kBool;
    return v;
  }
  if (consume_literal("null")) return v;
  // Non-finite doubles have no JSON representation; emitters that stream
  // them raw produce exactly these tokens (optionally signed). Name the
  // failure instead of falling through to a generic number error.
  for (const char* bad : {"nan", "NaN", "-nan", "-NaN", "inf", "Infinity",
                          "-inf", "-Infinity"}) {
    if (consume_literal(bad)) fail("non-finite literal is not valid JSON");
  }
  return parse_number();
}

std::string JsonParser::parse_string() {
  expect('"');
  std::string s;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\') {
      if (pos_ >= text_.size()) fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the code unit (surrogate pairs are encoded as
          // two separate units — structural fidelity is all the
          // validators need, and BMP round trips are exact).
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else if (code < 0x800) {
            s += static_cast<char>(0xc0 | (code >> 6));
            s += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            s += static_cast<char>(0xe0 | (code >> 12));
            s += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            s += static_cast<char>(0x80 | (code & 0x3f));
          }
          continue;
        }
        default: c = e; break;
      }
    }
    s += c;
  }
  if (pos_ >= text_.size()) fail("unterminated string");
  ++pos_;  // closing quote
  return s;
}

JsonValue JsonParser::parse_number() {
  const std::size_t start = pos_;
  if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
    ++pos_;
  }
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) fail("expected a value");
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  try {
    v.number = std::stod(text_.substr(start, pos_ - start));
  } catch (const std::exception&) {
    fail("bad number");
  }
  // stod accepts "inf"/"nan" spellings and saturates huge exponents like
  // 1e999 to infinity without throwing on all platforms — reject both.
  if (!std::isfinite(v.number)) fail("non-finite number");
  return v;
}

JsonValue JsonParser::parse_array() {
  expect('[');
  JsonValue v;
  v.kind = JsonValue::Kind::kArray;
  if (peek() == ']') {
    ++pos_;
    return v;
  }
  for (;;) {
    v.array.push_back(parse_value());
    const char c = peek();
    ++pos_;
    if (c == ']') return v;
    if (c != ',') fail("expected ',' or ']'");
  }
}

JsonValue JsonParser::parse_object() {
  expect('{');
  JsonValue v;
  v.kind = JsonValue::Kind::kObject;
  if (peek() == '}') {
    ++pos_;
    return v;
  }
  for (;;) {
    const std::string key = parse_string();
    expect(':');
    v.object[key] = parse_value();
    const char c = peek();
    ++pos_;
    if (c == '}') return v;
    if (c != ',') fail("expected ',' or '}'");
  }
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

std::string format_double(double v) {
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::write_double(double v) {
  // NaN/Inf have no JSON representation (streaming them produces `nan`
  // / `inf` tokens no parser accepts) — they are emitted as null.
  if (std::isfinite(v)) {
    out_ << format_double(v);
  } else {
    out_ << "null";
  }
}

}  // namespace emc::util
