#include "chem/element.hpp"

#include <array>
#include <stdexcept>

namespace emc::chem {

namespace {
constexpr std::array<const char*, 19> kSymbols = {
    "?",  "H",  "He", "Li", "Be", "B",  "C",  "N",  "O", "F",
    "Ne", "Na", "Mg", "Al", "Si", "P",  "S",  "Cl", "Ar"};
}  // namespace

int atomic_number(const std::string& symbol) {
  for (int z = 1; z < static_cast<int>(kSymbols.size()); ++z) {
    if (symbol == kSymbols[static_cast<std::size_t>(z)]) return z;
  }
  throw std::invalid_argument("atomic_number: unknown element '" + symbol +
                              "'");
}

const char* element_symbol(int z) {
  if (z < 1 || z >= static_cast<int>(kSymbols.size())) {
    throw std::invalid_argument("element_symbol: Z out of range: " +
                                std::to_string(z));
  }
  return kSymbols[static_cast<std::size_t>(z)];
}

}  // namespace emc::chem
