#pragma once

// Physical constants and unit conversions (atomic units internally).

namespace emc::chem {

/// 1 Angstrom in Bohr radii (CODATA 2018).
inline constexpr double kAngstromToBohr = 1.8897259886;
inline constexpr double kBohrToAngstrom = 1.0 / kAngstromToBohr;

inline constexpr double kPi = 3.14159265358979323846;

}  // namespace emc::chem
