# Empty compiler generated dependencies file for scf_hartree_fock.
# This may be replaced when dependencies are built.
