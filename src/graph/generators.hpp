#pragma once

// Synthetic graph/hypergraph generators for tests and benchmarks.

#include "graph/csr_graph.hpp"
#include "graph/hypergraph.hpp"
#include "util/rng.hpp"

namespace emc::graph {

/// 2D grid graph (rows x cols), 4-neighbor connectivity.
CsrGraph make_grid_graph(int rows, int cols);

/// Erdos–Renyi G(n, p) with deterministic seed.
CsrGraph make_random_graph(VertexId n, double p, emc::Rng& rng);

/// Random k-uniform hypergraph: `n_nets` nets of `pins_per_net` distinct
/// pins each, vertex weights drawn log-uniformly in [w_lo, w_hi] to mimic
/// heavy-tailed task costs.
Hypergraph make_random_hypergraph(VertexId n_vertices, NetId n_nets,
                                  int pins_per_net, double w_lo, double w_hi,
                                  emc::Rng& rng);

}  // namespace emc::graph
