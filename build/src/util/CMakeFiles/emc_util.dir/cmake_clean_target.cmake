file(REMOVE_RECURSE
  "libemc_util.a"
)
