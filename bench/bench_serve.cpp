// EXP-14 driver: SCF-as-a-service under load. A multi-tenant stream of
// Fock-build / SCF requests (mixed molecules and basis sets, heavy-
// tailed sizes) is pushed through serve::ScfServer, and the driver
// GATES the serving layer's deterministic contracts while reporting
// advisory latency/throughput envelopes:
//
//   1. Request-level determinism. For a fixed job list, every job's
//      result bits (Fock G digest, SCF energy) are identical across
//      pool sizes {1, 2, 4} — parallelism is across jobs only.
//   2. Cache exactness. Single-flight lookups make the cross-request
//      FockCache's miss count equal the number of DISTINCT (molecule,
//      basis) keys and the hit count the remainder, for any worker
//      interleaving; the LRU eviction scenario replays an exact
//      hit/miss/eviction script.
//   3. Admission exactness. With submission completed before workers
//      start, bounded-queue reject and priority-shed decisions are pure
//      functions of the submission order — exact integers.
//   4. Priority order. With one worker, queued jobs complete in
//      (priority desc, admission seq asc) order — exact permutation.
//   5. Fault replay. Per-attempt job losses are a stateless hash of
//      (seed, job id, attempt): the retry total is exact and results
//      stay bitwise identical to the fault-free run.
//
// Latency percentiles (p50/p99 via the metrics histograms' log-linear
// sub-bins), throughput, and RSS are HOSTWARE: bench_compare treats
// them as advisory. This container is typically 1-core — the open/
// closed-loop cells are an honest envelope, not a scaling claim.
//
// Flags:
//   --smoke        small job counts for CI (default workload is bigger)
//   --seed=S       job-mix + fault seed (default 2014)
//   --jobs=N       jobs per load scenario (default 120; smoke 30)
//   --report=PATH  JSON report output (default BENCH_serve.json)
//
// Exit status: nonzero on any gate violation or an invalid report.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;
using serve::JobRequest;
using serve::JobResult;
using serve::ScfServer;
using serve::ServerOptions;

struct Options {
  bool smoke = false;
  std::uint64_t seed = 2014;
  int jobs = 120;
  std::string report_path = "BENCH_serve.json";
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic result fingerprint: the fields the bitwise-determinism
/// gate compares across pool sizes (timings excluded by construction).
struct ResultBits {
  std::uint64_t g_digest = 0;
  std::uint64_t energy_bits = 0;
  bool ok = false;
  int attempts = 0;
  bool operator==(const ResultBits&) const = default;
};

ResultBits bits_of(const JobResult& r) {
  ResultBits b;
  b.g_digest = r.g_digest;
  std::memcpy(&b.energy_bits, &r.energy, sizeof(b.energy_bits));
  b.ok = r.ok;
  b.attempts = r.attempts;
  return b;
}

/// The heavy-tailed multi-tenant job mix: mostly tiny free-tier Fock
/// builds, a batch tier of medium builds, and a premium tier whose jobs
/// are full SCF runs — drawn deterministically from the seed.
std::vector<JobRequest> make_job_mix(int n, std::uint64_t seed) {
  std::vector<JobRequest> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t draw =
        splitmix64(seed ^ (static_cast<std::uint64_t>(i) + 1)) % 100;
    JobRequest req;
    if (draw < 60) {
      // free tier: tiny Fock builds
      req.molecule = "h2";
      req.basis = (draw % 2 == 0) ? "sto-3g" : "6-31g";
      req.kind = JobRequest::Kind::kFockBuild;
      req.tenant = 0;
      req.priority = 0;
    } else if (draw < 90) {
      // batch tier: medium Fock builds
      req.molecule = (draw % 2 == 0) ? "water" : "methane";
      req.basis = "sto-3g";
      req.kind = JobRequest::Kind::kFockBuild;
      req.tenant = 1;
      req.priority = 1;
    } else {
      // premium tier: the heavy tail — full SCF
      req.molecule = "water";
      req.basis = "sto-3g";
      req.kind = JobRequest::Kind::kScf;
      req.tenant = 2;
      req.priority = 2;
    }
    jobs.push_back(std::move(req));
  }
  return jobs;
}

/// Submits all jobs pre-start, runs them on `workers`, returns results
/// indexed by job id. Admission is deterministic (queue sized to fit).
std::map<std::int64_t, JobResult> run_batch(
    const std::vector<JobRequest>& jobs, int workers,
    util::MetricsRegistry* metrics, double fail_prob = 0.0,
    std::uint64_t fault_seed = 17) {
  ServerOptions options;
  options.workers = workers;
  options.queue_capacity = jobs.size() + 1;
  options.cache_capacity = 8;
  options.metrics = metrics;
  options.fail_prob = fail_prob;
  options.fault_seed = fault_seed;
  ScfServer server(options);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (const JobRequest& req : jobs) {
    auto sub = server.submit(req);
    futures.push_back(std::move(sub.result));
  }
  server.start();
  server.drain();
  server.stop();
  std::map<std::int64_t, JobResult> results;
  for (auto& f : futures) {
    JobResult r = f.get();
    results.emplace(r.job_id, std::move(r));
  }
  return results;
}

int run(const Options& opt) {
  std::cout << "##############################################\n"
            << "# bench_serve (EXP-14)\n"
            << "# claim: multi-tenant SCF serving is deterministic at the\n"
            << "#   request level (bitwise across pool sizes), with exact\n"
            << "#   cache/admission/priority/fault accounting; latency and\n"
            << "#   throughput are reported as an advisory envelope\n"
            << "# seed: " << opt.seed << ", jobs per load scenario: "
            << opt.jobs << "\n"
            << "##############################################\n";

  bool passed = true;
  const auto fail = [&passed](const std::string& what) {
    std::cerr << "FAIL: " << what << "\n";
    passed = false;
  };

  // ---- Scenario 1: request-level determinism across pool sizes. ----
  const std::vector<JobRequest> det_jobs =
      make_job_mix(opt.smoke ? 10 : 24, opt.seed);
  std::map<std::int64_t, JobResult> det_ref;
  struct DetCell {
    int workers = 0;
    std::int64_t jobs_ok = 0;
    bool bitwise_identical_to_p1 = false;
  };
  std::vector<DetCell> det_cells;
  for (const int workers : {1, 2, 4}) {
    auto results = run_batch(det_jobs, workers, nullptr);
    DetCell cell;
    cell.workers = workers;
    for (const auto& [id, r] : results) {
      if (r.ok) ++cell.jobs_ok;
    }
    if (workers == 1) {
      det_ref = results;
      cell.bitwise_identical_to_p1 = true;
    } else {
      cell.bitwise_identical_to_p1 =
          results.size() == det_ref.size() &&
          std::all_of(results.begin(), results.end(), [&](const auto& kv) {
            const auto it = det_ref.find(kv.first);
            return it != det_ref.end() &&
                   bits_of(kv.second) == bits_of(it->second);
          });
    }
    if (cell.jobs_ok != static_cast<std::int64_t>(det_jobs.size())) {
      fail("determinism p" + std::to_string(workers) + ": " +
           std::to_string(cell.jobs_ok) + "/" +
           std::to_string(det_jobs.size()) + " jobs ok");
    }
    if (!cell.bitwise_identical_to_p1) {
      fail("determinism p" + std::to_string(workers) +
           ": results differ from the 1-worker reference");
    }
    det_cells.push_back(cell);
  }

  // ---- Scenario 2: cross-request cache exactness (single-flight). ----
  // Distinct chemistries in det_jobs are known; misses must equal that
  // count and hits the remainder even with 4 workers racing the cache.
  std::int64_t distinct_keys = 0;
  {
    std::map<std::string, int> keys;
    for (const JobRequest& req : det_jobs) {
      keys[req.molecule + "|" + req.basis] += 1;
    }
    distinct_keys = static_cast<std::int64_t>(keys.size());
  }
  util::MetricsRegistry cache_metrics;
  serve::FockCache::Stats cache_stats;
  double cache_hit_rate = 0.0;
  {
    ServerOptions options;
    options.workers = 4;
    options.queue_capacity = det_jobs.size() + 1;
    options.cache_capacity = 8;  // > distinct keys: no eviction noise
    options.metrics = &cache_metrics;
    ScfServer server(options);
    std::vector<std::future<JobResult>> futures;
    for (const JobRequest& req : det_jobs) {
      futures.push_back(server.submit(req).result);
    }
    server.start();
    server.drain();
    server.stop();
    for (auto& f : futures) f.get();
    cache_stats = server.cache().stats();
    cache_hit_rate = server.cache().hit_rate();
  }
  const auto n_det = static_cast<std::int64_t>(det_jobs.size());
  if (cache_stats.misses != distinct_keys) {
    fail("cache: " + std::to_string(cache_stats.misses) +
         " misses, expected " + std::to_string(distinct_keys));
  }
  if (cache_stats.hits != n_det - distinct_keys) {
    fail("cache: " + std::to_string(cache_stats.hits) +
         " hits, expected " + std::to_string(n_det - distinct_keys));
  }
  if (cache_stats.evictions != 0) {
    fail("cache: unexpected evictions");
  }
  if (!(cache_hit_rate > 0.0)) {
    fail("cache: hit rate not positive on repeated requests");
  }

  // ---- Scenario 3: LRU eviction script. ----
  // Capacity 2, one worker, same priority: requests run in FIFO order.
  // Key sequence A B A C A B: A,B miss; A hits; C misses evicting B
  // (LRU); A hits; B misses again evicting C => 4 misses, 2 hits,
  // 2 evictions — exact.
  serve::FockCache::Stats evict_stats;
  {
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 16;
    options.cache_capacity = 2;
    ScfServer server(options);
    const char* seq[] = {"sto-3g", "6-31g", "sto-3g",
                         "6-31g*", "sto-3g", "6-31g"};
    std::vector<std::future<JobResult>> futures;
    for (const char* basis : seq) {
      JobRequest req;
      req.molecule = "h2";
      req.basis = basis;
      futures.push_back(server.submit(req).result);
    }
    server.start();
    server.drain();
    server.stop();
    for (auto& f : futures) f.get();
    evict_stats = server.cache().stats();
  }
  if (evict_stats.misses != 4 || evict_stats.hits != 2 ||
      evict_stats.evictions != 2) {
    fail("eviction script: got " + std::to_string(evict_stats.hits) +
         " hits / " + std::to_string(evict_stats.misses) + " misses / " +
         std::to_string(evict_stats.evictions) +
         " evictions, expected 2/4/2");
  }

  // ---- Scenario 4: bounded-queue reject. ----
  // Submission completes before start(), so exactly capacity jobs are
  // accepted and the rest rejected, with rejected futures resolved.
  ScfServer::Counts reject_counts;
  std::int64_t reject_futures_resolved = 0;
  {
    ServerOptions options;
    options.workers = 2;
    options.queue_capacity = 4;
    options.overload = ServerOptions::Overload::kReject;
    ScfServer server(options);
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 6; ++i) {
      JobRequest req;
      req.molecule = "h2";
      req.basis = "sto-3g";
      futures.push_back(server.submit(req).result);
    }
    server.start();
    server.drain();
    server.stop();
    for (auto& f : futures) {
      const JobResult r = f.get();
      if (!r.ok && r.error == "rejected") ++reject_futures_resolved;
    }
    reject_counts = server.counts();
  }
  if (reject_counts.accepted != 4 || reject_counts.rejected != 2 ||
      reject_counts.completed != 4 || reject_futures_resolved != 2) {
    fail("reject: accepted/rejected/completed = " +
         std::to_string(reject_counts.accepted) + "/" +
         std::to_string(reject_counts.rejected) + "/" +
         std::to_string(reject_counts.completed) + ", expected 4/2/4");
  }

  // ---- Scenario 5: priority shed. ----
  // Capacity 2 fills with priority-0 A,B; a priority-5 arrival sheds
  // the youngest low-priority victim (B); a later priority-0 arrival
  // cannot displace anyone and is itself shed.
  ScfServer::Counts shed_counts;
  bool shed_victim_resolved = false;
  {
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 2;
    options.overload = ServerOptions::Overload::kShed;
    ScfServer server(options);
    JobRequest low;
    low.molecule = "h2";
    low.basis = "sto-3g";
    low.priority = 0;
    JobRequest high = low;
    high.priority = 5;
    auto a = server.submit(low);
    auto b = server.submit(low);
    auto c = server.submit(high);
    auto d = server.submit(low);
    const JobResult rb = b.result.get();  // ready immediately: shed
    shed_victim_resolved = !rb.ok && rb.error == "shed";
    server.start();
    server.drain();
    server.stop();
    a.result.get();
    c.result.get();
    d.result.get();
    shed_counts = server.counts();
  }
  if (shed_counts.accepted != 3 || shed_counts.shed != 2 ||
      shed_counts.completed != 2 || !shed_victim_resolved) {
    fail("shed: accepted/shed/completed = " +
         std::to_string(shed_counts.accepted) + "/" +
         std::to_string(shed_counts.shed) + "/" +
         std::to_string(shed_counts.completed) + ", expected 3/2/2");
  }

  // ---- Scenario 6: priority dispatch order. ----
  // One worker, pre-start submission with priorities [0,2,1,2,0] =>
  // completion order by (priority desc, seq asc): jobs 1,3,2,0,4.
  bool priority_order_exact = true;
  {
    ServerOptions options;
    options.workers = 1;
    options.queue_capacity = 8;
    ScfServer server(options);
    const int priorities[] = {0, 2, 1, 2, 0};
    std::vector<std::future<JobResult>> futures;
    for (const int p : priorities) {
      JobRequest req;
      req.molecule = "h2";
      req.basis = "sto-3g";
      req.priority = p;
      futures.push_back(server.submit(req).result);
    }
    server.start();
    server.drain();
    server.stop();
    const std::int64_t expected_seq[] = {3, 0, 2, 1, 4};
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const JobResult r = futures[i].get();
      if (r.completion_seq != expected_seq[i]) priority_order_exact = false;
    }
  }
  if (!priority_order_exact) {
    fail("priority order: completion sequence deviates from "
         "(priority desc, seq asc)");
  }

  // ---- Scenario 7: chaos — fault-injected run vs clean run. ----
  util::MetricsRegistry chaos_metrics;
  std::int64_t chaos_retries = 0;
  bool chaos_bitwise = true;
  bool chaos_all_completed = true;
  {
    const auto faulted = run_batch(det_jobs, 2, &chaos_metrics,
                                   /*fail_prob=*/0.4, opt.seed);
    chaos_all_completed = faulted.size() == det_ref.size();
    for (const auto& [id, r] : faulted) {
      chaos_retries += r.attempts - 1;
      const auto it = det_ref.find(id);
      // attempts differ by design; everything else must match bitwise.
      ResultBits clean = it != det_ref.end() ? bits_of(it->second)
                                             : ResultBits{};
      ResultBits chaos = bits_of(r);
      clean.attempts = chaos.attempts = 0;
      if (it == det_ref.end() || !(clean == chaos)) chaos_bitwise = false;
    }
  }
  if (chaos_retries <= 0) fail("chaos: fault injection retried nothing");
  if (!chaos_bitwise) {
    fail("chaos: faulted results deviate from the clean run");
  }
  if (!chaos_all_completed) fail("chaos: not every job completed");

  // ---- Scenarios 8/9: open- and closed-loop load (advisory). ----
  const std::vector<JobRequest> load_jobs =
      make_job_mix(opt.jobs, opt.seed + 1);
  struct TenantStats {
    std::int64_t completed = 0;
    double p50 = 0.0, p99 = 0.0, mean = 0.0;
  };
  struct LoadCell {
    std::string name;
    std::int64_t jobs = 0;
    double wall_seconds = 0.0;
    double jobs_per_sec = 0.0;
    std::map<int, TenantStats> tenants;
  };
  std::vector<LoadCell> load_cells;
  const int load_workers = 2;
  for (const bool open_loop : {true, false}) {
    util::MetricsRegistry metrics;
    ServerOptions options;
    options.workers = load_workers;
    options.queue_capacity = load_jobs.size() + 1;
    options.cache_capacity = 8;
    options.metrics = &metrics;
    ScfServer server(options);
    emc::Timer timer;
    std::vector<std::future<JobResult>> futures;
    if (open_loop) {
      // Open loop: the whole arrival stream lands at t=0 regardless of
      // service progress — queueing delay dominates the tail.
      for (const JobRequest& req : load_jobs) {
        futures.push_back(server.submit(req).result);
      }
      server.start();
    } else {
      // Closed loop: at most 2x workers outstanding — each completion
      // admits the next arrival, so measured latency ~ service time.
      server.start();
      const std::size_t window = static_cast<std::size_t>(2 * load_workers);
      for (const JobRequest& req : load_jobs) {
        if (futures.size() >= window) {
          futures[futures.size() - window].wait();
        }
        futures.push_back(server.submit(req).result);
      }
    }
    server.drain();
    server.stop();
    for (auto& f : futures) f.get();
    LoadCell cell;
    cell.name = open_loop ? "open_loop" : "closed_loop";
    cell.jobs = static_cast<std::int64_t>(load_jobs.size());
    cell.wall_seconds = timer.seconds();
    cell.jobs_per_sec = cell.wall_seconds > 0.0
                            ? static_cast<double>(cell.jobs) /
                                  cell.wall_seconds
                            : 0.0;
    const util::MetricsSnapshot snap = metrics.snapshot();
    for (const int tenant : {0, 1, 2}) {
      TenantStats ts;
      const std::string prefix = "serve/t" + std::to_string(tenant);
      const auto cit = snap.counters.find(prefix + "/completed");
      if (cit != snap.counters.end()) ts.completed = cit->second;
      const auto hit = snap.histograms.find(prefix + "/latency_seconds");
      if (hit != snap.histograms.end()) {
        ts.p50 = hit->second.p50;
        ts.p99 = hit->second.p99;
        ts.mean = hit->second.mean;
      }
      cell.tenants.emplace(tenant, ts);
    }
    std::int64_t total_completed = 0;
    for (const auto& [tenant, ts] : cell.tenants) {
      total_completed += ts.completed;
    }
    if (total_completed != cell.jobs) {
      fail(cell.name + ": completed " + std::to_string(total_completed) +
           " of " + std::to_string(cell.jobs) + " jobs");
    }
    load_cells.push_back(std::move(cell));
  }

  // ---- Human-readable summary. ----
  std::cout << "\ndeterminism: ";
  for (const DetCell& cell : det_cells) {
    std::cout << "p" << cell.workers << "="
              << (cell.bitwise_identical_to_p1 ? "bitwise" : "MISMATCH")
              << " ";
  }
  std::cout << "(" << det_jobs.size() << " jobs, " << distinct_keys
            << " distinct chemistries)\n"
            << "cache: " << cache_stats.hits << " hits / "
            << cache_stats.misses << " misses (rate "
            << cache_hit_rate << "), eviction script "
            << evict_stats.hits << "/" << evict_stats.misses << "/"
            << evict_stats.evictions << "\n"
            << "admission: reject 4/2/4, shed "
            << shed_counts.accepted << "/" << shed_counts.shed << "/"
            << shed_counts.completed << "; priority order "
            << (priority_order_exact ? "exact" : "BROKEN") << "\n"
            << "chaos: " << chaos_retries << " retries, "
            << (chaos_bitwise ? "bitwise vs clean" : "MISMATCH") << "\n";
  for (const LoadCell& cell : load_cells) {
    std::cout << cell.name << ": " << cell.jobs << " jobs in "
              << cell.wall_seconds << "s (" << cell.jobs_per_sec
              << " jobs/s; hostware, "
              << std::thread::hardware_concurrency() << " core(s)):\n";
    for (const auto& [tenant, ts] : cell.tenants) {
      std::printf("  t%d: %lld done, p50=%.2gms p99=%.2gms mean=%.2gms\n",
                  tenant, static_cast<long long>(ts.completed),
                  ts.p50 * 1e3, ts.p99 * 1e3, ts.mean * 1e3);
    }
  }

  // ---- JSON report. ----
  {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
      return 1;
    }
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_serve",
                               opt.smoke ? "smoke" : "full", opt.seed);
    json.field("bench", "bench_serve");
    json.field("experiment", "EXP-14");
    json.field("det_jobs", n_det);
    json.field("distinct_chemistries", distinct_keys);
    json.begin_array("determinism_cells");
    for (const DetCell& cell : det_cells) {
      json.begin_object();
      json.field("name", "pool" + std::to_string(cell.workers));
      json.field("workers", cell.workers);
      json.field("jobs_ok", cell.jobs_ok);
      json.field("bitwise_identical_to_p1", cell.bitwise_identical_to_p1);
      json.end_object();
    }
    json.end_array();
    json.begin_object("cache_check");
    json.field("hits", cache_stats.hits);
    json.field("misses", cache_stats.misses);
    json.field("evictions", cache_stats.evictions);
    json.field("hit_rate_positive", cache_hit_rate > 0.0);
    json.end_object();
    json.begin_object("eviction_check");
    json.field("hits", evict_stats.hits);
    json.field("misses", evict_stats.misses);
    json.field("evictions", evict_stats.evictions);
    json.end_object();
    json.begin_object("admission_check");
    json.field("reject_accepted", reject_counts.accepted);
    json.field("reject_rejected", reject_counts.rejected);
    json.field("reject_completed", reject_counts.completed);
    json.field("shed_accepted", shed_counts.accepted);
    json.field("shed_shed", shed_counts.shed);
    json.field("shed_completed", shed_counts.completed);
    json.field("priority_order_exact", priority_order_exact);
    json.end_object();
    json.begin_object("chaos_check");
    json.field("retries", chaos_retries);
    json.field("bitwise_identical_to_clean", chaos_bitwise);
    json.field("all_completed", chaos_all_completed);
    json.end_object();
    json.begin_array("load_cells");
    for (const LoadCell& cell : load_cells) {
      json.begin_object();
      json.field("name", cell.name);
      json.field("jobs", cell.jobs);
      json.field("wall_seconds", cell.wall_seconds);
      json.field("jobs_per_sec", cell.jobs_per_sec);
      json.begin_array("tenants");
      for (const auto& [tenant, ts] : cell.tenants) {
        json.begin_object();
        json.field("name", "t" + std::to_string(tenant));
        json.field("completed", ts.completed);
        json.field("p50_seconds", ts.p50);
        json.field("p99_seconds", ts.p99);
        json.field("mean_seconds", ts.mean);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.begin_object("checks");
    json.field("passed", passed);
    json.end_object();
    emc::bench::write_run_footer(json);
    json.end_object();
  }

  // Validate the artifact with the strict parser and manifest check.
  {
    std::ifstream in(opt.report_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const util::JsonValue doc = util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: " << opt.report_path << " is invalid JSON: "
                << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << opt.report_path << " (validated)\n";

  if (!passed) return 1;
  std::cout << "PASS\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool jobs_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.jobs = std::stoi(arg.substr(7));
      jobs_set = true;
    } else if (arg.rfind("--report=", 0) == 0) {
      opt.report_path = arg.substr(9);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (opt.smoke && !jobs_set) opt.jobs = 30;
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
