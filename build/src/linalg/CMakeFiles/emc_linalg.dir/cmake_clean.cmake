file(REMOVE_RECURSE
  "CMakeFiles/emc_linalg.dir/blas.cpp.o"
  "CMakeFiles/emc_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/emc_linalg.dir/eigen.cpp.o"
  "CMakeFiles/emc_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/emc_linalg.dir/factor.cpp.o"
  "CMakeFiles/emc_linalg.dir/factor.cpp.o.d"
  "CMakeFiles/emc_linalg.dir/matrix.cpp.o"
  "CMakeFiles/emc_linalg.dir/matrix.cpp.o.d"
  "libemc_linalg.a"
  "libemc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
