#pragma once

// Deterministic discrete-event replays of each execution model on the
// simulated cluster. Inputs are a task-cost vector (seconds of work per
// task, e.g. measured from the real Fock kernel) and the machine model;
// outputs are makespan, per-proc utilization, and overhead anatomy.

#include <span>
#include <vector>

#include "lb/partition.hpp"
#include "sim/machine.hpp"

namespace emc::sim {

/// Static execution: every proc runs exactly its assigned tasks.
SimResult simulate_static(const MachineConfig& config,
                          std::span<const double> costs,
                          const lb::Assignment& assignment);

/// How the dynamic counter doles out work per grab.
enum class ChunkPolicy {
  kFixed,      ///< constant `chunk`
  kGuided,     ///< guided self-scheduling: ceil(remaining / P)
  kTrapezoid,  ///< trapezoid self-scheduling: linearly decreasing chunks
};

struct CounterOptions {
  std::int64_t chunk = 1;        ///< fixed size, or the floor for
                                 ///< guided/trapezoid
  ChunkPolicy policy = ChunkPolicy::kFixed;
};

/// Dynamic shared-counter self-scheduling. The counter is served
/// serially at its home node, so contention grows with proc count — the
/// effect EXP-8 quantifies.
SimResult simulate_counter(const MachineConfig& config,
                           std::span<const double> costs,
                           std::int64_t chunk);
SimResult simulate_counter(const MachineConfig& config,
                           std::span<const double> costs,
                           const CounterOptions& options);

/// Two-level counter: each node's leader grabs `node_chunk` tasks from
/// the global counter (inter-node round trip, global serialization);
/// procs then self-schedule `proc_chunk`-sized pieces from their node's
/// counter (intra-node). The classic fix for global-counter contention.
SimResult simulate_hierarchical_counter(const MachineConfig& config,
                                        std::span<const double> costs,
                                        std::int64_t node_chunk,
                                        std::int64_t proc_chunk);

/// Hybrid static/dynamic: the first (1 - dynamic_fraction) of the total
/// work follows `assignment`; the remaining tail is self-scheduled via
/// the shared counter once a proc exhausts its static part. The paper's
/// "balance between work units and overheads" sweet spot often lands
/// here.
SimResult simulate_hybrid(const MachineConfig& config,
                          std::span<const double> costs,
                          const lb::Assignment& assignment,
                          double dynamic_fraction, std::int64_t chunk = 1);

/// Victim-selection policy for work stealing.
enum class VictimPolicy {
  kUniform,    ///< uniformly random other proc
  kNodeFirst,  ///< prefer node-local victims, escalate on failure
  kRing,       ///< deterministic scan from the thief's right neighbour
};

struct StealOptions {
  bool steal_half = true;
  VictimPolicy victim = VictimPolicy::kUniform;
  std::uint64_t seed = 7;
};

/// Work stealing from an initial placement. If `executed_by` is non-null
/// it receives the executing proc per task (for retentive reuse).
SimResult simulate_work_stealing(const MachineConfig& config,
                                 std::span<const double> costs,
                                 const lb::Assignment& initial,
                                 const StealOptions& options = {},
                                 std::vector<int>* executed_by = nullptr);

/// Retentive work stealing across `iterations` rounds of the same task
/// list (an iterative SCF kernel); round r+1 starts from round r's final
/// placement.
std::vector<SimResult> simulate_retentive(const MachineConfig& config,
                                          std::span<const double> costs,
                                          const lb::Assignment& initial,
                                          int iterations,
                                          const StealOptions& options = {});

/// Persistence-based inspector-executor balancing: round 1 executes the
/// given assignment statically; every later round is statically
/// re-balanced by LPT over the costs *observed* in round 1 (the
/// principle-of-persistence alternative to retentive stealing). The
/// balancer's own runtime is charged to each rebalanced round's
/// makespan via `rebalance_cost_seconds`.
std::vector<SimResult> simulate_persistence(
    const MachineConfig& config, std::span<const double> costs,
    const lb::Assignment& initial, int iterations,
    double rebalance_cost_seconds = 0.0);

}  // namespace emc::sim
