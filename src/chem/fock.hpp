#pragma once

// Fock-matrix construction and its task decomposition.
//
// The two-electron part of the Fock matrix, G(P), is assembled from shell
// quartets (ij|kl) exploiting 8-fold permutational symmetry and Schwarz
// screening. Work is decomposed the way the paper's SCF study does: one
// *task* per canonical bra shell pair (i >= j); the task owns the loop
// over all canonical ket pairs with pair rank <= its own. Task costs
// therefore vary by orders of magnitude — the heterogeneity that drives
// the execution-model comparison.

#include <cstdint>
#include <vector>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "chem/shell_pair.hpp"
#include "linalg/matrix.hpp"

namespace emc::chem {

/// One unit of schedulable work: a canonical bra shell pair.
struct ShellPairTask {
  int si = 0;               ///< bra shell i (si >= sj)
  int sj = 0;               ///< bra shell j
  std::uint64_t rank = 0;   ///< canonical pair rank si*(si+1)/2 + sj
};

/// Raw per-task work counters that underlie the analytic cost model.
/// Exposed so the calibration harness (bench_kernel --calibrate) can
/// re-fit the model constants against wall-time measurements whenever
/// the kernel's cost profile changes.
struct TaskCostFeatures {
  double quartets = 0.0;       ///< ket pairs surviving Schwarz screening
  double prim_quartets = 0.0;  ///< sum of primitive-quartet counts
  double prim_fn = 0.0;        ///< sum of prim-quartet * function products
  double scan = 0.0;           ///< ket pairs scanned (rank + 1)
};

/// THREAD SAFETY: a FockBuilder is immutable after construction (pair
/// cache + Schwarz matrix are materialized in the constructor) and its
/// const methods are stateless per call — execute_task/build_g use only
/// function-local scratch (the HermiteR workspace lives on the stack of
/// each call) and the Boys table behind them is a thread-safe
/// function-local static. Any number of threads may therefore run
/// builds off ONE shared builder concurrently, each against its own
/// accumulators; results are bitwise reproducible. This is the contract
/// the serving layer's cross-request cache (serve::FockCache) and the
/// hybrid executor rely on; guarded by the TSan-covered
/// SharedFockBuilderTest in tests/test_serve.cpp.
class FockBuilder {
 public:
  /// Precomputes Schwarz bounds for screening. `screen_threshold` is the
  /// bound product below which a quartet is skipped (0 disables).
  FockBuilder(const BasisSet& basis, double screen_threshold = 1e-10);

  const BasisSet& basis() const { return *basis_; }
  double screen_threshold() const { return screen_threshold_; }
  const linalg::Matrix& schwarz() const { return schwarz_; }
  /// The precomputed shell-pair cache shared by every task.
  const ShellPairList& shell_pairs() const { return pairs_; }

  /// All tasks in canonical (rank) order.
  std::vector<ShellPairTask> make_tasks() const;

  /// Executes one task: digests its quartets' J/K contributions against
  /// `density` (the total RHF density P) into `j_accum` and `k_accum`.
  /// Accumulators must be n x n; contributions are += so a caller may
  /// merge partial results from many tasks.
  void execute_task(const ShellPairTask& task, const linalg::Matrix& density,
                    linalg::Matrix& j_accum, linalg::Matrix& k_accum) const;

  /// Number of ket quartets the task would evaluate after screening;
  /// proportional to its runtime. Used by load-balance inspectors.
  std::uint64_t count_task_quartets(const ShellPairTask& task) const;

  /// Analytic work estimate (flop-weighted, no density info): sum over
  /// surviving quartets of the product of function counts and contraction
  /// depths. Cheap enough to run as an inspector pass.
  double estimate_task_cost(const ShellPairTask& task) const;

  /// The raw work counters behind estimate_task_cost (see
  /// TaskCostFeatures); used to re-fit the model constants.
  TaskCostFeatures task_cost_features(const ShellPairTask& task) const;

  /// Full G(P) = J - K/2 built by running every task sequentially.
  linalg::Matrix build_g(const linalg::Matrix& density) const;

  /// Combines J/K accumulators into G = J - K/2 and symmetrizes.
  static linalg::Matrix combine_jk(const linalg::Matrix& j_accum,
                                   const linalg::Matrix& k_accum);

 private:
  template <typename QuartetFn>
  void for_each_ket_pair(const ShellPairTask& task, QuartetFn&& fn) const;

  const BasisSet* basis_;
  double screen_threshold_;
  ShellPairList pairs_;
  linalg::Matrix schwarz_;
};

}  // namespace emc::chem
