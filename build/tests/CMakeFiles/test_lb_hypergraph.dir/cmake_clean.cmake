file(REMOVE_RECURSE
  "CMakeFiles/test_lb_hypergraph.dir/test_lb_hypergraph.cpp.o"
  "CMakeFiles/test_lb_hypergraph.dir/test_lb_hypergraph.cpp.o.d"
  "test_lb_hypergraph"
  "test_lb_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
