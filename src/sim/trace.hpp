#pragma once

// Typed execution-event stream recorded by the discrete-event simulators,
// plus the analysis passes behind the paper's overhead-anatomy figures.
//
// Every simulator (static, counter family, hybrid, work stealing) emits
// TraceEvents when MachineConfig::record_trace is set: task executions,
// steal attempts with victim provenance, counter round trips, and
// iteration boundaries for multi-round (retentive/persistence) runs.
// Analyses derive utilization timelines, idle gaps, steal-provenance
// matrices, and a critical-path summary; write_chrome_trace exports the
// stream as Chrome trace-event JSON so any run opens in Perfetto /
// chrome://tracing.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace emc::sim {

enum class TraceEventType : std::uint8_t {
  kTaskExec = 0,        ///< one task body on one proc
  kStealSuccess,        ///< steal round trip that returned work
  kStealFail,           ///< steal round trip that found an empty victim
  kCounterOp,           ///< counter fetch-and-add round trip (issue->reply)
  kIdle,                ///< derived idle gap (see derive_idle_gaps)
  kIterationBoundary,   ///< round boundary in a merged multi-round trace
  kFaultStart,          ///< fault window opens on a proc (zero duration)
  kFaultEnd,            ///< fault window closes on a proc (zero duration)
  kOpRetry,             ///< dropped one-sided op: round trip + backoff
  kTaskReexec,          ///< execution span lost to a stall, later re-run
  kNetTransfer,         ///< sized data transfer (task payload move)
  kLinkWait,            ///< time a transfer queued behind a busy link
};

/// Display name ("task", "steal", ...).
const char* trace_event_name(TraceEventType type);

/// One simulated event. `proc` is the acting processor (the thief for
/// steals, the requester for counter ops). `peer` is the steal victim or
/// the counter-home proc, -1 otherwise. `task` is the executed task id,
/// the first task of a counter grab (-1 for a dry grab), or the round
/// index of an iteration boundary.
struct TraceEvent {
  TraceEventType type = TraceEventType::kTaskExec;
  int proc = 0;
  int peer = -1;
  std::int64_t task = -1;
  double start = 0.0;
  double end = 0.0;

  double duration() const { return end - start; }
};

/// Fraction of processors busy (executing tasks) in each of `bins` equal
/// slices of [0, makespan]. Throws std::invalid_argument on an empty
/// trace or bins/n_procs < 1.
std::vector<double> utilization_timeline(std::span<const TraceEvent> trace,
                                         double makespan, int n_procs,
                                         int bins);

/// Successful-steal provenance: row-major n_procs x n_procs matrix,
/// entry [thief * n_procs + victim] = steals thief took from victim.
std::vector<std::int64_t> steal_provenance(
    std::span<const TraceEvent> trace, int n_procs);

/// Derives per-proc idle gaps: maximal intervals of [0, makespan] not
/// covered by any recorded event on that proc, emitted as kIdle events
/// (gaps shorter than min_gap are dropped). The input need not be
/// sorted.
std::vector<TraceEvent> derive_idle_gaps(std::span<const TraceEvent> trace,
                                         int n_procs, double makespan,
                                         double min_gap = 0.0);

/// Critical-path / idle-gap anatomy of a recorded run. The critical proc
/// is the one whose last event ends the run; its time decomposes into
/// busy (task execution), overhead (steal + counter round trips), and
/// idle.
struct TraceSummary {
  std::int64_t events = 0;           ///< recorded events analysed
  int critical_proc = -1;
  double critical_busy = 0.0;
  double critical_overhead = 0.0;
  double critical_idle = 0.0;
  double longest_idle_gap = 0.0;
  int longest_idle_proc = -1;
  double total_idle = 0.0;           ///< summed over all procs
  double total_busy = 0.0;
  double total_overhead = 0.0;
};

TraceSummary summarize_trace(std::span<const TraceEvent> trace, int n_procs,
                             double makespan);

/// Writes the stream as Chrome trace-event JSON (JSON Object Format,
/// complete "X" events with ts/dur in microseconds; pid = node given
/// procs_per_node, tid = proc). Loadable in Perfetto / chrome://tracing.
void write_chrome_trace(std::ostream& out,
                        std::span<const TraceEvent> trace,
                        int procs_per_node);

}  // namespace emc::sim
