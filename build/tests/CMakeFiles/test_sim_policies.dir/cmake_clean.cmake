file(REMOVE_RECURSE
  "CMakeFiles/test_sim_policies.dir/test_sim_policies.cpp.o"
  "CMakeFiles/test_sim_policies.dir/test_sim_policies.cpp.o.d"
  "test_sim_policies"
  "test_sim_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
