// EXP-7 — energy-induced performance variability: sweep per-core speed
// noise and compare how each execution model degrades. The abstract
// points at "emerging dynamic platforms with energy-induced performance
// variability" as where dynamic models matter most.

#include <iostream>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-7: resilience to per-core performance noise (P = 256)",
      "static degrades with noise amplitude; work stealing absorbs it",
      model);

  const int procs = 256;
  const auto lpt = lb::lpt_assignment(model.costs, procs);

  Table table({"noise_pct", "static_lpt_ms", "counter_ms",
               "stealing_ms", "static_degradation", "stealing_degradation"});
  table.set_precision(3);

  double static_base = 0.0, steal_base = 0.0;
  for (double noise : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}) {
    sim::MachineConfig machine = emc::bench::make_machine(procs);
    machine.noise_amplitude = noise;

    const double st =
        sim::simulate_static(machine, model.costs, lpt).makespan;
    const double cn =
        sim::simulate_counter(machine, model.costs, 4).makespan;
    const double ws =
        sim::simulate_work_stealing(machine, model.costs, lpt).makespan;
    if (noise == 0.0) {
      static_base = st;
      steal_base = ws;
    }
    table.add_row({noise * 100.0, st * 1e3, cn * 1e3, ws * 1e3,
                   st / static_base, ws / steal_base});
  }
  table.print(std::cout, "makespan vs core-speed noise amplitude");
  return 0;
}
