# Empty compiler generated dependencies file for properties_demo.
# This may be replaced when dependencies are built.
