# Empty dependencies file for test_chem_scf.
# This may be replaced when dependencies are built.
