#pragma once

// Least-squares fitting on tall design matrices: the plain normal-
// equations solve and the non-negative variant (NNLS) by active-set
// elimination. Hoisted out of bench_kernel --calibrate so every fitter
// in the tree — the task-cost calibration and the perfmodel layer's
// PMNF term fits — goes through one implementation with one set of
// degenerate-case rules:
//
//  - a numerically rank-deficient pivot (|pivot| <= pivot_tol * scale)
//    drops that column from the active set and refits, so duplicated or
//    all-zero predictor columns yield coefficient 0 instead of NaN;
//  - NNLS drops the most-negative coefficient's column and refits until
//    every survivor is non-negative (plain clamping would strand the
//    redistributed weight of a collinear feature in the intercept).
//
// Inputs are samples-by-features rows; both solvers are deterministic:
// identical inputs give bitwise-identical coefficients.

#include <cstddef>
#include <vector>

namespace emc::linalg {

struct LstsqOptions {
  /// A pivot whose magnitude is <= pivot_tol * (largest diagonal of
  /// AᵀA) is treated as rank deficiency, not as a divisor.
  double pivot_tol = 1e-12;
};

struct LstsqResult {
  /// One coefficient per design column; dropped columns hold 0.
  std::vector<double> coefficients;
  /// Columns eliminated for rank deficiency (both solvers) or driven
  /// negative (NNLS only).
  std::vector<std::size_t> dropped;
  /// sqrt(sum of squared residuals) over the fitted samples.
  double residual_norm = 0.0;
};

/// Ordinary least squares min ||A x - b|| via the normal equations
/// (AᵀA x = Aᵀb, Gaussian elimination with partial pivoting). `rows`
/// holds one sample per entry; every row must have the same length.
/// Throws std::invalid_argument on empty or ragged input.
LstsqResult lstsq(const std::vector<std::vector<double>>& rows,
                  const std::vector<double>& targets,
                  const LstsqOptions& options = {});

/// Non-negative least squares: lstsq() under x >= 0, by active-set
/// elimination — solve, drop the most-negative coefficient's column,
/// refit until all survivors are non-negative. Same input contract as
/// lstsq().
LstsqResult nnls(const std::vector<std::vector<double>>& rows,
                 const std::vector<double>& targets,
                 const LstsqOptions& options = {});

}  // namespace emc::linalg
