#pragma once

// Training-sweep ingestion: turns a manifest-stamped BENCH_*.json
// report (parsed with the strict util/json parser) into identity-keyed
// numeric cells and fit-ready samples. This is the layer that lets the
// performance-model fits consume the bench pipeline's *outputs* as
// *inputs*: the same identity convention bench_compare uses to match
// cells across runs (util/report_cells.hpp) names each training sample
// here, so a sweep survives JSON round trips, array reordering, and
// re-ingestion with its sample identities — and hence the stateless
// cross-validation split (fit.hpp) — intact.

#include <map>
#include <string>
#include <vector>

#include "perfmodel/fit.hpp"
#include "util/json.hpp"

namespace emc::perfmodel {

/// One sweep cell: the string-valued fields (model, topology, role, ...)
/// and the numeric fields (procs, makespan_s, ...) of one array object.
struct SweepCell {
  std::map<std::string, std::string> labels;
  std::map<std::string, double> values;

  /// Identity address in bench_compare's convention — identity fields
  /// in priority order, numbers rendered round-trip exact. "" when the
  /// cell carries no identity field.
  std::string identity() const;

  /// True when every (key, value) pair in `filter` matches a label.
  bool matches(const std::map<std::string, std::string>& filter) const;
};

struct Sweep {
  std::vector<SweepCell> cells;
};

/// Extracts the array at dot-path `array_path` (e.g. "sweep" or
/// "results.cells") from a parsed report as cells, preserving array
/// order. Throws std::runtime_error when the path is missing, is not an
/// array of objects, or any cell lacks a unique identity — an unkeyed
/// sweep cannot name its samples and would silently scramble the CV
/// split.
Sweep load_sweep(const util::JsonValue& doc, const std::string& array_path);

/// Convenience: parse_json + load_sweep over a whole report text.
Sweep load_sweep_text(const std::string& report_text,
                      const std::string& array_path);

/// Converts the cells matching `labels` into samples, in cell order:
/// predictors are drawn from `predictor_keys` and the target from
/// `target_key` (both must be numeric fields of every matching cell —
/// throws std::runtime_error otherwise); each sample's key is the
/// cell's identity.
std::vector<Sample> to_samples(const Sweep& sweep,
                               const std::map<std::string, std::string>& labels,
                               const std::vector<std::string>& predictor_keys,
                               const std::string& target_key);

}  // namespace emc::perfmodel
