file(REMOVE_RECURSE
  "libemc_lb.a"
)
