#pragma once

// Molecular geometry: atoms with positions in Bohr, plus deterministic
// synthetic-molecule generators used as scalable workloads (water
// clusters, alkane chains), mirroring the growing problem sizes used in
// the paper's evaluation.

#include <array>
#include <string>
#include <vector>

namespace emc::chem {

/// Cartesian coordinate triple in Bohr.
using Vec3 = std::array<double, 3>;

struct Atom {
  int z = 0;      ///< atomic number
  Vec3 xyz{};     ///< position (Bohr)
};

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  void add_atom(int z, double x, double y, double z_coord) {
    atoms_.push_back(Atom{z, {x, y, z_coord}});
  }
  /// Adds an atom with coordinates given in Angstrom.
  void add_atom_angstrom(const std::string& symbol, double x, double y,
                         double z_coord);

  const std::vector<Atom>& atoms() const { return atoms_; }
  std::size_t size() const { return atoms_.size(); }

  /// Total nuclear charge.
  int total_charge_z() const;
  /// Number of electrons for a species with the given net charge.
  int electron_count(int net_charge = 0) const;

  /// Nuclear-nuclear repulsion energy (Hartree).
  double nuclear_repulsion() const;

  std::string to_string() const;

 private:
  std::vector<Atom> atoms_;
};

/// H2 at the given bond length (Bohr); default is the classic 1.4 a0.
Molecule make_h2(double bond_bohr = 1.4);

/// Water monomer at the experimental gas-phase geometry.
Molecule make_water();

/// Methane (CH4), tetrahedral, r(CH)=1.09 Angstrom.
Molecule make_methane();

/// Cluster of `n` water molecules placed on a cubic grid with ~3 Angstrom
/// spacing and per-molecule deterministic rotation; a standard scalable
/// HF workload with irregular shell-pair structure.
Molecule make_water_cluster(int n);

/// Linear alkane C(n)H(2n+2) in an all-anti zig-zag conformation.
Molecule make_alkane(int n_carbons);

/// Benzene (C6H6), planar D6h, r(CC)=1.39 A, r(CH)=1.09 A.
Molecule make_benzene();

/// Looks up a named workload: "h2", "water", "methane", "water<k>"
/// (e.g. "water4"), "alkane<k>" (e.g. "alkane6").
/// Throws std::invalid_argument for unknown names.
Molecule make_named_molecule(const std::string& name);

/// Parses standard XYZ text (count line, comment line, then
/// "Symbol x y z" rows with coordinates in Angstrom).
/// Throws std::invalid_argument on malformed input.
Molecule parse_xyz(const std::string& text);

/// Renders the molecule as XYZ text (Angstrom) with the given comment.
std::string to_xyz(const Molecule& molecule,
                   const std::string& comment = "");

}  // namespace emc::chem
