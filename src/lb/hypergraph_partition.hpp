#pragma once

// Multilevel hypergraph partitioner (stand-in for PaToH/Zoltan, the
// "traditional hypergraph-based partitioning implementation" the paper
// calls computationally expensive).
//
// Pipeline per bisection: (1) coarsening by connectivity matching,
// (2) greedy initial bisection, (3) Fiduccia–Mattheyses refinement with
// rollback, then recursive bisection to k parts. The objective is the
// connectivity-1 cut subject to a weight-balance constraint.

#include <cstdint>
#include <vector>

#include "graph/hypergraph.hpp"
#include "lb/partition.hpp"

namespace emc::lb {

struct HgPartitionOptions {
  int n_parts = 2;
  double epsilon = 0.05;       ///< allowed per-part overweight fraction
  int coarsen_target = 80;     ///< stop coarsening below this many vertices
  int fm_passes = 8;           ///< max FM passes per level
  std::uint64_t seed = 1;      ///< deterministic tie-breaking
};

/// Partitions the hypergraph's vertices into options.n_parts parts.
/// Returns part[v] in [0, n_parts). Balance honours vertex weights; the
/// constraint is soft in the sense that a vertex heavier than a whole
/// part's budget still gets placed (alone).
std::vector<int> partition_hypergraph(const graph::Hypergraph& h,
                                      const HgPartitionOptions& options);

/// Convenience wrapper producing a timed BalanceResult for EXP-5.
BalanceResult hypergraph_balance(const graph::Hypergraph& h, int n_parts,
                                 std::uint64_t seed = 1);

}  // namespace emc::lb
