#pragma once

// Distributed Fock build in the Global-Arrays style of the paper's
// implementation: the density lives in a GlobalArray, every rank fetches
// it with one-sided Get at the start of an iteration, Fock tasks are
// scheduled under a configurable execution model, and each rank's J/K
// contributions are merged back with one-sided atomic Accumulate.
//
// The same object plugs into chem::run_rhf_with_builder, so a full SCF
// can be driven end-to-end through any execution model and verified
// against the sequential reference (tests/test_distributed_fock.cpp).

#include <cstdint>
#include <string>

#include "chem/fock.hpp"
#include "chem/scf.hpp"
#include "exec/schedulers.hpp"
#include "lb/partition.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace emc::core {

enum class ExecModel {
  kStatic,        ///< fixed assignment (see DistributedFockOptions)
  kCounter,       ///< GA-nxtval chunked self-scheduling
  kWorkStealing,  ///< Chase-Lev deques, random victims
};

struct DistributedFockOptions {
  ExecModel model = ExecModel::kWorkStealing;
  /// Balancer for the static model / work-stealing seed: "block",
  /// "cyclic", or "lpt".
  std::string static_balancer = "block";
  std::int64_t counter_chunk = 4;
  exec::WorkStealingOptions steal;
  double screen_threshold = 1e-10;
  /// Fault injection for task execution. Each (task, attempt) pair is
  /// deemed lost with probability fail_prob — a stateless hash of
  /// (seed, task, attempt), independent of which rank runs it, so the
  /// same tasks are lost under any schedule or interleaving. A lost
  /// attempt pays reexec_delay_ns of wasted work and is re-executed.
  /// The loss decision is made BEFORE the kernel runs, so exactly one
  /// real execution ever contributes to J/K: a fault-injected build is
  /// bitwise identical to the fault-free one whenever the accumulate
  /// ordering is (as with 2 ranks, where two-operand addition
  /// commutes bitwise). The final attempt always succeeds, bounding
  /// the retry loop at max_attempts.
  struct TaskFaultOptions {
    double fail_prob = 0.0;        ///< per-attempt loss probability
    int max_attempts = 8;          ///< last attempt is forced through
    std::uint64_t seed = 17;       ///< hash seed for loss decisions
    std::uint64_t reexec_delay_ns = 0;  ///< cost of one lost attempt
    bool enabled() const { return fail_prob > 0.0; }
  };
  TaskFaultOptions task_faults;
  /// Optional observability hook. When set, the builder attaches it to
  /// the runtime (per-rank barrier/PGAS counters), the per-build
  /// GlobalArrays (get/put/acc ops + bytes), and records its own
  /// "fock/..." series: per-phase wall time (get / execute /
  /// accumulate), build count, Schwarz screening skip rate, and
  /// shell-pair-cache stats. Must outlive the builder. nullptr = fully
  /// disabled, no overhead on the build path.
  util::MetricsRegistry* metrics = nullptr;
};

/// SPMD Fock builder over a PGAS runtime. Not thread-safe to share one
/// instance across concurrent SCF runs; reuse across iterations of one
/// run is the intended pattern.
class DistributedFockBuilder {
 public:
  DistributedFockBuilder(const chem::BasisSet& basis,
                         pgas::Runtime& runtime,
                         DistributedFockOptions options = {});

  /// Builds G(P) = J - K/2 with the configured execution model. The
  /// density is published to a GlobalArray, ranks fetch it one-sided,
  /// execute their tasks, and accumulate J/K back one-sided.
  linalg::Matrix build_g(const linalg::Matrix& density);

  /// Adapter for chem::run_rhf_with_builder.
  chem::GBuilder as_g_builder();

  /// Execution statistics of the most recent build_g call.
  const exec::ExecutionStats& last_stats() const { return last_stats_; }
  /// Total build_g invocations (SCF iterations served).
  int builds() const { return builds_; }
  /// Task re-executions forced by fault injection during the most
  /// recent build_g call (0 when task_faults are disabled).
  std::int64_t last_task_reexecutions() const { return last_reexecs_; }

 private:
  lb::Assignment initial_assignment() const;
  void attach_metrics();

  /// Pre-resolved "fock/..." instruments (see DistributedFockOptions::
  /// metrics). Null pointers when no registry is attached.
  struct FockMetrics {
    util::Counter* builds = nullptr;
    util::Counter* tasks = nullptr;
    util::Counter* task_reexecs = nullptr;
    util::Counter* kets_scanned = nullptr;
    util::Counter* kets_survived = nullptr;
    util::Gauge* skip_rate = nullptr;
    util::Gauge* phase_get = nullptr;
    util::Gauge* phase_execute = nullptr;
    util::Gauge* phase_accumulate = nullptr;
  };

  const chem::BasisSet* basis_;
  pgas::Runtime* runtime_;
  DistributedFockOptions options_;
  chem::FockBuilder fock_;
  std::vector<chem::ShellPairTask> tasks_;
  exec::ExecutionStats last_stats_;
  int builds_ = 0;
  std::int64_t last_reexecs_ = 0;
  FockMetrics metrics_;
  // Screening totals over all tasks (density-independent, so computed
  // once at attach time): ket pairs scanned vs surviving Schwarz.
  double scan_total_ = 0.0;
  double survived_total_ = 0.0;
};

}  // namespace emc::core
