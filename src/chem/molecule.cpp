#include "chem/molecule.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "chem/constants.hpp"
#include "chem/element.hpp"

namespace emc::chem {

void Molecule::add_atom_angstrom(const std::string& symbol, double x,
                                 double y, double z_coord) {
  atoms_.push_back(Atom{atomic_number(symbol),
                        {x * kAngstromToBohr, y * kAngstromToBohr,
                         z_coord * kAngstromToBohr}});
}

int Molecule::total_charge_z() const {
  int q = 0;
  for (const auto& a : atoms_) q += a.z;
  return q;
}

int Molecule::electron_count(int net_charge) const {
  return total_charge_z() - net_charge;
}

double Molecule::nuclear_repulsion() const {
  double e = 0.0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      const auto& a = atoms_[i].xyz;
      const auto& b = atoms_[j].xyz;
      const double dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
      const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
      e += static_cast<double>(atoms_[i].z) *
           static_cast<double>(atoms_[j].z) / r;
    }
  }
  return e;
}

std::string Molecule::to_string() const {
  std::ostringstream os;
  os << atoms_.size() << " atoms (coordinates in Bohr)\n";
  for (const auto& a : atoms_) {
    os << "  " << element_symbol(a.z) << "  " << a.xyz[0] << " " << a.xyz[1]
       << " " << a.xyz[2] << "\n";
  }
  return os.str();
}

Molecule make_h2(double bond_bohr) {
  Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  m.add_atom(1, 0.0, 0.0, bond_bohr);
  return m;
}

Molecule make_water() {
  // Experimental geometry: r(OH) = 0.9572 A, angle HOH = 104.52 deg,
  // oxygen at the origin, C2v axis along z.
  Molecule m;
  const double r = 0.9572;
  const double half_angle = 104.52 / 2.0 * kPi / 180.0;
  m.add_atom_angstrom("O", 0.0, 0.0, 0.0);
  m.add_atom_angstrom("H", r * std::sin(half_angle), 0.0,
                      r * std::cos(half_angle));
  m.add_atom_angstrom("H", -r * std::sin(half_angle), 0.0,
                      r * std::cos(half_angle));
  return m;
}

Molecule make_methane() {
  Molecule m;
  const double d = 1.09 / std::sqrt(3.0);  // component of r(CH) per axis
  m.add_atom_angstrom("C", 0.0, 0.0, 0.0);
  m.add_atom_angstrom("H", d, d, d);
  m.add_atom_angstrom("H", d, -d, -d);
  m.add_atom_angstrom("H", -d, d, -d);
  m.add_atom_angstrom("H", -d, -d, d);
  return m;
}

namespace {

/// Rotates `v` about the z then y axes by index-dependent deterministic
/// angles, so cluster members have distinct orientations.
Vec3 rotate_for_index(const Vec3& v, int index) {
  const double az = 0.7 * static_cast<double>(index + 1);
  const double ay = 1.3 * static_cast<double>(index + 1);
  const double cz = std::cos(az), sz = std::sin(az);
  const double cy = std::cos(ay), sy = std::sin(ay);
  // Rz
  const double x1 = cz * v[0] - sz * v[1];
  const double y1 = sz * v[0] + cz * v[1];
  const double z1 = v[2];
  // Ry
  return Vec3{cy * x1 + sy * z1, y1, -sy * x1 + cy * z1};
}

}  // namespace

Molecule make_water_cluster(int n) {
  if (n < 1) throw std::invalid_argument("make_water_cluster: n < 1");
  const Molecule monomer = make_water();
  const double spacing = 3.0 * kAngstromToBohr;

  // Smallest cube that holds n molecules.
  int side = 1;
  while (side * side * side < n) ++side;

  Molecule cluster;
  int placed = 0;
  for (int ix = 0; ix < side && placed < n; ++ix) {
    for (int iy = 0; iy < side && placed < n; ++iy) {
      for (int iz = 0; iz < side && placed < n; ++iz) {
        const Vec3 origin{spacing * ix, spacing * iy, spacing * iz};
        for (const auto& atom : monomer.atoms()) {
          const Vec3 r = rotate_for_index(atom.xyz, placed);
          cluster.add_atom(atom.z, origin[0] + r[0], origin[1] + r[1],
                           origin[2] + r[2]);
        }
        ++placed;
      }
    }
  }
  return cluster;
}

Molecule make_alkane(int n_carbons) {
  if (n_carbons < 1) throw std::invalid_argument("make_alkane: n < 1");

  const double rcc = 1.54 * kAngstromToBohr;
  const double rch = 1.09 * kAngstromToBohr;
  // Tetrahedral half-angle between the backbone direction and bonds.
  const double theta = 109.47122 / 2.0 * kPi / 180.0;
  const double dz = rcc * std::cos(theta);   // backbone advance per C
  const double dx = rcc * std::sin(theta);   // zig-zag amplitude

  Molecule m;
  std::vector<Vec3> carbons(static_cast<std::size_t>(n_carbons));
  for (int i = 0; i < n_carbons; ++i) {
    carbons[static_cast<std::size_t>(i)] =
        Vec3{(i % 2 == 0) ? 0.0 : dx, 0.0, dz * i};
    m.add_atom(6, carbons[static_cast<std::size_t>(i)][0], 0.0, dz * i);
  }

  // Two hydrogens per carbon, in the plane perpendicular to the backbone
  // zig-zag; terminal carbons receive one extra hydrogen along the chain.
  const double hy = rch * std::sin(theta);
  const double hx = rch * std::cos(theta);
  for (int i = 0; i < n_carbons; ++i) {
    const auto& c = carbons[static_cast<std::size_t>(i)];
    const double flip = (i % 2 == 0) ? -1.0 : 1.0;
    m.add_atom(1, c[0] + flip * hx, hy, c[2]);
    m.add_atom(1, c[0] + flip * hx, -hy, c[2]);
  }
  {
    const auto& first = carbons.front();
    m.add_atom(1, first[0] + dx * 0.35, 0.0, first[2] - rch * 0.94);
    const auto& last = carbons.back();
    const double flip = ((n_carbons - 1) % 2 == 0) ? 1.0 : -1.0;
    m.add_atom(1, last[0] + flip * dx * 0.35, 0.0, last[2] + rch * 0.94);
  }
  return m;
}

Molecule make_benzene() {
  Molecule m;
  const double rcc = 1.39;  // ring radius equals the CC bond length
  const double rch = 1.09;
  for (int i = 0; i < 6; ++i) {
    const double angle = kPi / 3.0 * static_cast<double>(i);
    const double cx = std::cos(angle), cy = std::sin(angle);
    m.add_atom_angstrom("C", rcc * cx, rcc * cy, 0.0);
    m.add_atom_angstrom("H", (rcc + rch) * cx, (rcc + rch) * cy, 0.0);
  }
  return m;
}

Molecule make_named_molecule(const std::string& name) {
  if (name == "h2") return make_h2();
  if (name == "water") return make_water();
  if (name == "methane") return make_methane();
  if (name == "benzene") return make_benzene();

  auto parse_suffix = [&](const std::string& prefix) -> int {
    const std::string digits = name.substr(prefix.size());
    if (digits.empty()) return -1;
    for (char ch : digits) {
      if (ch < '0' || ch > '9') return -1;
    }
    return std::stoi(digits);
  };

  if (name.rfind("water", 0) == 0) {
    const int n = parse_suffix("water");
    if (n > 0) return make_water_cluster(n);
  }
  if (name.rfind("alkane", 0) == 0) {
    const int n = parse_suffix("alkane");
    if (n > 0) return make_alkane(n);
  }
  throw std::invalid_argument("make_named_molecule: unknown molecule '" +
                              name + "'");
}

Molecule parse_xyz(const std::string& text) {
  std::istringstream is(text);
  std::string line;

  if (!std::getline(is, line)) {
    throw std::invalid_argument("parse_xyz: empty input");
  }
  int count = 0;
  try {
    count = std::stoi(line);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_xyz: bad atom count line: " + line);
  }
  if (count < 1) throw std::invalid_argument("parse_xyz: atom count < 1");
  if (!std::getline(is, line)) {
    throw std::invalid_argument("parse_xyz: missing comment line");
  }

  Molecule m;
  for (int i = 0; i < count; ++i) {
    if (!std::getline(is, line)) {
      throw std::invalid_argument("parse_xyz: expected " +
                                  std::to_string(count) + " atoms, got " +
                                  std::to_string(i));
    }
    std::istringstream row(line);
    std::string symbol;
    double x = 0.0, y = 0.0, z = 0.0;
    if (!(row >> symbol >> x >> y >> z)) {
      throw std::invalid_argument("parse_xyz: malformed atom line: " + line);
    }
    m.add_atom_angstrom(symbol, x, y, z);
  }
  return m;
}

std::string to_xyz(const Molecule& molecule, const std::string& comment) {
  std::ostringstream os;
  os << molecule.size() << "\n" << comment << "\n";
  os << std::fixed << std::setprecision(8);
  for (const Atom& a : molecule.atoms()) {
    os << element_symbol(a.z) << " " << a.xyz[0] * kBohrToAngstrom << " "
       << a.xyz[1] * kBohrToAngstrom << " " << a.xyz[2] * kBohrToAngstrom
       << "\n";
  }
  return os.str();
}

}  // namespace emc::chem
