// Unit tests for util: RNG, statistics, histogram, table, CLI.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using emc::Accumulator;
using emc::Cli;
using emc::Histogram;
using emc::Rng;
using emc::Summary;
using emc::Table;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(19);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Stats, SummaryBasics) {
  const std::array<double, 5> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = emc::summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.sum, 15.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, SummaryEmptyIsZero) {
  const Summary s = emc::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 4> xs{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(emc::percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(emc::percentile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(emc::percentile(xs, 0.5), 1.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::array<double, 5> xs{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(emc::percentile(xs, 0.5), 3.0);
}

TEST(Stats, ImbalanceRatio) {
  const std::array<double, 4> balanced{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(emc::imbalance_ratio(balanced), 1.0);
  const std::array<double, 4> skewed{4.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(emc::imbalance_ratio(skewed), 4.0);
}

TEST(Stats, AccumulatorMatchesSummary) {
  Rng rng(23);
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(rng.uniform(-5.0, 5.0));
    acc.add(xs.back());
  }
  const Summary s = emc::summarize(xs);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-10);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-10);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.5);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("2"), std::string::npos);
  EXPECT_NE(out.find("#"), std::string::npos);
}

TEST(TableTest, TextAlignmentAndContent) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{42}});
  t.add_row({std::string("b"), 3.14159});
  t.set_precision(2);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
}

TEST(TableTest, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({std::string("x,y"), std::string("say \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only one")}), std::invalid_argument);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(CliTest, ParsesLongAndShortOptions) {
  Cli cli("prog", "test");
  std::int64_t n = 1;
  double x = 0.0;
  std::string s = "default";
  bool flag = false;
  cli.add_int("count", 'n', "a count", &n);
  cli.add_double("ratio", 'r', "a ratio", &x);
  cli.add_string("name", 's', "a name", &s);
  cli.add_flag("verbose", 'v', "verbosity", &flag);

  const char* argv[] = {"prog", "--count", "5", "-r", "2.5",
                        "--name=bob", "-v"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(n, 5);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "bob");
  EXPECT_TRUE(flag);
}

TEST(CliTest, RejectsUnknownOption) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, RejectsBadInt) {
  Cli cli("prog", "test");
  std::int64_t n = 0;
  cli.add_int("count", 'n', "a count", &n);
  const char* argv[] = {"prog", "--count", "abc"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliTest, MissingValueFails) {
  Cli cli("prog", "test");
  std::int64_t n = 0;
  cli.add_int("count", 'n', "a count", &n);
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, HelpReturnsFalse) {
  Cli cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(LogTest, LevelNamesAndThreshold) {
  using emc::LogLevel;
  EXPECT_STREQ(emc::log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(emc::log_level_name(LogLevel::kError), "ERROR");
  const LogLevel before = emc::log_level();
  emc::set_log_level(LogLevel::kError);
  EXPECT_EQ(emc::log_level(), LogLevel::kError);
  EMC_LOG(kDebug) << "suppressed by threshold";  // must not crash
  emc::set_log_level(before);
}

TEST(TableTest, CellAccessor) {
  Table t({"a", "b"});
  t.add_row({std::int64_t{7}, std::string("x")});
  EXPECT_EQ(std::get<std::int64_t>(t.at(0, 0)), 7);
  EXPECT_EQ(std::get<std::string>(t.at(0, 1)), "x");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_THROW(t.at(1, 0), std::out_of_range);
}

TEST(TimerTest, MeasuresElapsedTime) {
  emc::Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.nanos(), 0u);
}

TEST(LogTest, LineCarriesStampLevelAndThreadTag) {
  emc::set_log_thread_tag("r7");
  const std::string line =
      emc::detail::format_log_line(emc::LogLevel::kWarn, "hello");
  emc::set_log_thread_tag("");  // restore the automatic tag
  // Format: [WARN +<seconds>s r7] hello
  EXPECT_EQ(line.rfind("[WARN +", 0), 0u);
  EXPECT_NE(line.find("s r7] hello"), std::string::npos);
  const std::size_t plus = line.find('+');
  const std::size_t s = line.find("s ", plus);
  ASSERT_NE(s, std::string::npos);
  const double elapsed = std::stod(line.substr(plus + 1, s - plus - 1));
  EXPECT_GE(elapsed, 0.0);
  EXPECT_LT(elapsed, 3600.0);  // sane process-elapsed stamp
}

TEST(LogTest, AutomaticTagAssignedOnce) {
  emc::set_log_thread_tag("");
  const std::string first = emc::log_thread_tag();
  EXPECT_EQ(first.rfind('T', 0), 0u);
  EXPECT_EQ(emc::log_thread_tag(), first);  // stable across calls
  emc::set_log_thread_tag("custom");
  EXPECT_EQ(emc::log_thread_tag(), "custom");
  emc::set_log_thread_tag("");
}

TEST(MetricsTest, CounterGaugeHistogramRoundTrip) {
  emc::util::MetricsRegistry reg;
  reg.counter("ops").add(3);
  reg.counter("ops").add(2);
  reg.gauge("level").set(1.5);
  reg.gauge("level").add(0.25);
  reg.histogram("wait").record(1e-6);
  reg.histogram("wait").record(2e-6);
  reg.histogram("wait").record(1.0);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ops"), 5);
  EXPECT_DOUBLE_EQ(snap.gauges.at("level"), 1.75);
  const auto& h = snap.histograms.at("wait");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.min, 1e-6);
  EXPECT_DOUBLE_EQ(h.max, 1.0);
  EXPECT_NEAR(h.sum, 1.0 + 3e-6, 1e-12);
  std::int64_t binned = 0;
  for (const auto& [edge, count] : h.bins) binned += count;
  EXPECT_EQ(binned, 3);
}

TEST(MetricsTest, ResetZeroesButKeepsRegistrations) {
  emc::util::MetricsRegistry reg;
  emc::util::Counter& ops = reg.counter("ops");
  ops.add(10);
  reg.gauge("g").set(2.0);
  reg.histogram("h").record(0.5);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(ops.value(), 0);  // outstanding reference still valid
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("ops"), 0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0);
  ops.add(1);
  EXPECT_EQ(reg.counter("ops").value(), 1);
}

TEST(MetricsTest, NameCannotChangeKind) {
  emc::util::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
}

TEST(MetricsTest, JsonExportIsWellFormed) {
  emc::util::MetricsRegistry reg;
  reg.counter("a/ops").add(1);
  reg.gauge("b").set(0.5);
  std::ostringstream out;
  reg.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a/ops\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  // Balanced braces (no nesting beyond the fixed structure).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsTest, HistogramBinsCoverWideRange) {
  emc::util::Histogram h;
  h.record(1e-13);  // near the lower clamp
  h.record(1e6);    // far above: clamps to the top bin
  EXPECT_EQ(h.count(), 2);
  const auto bins = h.bins();
  std::int64_t total = 0;
  for (std::int64_t b : bins) total += b;
  EXPECT_EQ(total, 2);
  EXPECT_GT(emc::util::Histogram::bin_lower_bound(1),
            emc::util::Histogram::bin_lower_bound(0));
}

TEST(MetricsTest, HistogramPercentilesTrackExactPercentiles) {
  // Log2-binned percentile estimates are bin-width-accurate: each must
  // land within a factor of 2 of the exact sample percentile computed by
  // util/stats.hpp, and inside the true sample range.
  emc::util::MetricsRegistry reg;
  emc::util::Histogram& h = reg.histogram("wait");
  Rng rng(123);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(std::exp(rng.uniform(-14.0, 0.0)));  // ~6e-7 .. 1
    h.record(xs.back());
  }
  const auto snap = reg.snapshot();
  const auto& hv = snap.histograms.at("wait");
  const struct {
    double q;
    double estimate;
  } cases[] = {{0.50, hv.p50}, {0.90, hv.p90}, {0.99, hv.p99}};
  for (const auto& c : cases) {
    const double exact = emc::percentile(xs, c.q);
    EXPECT_GE(c.estimate, exact / 2.0) << "q=" << c.q;
    EXPECT_LE(c.estimate, exact * 2.0) << "q=" << c.q;
    EXPECT_GE(c.estimate, hv.min);
    EXPECT_LE(c.estimate, hv.max);
  }
  EXPECT_LE(hv.p50, hv.p90);
  EXPECT_LE(hv.p90, hv.p99);

  // Degenerate single-value histogram: every percentile clamps to it.
  reg.histogram("point").record(0.25);
  const auto snap2 = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap2.histograms.at("point").p50, 0.25);
  EXPECT_DOUBLE_EQ(snap2.histograms.at("point").p99, 0.25);

  // Text export carries the estimates.
  std::ostringstream out;
  reg.write_text(out);
  EXPECT_NE(out.str().find("p50="), std::string::npos);
  EXPECT_NE(out.str().find("p99="), std::string::npos);
}

TEST(MetricsTest, HistogramSubBinsSharpenPercentiles) {
  // The log-linear sub-bins (kSubBins per log2 bin) bound the
  // percentile error by ~one sub-bin width instead of the old factor
  // of 2 — on a smooth heavy-tailed sample the estimate must sit
  // within 25% of the exact percentile (2 sub-bin widths of slack for
  // the convention difference between the cumulative-bin walk and
  // util/stats' interpolated sample percentile).
  emc::util::MetricsRegistry reg;
  emc::util::Histogram& h = reg.histogram("wait");
  Rng rng(123);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(std::exp(rng.uniform(-14.0, 0.0)));
    h.record(xs.back());
  }
  const auto snap = reg.snapshot();
  const auto& hv = snap.histograms.at("wait");
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = emc::percentile(xs, q);
    const double estimate = hv.percentile(q);
    EXPECT_GE(estimate, exact * 0.75) << "q=" << q;
    EXPECT_LE(estimate, exact * 1.25) << "q=" << q;
  }
  // q = 0 and q = 1 are exact by the [min, max] clamp.
  EXPECT_DOUBLE_EQ(hv.percentile(0.0), hv.min);
  EXPECT_DOUBLE_EQ(hv.percentile(1.0), hv.max);
}

TEST(MetricsTest, HistogramPercentileResolvesWithinSubBin) {
  // Two spikes inside ONE log2 bin [1, 2): 1.0 lands in sub-bin
  // [1, 1.125), 1.9 in [1.875, 2). Pure log2 binning cannot separate
  // them at all; the sub-bins must.
  emc::util::MetricsRegistry reg;
  emc::util::Histogram& h = reg.histogram("spikes");
  for (int i = 0; i < 50; ++i) h.record(1.0);
  for (int i = 0; i < 50; ++i) h.record(1.9);
  const auto snap = reg.snapshot();
  const auto& hv = snap.histograms.at("spikes");
  // p50 resolves inside the first spike's sub-bin...
  EXPECT_GE(hv.p50, 1.0);
  EXPECT_LE(hv.p50, 1.125);
  // ...and p99 inside the second's — strictly below max, which the old
  // factor-of-2 estimate (clamped to max) could never do here.
  EXPECT_GE(hv.p99, 1.875);
  EXPECT_LT(hv.p99, 1.9);
}

TEST(MetricsTest, HistogramFineBinsAggregateToLog2BinsExactly) {
  // The exported log2 bins are the sub-bins summed in groups of
  // kSubBins — the bitwise-compatibility contract for snapshots, text,
  // and JSON reports (which never serialize the sub-bins).
  using emc::util::Histogram;
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    h.record(std::exp(rng.uniform(-20.0, 5.0)));
  }
  const auto coarse = h.bins();
  const auto fine = h.fine_bins();
  for (int b = 0; b < Histogram::kBins; ++b) {
    std::int64_t sum = 0;
    for (int s = 0; s < Histogram::kSubBins; ++s) {
      sum += fine[static_cast<std::size_t>(b * Histogram::kSubBins + s)];
    }
    EXPECT_EQ(coarse[static_cast<std::size_t>(b)], sum) << "bin " << b;
  }
  // Sub-bin edges tile each log2 bin exactly.
  for (int b = 0; b < Histogram::kBins; b += 13) {
    const int f0 = b * Histogram::kSubBins;
    EXPECT_DOUBLE_EQ(Histogram::fine_lower_bound(f0),
                     Histogram::bin_lower_bound(b));
    for (int s = 0; s + 1 < Histogram::kSubBins; ++s) {
      EXPECT_DOUBLE_EQ(Histogram::fine_upper_bound(f0 + s),
                       Histogram::fine_lower_bound(f0 + s + 1));
    }
    EXPECT_DOUBLE_EQ(Histogram::fine_upper_bound(f0 + Histogram::kSubBins - 1),
                     Histogram::bin_lower_bound(b + 1));
  }
  // The JSON export has no sub-bin field: layout is unchanged.
  emc::util::MetricsRegistry reg;
  reg.histogram("x").record(1.5);
  std::ostringstream out;
  reg.write_json(out);
  EXPECT_EQ(out.str().find("fine"), std::string::npos);
}

TEST(MetricsTest, HistogramPercentileFallsBackToCoarseBins) {
  // Hand-built snapshot values (no `fine` vector) still estimate off
  // the log2 bins with the original factor-of-2 bound.
  emc::util::MetricsSnapshot::HistogramValue hv;
  hv.count = 4;
  hv.min = 1.0;
  hv.max = 8.0;
  hv.bins = {{1.0, 2}, {4.0, 2}};
  const double p50 = hv.percentile(0.50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  const double p99 = hv.percentile(0.99);
  EXPECT_GE(p99, 4.0);
  EXPECT_LE(p99, 8.0);
}

TEST(JsonParserTest, ParsesStructuredDocument) {
  const emc::util::JsonValue doc = emc::util::parse_json(
      R"({"name": "run", "ok": true, "skip": null,
          "nums": [1, -2.5, 3e2], "nest": {"k": "v\n"}})");
  using Kind = emc::util::JsonValue::Kind;
  ASSERT_EQ(doc.kind, Kind::kObject);
  EXPECT_EQ(doc.object.at("name").str, "run");
  EXPECT_TRUE(doc.object.at("ok").boolean);
  EXPECT_EQ(doc.object.at("skip").kind, Kind::kNull);
  const auto& nums = doc.object.at("nums").array;
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_DOUBLE_EQ(nums[0].number, 1.0);
  EXPECT_DOUBLE_EQ(nums[1].number, -2.5);
  EXPECT_DOUBLE_EQ(nums[2].number, 300.0);
  EXPECT_EQ(doc.object.at("nest").object.at("k").str, "v\n");
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  EXPECT_THROW(emc::util::parse_json("{\"a\": 1"), std::runtime_error);
  EXPECT_THROW(emc::util::parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(emc::util::parse_json("[1, 2] trailing"),
               std::runtime_error);
  EXPECT_THROW(emc::util::parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(emc::util::parse_json(""), std::runtime_error);
  EXPECT_THROW(emc::util::parse_json("{\"a\": bogus}"), std::runtime_error);
}

TEST(JsonParserTest, RejectsNonFiniteNumberLiterals) {
  // The tokens unguarded C++ emitters actually stream for NaN/Inf, plus
  // an exponent that overflows to infinity inside strtod.
  for (const char* bad :
       {"nan", "-nan", "NaN", "inf", "-inf", "Infinity", "-Infinity",
        "[1, nan]", "{\"x\": inf}", "1e999"}) {
    EXPECT_THROW(emc::util::parse_json(bad), std::runtime_error)
        << "accepted: " << bad;
  }
}

TEST(JsonWriterTest, NonFiniteDoublesEmitNull) {
  std::ostringstream out;
  emc::bench::JsonWriter w(out);
  w.begin_object();
  w.field("finite", 1.5);
  w.field("not_a_number", std::numeric_limits<double>::quiet_NaN());
  w.field("too_big", std::numeric_limits<double>::infinity());
  w.begin_array("series");
  w.value(0.25);
  w.value(-std::numeric_limits<double>::infinity());
  w.end_array();
  w.end_object();

  // The strict parser is the oracle: a raw nan/inf token would throw.
  using Kind = emc::util::JsonValue::Kind;
  const emc::util::JsonValue doc = emc::util::parse_json(out.str());
  EXPECT_DOUBLE_EQ(doc.object.at("finite").number, 1.5);
  EXPECT_EQ(doc.object.at("not_a_number").kind, Kind::kNull);
  EXPECT_EQ(doc.object.at("too_big").kind, Kind::kNull);
  const auto& series = doc.object.at("series").array;
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].number, 0.25);
  EXPECT_EQ(series[1].kind, Kind::kNull);
}

TEST(JsonEscapeTest, RoundTripsThroughStrictParser) {
  // Every writer escapes via json_escape; the parser must give the
  // original bytes back for quotes, backslashes, and control chars.
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x07 del\x1f end";
  const emc::util::JsonValue doc = emc::util::parse_json(
      "{" + emc::util::json_quote("key\n\"k\"") + ": " +
      emc::util::json_quote(nasty) + "}");
  ASSERT_TRUE(doc.has("key\n\"k\""));
  EXPECT_EQ(doc.object.at("key\n\"k\"").str, nasty);
}

TEST(JsonEscapeTest, ControlCharsBecomeUnicodeEscapes) {
  const std::string escaped = emc::util::json_escape("\x01\x1f");
  EXPECT_EQ(escaped, "\\u0001\\u001f");
}

TEST(JsonEscapeTest, WriterEscapesKeysAndValues) {
  std::ostringstream out;
  emc::bench::JsonWriter w(out);
  w.begin_object();
  w.field("na\"me", "va\\lue\n");
  w.end_object();
  const emc::util::JsonValue doc = emc::util::parse_json(out.str());
  EXPECT_EQ(doc.object.at("na\"me").str, "va\\lue\n");
}

TEST(FormatDoubleTest, RoundTripsExactBits) {
  for (const double v :
       {0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308, -2.5,
        123456789.123456789, 6.02214076e23, 1.008635}) {
    const std::string s = emc::util::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(emc::util::format_double(1.5), "1.5");
  EXPECT_EQ(emc::util::format_double(-0.0), "-0");
}

TEST(FormatDoubleTest, ParserRoundTripIsExact) {
  const double v = 0.036356915000000004;  // needs 17 digits
  const emc::util::JsonValue doc =
      emc::util::parse_json("[" + emc::util::format_double(v) + "]");
  EXPECT_EQ(doc.array[0].number, v);
}

TEST(MetricsTest, HistogramSnapshotCarriesMean) {
  emc::util::MetricsRegistry reg;
  auto& h = reg.histogram("lat");
  h.record(1.0);
  h.record(3.0);
  const auto snap = reg.snapshot();
  const auto& hv = snap.histograms.at("lat");
  EXPECT_DOUBLE_EQ(hv.mean, 2.0);
  EXPECT_DOUBLE_EQ(hv.min, 1.0);
  EXPECT_DOUBLE_EQ(hv.max, 3.0);
  EXPECT_DOUBLE_EQ(hv.sum, 4.0);

  std::ostringstream text, json;
  reg.write_text(text);
  EXPECT_NE(text.str().find("mean=2"), std::string::npos);
  reg.write_json(json);
  const emc::util::JsonValue doc = emc::util::parse_json(json.str());
  EXPECT_DOUBLE_EQ(doc.object.at("histograms")
                       .object.at("lat")
                       .object.at("mean")
                       .number,
                   2.0);
}

TEST(MetricsTest, SnapshotAfterJoinIsExact) {
  // Regression test for the snapshot-after-join contract
  // (MetricsRegistry::snapshot doc): metric updates are relaxed
  // atomics, so a snapshot is only guaranteed exact and mutually
  // consistent once the writing threads have joined. Hammer one
  // counter, one gauge, and one histogram from several threads, join,
  // and demand every aggregate agrees with arithmetic — including the
  // histogram's count == sum of its bin counts, the first thing a
  // mid-run snapshot would tear.
  emc::util::MetricsRegistry reg;
  emc::util::Counter& counter = reg.counter("join/counter");
  emc::util::Gauge& gauge = reg.gauge("join/gauge");
  emc::util::Histogram& hist = reg.histogram("join/hist");

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          counter.add(1);
          gauge.add(1.0);
          hist.record(static_cast<double>((t % 4) + 1));
        }
      });
    }
    for (auto& w : writers) w.join();  // happens-before the snapshot

    const auto snap = reg.snapshot();
    const std::int64_t expected =
        static_cast<std::int64_t>(kThreads) * kIters * (round + 1);
    EXPECT_EQ(snap.counters.at("join/counter"), expected);
    EXPECT_DOUBLE_EQ(snap.gauges.at("join/gauge"),
                     static_cast<double>(expected));
    const auto& h = snap.histograms.at("join/hist");
    EXPECT_EQ(h.count, expected);
    std::int64_t binned = 0;
    for (const auto& [edge, count] : h.bins) binned += count;
    EXPECT_EQ(binned, h.count) << "torn histogram: bins disagree with count";
    // Sum of small integers is exact in double.
    EXPECT_DOUBLE_EQ(h.sum, static_cast<double>(kThreads / 4) * kIters *
                                (1.0 + 2.0 + 3.0 + 4.0) * (round + 1));
  }
}

}  // namespace
