file(REMOVE_RECURSE
  "CMakeFiles/test_sim_conservation.dir/test_sim_conservation.cpp.o"
  "CMakeFiles/test_sim_conservation.dir/test_sim_conservation.cpp.o.d"
  "test_sim_conservation"
  "test_sim_conservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_conservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
