// EXP-10 (extension/ablation) — the wider execution-model design space
// the paper's conclusions point at: chunk policies for the shared
// counter (fixed / guided / trapezoid), the hierarchical two-level
// counter, hybrid static+dynamic execution, and steal victim-selection
// policies. Each row is one design choice; columns quantify the
// overhead/imbalance trade it makes.

#include <iostream>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "util/table.hpp"

int main() {
  using namespace emc;

  const core::TaskModel model = bench::standard_workload();
  bench::print_header(
      "EXP-10: scheduling-policy ablation (P = 256)",
      "execution-model design choices trade overhead against imbalance",
      model);

  sim::MachineConfig machine = emc::bench::make_machine(256);

  Table table({"policy", "makespan_ms", "utilization_pct", "counter_ops",
               "steals", "steal_or_counter_wait_ms"});
  table.set_precision(2);

  auto add = [&](const std::string& name, const sim::SimResult& r) {
    table.add_row({name, r.makespan * 1e3, r.utilization() * 100.0,
                   r.counter_ops, r.steals,
                   (r.counter_wait + r.steal_wait) * 1e3});
  };

  // Counter chunk policies.
  for (auto [name, policy] :
       {std::pair<const char*, sim::ChunkPolicy>{"counter fixed(4)",
                                                 sim::ChunkPolicy::kFixed},
        {"counter guided", sim::ChunkPolicy::kGuided},
        {"counter trapezoid", sim::ChunkPolicy::kTrapezoid}}) {
    sim::CounterOptions options;
    options.chunk = policy == sim::ChunkPolicy::kFixed ? 4 : 1;
    options.policy = policy;
    add(name, sim::simulate_counter(machine, model.costs, options));
  }

  // Hierarchical counter.
  add("hierarchical 256/2",
      sim::simulate_hierarchical_counter(machine, model.costs, 256, 2));
  add("hierarchical 64/1",
      sim::simulate_hierarchical_counter(machine, model.costs, 64, 1));

  // Hybrid static+dynamic (LPT prefix, counter tail).
  const auto lpt = lb::lpt_assignment(model.costs, machine.n_procs);
  for (double frac : {0.1, 0.3, 0.5}) {
    add("hybrid lpt+" + std::to_string(static_cast<int>(frac * 100)) + "%",
        sim::simulate_hybrid(machine, model.costs, lpt, frac, 2));
  }

  // Victim policies for work stealing (block initial placement).
  const auto block = lb::block_assignment(model.task_count(),
                                          machine.n_procs);
  for (auto [name, victim] : {std::pair<const char*, sim::VictimPolicy>{
                                  "steal uniform",
                                  sim::VictimPolicy::kUniform},
                              {"steal node-first",
                               sim::VictimPolicy::kNodeFirst},
                              {"steal ring", sim::VictimPolicy::kRing}}) {
    sim::StealOptions options;
    options.victim = victim;
    add(name,
        sim::simulate_work_stealing(machine, model.costs, block, options));
  }

  table.print(std::cout, "policy ablation");
  std::cout << "\nlower bound (perfect balance, zero overhead): "
            << model.total_cost() / machine.n_procs * 1e3 << " ms\n";
  return 0;
}
