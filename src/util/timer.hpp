#pragma once

// Wall-clock timing helpers.

#include <chrono>
#include <cstdint>

namespace emc {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` and returns its wall time in seconds.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  Timer t;
  fn();
  return t.seconds();
}

}  // namespace emc
