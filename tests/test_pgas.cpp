// PGAS runtime tests: SPMD execution, barriers, global counter, and
// concurrent one-sided array access.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace {

using namespace emc::pgas;

TEST(RuntimeTest, RunsEveryRankExactlyOnce) {
  Runtime rt(4);
  std::vector<std::atomic<int>> hits(4);
  rt.run([&](Context& ctx) {
    hits[static_cast<std::size_t>(ctx.rank())].fetch_add(1);
    EXPECT_EQ(ctx.size(), 4);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RuntimeTest, RejectsZeroRanks) {
  EXPECT_THROW(Runtime(0), std::invalid_argument);
}

TEST(RuntimeTest, BarrierOrdersPhases) {
  Runtime rt(4);
  std::atomic<int> phase1_count{0};
  std::atomic<bool> violated{false};
  rt.run([&](Context& ctx) {
    phase1_count.fetch_add(1);
    ctx.barrier();
    // After the barrier every rank must observe all phase-1 increments.
    if (phase1_count.load() != 4) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(RuntimeTest, ExceptionPropagates) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Context& ctx) {
                 if (ctx.rank() == 1) throw std::runtime_error("rank 1 died");
               }),
               std::runtime_error);
}

TEST(RuntimeTest, ReusableAcrossRuns) {
  Runtime rt(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round) {
    rt.run([&](Context&) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 9);
}

TEST(GlobalCounterTest, SequentialSemantics) {
  GlobalCounter c(10);
  CommCostModel free_model;
  EXPECT_EQ(c.fetch_add(5, free_model), 10);
  EXPECT_EQ(c.fetch_add(1, free_model), 15);
  EXPECT_EQ(c.load(), 16);
  c.reset(0);
  EXPECT_EQ(c.load(), 0);
}

TEST(GlobalCounterTest, ConcurrentGrabsAreUniqueAndComplete) {
  // nxtval semantics: N ranks grabbing chunks must partition [0, total).
  const int n_ranks = 8;
  const std::int64_t total = 5000;
  Runtime rt(n_ranks);
  GlobalCounter counter(0);
  std::vector<std::atomic<char>> claimed(static_cast<std::size_t>(total));

  rt.run([&](Context& ctx) {
    while (true) {
      const std::int64_t i = counter.fetch_add(1, ctx.cost_model());
      if (i >= total) break;
      // Each index must be claimed exactly once.
      EXPECT_EQ(claimed[static_cast<std::size_t>(i)].fetch_add(1), 0);
    }
  });
  for (const auto& c : claimed) EXPECT_EQ(c.load(), 1);
}

TEST(CollectiveTest, AllReduceSumsEveryRank) {
  const int n_ranks = 6;
  Runtime rt(n_ranks);
  rt.run([&](Context& ctx) {
    std::vector<double> data{static_cast<double>(ctx.rank()), 1.0,
                             static_cast<double>(ctx.rank()) * 10.0};
    ctx.all_reduce_sum(data);
    // sum of ranks 0..5 = 15.
    EXPECT_DOUBLE_EQ(data[0], 15.0);
    EXPECT_DOUBLE_EQ(data[1], 6.0);
    EXPECT_DOUBLE_EQ(data[2], 150.0);
  });
}

TEST(CollectiveTest, AllReduceRepeatable) {
  Runtime rt(4);
  rt.run([&](Context& ctx) {
    for (int round = 1; round <= 3; ++round) {
      std::vector<double> data{1.0};
      ctx.all_reduce_sum(data);
      EXPECT_DOUBLE_EQ(data[0], 4.0) << "round " << round;
    }
  });
}

TEST(CollectiveTest, BroadcastFromEveryRoot) {
  const int n_ranks = 4;
  Runtime rt(n_ranks);
  for (int root = 0; root < n_ranks; ++root) {
    rt.run([&](Context& ctx) {
      std::vector<double> data(3, ctx.rank() == root ? 42.5 : 0.0);
      ctx.broadcast(data, root);
      for (double x : data) EXPECT_DOUBLE_EQ(x, 42.5);
    });
  }
}

TEST(GlobalArrayTest, OwnershipCoversAllRowsInOrder) {
  GlobalArray ga(100, 10, 7);
  int prev_owner = 0;
  std::size_t covered = 0;
  for (int r = 0; r < 7; ++r) {
    const auto [first, last] = ga.local_rows(r);
    EXPECT_LE(first, last);
    covered += last - first;
    for (std::size_t row = first; row < last; ++row) {
      EXPECT_EQ(ga.owner_of_row(row), r);
    }
    EXPECT_GE(r, prev_owner);
    prev_owner = r;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(GlobalArrayTest, PutThenGetRoundTrip) {
  GlobalArray ga(8, 8, 2);
  CommCostModel free_model;
  std::vector<double> patch{1.0, 2.0, 3.0, 4.0};
  ga.put(0, 3, 2, 2, 2, patch, free_model);

  std::vector<double> out(4, 0.0);
  ga.get(1, 3, 2, 2, 2, out, free_model);
  EXPECT_EQ(out, patch);
  EXPECT_DOUBLE_EQ(ga.at(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(ga.at(4, 3), 4.0);
}

TEST(GlobalArrayTest, PatchBoundsChecked) {
  GlobalArray ga(4, 4, 1);
  CommCostModel m;
  std::vector<double> buf(16);
  EXPECT_THROW(ga.get(0, 3, 3, 2, 2, buf, m), std::out_of_range);
  EXPECT_THROW(ga.get(0, 0, 0, 0, 1, buf, m), std::out_of_range);
  std::vector<double> tiny(1);
  EXPECT_THROW(ga.get(0, 0, 0, 2, 2, tiny, m), std::invalid_argument);
}

TEST(GlobalArrayTest, ConcurrentAccumulateIsAtomic) {
  // All ranks accumulate 1.0 into every element; the result must be
  // exactly n_ranks * repeats everywhere (lost updates would show).
  const int n_ranks = 8;
  const int repeats = 50;
  GlobalArray ga(32, 16, n_ranks);
  Runtime rt(n_ranks);
  const std::vector<double> ones(32 * 16, 1.0);

  rt.run([&](Context& ctx) {
    for (int k = 0; k < repeats; ++k) {
      ga.accumulate(ctx.rank(), 0, 0, 32, 16, ones, ctx.cost_model());
    }
  });

  for (std::size_t r = 0; r < 32; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      ASSERT_DOUBLE_EQ(ga.at(r, c), static_cast<double>(n_ranks * repeats));
    }
  }
}

TEST(GlobalArrayTest, StripeSpanningOperations) {
  // A patch spanning several owners must read/write all stripes.
  GlobalArray ga(12, 4, 4);  // 3 rows per rank
  CommCostModel m;
  std::vector<double> patch(12 * 4);
  std::iota(patch.begin(), patch.end(), 0.0);
  ga.put(0, 0, 0, 12, 4, patch, m);

  std::vector<double> out(12 * 4);
  ga.get(3, 0, 0, 12, 4, out, m);
  EXPECT_EQ(out, patch);
}

TEST(GlobalArrayTest, FillResets) {
  GlobalArray ga(4, 4, 2);
  CommCostModel m;
  const std::vector<double> v{7.0};
  ga.put(0, 1, 1, 1, 1, v, m);
  ga.fill(0.0);
  EXPECT_DOUBLE_EQ(ga.at(1, 1), 0.0);
}

TEST(CommCostModelTest, TransferCostComposition) {
  CommCostModel m;
  m.local_ns = 10;
  m.remote_ns = 1000;
  m.per_byte_ns = 2;
  EXPECT_EQ(m.transfer_cost(false, 8), 10u + 16u);
  EXPECT_EQ(m.transfer_cost(true, 8), 1000u + 16u);
}

TEST(InjectDelayTest, ZeroIsNoop) {
  inject_delay(0);  // must return immediately
  SUCCEED();
}

TEST(RetryTest, DisabledFaultsAreFreeAndDeterministic) {
  CommCostModel cost;  // drop_prob 0: faults off
  EXPECT_FALSE(cost.faults_enabled());
  EXPECT_EQ(resolve_with_retries(cost, 0, 0, 0), 0);
  EXPECT_EQ(resolve_with_retries(cost, 3, 99, 1000), 0);
}

TEST(RetryTest, DropDecisionsReplayFromTheSeed) {
  CommCostModel cost;
  cost.drop_prob = 0.5;
  cost.retry_backoff_ns = 0;
  std::vector<int> first, second;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    first.push_back(resolve_with_retries(cost, 1, seq, 0));
  }
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    second.push_back(resolve_with_retries(cost, 1, seq, 0));
  }
  EXPECT_EQ(first, second);
  // With p = 0.5 over 64 ops some must retry and some must not.
  EXPECT_TRUE(std::any_of(first.begin(), first.end(),
                          [](int r) { return r > 0; }));
  EXPECT_TRUE(std::any_of(first.begin(), first.end(),
                          [](int r) { return r == 0; }));
  // A different seed reshuffles the stream.
  CommCostModel other = cost;
  other.fault_seed = cost.fault_seed + 1;
  std::vector<int> reseeded;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    reseeded.push_back(resolve_with_retries(other, 1, seq, 0));
  }
  EXPECT_NE(first, reseeded);
}

TEST(RetryTest, CertainDropTimesOut) {
  CommCostModel cost;
  cost.drop_prob = 1.0;  // every attempt dropped
  cost.max_attempts = 3;
  cost.retry_backoff_ns = 0;
  EXPECT_THROW(resolve_with_retries(cost, 0, 0, 0),
               std::runtime_error);
}

TEST(RetryTest, GlobalCounterRetriesAreCountedAndValuesStayUnique) {
  CommCostModel cost;
  cost.drop_prob = 0.3;
  cost.retry_backoff_ns = 0;
  emc::util::MetricsRegistry registry;
  GlobalCounter counter;
  counter.attach_metrics(registry, 4);

  Runtime runtime(4, cost);
  constexpr int kGrabs = 50;
  std::vector<std::atomic<int>> taken(4 * kGrabs);
  runtime.run([&](Context& ctx) {
    for (int i = 0; i < kGrabs; ++i) {
      const std::int64_t v =
          counter.fetch_add(1, ctx.cost_model(), ctx.rank());
      taken[static_cast<std::size_t>(v)].fetch_add(1);
    }
  });
  // Retries never duplicate or lose a fetch-add.
  for (const auto& t : taken) EXPECT_EQ(t.load(), 1);
  EXPECT_EQ(registry.counter("pgas/nxtval_ops").value(), 4 * kGrabs);
  // p = 0.3 over 200 ops: some retries are certain for this seed.
  EXPECT_GT(registry.counter("pgas/nxtval_retries").value(), 0);
}

TEST(RetryTest, GlobalArrayFaultsDelayButNeverCorrupt) {
  CommCostModel cost;
  cost.drop_prob = 0.4;
  cost.retry_backoff_ns = 0;
  emc::util::MetricsRegistry registry;
  GlobalArray ga(16, 16, 2);
  ga.set_metrics(&registry);

  std::vector<double> patch(16 * 16);
  for (std::size_t i = 0; i < patch.size(); ++i) {
    patch[i] = static_cast<double>(i);
  }
  ga.put(0, 0, 0, 16, 16, patch, cost);
  ga.accumulate(1, 0, 0, 16, 16, patch, cost);
  std::vector<double> out(16 * 16, -1.0);
  for (int round = 0; round < 16; ++round) {
    ga.get(round % 2, 0, 0, 16, 16, out, cost);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i)) << i;
  }
  const std::int64_t retries =
      registry.counter("pgas/r0/op_retries").value() +
      registry.counter("pgas/r1/op_retries").value();
  EXPECT_GT(retries, 0);  // p = 0.4 over 18 ops, certain for this seed
}

}  // namespace
