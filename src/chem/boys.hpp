#pragma once

// Boys function F_m(x) = \int_0^1 t^{2m} exp(-x t^2) dt, the radial
// kernel of all Coulomb-type Gaussian integrals.

#include <span>

namespace emc::chem {

/// Fills out[0..m_max] with F_0(x) .. F_m_max(x).
///
/// Strategy: for small/moderate x, evaluate F_{m_max} by its (rapidly
/// converging) ascending series and fill lower orders by stable downward
/// recursion F_m = (2x F_{m+1} + e^{-x}) / (2m + 1). For large x, use the
/// asymptotic closed form of F_0 and upward recursion, which is stable
/// there because e^{-x} is negligible.
void boys(double x, std::span<double> out);

/// Single-order convenience wrapper.
double boys(int m, double x);

}  // namespace emc::chem
