#pragma once

// Weighted hypergraph: vertices (tasks) and nets (hyperedges grouping the
// tasks that touch a shared datum, e.g. a Fock-matrix block). Stored as
// dual CSR (pins per net, nets per vertex) so both directions iterate in
// O(degree).

#include <cstdint>
#include <span>
#include <vector>

namespace emc::graph {

using VertexId = std::int32_t;
using NetId = std::int32_t;

class Hypergraph {
 public:
  class Builder {
   public:
    explicit Builder(VertexId n_vertices);

    /// Adds a net over the given pins (duplicates within a net are
    /// removed). Empty or singleton nets are allowed but carry no cut
    /// cost. Returns the net id.
    NetId add_net(std::vector<VertexId> pins, double weight = 1.0);
    void set_vertex_weight(VertexId v, double w);

    Hypergraph build();

   private:
    VertexId n_;
    std::vector<std::vector<VertexId>> nets_;
    std::vector<double> net_weights_;
    std::vector<double> vertex_weights_;
  };

  VertexId vertex_count() const {
    return static_cast<VertexId>(vertex_weights_.size());
  }
  NetId net_count() const {
    return static_cast<NetId>(net_offsets_.size()) - 1;
  }
  std::size_t pin_count() const { return pins_.size(); }

  std::span<const VertexId> pins(NetId e) const {
    return {pins_.data() + net_offsets_[static_cast<std::size_t>(e)],
            pins_.data() + net_offsets_[static_cast<std::size_t>(e) + 1]};
  }
  std::span<const NetId> nets_of(VertexId v) const {
    return {vertex_nets_.data() +
                vertex_offsets_[static_cast<std::size_t>(v)],
            vertex_nets_.data() +
                vertex_offsets_[static_cast<std::size_t>(v) + 1]};
  }
  double net_weight(NetId e) const {
    return net_weights_[static_cast<std::size_t>(e)];
  }
  double vertex_weight(VertexId v) const {
    return vertex_weights_[static_cast<std::size_t>(v)];
  }
  double total_vertex_weight() const;

  /// Connectivity-1 cut metric: sum over nets of w(e) * (lambda(e) - 1),
  /// where lambda(e) is the number of distinct parts the net's pins span
  /// under `part` (the standard hypergraph partitioning objective).
  double connectivity_cut(std::span<const int> part, int n_parts) const;

 private:
  Hypergraph() = default;

  std::vector<std::size_t> net_offsets_;
  std::vector<VertexId> pins_;
  std::vector<double> net_weights_;
  std::vector<std::size_t> vertex_offsets_;
  std::vector<NetId> vertex_nets_;
  std::vector<double> vertex_weights_;
};

}  // namespace emc::graph
