#pragma once

// Fitting PMNF term models to measured sweep samples: non-negative
// least squares over a chosen term set (via the shared
// linalg/lstsq.hpp solver), plus cross-validation-driven greedy term
// selection so the model that ships is the one that predicts held-out
// points, not the one that interpolates the training set best.
//
// Everything here is deterministic: the k-fold split assigns each
// sample to a fold by a stateless splitmix64 hash of (seed, sample
// key) — the PR 3 fault-replay convention — so the split, the selected
// terms, and the fitted coefficients are bitwise reproducible across
// runs and platforms for identical inputs, regardless of sample count
// or evaluation order.

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/term_basis.hpp"

namespace emc::perfmodel {

/// One training observation: a predictor point, the measured value, and
/// a stable identity key ("model=ws,procs=256,...") that names the
/// sample across runs — the cross-validation split hashes this key, so
/// fold membership survives reordering and re-ingestion.
struct Sample {
  Point predictors;
  double value = 0.0;
  std::string key;
};

struct FitOptions {
  /// Salt of the stateless fold hash.
  std::uint64_t seed = 1;
  int cv_folds = 4;
  /// A candidate term joins the model only when it shrinks the CV error
  /// to below (1 - min_improvement) of the current one; anything less
  /// is treated as noise-chasing and selection stops.
  double min_improvement = 0.02;
  /// Terms beyond the always-present constant.
  std::size_t max_terms = 3;
  /// Fit under coefficient >= 0 (NNLS). Performance terms are costs;
  /// a negative coefficient is almost always a collinearity artifact.
  bool non_negative = true;
};

/// A fitted model: sum of coefficient * term.
struct FittedModel {
  std::vector<Term> terms;
  std::vector<double> coefficients;
  /// Median |relative error| over the training samples.
  double train_error = 0.0;
  /// Median |relative error| over pooled held-out CV predictions of the
  /// selected term set (0 when CV was not run, e.g. fit_terms).
  double cv_error = 0.0;

  double evaluate(const Point& point) const;
  /// "3.2e-06 + 1.1e-07*procs^1*log2(procs)^1" (coefficient-0 terms
  /// elided; "0" for the all-zero model).
  std::string to_string() const;
};

/// Fold of `key` in [0, folds): splitmix64(seed ^ fnv1a(key)) % folds.
/// Stateless and platform-independent; pinned by a regression test.
int cv_fold(std::uint64_t seed, const std::string& key, int folds);

/// Median of |prediction - value| / max(|value|, epsilon) over
/// `samples`; 0 for an empty span.
double median_relative_error(const FittedModel& model,
                             const std::vector<Sample>& samples);

/// Plain fit of exactly `terms` (no selection). Throws
/// std::invalid_argument when samples are empty.
FittedModel fit_terms(const std::vector<Term>& terms,
                      const std::vector<Sample>& samples,
                      bool non_negative = true);

/// Greedy forward selection from `candidates` on top of the constant
/// term: the candidate that most reduces the k-fold CV error joins the
/// model, until no candidate clears min_improvement or max_terms is
/// reached; the returned model is refit on all samples. Deterministic:
/// ties resolve to the earliest candidate in the given order.
FittedModel fit_model(const std::vector<Term>& candidates,
                      const std::vector<Sample>& samples,
                      const FitOptions& options = {});

}  // namespace emc::perfmodel
