#pragma once

// Chemical element data for the first three rows (all this study needs).

#include <string>

namespace emc::chem {

/// Atomic number for an element symbol ("H", "He", ..., "Ar").
/// Throws std::invalid_argument for unknown symbols.
int atomic_number(const std::string& symbol);

/// Element symbol for an atomic number in [1, 18].
/// Throws std::invalid_argument when out of range.
const char* element_symbol(int z);

}  // namespace emc::chem
