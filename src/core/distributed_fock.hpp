#pragma once

// Distributed Fock build in the Global-Arrays style of the paper's
// implementation: the density lives in a GlobalArray, every rank fetches
// it with one-sided Get at the start of an iteration, Fock tasks are
// scheduled under a configurable execution model, and each rank's J/K
// contributions are merged back with one-sided atomic Accumulate.
//
// The same object plugs into chem::run_rhf_with_builder, so a full SCF
// can be driven end-to-end through any execution model and verified
// against the sequential reference (tests/test_distributed_fock.cpp).

#include <string>

#include "chem/fock.hpp"
#include "chem/scf.hpp"
#include "exec/schedulers.hpp"
#include "lb/partition.hpp"
#include "pgas/global_array.hpp"
#include "pgas/runtime.hpp"

namespace emc::core {

enum class ExecModel {
  kStatic,        ///< fixed assignment (see DistributedFockOptions)
  kCounter,       ///< GA-nxtval chunked self-scheduling
  kWorkStealing,  ///< Chase-Lev deques, random victims
};

struct DistributedFockOptions {
  ExecModel model = ExecModel::kWorkStealing;
  /// Balancer for the static model / work-stealing seed: "block",
  /// "cyclic", or "lpt".
  std::string static_balancer = "block";
  std::int64_t counter_chunk = 4;
  exec::WorkStealingOptions steal;
  double screen_threshold = 1e-10;
};

/// SPMD Fock builder over a PGAS runtime. Not thread-safe to share one
/// instance across concurrent SCF runs; reuse across iterations of one
/// run is the intended pattern.
class DistributedFockBuilder {
 public:
  DistributedFockBuilder(const chem::BasisSet& basis,
                         pgas::Runtime& runtime,
                         DistributedFockOptions options = {});

  /// Builds G(P) = J - K/2 with the configured execution model. The
  /// density is published to a GlobalArray, ranks fetch it one-sided,
  /// execute their tasks, and accumulate J/K back one-sided.
  linalg::Matrix build_g(const linalg::Matrix& density);

  /// Adapter for chem::run_rhf_with_builder.
  chem::GBuilder as_g_builder();

  /// Execution statistics of the most recent build_g call.
  const exec::ExecutionStats& last_stats() const { return last_stats_; }
  /// Total build_g invocations (SCF iterations served).
  int builds() const { return builds_; }

 private:
  lb::Assignment initial_assignment() const;

  const chem::BasisSet* basis_;
  pgas::Runtime* runtime_;
  DistributedFockOptions options_;
  chem::FockBuilder fock_;
  std::vector<chem::ShellPairTask> tasks_;
  exec::ExecutionStats last_stats_;
  int builds_ = 0;
};

}  // namespace emc::core
