#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/json.hpp"

namespace emc::sim {

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kTaskExec:
      return "task";
    case TraceEventType::kStealSuccess:
      return "steal";
    case TraceEventType::kStealFail:
      return "steal-fail";
    case TraceEventType::kCounterOp:
      return "counter";
    case TraceEventType::kIdle:
      return "idle";
    case TraceEventType::kIterationBoundary:
      return "iteration";
    case TraceEventType::kFaultStart:
      return "fault-start";
    case TraceEventType::kFaultEnd:
      return "fault-end";
    case TraceEventType::kOpRetry:
      return "op-retry";
    case TraceEventType::kTaskReexec:
      return "task-reexec";
    case TraceEventType::kNetTransfer:
      return "net-transfer";
    case TraceEventType::kLinkWait:
      return "link-wait";
  }
  return "?";
}

std::vector<double> utilization_timeline(std::span<const TraceEvent> trace,
                                         double makespan, int n_procs,
                                         int bins) {
  bool any_task = false;
  for (const TraceEvent& ev : trace) {
    if (ev.type == TraceEventType::kTaskExec) {
      any_task = true;
      break;
    }
  }
  if (!any_task) {
    throw std::invalid_argument(
        "utilization_timeline: empty trace (set record_trace)");
  }
  if (bins < 1 || n_procs < 1) {
    throw std::invalid_argument("utilization_timeline: bad bins/procs");
  }
  // A non-positive (or NaN) makespan would make the bin width zero and
  // ev.start / width NaN/Inf, whose cast to int is undefined behavior;
  // an infinite makespan would yield a meaningless all-zero timeline.
  if (!(makespan > 0.0) || !std::isfinite(makespan)) {
    throw std::invalid_argument(
        "utilization_timeline: makespan must be positive and finite");
  }
  const double width = makespan / static_cast<double>(bins);
  std::vector<double> busy_time(static_cast<std::size_t>(bins), 0.0);

  for (const TraceEvent& ev : trace) {
    if (ev.type != TraceEventType::kTaskExec) continue;
    // Distribute this execution's busy time over the bins it overlaps.
    const int first =
        std::clamp(static_cast<int>(ev.start / width), 0, bins - 1);
    const int last =
        std::clamp(static_cast<int>(ev.end / width), 0, bins - 1);
    for (int b = first; b <= last; ++b) {
      const double lo = std::max(ev.start, width * b);
      const double hi = std::min(ev.end, width * (b + 1));
      if (hi > lo) busy_time[static_cast<std::size_t>(b)] += hi - lo;
    }
  }
  for (double& x : busy_time) {
    x /= width * static_cast<double>(n_procs);
  }
  return busy_time;
}

std::vector<std::int64_t> steal_provenance(
    std::span<const TraceEvent> trace, int n_procs) {
  if (n_procs < 1) {
    throw std::invalid_argument("steal_provenance: n_procs < 1");
  }
  const auto p = static_cast<std::size_t>(n_procs);
  std::vector<std::int64_t> matrix(p * p, 0);
  for (const TraceEvent& ev : trace) {
    if (ev.type != TraceEventType::kStealSuccess) continue;
    if (ev.proc < 0 || ev.proc >= n_procs || ev.peer < 0 ||
        ev.peer >= n_procs) {
      throw std::invalid_argument("steal_provenance: proc out of range");
    }
    ++matrix[static_cast<std::size_t>(ev.proc) * p +
             static_cast<std::size_t>(ev.peer)];
  }
  return matrix;
}

namespace {

/// Per-proc chronological [start, end) intervals of all recorded
/// (non-derived) activity.
std::vector<std::vector<std::pair<double, double>>> activity_by_proc(
    std::span<const TraceEvent> trace, int n_procs) {
  std::vector<std::vector<std::pair<double, double>>> activity(
      static_cast<std::size_t>(n_procs));
  for (const TraceEvent& ev : trace) {
    if (ev.type == TraceEventType::kIdle ||
        ev.type == TraceEventType::kIterationBoundary) {
      continue;
    }
    if (ev.proc < 0 || ev.proc >= n_procs) {
      throw std::invalid_argument("trace analysis: proc out of range");
    }
    activity[static_cast<std::size_t>(ev.proc)].emplace_back(ev.start,
                                                             ev.end);
  }
  for (auto& spans : activity) std::sort(spans.begin(), spans.end());
  return activity;
}

/// Invokes fn(proc, gap_start, gap_end) for each uncovered interval.
template <typename Fn>
void for_each_gap(
    const std::vector<std::vector<std::pair<double, double>>>& activity,
    double makespan, Fn&& fn) {
  for (std::size_t p = 0; p < activity.size(); ++p) {
    double cursor = 0.0;
    for (const auto& [start, end] : activity[p]) {
      if (start > cursor) fn(static_cast<int>(p), cursor, start);
      cursor = std::max(cursor, end);
    }
    if (makespan > cursor) fn(static_cast<int>(p), cursor, makespan);
  }
}

}  // namespace

std::vector<TraceEvent> derive_idle_gaps(std::span<const TraceEvent> trace,
                                         int n_procs, double makespan,
                                         double min_gap) {
  if (n_procs < 1) {
    throw std::invalid_argument("derive_idle_gaps: n_procs < 1");
  }
  std::vector<TraceEvent> gaps;
  for_each_gap(activity_by_proc(trace, n_procs), makespan,
               [&](int proc, double start, double end) {
                 if (end - start < min_gap) return;
                 TraceEvent ev;
                 ev.type = TraceEventType::kIdle;
                 ev.proc = proc;
                 ev.start = start;
                 ev.end = end;
                 gaps.push_back(ev);
               });
  return gaps;
}

TraceSummary summarize_trace(std::span<const TraceEvent> trace, int n_procs,
                             double makespan) {
  if (n_procs < 1) {
    throw std::invalid_argument("summarize_trace: n_procs < 1");
  }
  TraceSummary summary;
  const auto p = static_cast<std::size_t>(n_procs);
  std::vector<double> busy(p, 0.0), overhead(p, 0.0), last_end(p, 0.0);

  for (const TraceEvent& ev : trace) {
    if (ev.type == TraceEventType::kIterationBoundary) continue;
    ++summary.events;
    if (ev.proc < 0 || ev.proc >= n_procs) {
      throw std::invalid_argument("summarize_trace: proc out of range");
    }
    const auto pu = static_cast<std::size_t>(ev.proc);
    switch (ev.type) {
      case TraceEventType::kTaskExec:
        busy[pu] += ev.duration();
        break;
      case TraceEventType::kStealSuccess:
      case TraceEventType::kStealFail:
      case TraceEventType::kCounterOp:
      case TraceEventType::kOpRetry:
      case TraceEventType::kTaskReexec:
      case TraceEventType::kNetTransfer:
        overhead[pu] += ev.duration();
        break;
      // kLinkWait annotates queueing *inside* the enclosing counter /
      // steal / transfer span, which is already booked as overhead —
      // counting it again would double-book the wait.
      case TraceEventType::kLinkWait:
        break;
      default:
        break;
    }
    last_end[pu] = std::max(last_end[pu], ev.end);
  }

  // Critical proc: the one whose recorded activity ends the run.
  std::size_t critical = 0;
  for (std::size_t i = 1; i < p; ++i) {
    if (last_end[i] > last_end[critical]) critical = i;
  }
  summary.critical_proc = static_cast<int>(critical);
  summary.critical_busy = busy[critical];
  summary.critical_overhead = overhead[critical];
  summary.critical_idle =
      std::max(0.0, makespan - busy[critical] - overhead[critical]);

  for_each_gap(activity_by_proc(trace, n_procs), makespan,
               [&](int proc, double start, double end) {
                 const double gap = end - start;
                 summary.total_idle += gap;
                 if (gap > summary.longest_idle_gap) {
                   summary.longest_idle_gap = gap;
                   summary.longest_idle_proc = proc;
                 }
               });
  for (std::size_t i = 0; i < p; ++i) {
    summary.total_busy += busy[i];
    summary.total_overhead += overhead[i];
  }
  return summary;
}

void write_chrome_trace(std::ostream& out,
                        std::span<const TraceEvent> trace,
                        int procs_per_node) {
  if (procs_per_node < 1) {
    throw std::invalid_argument("write_chrome_trace: procs_per_node < 1");
  }
  // ts/dur are microseconds per the trace-event spec; pid groups procs by
  // node so Perfetto's process lanes mirror the machine topology.
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : trace) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": " << util::json_quote(trace_event_name(ev.type))
        << ", \"cat\": \"sim\", \"ph\": \"X\", \"ts\": "
        << ev.start * 1e6 << ", \"dur\": " << ev.duration() * 1e6
        << ", \"pid\": " << ev.proc / procs_per_node
        << ", \"tid\": " << ev.proc;
    if (ev.task >= 0 || ev.peer >= 0) {
      out << ", \"args\": {";
      bool first_arg = true;
      if (ev.task >= 0) {
        out << "\"task\": " << ev.task;
        first_arg = false;
      }
      if (ev.peer >= 0) {
        out << (first_arg ? "" : ", ") << "\"peer\": " << ev.peer;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

}  // namespace emc::sim
