#include "util/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace emc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table requires at least one column");
  }
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch: expected " +
                                std::to_string(headers_.size()) + ", got " +
                                std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    cells[r].reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      cells[r].push_back(format_cell(rows_[r][c]));
      widths[c] = std::max(widths[c], cells[r].back().size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : cells) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << quote(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(format_cell(row[c]));
    }
    os << "\n";
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  os << to_text();
}

}  // namespace emc
