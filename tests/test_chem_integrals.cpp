// Integral engine tests: Boys function, one-electron matrices against
// Szabo & Ostlund reference values, ERI symmetries, Schwarz bounds.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/boys.hpp"
#include "chem/constants.hpp"
#include "chem/eri.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"

namespace {

using namespace emc::chem;

TEST(BoysTest, ZeroArgument) {
  // F_m(0) = 1/(2m+1).
  for (int m = 0; m <= 8; ++m) {
    EXPECT_NEAR(boys(m, 0.0), 1.0 / (2.0 * m + 1.0), 1e-14);
  }
}

TEST(BoysTest, F0ClosedForm) {
  // F_0(x) = sqrt(pi/(4x)) erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 5.0, 20.0, 40.0, 100.0}) {
    const double expected =
        0.5 * std::sqrt(kPi / x) * std::erf(std::sqrt(x));
    EXPECT_NEAR(boys(0, x), expected, 1e-12) << "x=" << x;
  }
}

TEST(BoysTest, DownwardRecursionConsistency) {
  // F_{m}(x) = (2x F_{m+1}(x) + e^{-x}) / (2m+1) must hold across the
  // series/asymptotic switch.
  for (double x : {0.2, 3.0, 17.0, 34.9, 35.1, 80.0}) {
    std::vector<double> f(8);
    boys(x, f);
    for (int m = 0; m < 7; ++m) {
      const double rebuilt =
          (2.0 * x * f[static_cast<std::size_t>(m + 1)] + std::exp(-x)) /
          (2.0 * m + 1.0);
      EXPECT_NEAR(f[static_cast<std::size_t>(m)], rebuilt, 1e-10)
          << "x=" << x << " m=" << m;
    }
  }
}

TEST(BoysTest, MonotoneDecreasingInM) {
  std::vector<double> f(6);
  boys(2.5, f);
  for (std::size_t m = 1; m < f.size(); ++m) {
    EXPECT_LT(f[m], f[m - 1]);
  }
}

TEST(BoysTest, NegativeArgumentThrows) {
  std::vector<double> f(2);
  EXPECT_THROW(boys(-1.0, f), std::invalid_argument);
}

class H2ReferenceTest : public ::testing::Test {
 protected:
  H2ReferenceTest()
      : mol(make_h2(1.4)), basis(BasisSet::build(mol, "sto-3g")) {}
  Molecule mol;
  BasisSet basis;
};

// Reference values: Szabo & Ostlund, "Modern Quantum Chemistry",
// Sec. 3.5.2 (H2, STO-3G, R = 1.4 a0).
TEST_F(H2ReferenceTest, Overlap) {
  const auto s = overlap_matrix(basis);
  EXPECT_NEAR(s(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(s(1, 1), 1.0, 1e-10);
  EXPECT_NEAR(s(0, 1), 0.6593, 1e-4);
}

TEST_F(H2ReferenceTest, Kinetic) {
  const auto t = kinetic_matrix(basis);
  EXPECT_NEAR(t(0, 0), 0.7600, 1e-4);
  EXPECT_NEAR(t(0, 1), 0.2365, 1e-4);
}

TEST_F(H2ReferenceTest, NuclearAttraction) {
  const auto v = nuclear_attraction_matrix(basis, mol);
  // Sum over both nuclei: V11 = -1.2266 - 0.6538 = -1.8804.
  EXPECT_NEAR(v(0, 0), -1.8804, 1e-4);
  EXPECT_NEAR(v(0, 1), -1.1948, 2e-4);
}

TEST_F(H2ReferenceTest, CoreHamiltonian) {
  const auto h = core_hamiltonian(basis, mol);
  EXPECT_NEAR(h(0, 0), -1.1204, 2e-4);
  EXPECT_NEAR(h(0, 1), -0.9584, 2e-4);
}

TEST_F(H2ReferenceTest, TwoElectronIntegrals) {
  const auto g = full_eri_tensor(basis);
  const auto idx = [](int i, int j, int k, int l) {
    return static_cast<std::size_t>(((i * 2 + j) * 2 + k) * 2 + l);
  };
  EXPECT_NEAR(g[idx(0, 0, 0, 0)], 0.7746, 1e-4);
  EXPECT_NEAR(g[idx(0, 0, 1, 1)], 0.5697, 1e-4);
  EXPECT_NEAR(g[idx(1, 0, 0, 0)], 0.4441, 1e-4);
  EXPECT_NEAR(g[idx(1, 0, 1, 0)], 0.2970, 1e-4);
}

TEST(IntegralSymmetryTest, MatricesAreSymmetric) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "6-31g");
  EXPECT_TRUE(overlap_matrix(bs).is_symmetric(1e-12));
  EXPECT_TRUE(kinetic_matrix(bs).is_symmetric(1e-12));
  EXPECT_TRUE(nuclear_attraction_matrix(bs, water).is_symmetric(1e-12));
}

TEST(IntegralSymmetryTest, OverlapDiagonalIsOne) {
  // Per-component contracted normalization must hold for s AND p shells.
  const BasisSet bs = BasisSet::build(make_water(), "6-31g");
  const auto s = overlap_matrix(bs);
  for (int i = 0; i < bs.function_count(); ++i) {
    EXPECT_NEAR(s(static_cast<std::size_t>(i), static_cast<std::size_t>(i)),
                1.0, 1e-10)
        << "function " << i;
  }
}

TEST(IntegralSymmetryTest, KineticDiagonalPositive) {
  const BasisSet bs = BasisSet::build(make_water(), "sto-3g");
  const auto t = kinetic_matrix(bs);
  for (int i = 0; i < bs.function_count(); ++i) {
    EXPECT_GT(t(static_cast<std::size_t>(i), static_cast<std::size_t>(i)),
              0.0);
  }
}

TEST(IntegralSymmetryTest, NuclearAttractionDiagonalNegative) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const auto v = nuclear_attraction_matrix(bs, water);
  for (int i = 0; i < bs.function_count(); ++i) {
    EXPECT_LT(v(static_cast<std::size_t>(i), static_cast<std::size_t>(i)),
              0.0);
  }
}

TEST(EriSymmetryTest, EightFoldSymmetry) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const auto g = full_eri_tensor(bs);
  const int n = bs.function_count();
  const auto idx = [n](int i, int j, int k, int l) {
    return static_cast<std::size_t>(((i * n + j) * n + k) * n + l);
  };
  // Spot-check the full orbit on a grid of index quadruples.
  for (int i = 0; i < n; i += 2) {
    for (int j = 0; j <= i; j += 2) {
      for (int k = 0; k < n; k += 3) {
        for (int l = 0; l <= k; l += 2) {
          const double ref = g[idx(i, j, k, l)];
          EXPECT_NEAR(g[idx(j, i, k, l)], ref, 1e-11);
          EXPECT_NEAR(g[idx(i, j, l, k)], ref, 1e-11);
          EXPECT_NEAR(g[idx(k, l, i, j)], ref, 1e-11);
          EXPECT_NEAR(g[idx(l, k, j, i)], ref, 1e-11);
        }
      }
    }
  }
}

TEST(EriSymmetryTest, DiagonalElementsNonNegative) {
  // (ij|ij) >= 0 (it is a squared norm in the Coulomb metric).
  const BasisSet bs = BasisSet::build(make_water(), "sto-3g");
  const auto g = full_eri_tensor(bs);
  const int n = bs.function_count();
  const auto idx = [n](int i, int j, int k, int l) {
    return static_cast<std::size_t>(((i * n + j) * n + k) * n + l);
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_GE(g[idx(i, j, i, j)], -1e-12);
    }
  }
}

TEST(SchwarzTest, BoundsEveryQuartet) {
  // |(ab|cd)| <= Q(a,b) Q(c,d) must hold for all shell quartets.
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const auto q = schwarz_matrix(bs);
  const auto& shells = bs.shells();
  const auto ns = shells.size();

  for (std::size_t a = 0; a < ns; ++a) {
    for (std::size_t b = 0; b < ns; ++b) {
      for (std::size_t c = 0; c < ns; ++c) {
        for (std::size_t d = 0; d < ns; ++d) {
          const EriBlock block =
              eri_shell_quartet(shells[a], shells[b], shells[c], shells[d]);
          EXPECT_LE(block.max_abs(), q(a, b) * q(c, d) + 1e-10)
              << a << " " << b << " " << c << " " << d;
        }
      }
    }
  }
}

TEST(SchwarzTest, MatrixSymmetricPositive) {
  const BasisSet bs = BasisSet::build(make_water(), "sto-3g");
  const auto q = schwarz_matrix(bs);
  EXPECT_TRUE(q.is_symmetric(1e-12));
  for (std::size_t i = 0; i < q.rows(); ++i) {
    EXPECT_GT(q(i, i), 0.0);
  }
}

TEST(HermiteETest, SShellIsGaussianProduct) {
  // For two s primitives, E_0^{00} = exp(-mu Q^2).
  const double a = 0.7, b = 1.3, ax = 0.0, bx = 1.1;
  const HermiteE e(0, 0, a, b, ax, bx);
  const double mu = a * b / (a + b);
  EXPECT_NEAR(e(0, 0, 0), std::exp(-mu * (ax - bx) * (ax - bx)), 1e-14);
}

TEST(HermiteETest, OutOfRangeTIsZero) {
  const HermiteE e(1, 1, 0.5, 0.5, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(e(1, 1, 3), 0.0);
  EXPECT_DOUBLE_EQ(e(0, 0, -1), 0.0);
}

TEST(ShellOverlapTest, MatchesAssembledMatrix) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const auto s = overlap_matrix(bs);
  for (const Shell& sa : bs.shells()) {
    for (const Shell& sb : bs.shells()) {
      const auto block = shell_overlap(sa, sb);
      for (int fa = 0; fa < sa.function_count(); ++fa) {
        for (int fb = 0; fb < sb.function_count(); ++fb) {
          EXPECT_NEAR(block(static_cast<std::size_t>(fa),
                            static_cast<std::size_t>(fb)),
                      s(static_cast<std::size_t>(sa.first_function + fa),
                        static_cast<std::size_t>(sb.first_function + fb)),
                      1e-12);
        }
      }
    }
  }
}

}  // namespace
