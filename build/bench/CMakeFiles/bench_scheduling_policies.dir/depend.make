# Empty dependencies file for bench_scheduling_policies.
# This may be replaced when dependencies are built.
