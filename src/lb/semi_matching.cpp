#include "lb/semi_matching.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "util/timer.hpp"

namespace emc::lb {

void BipartiteTaskGraph::validate() const {
  if (n_procs < 1) {
    throw std::invalid_argument("BipartiteTaskGraph: n_procs < 1");
  }
  if (weights.size() != eligible.size()) {
    throw std::invalid_argument(
        "BipartiteTaskGraph: weights/eligible size mismatch");
  }
  for (std::size_t t = 0; t < eligible.size(); ++t) {
    if (eligible[t].empty()) {
      throw std::invalid_argument("BipartiteTaskGraph: task " +
                                  std::to_string(t) + " has no eligible "
                                  "processor");
    }
    for (int p : eligible[t]) {
      if (p < 0 || p >= n_procs) {
        throw std::invalid_argument(
            "BipartiteTaskGraph: processor id out of range");
      }
    }
  }
}

BipartiteTaskGraph make_complete_instance(std::vector<double> weights,
                                          int n_procs) {
  BipartiteTaskGraph g;
  g.n_procs = n_procs;
  g.weights = std::move(weights);
  std::vector<int> all(static_cast<std::size_t>(n_procs));
  std::iota(all.begin(), all.end(), 0);
  g.eligible.assign(g.weights.size(), all);
  return g;
}

Assignment optimal_semi_matching(const BipartiteTaskGraph& g) {
  g.validate();
  const std::size_t n_tasks = g.task_count();
  const auto n_procs = static_cast<std::size_t>(g.n_procs);

  Assignment assignment(n_tasks, -1);
  std::vector<int> load(n_procs, 0);
  // Tasks currently assigned to each processor (for alternating steps).
  std::vector<std::vector<int>> assigned_to(n_procs);

  // Per-search visit stamps to avoid O(n) clears.
  std::vector<int> task_stamp(n_tasks, -1), proc_stamp(n_procs, -1);
  // BFS parents: for a processor, the task we came from; for a task, the
  // processor it was assigned to when we traversed into it.
  std::vector<int> proc_parent_task(n_procs, -1);
  std::vector<int> task_parent_proc(n_tasks, -1);

  for (std::size_t start = 0; start < n_tasks; ++start) {
    const int stamp = static_cast<int>(start);
    std::queue<int> task_frontier;
    task_frontier.push(static_cast<int>(start));
    task_stamp[start] = stamp;

    int best_proc = -1;
    // Alternating BFS: task -> eligible procs; proc -> tasks assigned to
    // it. Track the least-loaded processor reached anywhere in the tree.
    while (!task_frontier.empty()) {
      const int t = task_frontier.front();
      task_frontier.pop();
      for (int p : g.eligible[static_cast<std::size_t>(t)]) {
        const auto pu = static_cast<std::size_t>(p);
        if (proc_stamp[pu] == stamp) continue;
        proc_stamp[pu] = stamp;
        proc_parent_task[pu] = t;
        if (best_proc < 0 ||
            load[pu] < load[static_cast<std::size_t>(best_proc)]) {
          best_proc = p;
        }
        for (int t2 : assigned_to[pu]) {
          const auto t2u = static_cast<std::size_t>(t2);
          if (task_stamp[t2u] == stamp) continue;
          task_stamp[t2u] = stamp;
          task_parent_proc[t2u] = p;
          task_frontier.push(t2);
        }
      }
    }
    // `start` always has >= 1 eligible processor, so best_proc is set.

    // Augment along the alternating path ending at best_proc: walking
    // parents back to `start`, each task on the path moves one processor
    // toward the tail; only best_proc's load grows.
    int p = best_proc;
    while (true) {
      const auto pu = static_cast<std::size_t>(p);
      const int t = proc_parent_task[pu];
      const auto tu = static_cast<std::size_t>(t);
      const int prev_proc = assignment[tu];
      assignment[tu] = p;
      assigned_to[pu].push_back(t);
      ++load[pu];
      if (prev_proc >= 0) {
        auto& vec = assigned_to[static_cast<std::size_t>(prev_proc)];
        vec.erase(std::find(vec.begin(), vec.end(), t));
        --load[static_cast<std::size_t>(prev_proc)];
      }
      if (t == static_cast<int>(start)) break;
      p = task_parent_proc[tu];
    }
  }
  return assignment;
}

Assignment greedy_semi_matching(const BipartiteTaskGraph& g) {
  g.validate();
  std::vector<std::size_t> order(g.task_count());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return g.weights[a] > g.weights[b];
  });

  std::vector<double> load(static_cast<std::size_t>(g.n_procs), 0.0);
  Assignment assignment(g.task_count(), -1);
  for (std::size_t t : order) {
    int best = -1;
    for (int p : g.eligible[t]) {
      if (best < 0 || load[static_cast<std::size_t>(p)] <
                          load[static_cast<std::size_t>(best)]) {
        best = p;
      }
    }
    assignment[t] = best;
    load[static_cast<std::size_t>(best)] += g.weights[t];
  }
  return assignment;
}

Assignment refine_semi_matching(const BipartiteTaskGraph& g,
                                Assignment assignment, int max_rounds) {
  g.validate();
  validate_assignment(assignment, g.n_procs);

  auto loads = part_loads(g.weights, assignment, g.n_procs);
  std::vector<std::vector<int>> tasks_on(
      static_cast<std::size_t>(g.n_procs));
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    tasks_on[static_cast<std::size_t>(assignment[t])].push_back(
        static_cast<int>(t));
  }

  auto move_task = [&](int t, int to) {
    const auto tu = static_cast<std::size_t>(t);
    const int from = assignment[tu];
    auto& src = tasks_on[static_cast<std::size_t>(from)];
    src.erase(std::find(src.begin(), src.end(), t));
    tasks_on[static_cast<std::size_t>(to)].push_back(t);
    loads[static_cast<std::size_t>(from)] -= g.weights[tu];
    loads[static_cast<std::size_t>(to)] += g.weights[tu];
    assignment[tu] = to;
  };

  for (int round = 0; round < max_rounds; ++round) {
    const auto busiest_it = std::max_element(loads.begin(), loads.end());
    const int busiest = static_cast<int>(busiest_it - loads.begin());
    const double busy_load = *busiest_it;
    bool improved = false;

    // 1) Relocation: move one task off the busiest processor if the
    //    destination stays below the current makespan.
    double best_gain = 0.0;
    int best_task = -1, best_dest = -1;
    for (int t : tasks_on[static_cast<std::size_t>(busiest)]) {
      const double w = g.weights[static_cast<std::size_t>(t)];
      for (int p : g.eligible[static_cast<std::size_t>(t)]) {
        if (p == busiest) continue;
        const double new_peak =
            std::max(busy_load - w, loads[static_cast<std::size_t>(p)] + w);
        const double gain = busy_load - new_peak;
        if (gain > best_gain + 1e-15) {
          best_gain = gain;
          best_task = t;
          best_dest = p;
        }
      }
    }
    if (best_task >= 0) {
      move_task(best_task, best_dest);
      improved = true;
    } else {
      // 2) Swap: exchange a heavy task on the busiest processor with a
      //    lighter, mutually-eligible task elsewhere.
      for (int t1 : tasks_on[static_cast<std::size_t>(busiest)]) {
        const double w1 = g.weights[static_cast<std::size_t>(t1)];
        const auto& elig1 = g.eligible[static_cast<std::size_t>(t1)];
        for (int p : elig1) {
          if (p == busiest) continue;
          for (int t2 : tasks_on[static_cast<std::size_t>(p)]) {
            const double w2 = g.weights[static_cast<std::size_t>(t2)];
            if (w2 >= w1) continue;
            const auto& elig2 = g.eligible[static_cast<std::size_t>(t2)];
            if (std::find(elig2.begin(), elig2.end(), busiest) ==
                elig2.end()) {
              continue;
            }
            const double new_peak = std::max(
                busy_load - w1 + w2,
                loads[static_cast<std::size_t>(p)] + w1 - w2);
            if (new_peak < busy_load - 1e-15) {
              move_task(t1, p);
              move_task(t2, busiest);
              improved = true;
              break;
            }
          }
          if (improved) break;
        }
        if (improved) break;
      }
    }
    if (!improved) break;
  }
  return assignment;
}

BalanceResult semi_matching_balance(const BipartiteTaskGraph& g) {
  BalanceResult r;
  r.algorithm = "semi-matching";
  emc::Timer timer;
  r.assignment = refine_semi_matching(g, greedy_semi_matching(g));
  r.balance_seconds = timer.seconds();
  return r;
}

}  // namespace emc::lb
