file(REMOVE_RECURSE
  "CMakeFiles/bench_task_heterogeneity.dir/bench_task_heterogeneity.cpp.o"
  "CMakeFiles/bench_task_heterogeneity.dir/bench_task_heterogeneity.cpp.o.d"
  "bench_task_heterogeneity"
  "bench_task_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_task_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
