# Empty compiler generated dependencies file for emc_graph.
# This may be replaced when dependencies are built.
