// End-to-end tests of the GA-style distributed Fock builder: every
// execution model must reproduce the sequential SCF exactly, and its
// execution statistics must be coherent.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "chem/scf.hpp"
#include "core/distributed_fock.hpp"
#include "pgas/runtime.hpp"
#include "util/metrics.hpp"

namespace {

using namespace emc;
using core::DistributedFockBuilder;
using core::DistributedFockOptions;
using core::ExecModel;

class DistributedFockTest : public ::testing::Test {
 protected:
  DistributedFockTest()
      : mol(chem::make_water()),
        basis(chem::BasisSet::build(mol, "sto-3g")),
        reference(chem::run_rhf(mol, basis)) {}

  chem::Molecule mol;
  chem::BasisSet basis;
  chem::ScfResult reference;
};

TEST_F(DistributedFockTest, StaticModelMatchesSequential) {
  pgas::Runtime runtime(3);
  DistributedFockOptions options;
  options.model = ExecModel::kStatic;
  options.static_balancer = "lpt";
  DistributedFockBuilder builder(basis, runtime, options);
  const chem::ScfResult r =
      chem::run_rhf_with_builder(mol, basis, builder.as_g_builder());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, reference.energy, 1e-9);
  EXPECT_EQ(builder.builds(), r.iterations);
}

TEST_F(DistributedFockTest, CounterModelMatchesSequential) {
  pgas::Runtime runtime(4);
  DistributedFockOptions options;
  options.model = ExecModel::kCounter;
  options.counter_chunk = 2;
  DistributedFockBuilder builder(basis, runtime, options);
  const chem::ScfResult r =
      chem::run_rhf_with_builder(mol, basis, builder.as_g_builder());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, reference.energy, 1e-9);
  EXPECT_GT(builder.last_stats().ranks[0].counter_ops, 0);
}

TEST_F(DistributedFockTest, WorkStealingModelMatchesSequential) {
  pgas::Runtime runtime(4);
  DistributedFockOptions options;
  options.model = ExecModel::kWorkStealing;
  DistributedFockBuilder builder(basis, runtime, options);
  const chem::ScfResult r =
      chem::run_rhf_with_builder(mol, basis, builder.as_g_builder());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, reference.energy, 1e-9);
}

TEST_F(DistributedFockTest, StatsAccountForAllTasks) {
  pgas::Runtime runtime(2);
  DistributedFockBuilder builder(basis, runtime);
  const auto n = static_cast<std::size_t>(basis.function_count());
  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) density(i, i) = 1.0;

  builder.build_g(density);
  const std::size_t n_shells = basis.shell_count();
  EXPECT_EQ(builder.last_stats().total_tasks(),
            static_cast<std::int64_t>(n_shells * (n_shells + 1) / 2));
  EXPECT_EQ(builder.builds(), 1);
}

TEST_F(DistributedFockTest, GMatrixIdenticalAcrossModels) {
  const auto n = static_cast<std::size_t>(basis.function_count());
  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = (i == j ? 1.0 : 0.03);
    }
  }

  pgas::Runtime runtime(3);
  linalg::Matrix results[3];
  const ExecModel models[] = {ExecModel::kStatic, ExecModel::kCounter,
                              ExecModel::kWorkStealing};
  for (int m = 0; m < 3; ++m) {
    DistributedFockOptions options;
    options.model = models[m];
    DistributedFockBuilder builder(basis, runtime, options);
    results[m] = builder.build_g(density);
  }
  EXPECT_TRUE(results[0].almost_equal(results[1], 1e-11));
  EXPECT_TRUE(results[1].almost_equal(results[2], 1e-11));
}

TEST_F(DistributedFockTest, RejectsUnknownBalancer) {
  pgas::Runtime runtime(2);
  DistributedFockOptions options;
  options.model = ExecModel::kStatic;
  options.static_balancer = "voodoo";
  DistributedFockBuilder builder(basis, runtime, options);
  const auto n = static_cast<std::size_t>(basis.function_count());
  const linalg::Matrix density(n, n);
  EXPECT_THROW(builder.build_g(density), std::invalid_argument);
}

TEST_F(DistributedFockTest, RejectsWrongDensityShape) {
  pgas::Runtime runtime(2);
  DistributedFockBuilder builder(basis, runtime);
  EXPECT_THROW(builder.build_g(linalg::Matrix(2, 2)),
               std::invalid_argument);
}

TEST_F(DistributedFockTest, FaultInjectedBuildIsBitwiseIdentical) {
  // Faults cost time, never accuracy: with task re-execution and
  // dropped/retried one-sided ops switched on, the G matrix must equal
  // the fault-free build BITWISE. 2 ranks + the static model keep the
  // accumulate ordering bitwise-commutative, so no tolerance is needed.
  const auto n = static_cast<std::size_t>(basis.function_count());
  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = (i == j ? 1.0 : 0.03);
    }
  }

  DistributedFockOptions options;
  options.model = ExecModel::kStatic;
  options.static_balancer = "lpt";
  pgas::Runtime clean_runtime(2);
  DistributedFockBuilder clean(basis, clean_runtime, options);
  const linalg::Matrix g_clean = clean.build_g(density);
  EXPECT_EQ(clean.last_task_reexecutions(), 0);

  pgas::CommCostModel faulty_cost;
  faulty_cost.drop_prob = 0.2;
  faulty_cost.retry_backoff_ns = 50;
  pgas::Runtime faulty_runtime(2, faulty_cost);
  DistributedFockOptions faulty_options = options;
  faulty_options.task_faults.fail_prob = 0.3;
  faulty_options.task_faults.reexec_delay_ns = 200;
  util::MetricsRegistry registry;
  faulty_options.metrics = &registry;
  DistributedFockBuilder faulty(basis, faulty_runtime, faulty_options);
  const linalg::Matrix g_faulty = faulty.build_g(density);

  // fail_prob = 0.3 over the water task set re-executes something
  // (deterministic hash — stable for this seed).
  EXPECT_GT(faulty.last_task_reexecutions(), 0);
  EXPECT_EQ(registry.counter("fock/task_reexecutions").value(),
            faulty.last_task_reexecutions());
  EXPECT_EQ(std::memcmp(g_clean.data(), g_faulty.data(),
                        n * n * sizeof(double)),
            0);

  // The same faulted configuration replays to the same answer.
  pgas::Runtime replay_runtime(2, faulty_cost);
  faulty_options.metrics = nullptr;
  DistributedFockBuilder replay(basis, replay_runtime, faulty_options);
  const linalg::Matrix g_replay = replay.build_g(density);
  EXPECT_EQ(replay.last_task_reexecutions(),
            faulty.last_task_reexecutions());
  EXPECT_EQ(std::memcmp(g_faulty.data(), g_replay.data(),
                        n * n * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------
// Hybrid ranks × threads determinism suite. The contract (DESIGN.md
// "Hybrid execution"): for any deterministic task→rank assignment —
// the static model, or any model at 1 rank — the G matrix is BITWISE
// identical across thread counts, intra-rank policies, scheduling
// interleavings, and fault injection. 2 static ranks keep the
// cross-rank accumulate bitwise-commutative, so the whole pipeline is
// exact end to end.

using core::IntraPolicy;

class HybridFockTest : public DistributedFockTest {
 protected:
  linalg::Matrix make_density() const {
    const auto n = static_cast<std::size_t>(basis.function_count());
    linalg::Matrix density(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        density(i, j) = (i == j ? 1.0 : 0.03);
      }
    }
    return density;
  }

  static bool bitwise_equal(const linalg::Matrix& a,
                            const linalg::Matrix& b) {
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(),
                       a.rows() * a.cols() * sizeof(double)) == 0;
  }

  static const char* intra_name(IntraPolicy p) {
    switch (p) {
      case IntraPolicy::kStatic: return "static";
      case IntraPolicy::kCounter: return "counter";
      case IntraPolicy::kWorkStealing: return "ws";
    }
    return "?";
  }
};

TEST_F(HybridFockTest, BitwiseIdenticalAcrossThreadsAndIntraPolicies) {
  const linalg::Matrix density = make_density();
  const std::size_t n = density.rows();

  // Reference: the classic serial-per-rank loop.
  DistributedFockOptions ref_options;
  ref_options.model = ExecModel::kStatic;
  ref_options.static_balancer = "lpt";
  ref_options.threads = 1;
  pgas::Runtime ref_runtime(2);
  DistributedFockBuilder ref_builder(basis, ref_runtime, ref_options);
  const linalg::Matrix g_ref = ref_builder.build_g(density);
  const std::int64_t n_tasks = ref_builder.last_stats().total_tasks();

  for (const int threads : {1, 2, 8}) {
    for (const IntraPolicy intra :
         {IntraPolicy::kStatic, IntraPolicy::kCounter,
          IntraPolicy::kWorkStealing}) {
      DistributedFockOptions options = ref_options;
      options.threads = threads;
      options.intra_policy = intra;
      options.intra_chunk = 2;
      pgas::Runtime runtime(2);
      DistributedFockBuilder builder(basis, runtime, options);
      const linalg::Matrix g = builder.build_g(density);
      EXPECT_TRUE(bitwise_equal(g_ref, g))
          << "threads=" << threads << " intra=" << intra_name(intra);
      // Stats stay in TASK units whatever the slot scheduling did.
      EXPECT_EQ(builder.last_stats().total_tasks(), n_tasks)
          << "threads=" << threads << " intra=" << intra_name(intra);
    }
  }
  ASSERT_EQ(g_ref.rows(), n);  // silences unused-variable pedantry
}

TEST_F(HybridFockTest, SingleRankBitwiseIdenticalAcrossInterModels) {
  // At 1 rank every inter model degenerates to "this rank executes all
  // slots", so even counter and work stealing must be bitwise stable
  // across thread counts — the tree grouping is all that matters.
  const linalg::Matrix density = make_density();
  linalg::Matrix reference;
  bool have_reference = false;
  for (const ExecModel model :
       {ExecModel::kStatic, ExecModel::kCounter, ExecModel::kWorkStealing}) {
    for (const int threads : {1, 2, 8}) {
      DistributedFockOptions options;
      options.model = model;
      options.threads = threads;
      options.intra_policy = IntraPolicy::kWorkStealing;
      pgas::Runtime runtime(1);
      DistributedFockBuilder builder(basis, runtime, options);
      const linalg::Matrix g = builder.build_g(density);
      if (!have_reference) {
        reference = g;
        have_reference = true;
        continue;
      }
      EXPECT_TRUE(bitwise_equal(reference, g))
          << "model=" << static_cast<int>(model) << " threads=" << threads;
    }
  }
}

TEST_F(HybridFockTest, FaultedBuildsStayBitwiseAndReexecsDeterministic) {
  // Task faults are a stateless hash of (seed, task, attempt) —
  // executor-independent — so under threading the G matrix AND the
  // re-execution count must both replay exactly, and match the
  // fault-free build bitwise.
  const linalg::Matrix density = make_density();

  DistributedFockOptions clean_options;
  clean_options.model = ExecModel::kStatic;
  clean_options.static_balancer = "lpt";
  pgas::Runtime clean_runtime(2);
  DistributedFockBuilder clean(basis, clean_runtime, clean_options);
  const linalg::Matrix g_clean = clean.build_g(density);

  std::int64_t expected_reexecs = -1;
  for (const int threads : {1, 2, 8}) {
    for (const IntraPolicy intra :
         {IntraPolicy::kStatic, IntraPolicy::kCounter,
          IntraPolicy::kWorkStealing}) {
      DistributedFockOptions options = clean_options;
      options.threads = threads;
      options.intra_policy = intra;
      options.task_faults.fail_prob = 0.3;
      options.task_faults.reexec_delay_ns = 100;
      pgas::Runtime runtime(2);
      DistributedFockBuilder builder(basis, runtime, options);
      const linalg::Matrix g = builder.build_g(density);
      EXPECT_TRUE(bitwise_equal(g_clean, g))
          << "threads=" << threads << " intra=" << intra_name(intra);
      if (expected_reexecs < 0) {
        expected_reexecs = builder.last_task_reexecutions();
        EXPECT_GT(expected_reexecs, 0);
      } else {
        EXPECT_EQ(builder.last_task_reexecutions(), expected_reexecs)
            << "threads=" << threads << " intra=" << intra_name(intra);
      }
    }
  }
}

TEST_F(HybridFockTest, HybridScfMatchesSequentialAndCountsCounterOps) {
  // Full SCF through the hybrid path: threads + intra counter under the
  // global-counter inter model (R·T contenders on one nxtval).
  pgas::Runtime runtime(2);
  DistributedFockOptions options;
  options.model = ExecModel::kCounter;
  options.counter_chunk = 2;
  options.threads = 4;
  options.intra_policy = IntraPolicy::kCounter;
  DistributedFockBuilder builder(basis, runtime, options);
  const chem::ScfResult r =
      chem::run_rhf_with_builder(mol, basis, builder.as_g_builder());
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, reference.energy, 1e-9);
  EXPECT_GT(builder.last_stats().ranks[0].counter_ops, 0);
}

TEST_F(HybridFockTest, ReductionBufferPoolStaysBounded) {
  // The pool must grow with threads + log2(slots), NOT with
  // ranks · slots — the memory fix over the old 3·ranks·n² replicas.
  const linalg::Matrix density = make_density();
  util::MetricsRegistry registry;
  DistributedFockOptions options;
  options.model = ExecModel::kStatic;
  options.threads = 4;
  options.intra_policy = IntraPolicy::kWorkStealing;
  options.metrics = &registry;
  pgas::Runtime runtime(2);
  DistributedFockBuilder builder(basis, runtime, options);
  builder.build_g(density);
  builder.build_g(density);  // second build reuses, never regrows
  const double buffers =
      registry.gauge("fock/reduction_buffers").value();
  const auto slots = static_cast<double>(builder.slot_count());
  EXPECT_GT(buffers, 0.0);
  EXPECT_LT(buffers, 2.0 * (4 + std::log2(slots + 1) + 1) + 4.0)
      << "pool grew beyond the ranks·(threads + log2 slots) envelope";
}

TEST_F(HybridFockTest, RejectsNonPositiveThreads) {
  pgas::Runtime runtime(2);
  DistributedFockOptions options;
  options.threads = 0;
  EXPECT_THROW(DistributedFockBuilder builder(basis, runtime, options),
               std::invalid_argument);
}

}  // namespace
