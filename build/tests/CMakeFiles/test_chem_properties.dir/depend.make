# Empty dependencies file for test_chem_properties.
# This may be replaced when dependencies are built.
