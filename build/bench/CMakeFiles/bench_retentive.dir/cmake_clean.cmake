file(REMOVE_RECURSE
  "CMakeFiles/bench_retentive.dir/bench_retentive.cpp.o"
  "CMakeFiles/bench_retentive.dir/bench_retentive.cpp.o.d"
  "bench_retentive"
  "bench_retentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
