#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>

namespace emc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_io_mutex;

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}
// Anchor the epoch at static-init time, not first log, so stamps track
// process lifetime as closely as a header-only scheme allows.
[[maybe_unused]] const auto g_start_anchor = process_start();

std::atomic<int> g_next_thread_id{0};
thread_local std::string t_tag;
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void set_log_thread_tag(const std::string& tag) { t_tag = tag; }

const std::string& log_thread_tag() {
  if (t_tag.empty()) {
    t_tag = "T" + std::to_string(
                      g_next_thread_id.fetch_add(1,
                                                 std::memory_order_relaxed));
  }
  return t_tag;
}

namespace detail {

std::string format_log_line(LogLevel level, const std::string& message) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    process_start())
          .count();
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "+%.6fs", elapsed);
  std::string line = "[";
  line += log_level_name(level);
  line += " ";
  line += stamp;
  line += " ";
  line += log_thread_tag();
  line += "] ";
  line += message;
  return line;
}

void log_write(LogLevel level, const std::string& message) {
  const std::string line = format_log_line(level, message);
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << line << "\n";
}

}  // namespace detail
}  // namespace emc
