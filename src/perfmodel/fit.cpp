#include "perfmodel/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/lstsq.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace emc::perfmodel {

namespace {

/// Relative-error floor: keeps a measured 0 (e.g. a zero network term
/// on an uncontended topology) from turning every prediction into an
/// infinite error.
constexpr double kErrorFloor = 1e-12;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double relative_error(double predicted, double actual) {
  return std::abs(predicted - actual) /
         std::max(std::abs(actual), kErrorFloor);
}

std::vector<std::vector<double>> design_matrix(
    const std::vector<Term>& terms, const std::vector<Sample>& samples) {
  std::vector<std::vector<double>> rows;
  rows.reserve(samples.size());
  for (const Sample& s : samples) {
    std::vector<double> row;
    row.reserve(terms.size());
    for (const Term& t : terms) row.push_back(t.evaluate(s.predictors));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<double> fit_coefficients(const std::vector<Term>& terms,
                                     const std::vector<Sample>& samples,
                                     bool non_negative) {
  const std::vector<std::vector<double>> rows =
      design_matrix(terms, samples);
  std::vector<double> targets;
  targets.reserve(samples.size());
  for (const Sample& s : samples) targets.push_back(s.value);
  const linalg::LstsqResult result =
      non_negative ? linalg::nnls(rows, targets)
                   : linalg::lstsq(rows, targets);
  return result.coefficients;
}

/// Median held-out |relative error| of `terms` under the stateless
/// k-fold split, pooled across folds. Folds that would leave the
/// training side empty are skipped; if every fold degenerates the
/// training error of the full fit is returned (tiny-sample fallback).
double cross_validation_error(const std::vector<Term>& terms,
                              const std::vector<Sample>& samples,
                              const FitOptions& options) {
  std::vector<int> fold_of(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    fold_of[i] = cv_fold(options.seed, samples[i].key, options.cv_folds);
  }
  std::vector<double> errors;
  for (int fold = 0; fold < options.cv_folds; ++fold) {
    std::vector<Sample> train, test;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (fold_of[i] == fold ? test : train).push_back(samples[i]);
    }
    if (test.empty() || train.empty()) continue;
    const std::vector<double> coef =
        fit_coefficients(terms, train, options.non_negative);
    FittedModel fold_model{terms, coef, 0.0, 0.0};
    for (const Sample& s : test) {
      errors.push_back(
          relative_error(fold_model.evaluate(s.predictors), s.value));
    }
  }
  if (errors.empty()) {
    const FittedModel full = fit_terms(terms, samples, options.non_negative);
    return full.train_error;
  }
  return median(errors);
}

}  // namespace

double FittedModel::evaluate(const Point& point) const {
  double value = 0.0;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (coefficients[i] != 0.0) {
      value += coefficients[i] * terms[i].evaluate(point);
    }
  }
  return value;
}

std::string FittedModel::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (coefficients[i] == 0.0) continue;
    if (!out.empty()) out += " + ";
    out += util::format_double(coefficients[i]);
    if (!terms[i].is_constant()) out += "*" + terms[i].name();
  }
  return out.empty() ? "0" : out;
}

int cv_fold(std::uint64_t seed, const std::string& key, int folds) {
  if (folds < 1) throw std::invalid_argument("cv_fold: folds < 1");
  std::uint64_t state = seed ^ fnv1a(key);
  return static_cast<int>(splitmix64(state) %
                          static_cast<std::uint64_t>(folds));
}

double median_relative_error(const FittedModel& model,
                             const std::vector<Sample>& samples) {
  std::vector<double> errors;
  errors.reserve(samples.size());
  for (const Sample& s : samples) {
    errors.push_back(relative_error(model.evaluate(s.predictors), s.value));
  }
  return median(std::move(errors));
}

FittedModel fit_terms(const std::vector<Term>& terms,
                      const std::vector<Sample>& samples,
                      bool non_negative) {
  if (samples.empty()) throw std::invalid_argument("fit_terms: no samples");
  if (terms.empty()) throw std::invalid_argument("fit_terms: no terms");
  FittedModel model;
  model.terms = terms;
  model.coefficients = fit_coefficients(terms, samples, non_negative);
  model.train_error = median_relative_error(model, samples);
  return model;
}

FittedModel fit_model(const std::vector<Term>& candidates,
                      const std::vector<Sample>& samples,
                      const FitOptions& options) {
  if (samples.empty()) throw std::invalid_argument("fit_model: no samples");

  std::vector<Term> selected{Term{}};  // the constant term, always
  double current_cv = cross_validation_error(selected, samples, options);

  std::vector<bool> used(candidates.size(), false);
  while (selected.size() - 1 < options.max_terms) {
    std::size_t best = candidates.size();
    double best_cv = current_cv;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      std::vector<Term> trial = selected;
      trial.push_back(candidates[i]);
      const double cv = cross_validation_error(trial, samples, options);
      // Strict < keeps ties on the earliest candidate: deterministic
      // selection for a deterministic candidate order.
      if (cv < best_cv) {
        best_cv = cv;
        best = i;
      }
    }
    if (best == candidates.size()) break;
    const bool improves =
        best_cv < current_cv * (1.0 - options.min_improvement);
    if (!improves) break;
    used[best] = true;
    selected.push_back(candidates[best]);
    current_cv = best_cv;
  }

  FittedModel model = fit_terms(selected, samples, options.non_negative);
  model.cv_error = current_cv;
  return model;
}

}  // namespace emc::perfmodel
