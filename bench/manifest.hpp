#pragma once

// The run-manifest envelope every BENCH_*.json report carries, plus its
// validator. A report without provenance is a number with no pedigree:
// the manifest stamps schema version, bench identity, git SHA + dirty
// flag, compiler/flags, host, timestamp, and seed, and the run footer
// appends peak RSS and (when enabled) the profiler span summary — so a
// baseline checked into bench/baselines/ is self-describing and
// bench_compare can refuse to diff incomparable artifacts.
//
// Schema policy (see DESIGN.md "Observability pipeline"):
//   - kManifestSchemaVersion bumps ONLY on a breaking change to the
//     envelope or to the meaning of an existing field; adding fields is
//     not a bump (bench_compare treats new keys as advisory).
//   - bench payloads outside the manifest are versioned by the bench
//     name + mode pair; bench_compare matches cells by identity keys,
//     so appending cells or fields is always safe.

#include <cstdint>
#include <ctime>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "emc/version.hpp"
#include "util/json.hpp"
#include "util/profiler.hpp"

namespace emc::bench {

inline constexpr int kManifestSchemaVersion = 1;

/// Peak resident-set size of this process so far, in bytes (0 where the
/// platform offers no getrusage). Linux reports ru_maxrss in KiB, macOS
/// in bytes; both are high-water marks, so call it at the end of a run
/// — or between phases to attribute growth — and report it alongside
/// timing: events/sec without the memory footprint hides half the
/// scalability story.
inline std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

inline std::string hostname() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
#endif
  return "unknown";
}

/// Current UTC time as ISO-8601 (e.g. "2026-08-08T12:34:56Z").
inline std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(__unix__) || defined(__APPLE__)
  gmtime_r(&now, &tm);
#else
  tm = *std::gmtime(&now);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Emits the manifest envelope as the "manifest" object. Call right
/// after begin_object() so provenance leads the report.
inline void write_manifest(util::JsonWriter& json,
                           const std::string& bench_name,
                           const std::string& mode, std::uint64_t seed) {
  json.begin_object("manifest");
  json.field("schema_version", kManifestSchemaVersion);
  json.field("bench", bench_name);
  json.field("mode", mode);
  json.field("seed", seed);
  json.field("git_sha", buildinfo::kGitSha);
  json.field("git_dirty", buildinfo::kGitDirty);
  json.field("compiler", buildinfo::kCompiler);
  json.field("compiler_version", buildinfo::kCompilerVersion);
  json.field("cxx_flags", buildinfo::kCxxFlags);
  json.field("build_type", buildinfo::kBuildType);
  json.field("hostname", hostname());
  json.field("timestamp_utc", utc_timestamp());
  json.end_object();
}

/// Emits the run footer: peak RSS always, the profiler span summary
/// when profiling is enabled. Call as the last fields of the top-level
/// report object.
inline void write_run_footer(util::JsonWriter& json) {
  json.field("peak_rss_bytes", peak_rss_bytes());
  util::Profiler& profiler = util::Profiler::global();
  if (profiler.enabled()) {
    std::ostringstream prof;
    profiler.write_json(prof);
    std::string text = prof.str();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    json.raw("profile", text);
  }
}

/// Validates that `doc` (a parsed BENCH_*.json) carries the manifest
/// envelope. Returns "" when valid, else a description of the first
/// violation. Used by every bench's post-write self-check and by
/// bench_compare before diffing.
inline std::string manifest_error(const util::JsonValue& doc) {
  using util::JsonValue;
  if (doc.kind != JsonValue::Kind::kObject) {
    return "report is not a JSON object";
  }
  if (!doc.has("manifest")) return "missing \"manifest\" object";
  const JsonValue& m = doc.object.at("manifest");
  if (m.kind != JsonValue::Kind::kObject) {
    return "\"manifest\" is not an object";
  }
  const struct {
    const char* key;
    JsonValue::Kind kind;
  } required[] = {
      {"schema_version", JsonValue::Kind::kNumber},
      {"bench", JsonValue::Kind::kString},
      {"mode", JsonValue::Kind::kString},
      {"seed", JsonValue::Kind::kNumber},
      {"git_sha", JsonValue::Kind::kString},
      {"git_dirty", JsonValue::Kind::kBool},
      {"compiler", JsonValue::Kind::kString},
      {"compiler_version", JsonValue::Kind::kString},
      {"cxx_flags", JsonValue::Kind::kString},
      {"build_type", JsonValue::Kind::kString},
      {"hostname", JsonValue::Kind::kString},
      {"timestamp_utc", JsonValue::Kind::kString},
  };
  for (const auto& r : required) {
    if (!m.has(r.key)) {
      return std::string("manifest missing \"") + r.key + "\"";
    }
    if (m.object.at(r.key).kind != r.kind) {
      return std::string("manifest \"") + r.key + "\" has wrong type";
    }
  }
  if (!doc.has("peak_rss_bytes") ||
      doc.object.at("peak_rss_bytes").kind != JsonValue::Kind::kNumber) {
    return "missing top-level \"peak_rss_bytes\"";
  }
  return "";
}

}  // namespace emc::bench
