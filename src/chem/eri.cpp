#include "chem/eri.hpp"

#include <cmath>

#include "chem/constants.hpp"
#include "chem/integrals.hpp"

namespace emc::chem {

double EriBlock::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

EriBlock eri_shell_quartet(const Shell& sa, const Shell& sb, const Shell& sc,
                           const Shell& sd) {
  const auto ca = cartesian_components(sa.l);
  const auto cb = cartesian_components(sb.l);
  const auto cc_ = cartesian_components(sc.l);
  const auto cd = cartesian_components(sd.l);
  EriBlock block(static_cast<int>(ca.size()), static_cast<int>(cb.size()),
                 static_cast<int>(cc_.size()), static_cast<int>(cd.size()));

  const int lab = sa.l + sb.l;
  const int lcd = sc.l + sd.l;

  for (std::size_t p1 = 0; p1 < sa.exponents.size(); ++p1) {
    const double a = sa.exponents[p1];
    for (std::size_t p2 = 0; p2 < sb.exponents.size(); ++p2) {
      const double b = sb.exponents[p2];
      const double p = a + b;
      const double cab = sa.coefficients[p1] * sb.coefficients[p2];
      const Vec3 pctr{(a * sa.center[0] + b * sb.center[0]) / p,
                      (a * sa.center[1] + b * sb.center[1]) / p,
                      (a * sa.center[2] + b * sb.center[2]) / p};
      const HermiteE e1x(sa.l, sb.l, a, b, sa.center[0], sb.center[0]);
      const HermiteE e1y(sa.l, sb.l, a, b, sa.center[1], sb.center[1]);
      const HermiteE e1z(sa.l, sb.l, a, b, sa.center[2], sb.center[2]);

      for (std::size_t p3 = 0; p3 < sc.exponents.size(); ++p3) {
        const double c = sc.exponents[p3];
        for (std::size_t p4 = 0; p4 < sd.exponents.size(); ++p4) {
          const double d = sd.exponents[p4];
          const double q = c + d;
          const double ccd = sc.coefficients[p3] * sd.coefficients[p4];
          const Vec3 qctr{(c * sc.center[0] + d * sd.center[0]) / q,
                          (c * sc.center[1] + d * sd.center[1]) / q,
                          (c * sc.center[2] + d * sd.center[2]) / q};
          const HermiteE e2x(sc.l, sd.l, c, d, sc.center[0], sd.center[0]);
          const HermiteE e2y(sc.l, sd.l, c, d, sc.center[1], sd.center[1]);
          const HermiteE e2z(sc.l, sd.l, c, d, sc.center[2], sd.center[2]);

          const double alpha = p * q / (p + q);
          const Vec3 pq{pctr[0] - qctr[0], pctr[1] - qctr[1],
                        pctr[2] - qctr[2]};
          const HermiteR rtuv(lab + lcd, alpha, pq);
          const double pref = 2.0 * std::pow(kPi, 2.5) /
                              (p * q * std::sqrt(p + q)) * cab * ccd;

          for (std::size_t ia = 0; ia < ca.size(); ++ia) {
            for (std::size_t ib = 0; ib < cb.size(); ++ib) {
              const auto& A = ca[ia];
              const auto& B = cb[ib];
              for (std::size_t ic = 0; ic < cc_.size(); ++ic) {
                for (std::size_t id = 0; id < cd.size(); ++id) {
                  const auto& C = cc_[ic];
                  const auto& D = cd[id];
                  double sum = 0.0;
                  for (int t = 0; t <= A.lx + B.lx; ++t) {
                    const double et = e1x(A.lx, B.lx, t);
                    if (et == 0.0) continue;
                    for (int u = 0; u <= A.ly + B.ly; ++u) {
                      const double eu = e1y(A.ly, B.ly, u);
                      if (eu == 0.0) continue;
                      for (int v = 0; v <= A.lz + B.lz; ++v) {
                        const double ev = e1z(A.lz, B.lz, v);
                        if (ev == 0.0) continue;
                        double inner = 0.0;
                        for (int tau = 0; tau <= C.lx + D.lx; ++tau) {
                          const double ft = e2x(C.lx, D.lx, tau);
                          if (ft == 0.0) continue;
                          for (int nu = 0; nu <= C.ly + D.ly; ++nu) {
                            const double fu = e2y(C.ly, D.ly, nu);
                            if (fu == 0.0) continue;
                            for (int phi = 0; phi <= C.lz + D.lz; ++phi) {
                              const double fv = e2z(C.lz, D.lz, phi);
                              if (fv == 0.0) continue;
                              const double sign =
                                  ((tau + nu + phi) % 2 == 0) ? 1.0 : -1.0;
                              inner += sign * ft * fu * fv *
                                       rtuv(t + tau, u + nu, v + phi);
                            }
                          }
                        }
                        sum += et * eu * ev * inner;
                      }
                    }
                  }
                  block(static_cast<int>(ia), static_cast<int>(ib),
                        static_cast<int>(ic), static_cast<int>(id)) +=
                      pref * sum;
                }
              }
            }
          }
        }
      }
    }
  }

  // Per-component contracted normalization.
  auto norms = [](const Shell& s) {
    const auto comps = cartesian_components(s.l);
    std::vector<double> n(comps.size());
    for (std::size_t i = 0; i < comps.size(); ++i) {
      n[i] = s.component_norm(comps[i].lx, comps[i].ly, comps[i].lz);
    }
    return n;
  };
  const auto na = norms(sa), nb = norms(sb), nc = norms(sc), nd = norms(sd);
  for (std::size_t ia = 0; ia < na.size(); ++ia) {
    for (std::size_t ib = 0; ib < nb.size(); ++ib) {
      for (std::size_t ic = 0; ic < nc.size(); ++ic) {
        for (std::size_t id = 0; id < nd.size(); ++id) {
          block(static_cast<int>(ia), static_cast<int>(ib),
                static_cast<int>(ic), static_cast<int>(id)) *=
              na[ia] * nb[ib] * nc[ic] * nd[id];
        }
      }
    }
  }
  return block;
}

linalg::Matrix schwarz_matrix(const BasisSet& basis) {
  const auto& shells = basis.shells();
  linalg::Matrix q(shells.size(), shells.size());
  for (std::size_t i = 0; i < shells.size(); ++i) {
    for (std::size_t j = i; j < shells.size(); ++j) {
      const EriBlock b =
          eri_shell_quartet(shells[i], shells[j], shells[i], shells[j]);
      double m = 0.0;
      for (int fa = 0; fa < b.na(); ++fa) {
        for (int fb = 0; fb < b.nb(); ++fb) {
          m = std::max(m, std::abs(b(fa, fb, fa, fb)));
        }
      }
      q(i, j) = q(j, i) = std::sqrt(m);
    }
  }
  return q;
}

std::vector<double> full_eri_tensor(const BasisSet& basis) {
  const auto n = static_cast<std::size_t>(basis.function_count());
  std::vector<double> g(n * n * n * n, 0.0);
  const auto& shells = basis.shells();

  for (const Shell& si : shells) {
    for (const Shell& sj : shells) {
      for (const Shell& sk : shells) {
        for (const Shell& sl : shells) {
          const EriBlock b = eri_shell_quartet(si, sj, sk, sl);
          for (int fa = 0; fa < b.na(); ++fa) {
            for (int fb = 0; fb < b.nb(); ++fb) {
              for (int fc = 0; fc < b.nc(); ++fc) {
                for (int fd = 0; fd < b.nd(); ++fd) {
                  const auto i =
                      static_cast<std::size_t>(si.first_function + fa);
                  const auto j =
                      static_cast<std::size_t>(sj.first_function + fb);
                  const auto k =
                      static_cast<std::size_t>(sk.first_function + fc);
                  const auto l =
                      static_cast<std::size_t>(sl.first_function + fd);
                  g[((i * n + j) * n + k) * n + l] = b(fa, fb, fc, fd);
                }
              }
            }
          }
        }
      }
    }
  }
  return g;
}

}  // namespace emc::chem
