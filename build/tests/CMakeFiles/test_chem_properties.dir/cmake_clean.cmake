file(REMOVE_RECURSE
  "CMakeFiles/test_chem_properties.dir/test_chem_properties.cpp.o"
  "CMakeFiles/test_chem_properties.dir/test_chem_properties.cpp.o.d"
  "test_chem_properties"
  "test_chem_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
