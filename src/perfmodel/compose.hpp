#pragma once

// Composition algebra for fitted performance models, after Czappa et
// al.'s CompositionalPerformanceAnalyzer: instead of one opaque fit of
// the end-to-end makespan, each parallel pattern in the program gets
// its own small fitted model and the models combine along the program
// structure —
//
//   serial(a, b, ...)    phases that follow each other: sum
//   parallel(a, b, ...)  phases that overlap completely: max
//   leaf(fitted model)   one measured pattern (compute span, protocol
//                        overhead, link contention)
//
// The simulator's execution models decompose naturally this way:
// makespan ~ serial(compute span, scheduling-protocol overhead,
// network contention). The benefit over a monolithic fit is that each
// sub-model sees a signal with one dominant shape (the protocol term
// of a shared counter is near-linear in P; the compute span is nearly
// flat under weak scaling), which small PMNF bases capture and
// extrapolate far better than their sum.

#include <string>
#include <vector>

#include "perfmodel/fit.hpp"

namespace emc::perfmodel {

/// An immutable composition tree over fitted models.
class ComposedModel {
 public:
  enum class Kind { kLeaf, kSerial, kParallel };

  static ComposedModel leaf(FittedModel model, std::string label);
  /// Sum of the parts. Throws std::invalid_argument when empty.
  static ComposedModel serial(std::vector<ComposedModel> parts,
                              std::string label);
  /// Max of the parts. Throws std::invalid_argument when empty.
  static ComposedModel parallel(std::vector<ComposedModel> parts,
                                std::string label);

  double evaluate(const Point& point) const;

  Kind kind() const { return kind_; }
  const std::string& label() const { return label_; }
  const std::vector<ComposedModel>& parts() const { return parts_; }
  /// Leaf-only: the fitted model. Throws std::logic_error otherwise.
  const FittedModel& fitted() const;

  /// Indented one-line-per-node description:
  ///   serial makespan
  ///     leaf compute: 1.6e-04 + ...
  std::string describe(int indent = 0) const;

 private:
  ComposedModel() = default;

  Kind kind_ = Kind::kLeaf;
  std::string label_;
  FittedModel model_;             ///< kLeaf only
  std::vector<ComposedModel> parts_;  ///< kSerial / kParallel
};

}  // namespace emc::perfmodel
