#pragma once

// Symmetric eigensolver (cyclic Jacobi) and derived transforms.

#include "linalg/matrix.hpp"

namespace emc::linalg {

/// Eigen-decomposition of a symmetric matrix A = V diag(values) V^T.
/// `vectors` holds eigenvectors in columns; both sorted ascending by value.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;
};

/// Cyclic Jacobi rotation eigensolver for symmetric matrices.
/// Throws std::invalid_argument for non-square or non-symmetric input
/// (symmetry checked to 1e-10 * max|A|), std::runtime_error if the sweep
/// limit is hit before off-diagonal mass drops below `tol`.
EigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12,
                            int max_sweeps = 100);

/// Symmetric (Löwdin) orthogonalizer X = S^{-1/2}. Throws
/// std::runtime_error if S has an eigenvalue below `min_eigenvalue`
/// (near-linear-dependence in the basis).
Matrix inverse_sqrt(const Matrix& s, double min_eigenvalue = 1e-10);

}  // namespace emc::linalg
