# Empty dependencies file for bench_execution_models.
# This may be replaced when dependencies are built.
