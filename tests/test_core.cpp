// Core task-model and experiment-framework tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "lb/partition.hpp"

namespace {

using namespace emc::core;

TEST(TaskModelTest, BuildsForNamedMolecules) {
  const TaskModel model = build_task_model("water");
  const auto ns = static_cast<std::size_t>(model.shell_count());
  EXPECT_EQ(ns, 5u);
  EXPECT_EQ(model.task_count(), ns * (ns + 1) / 2);
  EXPECT_EQ(model.costs.size(), model.task_count());
  EXPECT_GT(model.total_cost(), 0.0);
}

TEST(TaskModelTest, ShellAtomMapIsConsistent) {
  const TaskModel model = build_task_model("water2");
  ASSERT_EQ(model.shell_atom.size(),
            static_cast<std::size_t>(model.basis.shell_count()));
  for (std::size_t s = 0; s < model.shell_atom.size(); ++s) {
    EXPECT_EQ(model.shell_atom[s], model.basis.shells()[s].atom_index);
    EXPECT_GE(model.shell_atom[s], 0);
    EXPECT_LT(model.shell_atom[s],
              static_cast<int>(model.molecule.size()));
  }
}

TEST(TaskModelTest, AnalyticCostsAreHeterogeneous) {
  const TaskModel model = build_task_model("water2");
  const double min = *std::min_element(model.costs.begin(),
                                       model.costs.end());
  const double max = *std::max_element(model.costs.begin(),
                                       model.costs.end());
  EXPECT_GT(max, 10.0 * min);
}

TEST(TaskModelTest, MeasuredCostsArePositive) {
  TaskModelOptions options;
  options.measure_costs = true;
  const TaskModel model = build_task_model("water", options);
  for (double c : model.costs) {
    EXPECT_GT(c, 0.0);
  }
}

TEST(TaskModelTest, MeasuredAndAnalyticCostsCorrelate) {
  TaskModelOptions measured_opts;
  measured_opts.measure_costs = true;
  const TaskModel measured = build_task_model("water2", measured_opts);
  const TaskModel analytic = build_task_model("water2");
  ASSERT_EQ(measured.costs.size(), analytic.costs.size());

  // Spearman-free check: Pearson correlation of the two cost vectors
  // should be strongly positive — the analytic model is a usable proxy.
  const auto n = static_cast<double>(measured.costs.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < measured.costs.size(); ++i) {
    ma += measured.costs[i];
    mb += analytic.costs[i];
  }
  ma /= n;
  mb /= n;
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < measured.costs.size(); ++i) {
    const double xa = measured.costs[i] - ma;
    const double xb = analytic.costs[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  const double r = num / std::sqrt(da * db);
  EXPECT_GT(r, 0.7);
}

TEST(ShellOwnerTest, BlockDistributionProperties) {
  const int n_shells = 37, n_procs = 8;
  int prev = 0;
  std::set<int> owners;
  for (int s = 0; s < n_shells; ++s) {
    const int o = shell_owner(s, n_shells, n_procs);
    EXPECT_GE(o, prev);  // monotone
    EXPECT_GE(o, 0);
    EXPECT_LT(o, n_procs);
    owners.insert(o);
    prev = o;
  }
  EXPECT_EQ(owners.size(), static_cast<std::size_t>(n_procs));
  EXPECT_THROW(shell_owner(-1, n_shells, n_procs), std::out_of_range);
  EXPECT_THROW(shell_owner(n_shells, n_shells, n_procs), std::out_of_range);
}

TEST(LocalityInstanceTest, EligibilityIncludesOwners) {
  const TaskModel model = build_task_model("water2");
  const int n_procs = 6;
  const auto g = make_locality_instance(model, n_procs, /*window=*/1);
  g.validate();
  ASSERT_EQ(g.task_count(), model.task_count());
  EXPECT_EQ(g.weights, model.costs);

  const int ns = model.shell_count();
  for (std::size_t t = 0; t < model.task_count(); ++t) {
    const int oi = shell_owner(model.tasks[t].si, ns, n_procs);
    const int oj = shell_owner(model.tasks[t].sj, ns, n_procs);
    EXPECT_NE(std::find(g.eligible[t].begin(), g.eligible[t].end(), oi),
              g.eligible[t].end());
    EXPECT_NE(std::find(g.eligible[t].begin(), g.eligible[t].end(), oj),
              g.eligible[t].end());
    // Window 1 on two shells: at most 6 distinct procs.
    EXPECT_LE(g.eligible[t].size(), 6u);
  }
}

TEST(LocalityInstanceTest, HugeWindowIsComplete) {
  const TaskModel model = build_task_model("water");
  const int n_procs = 4;
  const auto g = make_locality_instance(model, n_procs, n_procs);
  for (const auto& e : g.eligible) {
    EXPECT_EQ(e.size(), static_cast<std::size_t>(n_procs));
  }
}

TEST(TaskHypergraphTest, StructureMatchesBraPairs) {
  const TaskModel model = build_task_model("water");
  const auto h = make_task_hypergraph(model);
  EXPECT_EQ(h.vertex_count(),
            static_cast<emc::graph::VertexId>(model.task_count()));
  // Nets = shells (every shell appears in >= 2 bra pairs here).
  EXPECT_EQ(h.net_count(), model.shell_count());
  // Vertex weights are the task costs.
  for (std::size_t t = 0; t < model.task_count(); ++t) {
    EXPECT_DOUBLE_EQ(h.vertex_weight(static_cast<emc::graph::VertexId>(t)),
                     model.costs[t]);
  }
  // Task (i,j) must be pinned by <= 2 nets.
  for (std::size_t t = 0; t < model.task_count(); ++t) {
    const auto nets = h.nets_of(static_cast<emc::graph::VertexId>(t));
    EXPECT_GE(nets.size(), 1u);
    EXPECT_LE(nets.size(), 2u);
  }
}

TEST(BalanceTasksTest, AllAlgorithmsProduceValidAssignments) {
  const TaskModel model = build_task_model("water2");
  const int n_procs = 8;
  for (const std::string& algo : balancer_names()) {
    const auto r = balance_tasks(model, algo, n_procs);
    EXPECT_EQ(r.algorithm, algo);
    EXPECT_EQ(r.assignment.size(), model.task_count()) << algo;
    emc::lb::validate_assignment(r.assignment, n_procs);
  }
  EXPECT_THROW(balance_tasks(model, "magic", n_procs),
               std::invalid_argument);
}

TEST(BalanceTasksTest, SmartBalancersBeatBlock) {
  const TaskModel model = build_task_model("water3");
  const int n_procs = 8;
  const double block_ms = emc::lb::makespan(
      model.costs, balance_tasks(model, "block", n_procs).assignment,
      n_procs);
  for (const char* algo : {"lpt", "semi-matching", "hypergraph"}) {
    const double ms = emc::lb::makespan(
        model.costs, balance_tasks(model, algo, n_procs).assignment,
        n_procs);
    EXPECT_LT(ms, block_ms) << algo;
  }
}

TEST(RunAllModelsTest, ProducesFullLineup) {
  const TaskModel model = build_task_model("water2");
  ExperimentConfig config;
  config.machine.n_procs = 16;
  const auto runs = run_all_models(model, config);
  ASSERT_EQ(runs.size(), 6u);

  std::set<std::string> names;
  for (const auto& run : runs) {
    names.insert(run.name);
    // Everything executed: total tasks = task count.
    std::int64_t total = 0;
    for (auto t : run.sim.tasks_executed) total += t;
    EXPECT_EQ(total, static_cast<std::int64_t>(model.task_count()))
        << run.name;
    EXPECT_GT(run.sim.makespan, 0.0) << run.name;
  }
  EXPECT_TRUE(names.count("static-block"));
  EXPECT_TRUE(names.count("work-stealing"));
  EXPECT_TRUE(names.count("counter"));
}

TEST(RunAllModelsTest, DynamicModelsBeatStaticBlock) {
  // The abstract's headline: work stealing substantially outperforms
  // naive static scheduling on the heterogeneous Fock task set.
  const TaskModel model = build_task_model("water3");
  ExperimentConfig config;
  config.machine.n_procs = 32;
  const auto runs = run_all_models(model, config);

  double static_block = 0.0, stealing = 0.0;
  for (const auto& run : runs) {
    if (run.name == "static-block") static_block = run.sim.makespan;
    if (run.name == "work-stealing") stealing = run.sim.makespan;
  }
  ASSERT_GT(static_block, 0.0);
  ASSERT_GT(stealing, 0.0);
  EXPECT_LT(stealing, static_block);
}

}  // namespace
