# Empty compiler generated dependencies file for bench_retentive.
# This may be replaced when dependencies are built.
