#pragma once

// Gaussian basis sets: contracted cartesian shells, with STO-3G and 6-31G
// parameter tables embedded for H, C, N, O.
//
// A Shell is a contraction of primitive Gaussians sharing a center and a
// total angular momentum l. Shells expand into (l+1)(l+2)/2 cartesian
// basis functions ordered lexicographically by (lx descending, then ly
// descending), e.g. p -> x, y, z; d -> xx, xy, xz, yy, yz, zz.
//
// Contraction coefficients stored here are "effective": the tabulated
// coefficient times the primitive normalization constant for the shell's
// (l,0,0) component. A per-cartesian-component normalization constant is
// exposed via `component_norm`, chosen so that every contracted basis
// function has unit self-overlap.

#include <string>
#include <vector>

#include "chem/molecule.hpp"

namespace emc::chem {

/// Exponents of the cartesian monomial x^lx y^ly z^lz.
struct CartesianComponent {
  int lx = 0, ly = 0, lz = 0;
  int total() const { return lx + ly + lz; }
};

/// All cartesian components of total angular momentum l, in canonical
/// order (lx descending, then ly descending).
std::vector<CartesianComponent> cartesian_components(int l);

/// Number of cartesian components for angular momentum l.
inline int cartesian_count(int l) { return (l + 1) * (l + 2) / 2; }

/// Normalization constant of the primitive cartesian Gaussian
/// x^lx y^ly z^lz exp(-a r^2).
double primitive_norm(double exponent, int lx, int ly, int lz);

struct Shell {
  Vec3 center{};
  int l = 0;                        ///< total angular momentum
  int atom_index = -1;              ///< owning atom in the molecule
  std::vector<double> exponents;
  std::vector<double> coefficients; ///< effective (see file comment)
  int first_function = 0;           ///< index of first basis fn of shell

  int function_count() const { return cartesian_count(l); }

  /// Contracted normalization for the shell's component with the given
  /// cartesian exponents (component sum must equal l).
  double component_norm(int lx, int ly, int lz) const;
};

class BasisSet {
 public:
  /// Builds the named basis ("sto-3g", "6-31g", or "6-31g*") over the
  /// molecule. Throws std::invalid_argument for unknown basis names or
  /// elements without parameters in the table.
  static BasisSet build(const Molecule& molecule, const std::string& name);

  const std::vector<Shell>& shells() const { return shells_; }
  std::size_t shell_count() const { return shells_.size(); }
  /// Total number of basis functions.
  int function_count() const { return n_functions_; }
  const std::string& name() const { return name_; }

 private:
  std::vector<Shell> shells_;
  int n_functions_ = 0;
  std::string name_;
};

}  // namespace emc::chem
