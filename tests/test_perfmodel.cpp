// Tests for the analytic performance-model layer (src/perfmodel):
// PMNF term basis, cross-validated fitting, the composition algebra,
// the stateless CV split, sweep ingestion round trips, and a
// differential gate against fresh simulator runs.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lb/simple.hpp"
#include "perfmodel/compose.hpp"
#include "perfmodel/fit.hpp"
#include "perfmodel/sweep_ingest.hpp"
#include "perfmodel/term_basis.hpp"
#include "sim/simulators.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using emc::perfmodel::ComposedModel;
using emc::perfmodel::cv_fold;
using emc::perfmodel::Factor;
using emc::perfmodel::fit_model;
using emc::perfmodel::fit_terms;
using emc::perfmodel::FitOptions;
using emc::perfmodel::FittedModel;
using emc::perfmodel::load_sweep_text;
using emc::perfmodel::Point;
using emc::perfmodel::predictor_terms;
using emc::perfmodel::Sample;
using emc::perfmodel::Sweep;
using emc::perfmodel::Term;
using emc::perfmodel::to_samples;

FittedModel constant_model(double value) {
  FittedModel model;
  model.terms = {Term{}};
  model.coefficients = {value};
  return model;
}

// ---------------------------------------------------------------- terms

TEST(TermBasis, NamesAndValues) {
  const Term constant;
  EXPECT_EQ(constant.name(), "1");
  EXPECT_TRUE(constant.is_constant());
  EXPECT_EQ(constant.evaluate({{"procs", 64.0}}), 1.0);

  const Term plogp({Factor{"procs", 1.0, 1}});
  EXPECT_EQ(plogp.name(), "procs^1*log2(procs)^1");
  EXPECT_DOUBLE_EQ(plogp.evaluate({{"procs", 8.0}}), 24.0);

  const Term sqrt_term({Factor{"procs", 0.5, 0}});
  EXPECT_EQ(sqrt_term.name(), "procs^0.5");
  EXPECT_DOUBLE_EQ(sqrt_term.evaluate({{"procs", 16.0}}), 4.0);

  const Term pure_log({Factor{"procs", 0.0, 2}});
  EXPECT_EQ(pure_log.name(), "log2(procs)^2");
  EXPECT_DOUBLE_EQ(pure_log.evaluate({{"procs", 8.0}}), 9.0);
}

TEST(TermBasis, EvaluateRejectsBadPoints) {
  const Term plogp({Factor{"procs", 1.0, 1}});
  EXPECT_THROW(plogp.evaluate({{"tasks", 8.0}}), std::invalid_argument);
  // log2(0) is -inf: the term must refuse, not propagate non-finites.
  EXPECT_THROW(plogp.evaluate({{"procs", 0.0}}), std::domain_error);
}

TEST(TermBasis, GridAndProducts) {
  // 5 exponents x 3 log-exponents minus the excluded (0, 0).
  const std::vector<Term> terms = predictor_terms("procs");
  EXPECT_EQ(terms.size(), 14u);
  for (const Term& t : terms) EXPECT_FALSE(t.is_constant());

  const Term p({Factor{"procs", 1.0, 0}});
  const Term h({Factor{"intensity", 1.0, 0}});
  const Term product = p * h;
  EXPECT_EQ(product.name(), "procs^1*intensity^1");
  EXPECT_DOUBLE_EQ(
      product.evaluate({{"procs", 4.0}, {"intensity", 1.5}}), 6.0);

  const auto crosses = emc::perfmodel::cross_terms({p}, {h, p});
  ASSERT_EQ(crosses.size(), 2u);
  EXPECT_EQ(crosses[0].name(), "procs^1*intensity^1");
  EXPECT_EQ(crosses[1].name(), "procs^1*procs^1");
}

// ------------------------------------------------------------- fitting

std::vector<Sample> plogp_samples() {
  std::vector<Sample> samples;
  for (const double p : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                         512.0, 1024.0}) {
    Sample s;
    s.predictors = {{"procs", p}};
    s.value = 3.0e-4 + 2.0e-6 * p * std::log2(p);
    s.key = "procs=" + std::to_string(static_cast<int>(p));
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Fit, RecoversPLogPExactly) {
  const std::vector<Sample> samples = plogp_samples();
  const FittedModel model =
      fit_model(predictor_terms("procs"), samples, FitOptions{});

  // Extrapolation 16x past the largest training P must stay exact.
  const double p = 16384.0;
  const double truth = 3.0e-4 + 2.0e-6 * p * std::log2(p);
  EXPECT_NEAR(model.evaluate({{"procs", p}}) / truth, 1.0, 1e-6);

  // And the recovered structure is the generating one: the constant
  // plus exactly the P*log2(P) term.
  ASSERT_EQ(model.terms.size(), 2u);
  EXPECT_EQ(model.terms[0].name(), "1");
  EXPECT_EQ(model.terms[1].name(), "procs^1*log2(procs)^1");
  EXPECT_NEAR(model.coefficients[0], 3.0e-4, 1e-9);
  EXPECT_NEAR(model.coefficients[1], 2.0e-6, 1e-11);
}

TEST(Fit, CrossValidationRejectsNoiseTerms) {
  // A flat signal with +-3% multiplicative noise (two replicas per P):
  // every candidate term can only chase noise, and the CV gate must
  // keep the model constant.
  emc::Rng rng(1);
  std::vector<Sample> samples;
  for (int rep = 0; rep < 2; ++rep) {
    for (const double p : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                           512.0, 1024.0}) {
      Sample s;
      s.predictors = {{"procs", p}};
      s.value = 5.0e-3 * rng.uniform(0.97, 1.03);
      s.key = "rep=" + std::to_string(rep) +
              ",procs=" + std::to_string(static_cast<int>(p));
      samples.push_back(std::move(s));
    }
  }
  const FittedModel model =
      fit_model(predictor_terms("procs"), samples, FitOptions{});
  ASSERT_EQ(model.terms.size(), 1u);
  EXPECT_EQ(model.terms[0].name(), "1");
  EXPECT_NEAR(model.coefficients[0], 5.0e-3, 5.0e-4);
  // And the behavioral consequence: extrapolation 4x past the training
  // range stays flat instead of riding a hallucinated growth term.
  EXPECT_NEAR(model.evaluate({{"procs", 4096.0}}) / 5.0e-3, 1.0, 0.05);
}

TEST(Fit, BitwiseDeterministic) {
  const std::vector<Sample> samples = plogp_samples();
  const std::vector<Term> candidates = predictor_terms("procs");
  const FittedModel a = fit_model(candidates, samples, FitOptions{});
  const FittedModel b = fit_model(candidates, samples, FitOptions{});
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].name(), b.terms[i].name());
    // Bitwise: identical inputs must give identical coefficient bits.
    EXPECT_EQ(a.coefficients[i], b.coefficients[i]);
  }
  EXPECT_EQ(a.cv_error, b.cv_error);
  EXPECT_EQ(a.train_error, b.train_error);
}

TEST(Fit, StatelessFoldSplitPinned) {
  // Regression pin of the stateless splitmix64(seed ^ fnv1a(key)) split
  // (the PR 3 convention). These exact values are part of the on-disk
  // contract: changing them silently re-splits every saved sweep.
  const std::vector<std::string> keys{
      "model=static,procs=64",  "model=static,procs=128",
      "model=counter,procs=64", "model=counter,procs=128",
      "model=ws,procs=64",      "model=ws,procs=128",
      "model=hier,procs=256",   "model=ws,procs=4096"};
  const std::vector<int> seed1_folds4{1, 2, 2, 2, 0, 2, 0, 3};
  const std::vector<int> seed2_folds4{3, 1, 2, 0, 2, 3, 1, 1};
  const std::vector<int> seed1_folds3{0, 1, 2, 0, 1, 2, 0, 1};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(cv_fold(1, keys[i], 4), seed1_folds4[i]) << keys[i];
    EXPECT_EQ(cv_fold(2, keys[i], 4), seed2_folds4[i]) << keys[i];
    EXPECT_EQ(cv_fold(1, keys[i], 3), seed1_folds3[i]) << keys[i];
  }
  EXPECT_THROW(cv_fold(1, "k", 0), std::invalid_argument);
}

// --------------------------------------------------------- composition

TEST(Compose, SerialSumsParallelMaxes) {
  const ComposedModel two = ComposedModel::leaf(constant_model(2.0), "a");
  const ComposedModel three = ComposedModel::leaf(constant_model(3.0), "b");
  const Point at{{"procs", 64.0}};

  EXPECT_DOUBLE_EQ(ComposedModel::serial({two, three}, "s").evaluate(at),
                   5.0);
  EXPECT_DOUBLE_EQ(ComposedModel::parallel({two, three}, "p").evaluate(at),
                   3.0);

  // serial(parallel(2, 3), 1) = max(2, 3) + 1.
  const ComposedModel nested = ComposedModel::serial(
      {ComposedModel::parallel({two, three}, "overlap"),
       ComposedModel::leaf(constant_model(1.0), "tail")},
      "makespan");
  EXPECT_DOUBLE_EQ(nested.evaluate(at), 4.0);

  const std::string description = nested.describe();
  EXPECT_NE(description.find("serial makespan"), std::string::npos);
  EXPECT_NE(description.find("parallel overlap"), std::string::npos);
  EXPECT_NE(description.find("leaf tail"), std::string::npos);
}

TEST(Compose, RejectsDegenerateTrees) {
  EXPECT_THROW(ComposedModel::serial({}, "empty"), std::invalid_argument);
  EXPECT_THROW(ComposedModel::parallel({}, "empty"), std::invalid_argument);
  const ComposedModel leaf = ComposedModel::leaf(constant_model(1.0), "l");
  EXPECT_DOUBLE_EQ(leaf.fitted().coefficients[0], 1.0);
  EXPECT_THROW(ComposedModel::serial({leaf}, "s").fitted(),
               std::logic_error);
}

// ----------------------------------------------------------- ingestion

std::string sweep_json(const std::vector<Sample>& samples) {
  std::string json = "{\"sweep\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) json += ",";
    json += "{\"model\":\"ws\",\"procs\":" +
            emc::util::format_double(samples[i].predictors.at("procs")) +
            ",\"makespan_s\":" +
            emc::util::format_double(samples[i].value) + "}";
  }
  return json + "]}";
}

TEST(SweepIngest, RoundTripRefitsBitwise) {
  // In-memory samples, keyed by the shared identity convention...
  std::vector<Sample> direct;
  emc::Rng rng(7);
  for (const double p : {16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    Sample s;
    s.predictors = {{"procs", p}};
    s.value = (1.0e-4 + 3.0e-7 * p) * rng.uniform(0.98, 1.02);
    s.key = "model=ws,procs=" + emc::util::format_double(p);
    direct.push_back(std::move(s));
  }

  // ...emitted to JSON (format_double: exact round trip), re-ingested
  // through the strict parser, and refit: the identities, the values,
  // and therefore the fitted coefficients must be bitwise identical.
  const Sweep sweep = load_sweep_text(sweep_json(direct), "sweep");
  const std::vector<Sample> ingested =
      to_samples(sweep, {{"model", "ws"}}, {"procs"}, "makespan_s");

  ASSERT_EQ(ingested.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(ingested[i].key, direct[i].key);
    EXPECT_EQ(ingested[i].value, direct[i].value);
    EXPECT_EQ(ingested[i].predictors.at("procs"),
              direct[i].predictors.at("procs"));
  }

  const std::vector<Term> candidates = predictor_terms("procs");
  const FittedModel a = fit_model(candidates, direct, FitOptions{});
  const FittedModel b = fit_model(candidates, ingested, FitOptions{});
  ASSERT_EQ(a.coefficients.size(), b.coefficients.size());
  for (std::size_t i = 0; i < a.coefficients.size(); ++i) {
    EXPECT_EQ(a.coefficients[i], b.coefficients[i]);
  }
}

TEST(SweepIngest, RejectsMalformedSweeps) {
  // Unknown path.
  EXPECT_THROW(load_sweep_text("{\"sweep\":[]}", "missing"),
               std::runtime_error);
  // Path that is not an array.
  EXPECT_THROW(load_sweep_text("{\"sweep\":{}}", "sweep"),
               std::runtime_error);
  // A cell with no identity field at all.
  EXPECT_THROW(
      load_sweep_text("{\"sweep\":[{\"makespan_s\":1}]}", "sweep"),
      std::runtime_error);
  // Two cells with the same identity.
  EXPECT_THROW(load_sweep_text("{\"sweep\":[{\"model\":\"ws\",\"procs\":4},"
                               "{\"model\":\"ws\",\"procs\":4}]}",
                               "sweep"),
               std::runtime_error);
  // Missing predictor / target keys surface as errors, not zeros.
  const Sweep sweep = load_sweep_text(
      "{\"sweep\":[{\"model\":\"ws\",\"procs\":4,\"makespan_s\":1}]}",
      "sweep");
  EXPECT_THROW(to_samples(sweep, {}, {"tasks"}, "makespan_s"),
               std::runtime_error);
  EXPECT_THROW(to_samples(sweep, {}, {"procs"}, "elapsed"),
               std::runtime_error);
  // Nested-path addressing works.
  const Sweep nested = load_sweep_text(
      "{\"results\":{\"cells\":[{\"model\":\"ws\",\"procs\":8}]}}",
      "results.cells");
  EXPECT_EQ(nested.cells.size(), 1u);
  EXPECT_EQ(nested.cells[0].identity(), "model=ws,procs=8");
}

// ---------------------------------------------- differential simulator

TEST(Differential, PredictsFreshCounterRuns) {
  // Weak-scaling shared-counter sweep: fit makespan vs P on small P,
  // then the model must predict a *fresh simulator run* at a P it never
  // saw (4x the largest training point) within 10%. Task cost is set
  // well below P * counter_service so the counter is saturated across
  // the whole training range — the regime where its linear-in-P
  // serialization dominates and extrapolation is meaningful.
  constexpr int kTasksPerProc = 32;
  constexpr double kCost = 2.0e-6;

  const auto simulate = [&](int procs) {
    emc::sim::MachineConfig config;
    config.n_procs = procs;
    config.procs_per_node = std::min(16, procs);
    const std::vector<double> costs(
        static_cast<std::size_t>(procs) * kTasksPerProc, kCost);
    return emc::sim::simulate_counter(config, costs, 1).makespan;
  };

  std::vector<Sample> train;
  for (const int p : {32, 48, 64, 96, 128, 192, 256}) {
    Sample s;
    s.predictors = {{"procs", static_cast<double>(p)}};
    s.value = simulate(p);
    s.key = "model=counter,procs=" + std::to_string(p);
    train.push_back(std::move(s));
  }

  const FittedModel model =
      fit_model(predictor_terms("procs"), train, FitOptions{});
  const double predicted = model.evaluate({{"procs", 1024.0}});
  const double fresh = simulate(1024);
  EXPECT_GT(fresh, 0.0);
  EXPECT_NEAR(predicted / fresh, 1.0, 0.10)
      << "model " << model.to_string() << " predicted " << predicted
      << " vs simulated " << fresh;
}

}  // namespace
