// Molecular-properties tour: optimize a geometry on the RHF surface,
// then report energy, dipole moment, Mulliken charges, MP2 correlation,
// and the final structure as XYZ.
//
//   ./build/examples/properties_demo --molecule water --basis sto-3g

#include <cmath>
#include <iostream>

#include "chem/element.hpp"
#include "chem/integrals.hpp"
#include "chem/mp2.hpp"
#include "chem/properties.hpp"
#include "chem/scf.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace emc;

  std::string molecule_name = "water";
  std::string basis_name = "sto-3g";
  bool optimize = false;

  Cli cli("properties_demo", "RHF properties and geometry optimization");
  cli.add_string("molecule", 'm', "molecule name", &molecule_name);
  cli.add_string("basis", 'b', "basis set", &basis_name);
  cli.add_flag("optimize", 'o', "optimize the geometry first", &optimize);
  if (!cli.parse(argc, argv)) return 1;

  chem::Molecule mol = chem::make_named_molecule(molecule_name);

  if (optimize) {
    std::cout << "optimizing " << molecule_name << " on the RHF/"
              << basis_name << " surface...\n";
    const chem::OptimizeResult opt =
        chem::optimize_geometry(mol, basis_name);
    std::cout << "  " << (opt.converged ? "converged" : "stopped")
              << " after " << opt.steps << " steps, |grad|max = "
              << opt.gradient_norm << " Eh/a0\n";
    mol = opt.geometry;
  }

  const chem::BasisSet basis = chem::BasisSet::build(mol, basis_name);
  const chem::ScfResult scf = chem::run_rhf(mol, basis);
  if (!scf.converged) {
    std::cerr << "SCF did not converge\n";
    return 1;
  }

  std::cout << "E(RHF) = " << scf.energy << " Hartree ("
            << scf.iterations << " iterations)\n";

  const chem::Vec3 mu = chem::dipole_moment(scf.density, basis, mol);
  const double mu_norm =
      std::sqrt(mu[0] * mu[0] + mu[1] * mu[1] + mu[2] * mu[2]);
  std::cout << "dipole = (" << mu[0] << ", " << mu[1] << ", " << mu[2]
            << ") a.u., |mu| = " << mu_norm << " a.u. = "
            << mu_norm * 2.541746 << " Debye\n";

  const auto charges = chem::mulliken_charges(scf.density, basis, mol);
  std::cout << "Mulliken charges:\n";
  for (std::size_t a = 0; a < mol.size(); ++a) {
    std::cout << "  " << chem::element_symbol(mol.atoms()[a].z) << "  "
              << charges[a] << "\n";
  }

  if (basis.function_count() <= 40) {  // keep the O(n^5) transform sane
    const chem::Mp2Result mp2 = chem::run_mp2(mol, basis);
    std::cout << "E(2)   = " << mp2.correlation_energy
              << " Hartree (MP2 total " << mp2.total_energy << ")\n";
  }

  std::cout << "\nfinal geometry:\n"
            << chem::to_xyz(mol, molecule_name + " / RHF/" + basis_name);
  return 0;
}
