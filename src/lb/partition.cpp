#include "lb/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::lb {

std::vector<double> part_loads(std::span<const double> weights,
                               const Assignment& assignment, int n_parts) {
  if (weights.size() != assignment.size()) {
    throw std::invalid_argument("part_loads: weights/assignment mismatch");
  }
  std::vector<double> loads(static_cast<std::size_t>(n_parts), 0.0);
  for (std::size_t t = 0; t < weights.size(); ++t) {
    const int p = assignment[t];
    if (p < 0 || p >= n_parts) {
      throw std::invalid_argument("part_loads: part id out of range");
    }
    loads[static_cast<std::size_t>(p)] += weights[t];
  }
  return loads;
}

double makespan(std::span<const double> weights, const Assignment& assignment,
                int n_parts) {
  const auto loads = part_loads(weights, assignment, n_parts);
  return *std::max_element(loads.begin(), loads.end());
}

double imbalance(std::span<const double> weights,
                 const Assignment& assignment, int n_parts) {
  const auto loads = part_loads(weights, assignment, n_parts);
  double max = 0.0, sum = 0.0;
  for (double l : loads) {
    max = std::max(max, l);
    sum += l;
  }
  const double mean = sum / static_cast<double>(n_parts);
  return mean > 0.0 ? max / mean : 1.0;
}

void validate_assignment(const Assignment& assignment, int n_parts) {
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    if (assignment[t] < 0 || assignment[t] >= n_parts) {
      throw std::invalid_argument("validate_assignment: task " +
                                  std::to_string(t) + " maps to part " +
                                  std::to_string(assignment[t]));
    }
  }
}

}  // namespace emc::lb
