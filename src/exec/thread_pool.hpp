#pragma once

// Persistent intra-rank worker pool with SPMD dispatch.
//
// Each PGAS rank owns one ThreadPool; run(body) executes body(thread_id)
// once on every thread of the pool, with the CALLER participating as
// thread 0 — so a pool of size 1 spawns no workers at all and the hybrid
// build degenerates to the plain per-rank loop with zero overhead.
//
// Workers are parked on a condition variable between runs (no spinning),
// woken by an epoch bump, and reused across SCF iterations. The first
// exception thrown by any participant (including the caller) is captured
// and rethrown from run() after every thread has finished the epoch, so
// a failing task body cannot leave the pool mid-dispatch.
//
// All shared dispatch state (epoch, body pointer, completion count,
// error slot) is guarded by one mutex; the cv wait/notify pairs give the
// happens-before edges that publish the body's captures to workers and
// their side effects back to the caller. This is what makes pool-executed
// writes safe to read from the rank thread after run() returns — the
// "snapshot after join" contract that MetricsRegistry::snapshot and the
// reduction trees rely on.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace emc::exec {

class ThreadPool {
 public:
  /// Spawns n_threads - 1 parked workers (the caller is thread 0).
  /// Throws std::invalid_argument when n_threads < 1.
  explicit ThreadPool(int n_threads);

  /// Joins all workers. Must not be called while a run() is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return n_threads_; }

  /// Executes body(t) once for every t in [0, size()), caller included,
  /// and returns after ALL threads finished the epoch. Rethrows the
  /// first captured exception. Not reentrant: one run() at a time.
  void run(const std::function<void(int)>& body);

 private:
  void worker_loop(int thread_id);

  int n_threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* body_ = nullptr;  // valid for one epoch
  std::uint64_t epoch_ = 0;
  int workers_done_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace emc::exec
