#pragma once

// SCF-as-a-service: a long-running in-process server that accepts a
// stream of Fock-build / SCF requests over mixed molecules and basis
// sets and multiplexes them over one shared exec::ThreadPool.
//
// The paper studies execution models WITHIN one large Fock build; the
// serving layer adds the axis the ROADMAP's "millions of users" north
// star implies — scheduling BETWEEN jobs. Design choices:
//
//  * Admission control: a bounded priority queue. When full, the
//    configured overload policy either REJECTS the new request or SHEDS
//    the cheapest queued victim (lowest priority, then youngest) to
//    make room for a higher-priority arrival. Rejected/shed jobs still
//    resolve their futures (ok = false) so callers never hang.
//  * Priorities: the dispatch order is a strict weak order (priority
//    descending, then admission sequence ascending), so for a fixed
//    submission order the execution order of queued jobs is
//    deterministic — testable without sleeps.
//  * Parallelism is ACROSS jobs only: each job runs sequentially on the
//    worker that claimed it, so a job's results (SCF energy bits, Fock
//    digest) are bitwise identical for any pool size — the request-
//    level analogue of the hybrid builder's bitwise contract.
//  * Faults: per-attempt job loss decided by the same stateless
//    splitmix64 hash idiom as DistributedFockOptions::TaskFaultOptions,
//    keyed (seed, job id, attempt) — retries are replayable and the
//    final result is bitwise identical to the fault-free run.
//  * Chemistry reuse: every job resolves its (molecule, basis) through
//    the shared cross-request FockCache (see fock_cache.hpp).
//
// Thread model: start() launches one dispatcher thread that parks
// inside ThreadPool::run(worker_loop); the pool's threads (dispatcher
// included, as thread 0) pull jobs until stop. submit() may be called
// from any thread, before or after start(); submitting before start()
// gives deterministic admission decisions (no worker races the queue).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "serve/fock_cache.hpp"
#include "util/metrics.hpp"

namespace emc::serve {

/// What a tenant asks for: one chemistry job.
struct JobRequest {
  enum class Kind {
    kFockBuild,  ///< one G(P) build against the superposition guess
    kScf,        ///< full RHF to convergence
  };
  std::string molecule;  ///< catalog name (chem::make_named_molecule)
  std::string basis;     ///< basis name (chem::BasisSet::build)
  Kind kind = Kind::kFockBuild;
  int tenant = 0;        ///< tenant class (indexes per-tenant metrics)
  int priority = 0;      ///< higher runs first among queued jobs
  int scf_max_iterations = 50;  ///< kScf iteration cap
};

struct JobResult {
  std::int64_t job_id = -1;
  bool ok = false;
  std::string error;        ///< "rejected", "shed", or exception text
  int attempts = 0;         ///< 1 + fault retries (0 if never started)
  // kFockBuild payload: FNV-1a digest over the G matrix bits — enough
  // to assert bitwise determinism without shipping the matrix.
  std::uint64_t g_digest = 0;
  double g_norm = 0.0;
  // kScf payload.
  double energy = 0.0;
  bool scf_converged = false;
  int scf_iterations = 0;
  /// Global completion order (0-based, assigned under the server lock
  /// as each job finishes); with ONE worker this equals the dispatch
  /// order, which is what the priority-ordering tests assert.
  std::int64_t completion_seq = -1;
  // Hostware timings (advisory; never gate on these).
  double queue_seconds = 0.0;
  double service_seconds = 0.0;
};

struct ServerOptions {
  int workers = 2;                 ///< ThreadPool size (>= 1)
  std::size_t queue_capacity = 64; ///< max queued (not yet running) jobs
  enum class Overload {
    kReject,  ///< full queue rejects the new request
    kShed,    ///< full queue sheds the worst queued victim if the new
              ///< request outranks it, else sheds the new request
  };
  Overload overload = Overload::kReject;
  std::size_t cache_capacity = 8;  ///< FockCache resident entries
  double screen_threshold = 1e-10;
  // Fault injection (PR 3 idiom): each attempt of job j is lost with
  // probability fail_prob, decided by hash(seed, j, attempt); the
  // max_attempts-th attempt is forced through so jobs always finish.
  double fail_prob = 0.0;
  int max_attempts = 4;
  std::uint64_t fault_seed = 17;
  /// Optional registry for serve/* counters and per-tenant latency
  /// histograms (serve/t<k>/{queue,service,latency}_seconds). Must
  /// outlive the server. nullptr disables.
  util::MetricsRegistry* metrics = nullptr;
};

class ScfServer {
 public:
  enum class Admit { kAccepted, kRejected, kShedNew };

  /// submit()'s receipt: the admission decision, the job id (assigned
  /// in submission order for accepted jobs, -1 otherwise), and a future
  /// that ALWAYS becomes ready — with ok = false and error set for
  /// rejected/shed jobs.
  struct Submission {
    Admit admit = Admit::kRejected;
    std::int64_t job_id = -1;
    std::future<JobResult> result;
  };

  explicit ScfServer(const ServerOptions& options);
  ~ScfServer();  ///< stop()s if still running

  ScfServer(const ScfServer&) = delete;
  ScfServer& operator=(const ScfServer&) = delete;

  /// Admits the request (or applies the overload policy). Thread-safe.
  Submission submit(const JobRequest& request);

  /// Spawns the worker pool. Idempotent.
  void start();
  /// Blocks until the queue is empty and no job is in flight. The
  /// server keeps accepting work; call from a non-worker thread.
  void drain();
  /// Drains, then joins the pool. Idempotent. Jobs submitted after
  /// stop() are rejected.
  void stop();

  const FockCache& cache() const { return *cache_; }
  FockCache& cache() { return *cache_; }
  const ServerOptions& options() const { return options_; }

  /// Lifetime counters (exact once drain()/stop() returned).
  struct Counts {
    std::int64_t submitted = 0;
    std::int64_t accepted = 0;
    std::int64_t rejected = 0;
    std::int64_t shed = 0;       ///< queued victims + shed new arrivals
    std::int64_t completed = 0;
    std::int64_t failed = 0;     ///< completed with ok = false
    std::int64_t retries = 0;    ///< fault-lost attempts replayed
  };
  Counts counts() const;

  /// Queued (not yet claimed) jobs right now.
  std::size_t queued() const;

 private:
  struct Pending {
    JobRequest request;
    std::int64_t job_id = -1;
    std::promise<JobResult> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };
  /// Dispatch key: (-priority, seq) so map order = execution order and
  /// rbegin() = shed victim (lowest priority, youngest).
  using QueueKey = std::pair<int, std::int64_t>;

  void worker_loop(int thread_id);
  JobResult execute(Pending& job);
  void observe(const JobRequest& request, const JobResult& result);

  ServerOptions options_;
  std::unique_ptr<FockCache> cache_;
  std::unique_ptr<exec::ThreadPool> pool_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers: queue or stop
  std::condition_variable idle_cv_;   ///< drain(): queue empty + idle
  std::map<QueueKey, std::unique_ptr<Pending>> queue_;
  std::int64_t next_job_id_ = 0;
  std::int64_t next_seq_ = 0;
  int active_jobs_ = 0;
  bool started_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  Counts counts_;
  std::thread dispatcher_;
};

}  // namespace emc::serve
