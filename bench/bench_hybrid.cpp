// EXP-13 driver: the measured shared-memory twin of the simulated
// execution-model rankings. The REAL Fock kernel runs hierarchically —
// PGAS ranks × pool threads — under every (inter model × intra-rank
// policy) combination, and the driver measures wall-clock speedup
// curves per thread count plus peak RSS, while GATING on the hybrid
// build's correctness contract:
//
//   1. Bitwise determinism. For every deterministic task→rank
//      assignment (the static inter model, or ANY inter model at one
//      rank) the G matrix must be bitwise identical across thread
//      counts, intra policies, and scheduling interleavings — the
//      fixed-slot partition + fixed-shape tree reduction promise
//      (DESIGN.md "Hybrid execution").
//   2. Task conservation. Execution stats stay in task units: every
//      cell must account for exactly the full task list.
//   3. Fault determinism. With task faults injected, the build stays
//      bitwise identical to the clean one and the re-execution count
//      replays exactly across thread counts.
//   4. Closeness. Cells with nondeterministic cross-rank accumulate
//      ordering (counter/ws at >2 ranks... gated within 1e-10).
//
// Wall-clock, speedup, and RSS fields are HOSTWARE: bench_compare
// treats them as advisory (this host's core count is weather, not
// signal); the determinism booleans and integer counters above gate
// exactly against bench/baselines/BENCH_hybrid.json.
//
// Flags:
//   --smoke            tiny workload (water2, ranks {1,2}, threads
//                      {1,2,8}) for CI
//   --molecule=NAME    workload molecule (default water27)
//   --ranks=R          run only this rank count (default: 1 and 2)
//   --max-threads=T    cap the thread sweep (default 8)
//   --seed=S           steal victim-selection seed (default 7)
//   --report=PATH      JSON report output (default BENCH_hybrid.json)
//
// Exit status: nonzero on any determinism/conservation violation or an
// invalid report file.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/distributed_fock.hpp"
#include "core/task_model.hpp"
#include "linalg/matrix.hpp"
#include "pgas/runtime.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;
using core::DistributedFockBuilder;
using core::DistributedFockOptions;
using core::ExecModel;
using core::IntraPolicy;

struct Options {
  bool smoke = false;
  std::string molecule = "water27";
  int only_ranks = 0;  ///< 0 = sweep {1, 2}
  int max_threads = 8;
  std::uint64_t seed = 7;
  std::string report_path = "BENCH_hybrid.json";
};

struct Combo {
  ExecModel model;
  IntraPolicy intra;
  const char* model_name;
  const char* intra_name;
};

constexpr Combo kCombos[] = {
    {ExecModel::kStatic, IntraPolicy::kStatic, "static", "static"},
    {ExecModel::kStatic, IntraPolicy::kCounter, "static", "counter"},
    {ExecModel::kStatic, IntraPolicy::kWorkStealing, "static", "ws"},
    {ExecModel::kCounter, IntraPolicy::kCounter, "counter", "counter"},
    {ExecModel::kWorkStealing, IntraPolicy::kWorkStealing, "ws", "ws"},
};

struct Cell {
  std::string name;  ///< identity key: "<model>+<intra>/r<R>/t<T>"
  std::string model;
  std::string intra;
  int ranks = 1;
  int threads = 1;
  std::int64_t tasks = 0;
  bool gated_bitwise = false;     ///< deterministic config: memcmp gate
  bool bitwise_identical = false; ///< vs the rank-count reference
  bool close_to_reference = false;
  double wall_seconds = 0.0;
  double speedup = 1.0;  ///< vs threads=1 of the same (combo, ranks)
  std::int64_t peak_rss_bytes = 0;
};

bool bitwise_equal(const linalg::Matrix& a, const linalg::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

linalg::Matrix make_density(std::size_t n) {
  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = (i == j ? 1.0 : 0.03);
    }
  }
  return density;
}

DistributedFockOptions base_options(const Options& opt) {
  DistributedFockOptions o;
  o.static_balancer = "lpt";
  o.steal.seed = opt.seed;
  o.intra_chunk = 2;
  return o;
}

int run(const Options& opt) {
  core::TaskModelOptions model_opts;
  const core::TaskModel model =
      core::build_task_model(opt.molecule, model_opts);
  emc::bench::print_header(
      "bench_hybrid (EXP-13)",
      "ranks x threads Fock build: bitwise-deterministic tree reduction, "
      "measured speedup per (model x intra policy x threads)",
      model, opt.seed);

  const auto n = static_cast<std::size_t>(model.basis.function_count());
  const auto n_tasks = static_cast<std::int64_t>(model.task_count());
  const linalg::Matrix density = make_density(n);

  std::vector<int> rank_counts;
  if (opt.only_ranks > 0) {
    rank_counts.push_back(opt.only_ranks);
  } else {
    rank_counts = {1, 2};
  }
  std::vector<int> thread_counts;
  for (const int t : {1, 2, 4, 8}) {
    if (opt.smoke && t == 4) continue;  // {1,2,8}: the determinism set
    if (t <= opt.max_threads) thread_counts.push_back(t);
  }

  // Rank-count references: static/lpt, threads=1 — the classic serial
  // per-rank loop every deterministic cell must reproduce bitwise.
  std::vector<linalg::Matrix> reference(
      static_cast<std::size_t>(*std::max_element(rank_counts.begin(),
                                                 rank_counts.end())) +
      1);
  std::int64_t slot_count = 0;
  for (const int ranks : rank_counts) {
    pgas::Runtime runtime(ranks);
    DistributedFockOptions o = base_options(opt);
    o.model = ExecModel::kStatic;
    o.threads = 1;
    DistributedFockBuilder builder(model.basis, runtime, o);
    reference[static_cast<std::size_t>(ranks)] = builder.build_g(density);
    slot_count = builder.slot_count();
  }

  bool all_bitwise = true;
  bool all_close = true;
  bool tasks_conserved = true;
  std::vector<Cell> cells;

  for (const int ranks : rank_counts) {
    const linalg::Matrix& ref = reference[static_cast<std::size_t>(ranks)];
    for (const Combo& combo : kCombos) {
      double wall_t1 = 0.0;
      for (const int threads : thread_counts) {
        pgas::Runtime runtime(ranks);
        DistributedFockOptions o = base_options(opt);
        o.model = combo.model;
        o.intra_policy = combo.intra;
        o.threads = threads;
        DistributedFockBuilder builder(model.basis, runtime, o);
        emc::Timer timer;
        const linalg::Matrix g = builder.build_g(density);
        Cell cell;
        cell.wall_seconds = timer.seconds();
        cell.name = std::string(combo.model_name) + "+" +
                    combo.intra_name + "/r" + std::to_string(ranks) +
                    "/t" + std::to_string(threads);
        cell.model = combo.model_name;
        cell.intra = combo.intra_name;
        cell.ranks = ranks;
        cell.threads = threads;
        cell.tasks = builder.last_stats().total_tasks();
        // Static inter keeps the task->rank map fixed; 1 rank removes
        // cross-rank accumulate ordering entirely. Either way the
        // result must be BITWISE the reference. (2-rank accumulate
        // commutes bitwise, so static r2 is exact too.)
        cell.gated_bitwise =
            combo.model == ExecModel::kStatic || ranks == 1;
        cell.bitwise_identical = bitwise_equal(ref, g);
        cell.close_to_reference = ref.almost_equal(g, 1e-10);
        if (threads == 1) wall_t1 = cell.wall_seconds;
        cell.speedup = cell.wall_seconds > 0.0 && wall_t1 > 0.0
                           ? wall_t1 / cell.wall_seconds
                           : 1.0;
        cell.peak_rss_bytes = emc::bench::peak_rss_bytes();

        if (cell.tasks != n_tasks) {
          std::cerr << "FAIL: " << cell.name << " accounted "
                    << cell.tasks << " tasks, expected " << n_tasks
                    << "\n";
          tasks_conserved = false;
        }
        if (cell.gated_bitwise && !cell.bitwise_identical) {
          std::cerr << "FAIL: " << cell.name
                    << " is not bitwise identical to the reference\n";
          all_bitwise = false;
        }
        if (!cell.close_to_reference) {
          std::cerr << "FAIL: " << cell.name
                    << " deviates from the reference beyond 1e-10\n";
          all_close = false;
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  // Fault determinism: same static 2-rank (or --ranks) config under
  // task faults, at the extreme thread counts. Bitwise vs CLEAN
  // reference, and the re-execution count replays exactly.
  const int fault_ranks = rank_counts.back();
  bool fault_bitwise = true;
  bool fault_replay = true;
  std::int64_t fault_reexecs = -1;
  for (const int threads : {thread_counts.front(), thread_counts.back()}) {
    pgas::Runtime runtime(fault_ranks);
    DistributedFockOptions o = base_options(opt);
    o.model = ExecModel::kStatic;
    o.intra_policy = IntraPolicy::kWorkStealing;
    o.threads = threads;
    o.task_faults.fail_prob = 0.3;
    o.task_faults.reexec_delay_ns = 100;
    DistributedFockBuilder builder(model.basis, runtime, o);
    const linalg::Matrix g = builder.build_g(density);
    if (!bitwise_equal(reference[static_cast<std::size_t>(fault_ranks)],
                       g)) {
      std::cerr << "FAIL: faulted build (t=" << threads
                << ") is not bitwise identical to the clean one\n";
      fault_bitwise = false;
    }
    if (fault_reexecs < 0) {
      fault_reexecs = builder.last_task_reexecutions();
    } else if (builder.last_task_reexecutions() != fault_reexecs) {
      std::cerr << "FAIL: re-execution count changed under threading ("
                << fault_reexecs << " -> "
                << builder.last_task_reexecutions() << ")\n";
      fault_replay = false;
    }
  }
  if (fault_reexecs <= 0) {
    std::cerr << "FAIL: fault injection re-executed nothing\n";
    fault_replay = false;
  }

  // Human-readable speedup table.
  std::cout << "\nwall-clock per cell (speedup vs t1 of the same row; "
               "hostware — this host has "
            << std::thread::hardware_concurrency() << " core(s)):\n";
  for (const int ranks : rank_counts) {
    for (const Combo& combo : kCombos) {
      std::cout << "  r" << ranks << " " << combo.model_name << "+"
                << combo.intra_name << ":";
      for (const Cell& cell : cells) {
        if (cell.ranks != ranks || cell.model != combo.model_name ||
            cell.intra != combo.intra_name) {
          continue;
        }
        std::printf(" t%d=%.3fs(x%.2f)", cell.threads, cell.wall_seconds,
                    cell.speedup);
      }
      std::cout << "\n";
    }
  }
  std::cout << "fault check (r" << fault_ranks << "): "
            << (fault_bitwise ? "bitwise" : "MISMATCH") << ", "
            << fault_reexecs << " re-executions, replay "
            << (fault_replay ? "exact" : "BROKEN") << "\n";

  const bool passed =
      all_bitwise && all_close && tasks_conserved && fault_bitwise &&
      fault_replay;

  {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
      return 1;
    }
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_hybrid",
                               opt.smoke ? "smoke" : "full", opt.seed);
    json.field("bench", "bench_hybrid");
    json.field("experiment", "EXP-13");
    json.field("molecule", opt.molecule);
    json.field("basis_functions", static_cast<std::int64_t>(n));
    json.field("tasks", n_tasks);
    json.field("reduction_slots", slot_count);
    json.begin_array("cells");
    for (const Cell& cell : cells) {
      json.begin_object();
      json.field("name", cell.name);
      json.field("model", cell.model);
      json.field("intra", cell.intra);
      json.field("ranks", cell.ranks);
      json.field("threads", cell.threads);
      json.field("tasks", cell.tasks);
      json.field("gated_bitwise", cell.gated_bitwise);
      // Only gated cells promise bitwise identity; for racy task->rank
      // maps (dynamic inter models at >1 rank) the raw flag is
      // interleaving-dependent — emitting it would make the exact-gate
      // baseline compare flaky.
      if (cell.gated_bitwise) {
        json.field("bitwise_identical", cell.bitwise_identical);
      }
      json.field("close_to_reference", cell.close_to_reference);
      json.field("wall_seconds", cell.wall_seconds);
      json.field("speedup", cell.speedup);
      json.field("peak_rss_bytes", cell.peak_rss_bytes);
      json.end_object();
    }
    json.end_array();
    json.begin_object("fault_check");
    json.field("ranks", fault_ranks);
    json.field("task_reexecutions", fault_reexecs);
    json.field("bitwise_identical_to_clean", fault_bitwise);
    json.field("reexecs_deterministic", fault_replay);
    json.end_object();
    json.begin_object("checks");
    json.field("all_gated_cells_bitwise", all_bitwise);
    json.field("all_cells_close", all_close);
    json.field("tasks_conserved", tasks_conserved);
    json.field("passed", passed);
    json.end_object();
    emc::bench::write_run_footer(json);
    json.end_object();
  }

  // Validate the artifact with the strict parser and manifest check.
  {
    std::ifstream in(opt.report_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const util::JsonValue doc = util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: " << opt.report_path << " is invalid JSON: "
                << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << opt.report_path << " (validated)\n";

  if (!passed) return 1;
  std::cout << "PASS\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
      opt.molecule = "water2";
    } else if (arg.rfind("--molecule=", 0) == 0) {
      opt.molecule = arg.substr(11);
    } else if (arg.rfind("--ranks=", 0) == 0) {
      opt.only_ranks = std::stoi(arg.substr(8));
    } else if (arg.rfind("--max-threads=", 0) == 0) {
      opt.max_threads = std::stoi(arg.substr(14));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--report=", 0) == 0) {
      opt.report_path = arg.substr(9);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
