#include "graph/csr_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::graph {

CsrGraph::Builder::Builder(VertexId n_vertices)
    : n_(n_vertices), adj_(static_cast<std::size_t>(n_vertices)),
      vertex_weights_(static_cast<std::size_t>(n_vertices), 1.0) {
  if (n_vertices < 0) {
    throw std::invalid_argument("CsrGraph: negative vertex count");
  }
}

void CsrGraph::Builder::add_edge(VertexId u, VertexId v, double weight) {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("CsrGraph: edge endpoint out of range");
  }
  if (u == v) throw std::invalid_argument("CsrGraph: self-loop rejected");
  adj_[static_cast<std::size_t>(u)].emplace_back(v, weight);
  adj_[static_cast<std::size_t>(v)].emplace_back(u, weight);
}

void CsrGraph::Builder::set_vertex_weight(VertexId v, double w) {
  vertex_weights_.at(static_cast<std::size_t>(v)) = w;
}

CsrGraph CsrGraph::Builder::build() {
  CsrGraph g;
  g.vertex_weights_ = std::move(vertex_weights_);
  g.offsets_.resize(static_cast<std::size_t>(n_) + 1, 0);

  // Sort each adjacency list and merge duplicate targets (sum weights).
  for (auto& list : adj_) {
    std::sort(list.begin(), list.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size();) {
      VertexId tgt = list[i].first;
      double w = 0.0;
      while (i < list.size() && list[i].first == tgt) {
        w += list[i].second;
        ++i;
      }
      list[out++] = {tgt, w};
    }
    list.resize(out);
  }

  for (std::size_t v = 0; v < adj_.size(); ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + adj_[v].size();
  }
  g.targets_.reserve(g.offsets_.back());
  g.weights_.reserve(g.offsets_.back());
  for (const auto& list : adj_) {
    for (const auto& [tgt, w] : list) {
      g.targets_.push_back(tgt);
      g.weights_.push_back(w);
    }
  }
  return g;
}

double CsrGraph::total_vertex_weight() const {
  double s = 0.0;
  for (double w : vertex_weights_) s += w;
  return s;
}

}  // namespace emc::graph
