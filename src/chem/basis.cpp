#include "chem/basis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "chem/constants.hpp"
#include "chem/element.hpp"

namespace emc::chem {

namespace {

double double_factorial(int n) {
  double r = 1.0;
  for (int k = n; k > 1; k -= 2) r *= static_cast<double>(k);
  return r;
}

/// One shell's raw parameters as tabulated (coefficients apply to
/// normalized primitives).
struct RawShell {
  int l;
  std::vector<double> exponents;
  std::vector<double> coefficients;
};

/// STO-3G (EMSL tabulation). The s/p contraction coefficients are shared
/// across second-row elements; only exponents differ.
std::vector<RawShell> sto3g_shells(int z) {
  const std::vector<double> s1_coeff{0.15432897, 0.53532814, 0.44463454};
  const std::vector<double> s2_coeff{-0.09996723, 0.39951283, 0.70011547};
  const std::vector<double> p2_coeff{0.15591627, 0.60768372, 0.39195739};

  switch (z) {
    case 1:  // H
      return {{0, {3.42525091, 0.62391373, 0.16885540}, s1_coeff}};
    case 6: {  // C
      const std::vector<double> e1{71.6168370, 13.0450960, 3.5305122};
      const std::vector<double> e2{2.9412494, 0.6834831, 0.2222899};
      return {{0, e1, s1_coeff}, {0, e2, s2_coeff}, {1, e2, p2_coeff}};
    }
    case 7: {  // N
      const std::vector<double> e1{99.1061690, 18.0523120, 4.8856602};
      const std::vector<double> e2{3.7804559, 0.8784966, 0.2857144};
      return {{0, e1, s1_coeff}, {0, e2, s2_coeff}, {1, e2, p2_coeff}};
    }
    case 8: {  // O
      const std::vector<double> e1{130.7093200, 23.8088610, 6.4436083};
      const std::vector<double> e2{5.0331513, 1.1695961, 0.3803890};
      return {{0, e1, s1_coeff}, {0, e2, s2_coeff}, {1, e2, p2_coeff}};
    }
    default:
      throw std::invalid_argument(
          std::string("sto-3g: no parameters for element ") +
          element_symbol(z));
  }
}

/// 6-31G (EMSL tabulation) for H, C, O.
std::vector<RawShell> g631_shells(int z) {
  switch (z) {
    case 1:  // H
      return {{0,
               {18.7311370, 2.8253937, 0.6401217},
               {0.03349460, 0.23472695, 0.81375733}},
              {0, {0.1612778}, {1.0}}};
    case 6: {  // C
      return {{0,
               {3047.5249, 457.36951, 103.94869, 29.210155, 9.2866630,
                3.1639270},
               {0.0018347, 0.0140373, 0.0688426, 0.2321844, 0.4679413,
                0.3623120}},
              {0,
               {7.8682724, 1.8812885, 0.5442493},
               {-0.1193324, -0.1608542, 1.1434564}},
              {1,
               {7.8682724, 1.8812885, 0.5442493},
               {0.0689991, 0.3164240, 0.7443083}},
              {0, {0.1687144}, {1.0}},
              {1, {0.1687144}, {1.0}}};
    }
    case 8: {  // O
      return {{0,
               {5484.6717, 825.23495, 188.04696, 52.964500, 16.897570,
                5.7996353},
               {0.0018311, 0.0139501, 0.0684451, 0.2327143, 0.4701930,
                0.3585209}},
              {0,
               {15.539616, 3.5999336, 1.0137618},
               {-0.1107775, -0.1480263, 1.1307670}},
              {1,
               {15.539616, 3.5999336, 1.0137618},
               {0.0708743, 0.3397528, 0.7271586}},
              {0, {0.2700058}, {1.0}},
              {1, {0.2700058}, {1.0}}};
    }
    default:
      throw std::invalid_argument(
          std::string("6-31g: no parameters for element ") +
          element_symbol(z));
  }
}

/// 6-31G* = 6-31G plus one uncontracted cartesian d shell on heavy
/// atoms (standard polarization exponents: C 0.8, N 0.8, O 0.8).
std::vector<RawShell> g631star_shells(int z) {
  std::vector<RawShell> shells = g631_shells(z);
  if (z > 2) {
    shells.push_back(RawShell{2, {0.8}, {1.0}});
  }
  return shells;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

std::vector<CartesianComponent> cartesian_components(int l) {
  std::vector<CartesianComponent> out;
  out.reserve(static_cast<std::size_t>(cartesian_count(l)));
  for (int lx = l; lx >= 0; --lx) {
    for (int ly = l - lx; ly >= 0; --ly) {
      out.push_back(CartesianComponent{lx, ly, l - lx - ly});
    }
  }
  return out;
}

double primitive_norm(double a, int lx, int ly, int lz) {
  const int l = lx + ly + lz;
  const double pref = std::pow(2.0 * a / kPi, 0.75);
  const double num = std::pow(4.0 * a, 0.5 * static_cast<double>(l));
  const double den = std::sqrt(double_factorial(2 * lx - 1) *
                               double_factorial(2 * ly - 1) *
                               double_factorial(2 * lz - 1));
  return pref * num / den;
}

double Shell::component_norm(int lx, int ly, int lz) const {
  if (lx + ly + lz != l) {
    throw std::invalid_argument("component_norm: component does not match l");
  }
  // Self-overlap of the contracted, component-unnormalized function
  // (integrals are computed over raw cartesian primitives using the
  // effective coefficients, so this constant makes <chi|chi> = 1):
  //   S = sum_ab c_a c_b * (pi/p)^{3/2} *
  //       prod_dim (2n-1)!! / (2p)^n,   p = a+b.
  const double df = double_factorial(2 * lx - 1) *
                    double_factorial(2 * ly - 1) *
                    double_factorial(2 * lz - 1);
  double s = 0.0;
  for (std::size_t a = 0; a < exponents.size(); ++a) {
    for (std::size_t b = 0; b < exponents.size(); ++b) {
      const double p = exponents[a] + exponents[b];
      const double overlap = std::pow(kPi / p, 1.5) * df /
                             std::pow(2.0 * p, static_cast<double>(l));
      s += coefficients[a] * coefficients[b] * overlap;
    }
  }
  return 1.0 / std::sqrt(s);
}

BasisSet BasisSet::build(const Molecule& molecule, const std::string& name) {
  const std::string key = to_lower(name);
  BasisSet bs;
  bs.name_ = key;

  for (std::size_t ai = 0; ai < molecule.atoms().size(); ++ai) {
    const Atom& atom = molecule.atoms()[ai];
    std::vector<RawShell> raw;
    if (key == "sto-3g" || key == "sto3g") {
      raw = sto3g_shells(atom.z);
    } else if (key == "6-31g" || key == "631g") {
      raw = g631_shells(atom.z);
    } else if (key == "6-31g*" || key == "631g*" || key == "6-31gs") {
      raw = g631star_shells(atom.z);
    } else {
      throw std::invalid_argument("BasisSet: unknown basis '" + name + "'");
    }

    for (const RawShell& rs : raw) {
      Shell shell;
      shell.center = atom.xyz;
      shell.l = rs.l;
      shell.atom_index = static_cast<int>(ai);
      shell.exponents = rs.exponents;
      shell.coefficients.resize(rs.coefficients.size());
      // Fold the (l,0,0)-component primitive norm into the coefficients.
      for (std::size_t k = 0; k < rs.exponents.size(); ++k) {
        shell.coefficients[k] =
            rs.coefficients[k] * primitive_norm(rs.exponents[k], rs.l, 0, 0);
      }
      shell.first_function = bs.n_functions_;
      bs.n_functions_ += shell.function_count();
      bs.shells_.push_back(std::move(shell));
    }
  }
  return bs;
}

}  // namespace emc::chem
