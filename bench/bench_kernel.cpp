// Kernel microbenchmarks plus the kernel's recorded perf artifacts: the
// raw chemistry substrate that generates the task costs — ERI quartets,
// Schwarz screening, and Fock-build sweeps. These calibrate the
// simulator's cost scale and guard the hot path against regressions.
//
// Modes:
//   (default)        google-benchmark microbenchmarks
//   --smoke          fast seed-vs-cached kernel comparison per shell
//                    class + a Fock-build sweep + accuracy cross-checks;
//                    writes BENCH_kernel.json and exits nonzero on an
//                    accuracy failure or a speedup below --min-speedup
//   --calibrate      re-fit the analytic task-cost model constants
//                    (FockBuilder::estimate_task_cost) by least squares
//                    against wall-time measurements of the current kernel
//   --json=PATH      smoke JSON output path (default BENCH_kernel.json)
//   --min-speedup=X  smoke regression gate on the Fock sweep (default 1.2
//                    — deliberately below the recorded ~3x so scheduler
//                    noise cannot fail CI, while a real regression does)
//   --seed=N         seed for the randomized accuracy quartets

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chem/basis.hpp"
#include "chem/boys.hpp"
#include "chem/eri.hpp"
#include "chem/fock.hpp"
#include "chem/integrals.hpp"
#include "chem/molecule.hpp"
#include "core/calibration.hpp"
#include "core/task_model.hpp"
#include "linalg/lstsq.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc::chem;

// ---------------------------------------------------------------------------
// google-benchmark microbenches (default mode)
// ---------------------------------------------------------------------------

const Shell& water_shell(const BasisSet& basis, int index) {
  return basis.shells()[static_cast<std::size_t>(index)];
}

void BM_EriQuartetSSSSDirect(benchmark::State& state) {
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const Shell& s0 = water_shell(basis, 0);  // O 1s (deep contraction)
  for (auto _ : state) {
    benchmark::DoNotOptimize(eri_shell_quartet_direct(s0, s0, s0, s0));
  }
}
BENCHMARK(BM_EriQuartetSSSSDirect);

void BM_EriQuartetSSSSCached(benchmark::State& state) {
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const ShellPairData pair =
      make_shell_pair(water_shell(basis, 0), water_shell(basis, 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eri_shell_quartet(pair, pair));
  }
}
BENCHMARK(BM_EriQuartetSSSSCached);

void BM_EriQuartetPPPPDirect(benchmark::State& state) {
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const Shell& p = water_shell(basis, 2);  // O 2p
  for (auto _ : state) {
    benchmark::DoNotOptimize(eri_shell_quartet_direct(p, p, p, p));
  }
}
BENCHMARK(BM_EriQuartetPPPPDirect);

void BM_EriQuartetPPPPCached(benchmark::State& state) {
  const BasisSet basis = BasisSet::build(make_water(), "sto-3g");
  const ShellPairData pair =
      make_shell_pair(water_shell(basis, 2), water_shell(basis, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eri_shell_quartet(pair, pair));
  }
}
BENCHMARK(BM_EriQuartetPPPPCached);

void BM_OverlapMatrix(benchmark::State& state) {
  const Molecule mol = make_water_cluster(static_cast<int>(state.range(0)));
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlap_matrix(basis));
  }
  state.counters["functions"] = basis.function_count();
}
BENCHMARK(BM_OverlapMatrix)->Arg(1)->Arg(4)->Arg(8);

void BM_SchwarzMatrix(benchmark::State& state) {
  const Molecule mol = make_water_cluster(static_cast<int>(state.range(0)));
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  for (auto _ : state) {
    benchmark::DoNotOptimize(schwarz_matrix(basis));
  }
  state.counters["shells"] = static_cast<double>(basis.shell_count());
}
BENCHMARK(BM_SchwarzMatrix)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FockBuild(benchmark::State& state) {
  const Molecule mol = make_water_cluster(static_cast<int>(state.range(0)));
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());
  emc::linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) density(i, i) = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build_g(density));
  }
}
BENCHMARK(BM_FockBuild)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --smoke: seed-vs-cached comparison, accuracy gate, BENCH_kernel.json
// ---------------------------------------------------------------------------

struct ClassResult {
  std::string name;
  double direct_ns = 0.0;
  double cached_ns = 0.0;
  double max_diff = 0.0;
  double speedup() const {
    return cached_ns > 0.0 ? direct_ns / cached_ns : 0.0;
  }
};

/// Times fn() `iters` times per rep and returns the best per-call ns.
template <typename Fn>
double best_ns(int reps, int iters, Fn&& fn) {
  emc::Timer timer;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    timer.reset();
    for (int i = 0; i < iters; ++i) fn();
    const double t = timer.seconds() * 1e9 / static_cast<double>(iters);
    if (r == 0 || t < best) best = t;
  }
  return best;
}

double block_max_diff(const EriBlock& x, const EriBlock& y) {
  double m = 0.0;
  for (int a = 0; a < x.na(); ++a) {
    for (int b = 0; b < x.nb(); ++b) {
      for (int c = 0; c < x.nc(); ++c) {
        for (int d = 0; d < x.nd(); ++d) {
          m = std::max(m, std::abs(x(a, b, c, d) - y(a, b, c, d)));
        }
      }
    }
  }
  return m;
}

ClassResult time_quartet_class(const std::string& name, const Shell& a,
                               const Shell& b, const Shell& c,
                               const Shell& d, int iters) {
  ClassResult res;
  res.name = name;
  res.max_diff = block_max_diff(eri_shell_quartet_direct(a, b, c, d),
                                eri_shell_quartet(a, b, c, d));
  res.direct_ns = best_ns(3, iters, [&] {
    benchmark::DoNotOptimize(eri_shell_quartet_direct(a, b, c, d));
  });
  const ShellPairData bra = make_shell_pair(a, b);
  const ShellPairData ket = make_shell_pair(c, d);
  res.cached_ns = best_ns(3, iters, [&] {
    benchmark::DoNotOptimize(eri_shell_quartet(bra, ket));
  });
  return res;
}

/// Sweeps every screened quartet of the Fock-build task decomposition,
/// once through the seed kernel and once through the pair cache. This is
/// the workload whose speedup the cost-model recalibration records.
struct FockSweepResult {
  double direct_ms = 0.0;
  double cached_ms = 0.0;
  std::uint64_t quartets = 0;
  double speedup() const {
    return cached_ms > 0.0 ? direct_ms / cached_ms : 0.0;
  }
};

FockSweepResult fock_sweep(const FockBuilder& builder, int reps) {
  const auto& shells = builder.basis().shells();
  const auto& pairs = builder.shell_pairs();
  const auto& schwarz = builder.schwarz();
  const double threshold = builder.screen_threshold();
  const auto tasks = builder.make_tasks();

  auto for_each_quartet = [&](auto&& fn) {
    for (const ShellPairTask& task : tasks) {
      const double q_bra = schwarz(static_cast<std::size_t>(task.si),
                                   static_cast<std::size_t>(task.sj));
      const int n = static_cast<int>(shells.size());
      for (int k = 0; k < n; ++k) {
        for (int l = 0; l <= k; ++l) {
          if (pair_rank(k, l) > task.rank) break;
          if (threshold > 0.0 &&
              q_bra * schwarz(static_cast<std::size_t>(k),
                              static_cast<std::size_t>(l)) < threshold) {
            continue;
          }
          fn(task, k, l);
        }
      }
    }
  };

  FockSweepResult res;
  for_each_quartet([&](const ShellPairTask&, int, int) { ++res.quartets; });

  emc::Timer timer;
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    timer.reset();
    for_each_quartet([&](const ShellPairTask& task, int k, int l) {
      const EriBlock block = eri_shell_quartet_direct(
          shells[static_cast<std::size_t>(task.si)],
          shells[static_cast<std::size_t>(task.sj)],
          shells[static_cast<std::size_t>(k)],
          shells[static_cast<std::size_t>(l)]);
      sink += block.max_abs();
    });
    const double t = timer.seconds() * 1e3;
    if (r == 0 || t < res.direct_ms) res.direct_ms = t;
  }
  for (int r = 0; r < reps; ++r) {
    timer.reset();
    for_each_quartet([&](const ShellPairTask& task, int k, int l) {
      const EriBlock block =
          eri_shell_quartet(pairs.pair(task.si, task.sj), pairs.pair(k, l));
      sink += block.max_abs();
    });
    const double t = timer.seconds() * 1e3;
    if (r == 0 || t < res.cached_ms) res.cached_ms = t;
  }
  benchmark::DoNotOptimize(sink);
  return res;
}

/// Randomized cached-vs-direct agreement check (the same property the
/// gtest suite verifies, kept here so the perf gate also gates accuracy).
double random_quartet_max_diff(std::uint64_t seed, int n_quartets) {
  emc::Rng rng(seed);
  auto random_shell = [&rng]() {
    Shell s;
    s.l = static_cast<int>(rng.range(0, 2));
    s.center = {rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0),
                rng.uniform(-2.0, 2.0)};
    const int nprim = static_cast<int>(rng.range(1, 3));
    for (int i = 0; i < nprim; ++i) {
      const double a = std::exp(rng.uniform(std::log(0.1), std::log(50.0)));
      const double c = rng.uniform(0.2, 1.0) * (rng.uniform() < 0.5 ? -1 : 1);
      s.exponents.push_back(a);
      s.coefficients.push_back(c * primitive_norm(a, s.l, 0, 0));
    }
    return s;
  };
  double m = 0.0;
  for (int i = 0; i < n_quartets; ++i) {
    const Shell a = random_shell(), b = random_shell(), c = random_shell(),
                d = random_shell();
    m = std::max(m, block_max_diff(eri_shell_quartet_direct(a, b, c, d),
                                   eri_shell_quartet(a, b, c, d)));
  }
  return m;
}

int run_smoke(const std::string& json_path, double min_speedup,
              std::uint64_t seed) {
  std::cout << "bench_kernel --smoke (seed " << seed << ")\n"
            << "direct = seed kernel (per-quartet Hermite tables, series "
               "Boys); cached = shell-pair cache + Boys table\n\n";

  const BasisSet sto3g = BasisSet::build(make_water(), "sto-3g");
  const BasisSet g631s = BasisSet::build(make_water(), "6-31g*");
  const Shell& o1s = sto3g.shells()[0];
  const Shell& o2p = sto3g.shells()[2];
  const Shell& h1s = sto3g.shells()[3];
  // 6-31g* water: O = 1s, 2s, 2p, 3s, 3p, 3d.
  const Shell& od = g631s.shells()[5];

  std::vector<ClassResult> classes;
  classes.push_back(time_quartet_class("(ss|ss) deep", o1s, o1s, o1s, o1s,
                                       200));
  classes.push_back(time_quartet_class("(sp|sp)", h1s, o2p, h1s, o2p, 100));
  classes.push_back(time_quartet_class("(pp|pp)", o2p, o2p, o2p, o2p, 20));
  classes.push_back(time_quartet_class("(dd|dd)", od, od, od, od, 10));

  std::printf("%-14s %12s %12s %9s %10s\n", "class", "direct_ns",
              "cached_ns", "speedup", "max_diff");
  double max_diff = 0.0;
  for (const ClassResult& c : classes) {
    std::printf("%-14s %12.0f %12.0f %8.2fx %10.2e\n", c.name.c_str(),
                c.direct_ns, c.cached_ns, c.speedup(), c.max_diff);
    max_diff = std::max(max_diff, c.max_diff);
  }

  // The acceptance workload: water-cluster Fock build in 6-31G.
  const BasisSet cluster =
      BasisSet::build(make_water_cluster(2), "6-31g");
  const FockBuilder builder(cluster);
  const FockSweepResult sweep = fock_sweep(builder, 2);
  std::printf("\nFock sweep water2/6-31G (%llu quartets): "
              "direct %.1f ms, cached %.1f ms, speedup %.2fx\n",
              static_cast<unsigned long long>(sweep.quartets),
              sweep.direct_ms, sweep.cached_ms, sweep.speedup());

  const double rand_diff = random_quartet_max_diff(seed, 24);
  max_diff = std::max(max_diff, rand_diff);
  std::printf("randomized s/p/d quartet agreement: max |diff| = %.2e\n",
              rand_diff);

  const bool accuracy_ok = max_diff < 1e-10;
  const bool speed_ok = sweep.speedup() >= min_speedup;
  const bool passed = accuracy_ok && speed_ok;

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << json_path << "\n";
    return 1;
  }
  {
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_kernel", "smoke", seed);
    json.field("bench", "bench_kernel");
    json.field("mode", "smoke");
    json.field("seed", seed);
    json.begin_array("quartet_classes");
    for (const ClassResult& c : classes) {
      json.begin_object();
      json.field("class", c.name);
      json.field("direct_ns", c.direct_ns);
      json.field("cached_ns", c.cached_ns);
      json.field("speedup", c.speedup());
      json.field("max_diff", c.max_diff);
      json.end_object();
    }
    json.end_array();
    json.begin_object("fock_sweep");
    json.field("workload", "water2/6-31g");
    json.field("quartets", sweep.quartets);
    json.field("direct_ms", sweep.direct_ms);
    json.field("cached_ms", sweep.cached_ms);
    json.field("speedup", sweep.speedup());
    json.end_object();
    json.begin_object("checks");
    json.field("max_abs_diff", max_diff);
    json.field("min_speedup_gate", min_speedup);
    json.field("accuracy_ok", accuracy_ok);
    json.field("passed", passed);
    json.end_object();
    emc::bench::write_run_footer(json);
    json.end_object();
  }
  out.close();
  std::cout << "wrote " << json_path << "\n";

  {
    std::ifstream in(json_path);
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      const emc::util::JsonValue doc = emc::util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: report is not valid JSON: " << e.what() << "\n";
      return 1;
    }
  }

  if (!accuracy_ok) {
    std::cerr << "FAIL: cached kernel disagrees with the direct kernel ("
              << max_diff << " > 1e-10)\n";
    return 1;
  }
  if (!speed_ok) {
    std::cerr << "FAIL: Fock-sweep speedup " << sweep.speedup()
              << "x below the regression gate " << min_speedup << "x\n";
    return 1;
  }
  std::cout << "smoke PASSED\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --calibrate: re-fit the analytic cost-model constants
// ---------------------------------------------------------------------------

int run_calibrate() {
  struct Workload {
    std::string molecule, basis;
  };
  const std::vector<Workload> workloads{{"water2", "sto-3g"},
                                        {"water2", "6-31g"},
                                        {"water", "6-31g*"},
                                        {"alkane4", "sto-3g"}};

  std::vector<std::vector<double>> features;  // [1, scan, nq, prim, prim_fn]
  std::vector<double> measured;

  for (const Workload& w : workloads) {
    emc::core::TaskModelOptions opts;
    opts.basis_name = w.basis;
    opts.measure_costs = true;
    const emc::core::TaskModel model =
        emc::core::build_task_model(w.molecule, opts);
    const FockBuilder builder(model.basis, opts.screen_threshold);
    for (std::size_t t = 0; t < model.task_count(); ++t) {
      const TaskCostFeatures f = builder.task_cost_features(model.tasks[t]);
      features.push_back({1.0, f.scan, f.quartets, f.prim_quartets,
                          f.prim_fn});
      measured.push_back(model.costs[t]);
    }
    std::cout << w.molecule << "/" << w.basis << ": " << model.task_count()
              << " tasks measured\n";
  }

  // Non-negative least squares (src/linalg/lstsq.hpp): active-set
  // elimination drops collinear or negative-weight features rather than
  // clamping, so the redistributed weight of a collinear feature (scan
  // vs quartets) never strands in the intercept.
  const std::size_t dim = 5;
  const emc::linalg::LstsqResult fit = emc::linalg::nnls(features, measured);
  const std::vector<double>& c = fit.coefficients;
  for (const std::size_t dropped : fit.dropped) {
    std::cout << "  (dropped non-resolvable feature " << dropped << ")\n";
  }

  const double unit = c[4];  // seconds per prim-quartet-function unit
  std::cout << "\nfitted (seconds): dispatch " << c[0] << ", per-scan "
            << c[1] << ", per-quartet " << c[2] << ", per-prim-quartet "
            << c[3] << ", per-prim-fn " << c[4] << "\n";
  std::cout << "model constants (prim-fn units):\n"
            << "  kTaskDispatch   = " << c[0] / unit << "\n"
            << "  kKetScanPerPair = " << c[1] / unit << "\n"
            << "  kPerQuartet     = " << c[2] / unit << "\n"
            << "  kPerPrimQuartet = " << c[3] / unit << "\n"
            << "  analytic_cost_scale (s/unit) = " << unit << "\n";

  // Quality of the re-fitted model on the pooled sample.
  std::vector<double> estimated;
  estimated.reserve(features.size());
  for (const auto& f : features) {
    double e = 0.0;
    for (std::size_t i = 0; i < dim; ++i) e += c[i] * f[i];
    estimated.push_back(e / unit);
  }
  const auto report = emc::core::calibrate_cost_model(estimated, measured);
  std::cout << "fit quality: pearson " << report.pearson << ", spearman "
            << report.spearman << ", scale " << report.scale << " s/unit ("
            << report.samples << " samples)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_kernel.json";
  double min_speedup = 1.2;
  std::uint64_t seed = 12345;
  bool smoke = false, calibrate = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    }
  }

  if (calibrate) return run_calibrate();
  if (smoke) return run_smoke(json_path, min_speedup, seed);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
