#pragma once

// Matrix factorizations: Cholesky and partially-pivoted LU, plus linear
// solves built on them (used by DIIS extrapolation in the SCF driver).

#include <span>

#include "linalg/matrix.hpp"

namespace emc::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Throws std::runtime_error if A is not positive definite.
Matrix cholesky(const Matrix& a);

/// LU decomposition with partial pivoting, PA = LU packed into one matrix
/// (unit diagonal of L implicit). `perm[i]` is the source row of row i.
struct LuResult {
  Matrix lu;
  std::vector<std::size_t> perm;
  int sign = 1;  ///< permutation parity, for determinants
};

/// Throws std::runtime_error on (numerically) singular input.
LuResult lu_decompose(const Matrix& a, double pivot_tol = 1e-14);

/// Solves A x = b via the precomputed LU factorization.
std::vector<double> lu_solve(const LuResult& f, std::span<const double> b);

/// One-shot dense solve A x = b.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Determinant via LU.
double determinant(const Matrix& a);

}  // namespace emc::linalg
