// Tests for the typed trace layer: every simulator's recorded event
// stream must be internally consistent (per-proc events non-overlapping,
// task durations reproducing the busy-time aggregates, steal provenance
// matching the steal counters), and the analyses / Chrome exporter must
// hold up on real and hand-crafted traces.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "lb/simple.hpp"
#include "sim/simulators.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::sim;
using emc::lb::Assignment;

MachineConfig machine(int procs) {
  MachineConfig c;
  c.n_procs = procs;
  c.procs_per_node = 8;
  c.record_trace = true;
  return c;
}

std::vector<double> skewed_costs(std::size_t n, std::uint64_t seed) {
  emc::Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = std::exp(rng.uniform(-9.0, -4.0));
  return costs;
}

/// The core trace invariants: events stay inside [0, makespan], per-proc
/// events never overlap, and per-proc summed task durations reproduce
/// SimResult::busy to 1e-12.
void check_trace_invariants(const SimResult& r, int procs) {
  std::vector<std::vector<std::pair<double, double>>> by_proc(
      static_cast<std::size_t>(procs));
  std::vector<double> task_time(static_cast<std::size_t>(procs), 0.0);
  for (const TraceEvent& ev : r.trace) {
    ASSERT_GE(ev.proc, 0);
    ASSERT_LT(ev.proc, procs);
    ASSERT_LE(ev.start, ev.end);
    ASSERT_GE(ev.start, 0.0);
    ASSERT_LE(ev.end, r.makespan + 1e-12);
    by_proc[static_cast<std::size_t>(ev.proc)].emplace_back(ev.start,
                                                            ev.end);
    if (ev.type == TraceEventType::kTaskExec) {
      task_time[static_cast<std::size_t>(ev.proc)] += ev.duration();
    }
  }
  for (auto& events : by_proc) {
    std::sort(events.begin(), events.end());
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].first, events[i - 1].second - 1e-12)
          << "overlapping events on one proc";
    }
  }
  ASSERT_EQ(r.busy.size(), static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    EXPECT_NEAR(task_time[static_cast<std::size_t>(p)],
                r.busy[static_cast<std::size_t>(p)], 1e-12)
        << "summed task durations disagree with busy on proc " << p;
  }
}

std::size_t count_type(const SimResult& r, TraceEventType type) {
  std::size_t n = 0;
  for (const TraceEvent& ev : r.trace) {
    if (ev.type == type) ++n;
  }
  return n;
}

TEST(TypedTrace, EverySimulatorSatisfiesInvariants) {
  const auto costs = skewed_costs(400, 101);
  const MachineConfig c = machine(16);
  const auto block = emc::lb::block_assignment(costs.size(), 16);

  check_trace_invariants(simulate_static(c, costs, block), 16);
  check_trace_invariants(simulate_counter(c, costs, 4), 16);
  CounterOptions guided;
  guided.policy = ChunkPolicy::kGuided;
  check_trace_invariants(simulate_counter(c, costs, guided), 16);
  check_trace_invariants(simulate_hierarchical_counter(c, costs, 16, 2),
                         16);
  check_trace_invariants(simulate_hybrid(c, costs, block, 0.5), 16);
  check_trace_invariants(simulate_work_stealing(c, costs, block), 16);
}

TEST(TypedTrace, CounterEventsMatchCounterOps) {
  const auto costs = skewed_costs(500, 103);
  const SimResult r = simulate_counter(machine(8), costs, 4);
  EXPECT_EQ(count_type(r, TraceEventType::kCounterOp),
            static_cast<std::size_t>(r.counter_ops));
  // Dry grabs (first >= n_tasks) are recorded with task = -1; every proc
  // issues exactly one, so there are P of them.
  std::size_t dry = 0;
  for (const TraceEvent& ev : r.trace) {
    if (ev.type == TraceEventType::kCounterOp && ev.task < 0) ++dry;
  }
  EXPECT_EQ(dry, 8u);
}

TEST(TypedTrace, StealEventsMatchStealCounters) {
  const auto costs = skewed_costs(600, 107);
  const Assignment all_on_zero(costs.size(), 0);
  const SimResult r =
      simulate_work_stealing(machine(32), costs, all_on_zero);
  ASSERT_GT(r.steals, 0);
  EXPECT_EQ(count_type(r, TraceEventType::kStealSuccess),
            static_cast<std::size_t>(r.steals));
  EXPECT_EQ(count_type(r, TraceEventType::kStealSuccess) +
                count_type(r, TraceEventType::kStealFail),
            static_cast<std::size_t>(r.steal_attempts));
}

TEST(TypedTrace, ProvenanceRowsSumToSteals) {
  const auto costs = skewed_costs(800, 109);
  const Assignment all_on_zero(costs.size(), 0);
  const SimResult r =
      simulate_work_stealing(machine(32), costs, all_on_zero);
  const auto matrix = steal_provenance(r.trace, 32);
  ASSERT_EQ(matrix.size(), 32u * 32u);

  // Per-thief row sums must equal that proc's recorded steal successes;
  // the grand total must equal SimResult::steals.
  std::map<int, std::int64_t> successes_by_thief;
  for (const TraceEvent& ev : r.trace) {
    if (ev.type == TraceEventType::kStealSuccess) {
      ++successes_by_thief[ev.proc];
      EXPECT_NE(ev.proc, ev.peer) << "self-steal recorded";
    }
  }
  std::int64_t total = 0;
  for (int thief = 0; thief < 32; ++thief) {
    std::int64_t row = 0;
    for (int victim = 0; victim < 32; ++victim) {
      row += matrix[static_cast<std::size_t>(thief) * 32 +
                    static_cast<std::size_t>(victim)];
    }
    EXPECT_EQ(row, successes_by_thief[thief]);
    total += row;
  }
  EXPECT_EQ(total, r.steals);
}

TEST(TypedTrace, HybridRecordsStaticPrefixAndDynamicTail) {
  const auto costs = skewed_costs(300, 113);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const SimResult r = simulate_hybrid(machine(8), costs, block, 0.5, 2);
  EXPECT_EQ(count_type(r, TraceEventType::kTaskExec), costs.size());
  EXPECT_GT(count_type(r, TraceEventType::kCounterOp), 0u);
}

TEST(IdleGaps, ComplementActivityExactly) {
  const auto costs = skewed_costs(200, 127);
  const MachineConfig c = machine(8);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const SimResult r = simulate_work_stealing(c, costs, block);

  const auto gaps = derive_idle_gaps(r.trace, 8, r.makespan);
  // Activity + gaps tile [0, makespan] per proc: total durations add up
  // to P * makespan (events never overlap, so no double counting).
  double covered = 0.0;
  for (const TraceEvent& ev : r.trace) covered += ev.duration();
  for (const TraceEvent& gap : gaps) {
    EXPECT_EQ(gap.type, TraceEventType::kIdle);
    covered += gap.duration();
  }
  EXPECT_NEAR(covered, 8.0 * r.makespan, 1e-9);

  // min_gap filters short gaps only.
  const auto big_gaps = derive_idle_gaps(r.trace, 8, r.makespan, 1e-5);
  EXPECT_LE(big_gaps.size(), gaps.size());
  for (const TraceEvent& gap : big_gaps) EXPECT_GE(gap.duration(), 1e-5);
}

TEST(Summary, DecomposesCriticalPath) {
  const auto costs = skewed_costs(300, 131);
  const MachineConfig c = machine(8);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const SimResult r = simulate_counter(c, costs, 2);

  const TraceSummary s = summarize_trace(r.trace, 8, r.makespan);
  EXPECT_EQ(s.events, static_cast<std::int64_t>(r.trace.size()));
  ASSERT_GE(s.critical_proc, 0);
  // The critical proc's decomposition covers the makespan.
  EXPECT_NEAR(s.critical_busy + s.critical_overhead + s.critical_idle,
              r.makespan, 1e-9);
  // Totals match the aggregates.
  double busy = 0.0;
  for (double b : r.busy) busy += b;
  EXPECT_NEAR(s.total_busy, busy, 1e-9);
  EXPECT_NEAR(s.total_overhead, r.counter_wait, 1e-9);
  EXPECT_LE(s.longest_idle_gap, r.makespan + 1e-12);
}

TEST(MergeRounds, OffsetsRoundsAndMarksBoundaries) {
  const auto costs = skewed_costs(200, 137);
  const MachineConfig c = machine(8);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const auto rounds = simulate_retentive(c, costs, block, 3);
  ASSERT_EQ(rounds.size(), 3u);

  const auto merged = merge_round_traces(rounds);
  double total_makespan = 0.0;
  std::size_t total_events = 0;
  for (const SimResult& r : rounds) {
    total_makespan += r.makespan;
    total_events += r.trace.size();
  }
  EXPECT_EQ(merged.size(), total_events + 3);  // one boundary per round

  std::vector<double> boundaries;
  double expected_offset = 0.0;
  std::size_t round = 0;
  for (const TraceEvent& ev : merged) {
    EXPECT_LE(ev.end, total_makespan + 1e-12);
    if (ev.type == TraceEventType::kIterationBoundary) {
      EXPECT_EQ(ev.task, static_cast<std::int64_t>(round));
      EXPECT_NEAR(ev.start, expected_offset, 1e-12);
      expected_offset += rounds[round].makespan;
      ++round;
    }
  }
  EXPECT_EQ(round, 3u);
}

TEST(ChromeTrace, ExportsRequiredFieldsPerEvent) {
  const auto costs = skewed_costs(100, 139);
  const MachineConfig c = machine(8);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const SimResult r = simulate_work_stealing(c, costs, block);

  std::ostringstream out;
  write_chrome_trace(out, r.trace, c.procs_per_node);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  auto count_substr = [&json](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  // Every event is a complete event with the viewer-required fields.
  EXPECT_EQ(count_substr("\"ph\": \"X\""), r.trace.size());
  EXPECT_EQ(count_substr("\"ts\": "), r.trace.size());
  EXPECT_EQ(count_substr("\"dur\": "), r.trace.size());
  EXPECT_EQ(count_substr("\"pid\": "), r.trace.size());
  EXPECT_EQ(count_substr("\"tid\": "), r.trace.size());
  // Steal events carry victim provenance in args.
  EXPECT_GT(count_substr("\"peer\": "), 0u);
}

TEST(Timeline, SingleTaskCoversItsBins) {
  std::vector<TraceEvent> trace(1);
  trace[0].type = TraceEventType::kTaskExec;
  trace[0].proc = 0;
  trace[0].start = 0.25;
  trace[0].end = 0.75;
  const auto timeline = utilization_timeline(trace, 1.0, 1, 4);
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_NEAR(timeline[0], 0.0, 1e-12);
  EXPECT_NEAR(timeline[1], 1.0, 1e-12);
  EXPECT_NEAR(timeline[2], 1.0, 1e-12);
  EXPECT_NEAR(timeline[3], 0.0, 1e-12);
}

TEST(Timeline, OneBinEqualsMeanUtilization) {
  const auto costs = skewed_costs(200, 149);
  const MachineConfig c = machine(8);
  const auto block = emc::lb::block_assignment(costs.size(), 8);
  const SimResult r = simulate_static(c, costs, block);
  const auto timeline = utilization_timeline(r, 8, 1);
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_NEAR(timeline[0], r.utilization(), 1e-9);
}

TEST(Timeline, RejectsEmptyTraceAndBadArgs) {
  const std::vector<TraceEvent> empty;
  EXPECT_THROW(utilization_timeline(empty, 1.0, 4, 10),
               std::invalid_argument);
  // A trace with only non-task events is "empty" for utilization.
  std::vector<TraceEvent> overhead_only(1);
  overhead_only[0].type = TraceEventType::kStealFail;
  overhead_only[0].end = 0.5;
  EXPECT_THROW(utilization_timeline(overhead_only, 1.0, 4, 10),
               std::invalid_argument);

  std::vector<TraceEvent> one_task(1);
  one_task[0].type = TraceEventType::kTaskExec;
  one_task[0].end = 0.5;
  EXPECT_THROW(utilization_timeline(one_task, 1.0, 4, 0),
               std::invalid_argument);
  EXPECT_THROW(utilization_timeline(one_task, 1.0, 0, 10),
               std::invalid_argument);
}

TEST(Timeline, RejectsNonPositiveOrNonFiniteMakespan) {
  // Regression: makespan == 0 used to produce a zero bin width, so
  // ev.start / width was NaN/Inf and its cast to int undefined behavior.
  std::vector<TraceEvent> one_task(1);
  one_task[0].type = TraceEventType::kTaskExec;
  one_task[0].end = 0.5;
  EXPECT_THROW(utilization_timeline(one_task, 0.0, 4, 10),
               std::invalid_argument);
  EXPECT_THROW(utilization_timeline(one_task, -1.0, 4, 10),
               std::invalid_argument);
  EXPECT_THROW(
      utilization_timeline(
          one_task, std::numeric_limits<double>::quiet_NaN(), 4, 10),
      std::invalid_argument);
  EXPECT_THROW(
      utilization_timeline(
          one_task, std::numeric_limits<double>::infinity(), 4, 10),
      std::invalid_argument);
}

TEST(Recording, DisabledMeansNoEventsAndIdenticalResults) {
  const auto costs = skewed_costs(300, 151);
  MachineConfig off = machine(8);
  off.record_trace = false;
  MachineConfig on = machine(8);
  const auto block = emc::lb::block_assignment(costs.size(), 8);

  const SimResult quiet = simulate_work_stealing(off, costs, block);
  const SimResult traced = simulate_work_stealing(on, costs, block);
  EXPECT_TRUE(quiet.trace.empty());
  // Tracing must not perturb the simulation itself.
  EXPECT_DOUBLE_EQ(quiet.makespan, traced.makespan);
  EXPECT_EQ(quiet.steals, traced.steals);
  EXPECT_EQ(quiet.steal_attempts, traced.steal_attempts);
}

}  // namespace
