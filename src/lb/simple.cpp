#include "lb/simple.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace emc::lb {

namespace {
void check_parts(int n_parts) {
  if (n_parts < 1) throw std::invalid_argument("balancer: n_parts < 1");
}
}  // namespace

Assignment block_assignment(std::size_t n_tasks, int n_parts) {
  check_parts(n_parts);
  Assignment a(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    a[t] = static_cast<int>(t * static_cast<std::size_t>(n_parts) / n_tasks);
  }
  return a;
}

Assignment cyclic_assignment(std::size_t n_tasks, int n_parts) {
  check_parts(n_parts);
  Assignment a(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) {
    a[t] = static_cast<int>(t % static_cast<std::size_t>(n_parts));
  }
  return a;
}

Assignment lpt_assignment(std::span<const double> weights, int n_parts) {
  check_parts(n_parts);
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return weights[a] > weights[b];
  });

  // Min-heap of (load, part).
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int p = 0; p < n_parts; ++p) heap.emplace(0.0, p);

  Assignment a(weights.size(), -1);
  for (std::size_t t : order) {
    auto [load, part] = heap.top();
    heap.pop();
    a[t] = part;
    heap.emplace(load + weights[t], part);
  }
  return a;
}

}  // namespace emc::lb
