file(REMOVE_RECURSE
  "CMakeFiles/loadbalance_compare.dir/loadbalance_compare.cpp.o"
  "CMakeFiles/loadbalance_compare.dir/loadbalance_compare.cpp.o.d"
  "loadbalance_compare"
  "loadbalance_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loadbalance_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
