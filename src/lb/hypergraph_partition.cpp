#include "lb/hypergraph_partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emc::lb {

namespace {

using graph::Hypergraph;
using graph::NetId;
using graph::VertexId;

/// Working (mutable) hypergraph representation used inside the
/// multilevel pipeline.
struct WorkHg {
  std::vector<std::vector<VertexId>> nets;
  std::vector<double> net_weights;
  std::vector<std::vector<NetId>> vertex_nets;
  std::vector<double> vertex_weights;

  VertexId vertex_count() const {
    return static_cast<VertexId>(vertex_weights.size());
  }

  static WorkHg from(const Hypergraph& h) {
    WorkHg w;
    w.vertex_weights.resize(static_cast<std::size_t>(h.vertex_count()));
    for (VertexId v = 0; v < h.vertex_count(); ++v) {
      w.vertex_weights[static_cast<std::size_t>(v)] = h.vertex_weight(v);
    }
    w.nets.resize(static_cast<std::size_t>(h.net_count()));
    w.net_weights.resize(static_cast<std::size_t>(h.net_count()));
    for (NetId e = 0; e < h.net_count(); ++e) {
      const auto pins = h.pins(e);
      w.nets[static_cast<std::size_t>(e)].assign(pins.begin(), pins.end());
      w.net_weights[static_cast<std::size_t>(e)] = h.net_weight(e);
    }
    w.rebuild_vertex_nets();
    return w;
  }

  void rebuild_vertex_nets() {
    vertex_nets.assign(vertex_weights.size(), {});
    for (std::size_t e = 0; e < nets.size(); ++e) {
      for (VertexId v : nets[e]) {
        vertex_nets[static_cast<std::size_t>(v)].push_back(
            static_cast<NetId>(e));
      }
    }
  }
};

/// One coarsening step: connectivity matching. Returns the coarse graph
/// and the fine->coarse vertex map; match[v] pairs v with at most one
/// other vertex sharing a net, preferring high total shared net weight
/// scaled by net size.
struct CoarseLevel {
  WorkHg coarse;
  std::vector<VertexId> fine_to_coarse;
};

CoarseLevel coarsen_once(const WorkHg& fine, emc::Rng& rng) {
  const auto n = static_cast<std::size_t>(fine.vertex_count());
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  // Deterministic shuffle for matching order.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  std::vector<VertexId> match(n, -1);
  std::vector<double> score(n, 0.0);
  std::vector<VertexId> touched;
  for (VertexId v : order) {
    const auto vu = static_cast<std::size_t>(v);
    if (match[vu] >= 0) continue;
    touched.clear();
    for (NetId e : fine.vertex_nets[vu]) {
      const auto& pins = fine.nets[static_cast<std::size_t>(e)];
      if (pins.size() < 2 || pins.size() > 64) continue;  // skip huge nets
      const double w = fine.net_weights[static_cast<std::size_t>(e)] /
                       static_cast<double>(pins.size() - 1);
      for (VertexId u : pins) {
        const auto uu = static_cast<std::size_t>(u);
        if (u == v || match[uu] >= 0) continue;
        if (score[uu] == 0.0) touched.push_back(u);
        score[uu] += w;
      }
    }
    VertexId best = -1;
    double best_score = 0.0;
    for (VertexId u : touched) {
      const auto uu = static_cast<std::size_t>(u);
      if (score[uu] > best_score) {
        best_score = score[uu];
        best = u;
      }
      score[uu] = 0.0;
    }
    if (best >= 0) {
      match[vu] = best;
      match[static_cast<std::size_t>(best)] = v;
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(n, -1);
  VertexId next = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[v] >= 0) continue;
    level.fine_to_coarse[v] = next;
    if (match[v] >= 0) {
      level.fine_to_coarse[static_cast<std::size_t>(match[v])] = next;
    }
    ++next;
  }

  WorkHg& coarse = level.coarse;
  coarse.vertex_weights.assign(static_cast<std::size_t>(next), 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    coarse.vertex_weights[static_cast<std::size_t>(
        level.fine_to_coarse[v])] += fine.vertex_weights[v];
  }

  // Project nets; drop singletons; merge identical pin sets.
  std::map<std::vector<VertexId>, double> merged;
  std::vector<VertexId> proj;
  for (std::size_t e = 0; e < fine.nets.size(); ++e) {
    proj.clear();
    for (VertexId v : fine.nets[e]) {
      proj.push_back(level.fine_to_coarse[static_cast<std::size_t>(v)]);
    }
    std::sort(proj.begin(), proj.end());
    proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
    if (proj.size() < 2) continue;
    merged[proj] += fine.net_weights[e];
  }
  coarse.nets.reserve(merged.size());
  coarse.net_weights.reserve(merged.size());
  for (auto& [pins, w] : merged) {
    coarse.nets.push_back(pins);
    coarse.net_weights.push_back(w);
  }
  coarse.rebuild_vertex_nets();
  return level;
}

/// Greedy growth initial bisection: BFS from a random seed accumulating
/// vertices into part 0 until it holds `target0` weight.
std::vector<int> initial_bisection(const WorkHg& hg, double target0,
                                   emc::Rng& rng) {
  const auto n = static_cast<std::size_t>(hg.vertex_count());
  std::vector<int> part(n, 1);
  if (n == 0) return part;

  std::vector<char> visited(n, 0);
  double w0 = 0.0;
  std::queue<VertexId> frontier;

  auto try_take = [&](VertexId v) {
    const auto vu = static_cast<std::size_t>(v);
    if (visited[vu]) return;
    visited[vu] = 1;
    part[vu] = 0;
    w0 += hg.vertex_weights[vu];
    frontier.push(v);
  };

  while (w0 < target0) {
    if (frontier.empty()) {
      // Seed a new component from the heaviest unvisited vertex.
      VertexId seed = -1;
      double best = -1.0;
      for (std::size_t v = 0; v < n; ++v) {
        if (!visited[v] && hg.vertex_weights[v] > best) {
          best = hg.vertex_weights[v];
          seed = static_cast<VertexId>(v);
        }
      }
      if (seed < 0) break;
      try_take(seed);
      if (w0 >= target0) break;
    }
    const VertexId v = frontier.front();
    frontier.pop();
    for (NetId e : hg.vertex_nets[static_cast<std::size_t>(v)]) {
      for (VertexId u : hg.nets[static_cast<std::size_t>(e)]) {
        if (w0 >= target0) return part;
        try_take(u);
      }
    }
  }
  (void)rng;
  return part;
}

/// One FM refinement pass over a bisection. Returns the cut improvement
/// (>= 0; 0 means no improvement and `part` unchanged).
double fm_pass(const WorkHg& hg, std::vector<int>& part, double target0,
               double tolerance) {
  const auto n = static_cast<std::size_t>(hg.vertex_count());
  const std::size_t n_nets = hg.nets.size();

  // Pin counts per side for every net.
  std::vector<int> cnt0(n_nets, 0), cnt1(n_nets, 0);
  double w0 = 0.0, w_total = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    w_total += hg.vertex_weights[v];
    if (part[v] == 0) w0 += hg.vertex_weights[v];
  }
  for (std::size_t e = 0; e < n_nets; ++e) {
    for (VertexId v : hg.nets[e]) {
      (part[static_cast<std::size_t>(v)] == 0 ? cnt0[e] : cnt1[e])++;
    }
  }

  auto gain_of = [&](std::size_t v) {
    double gain = 0.0;
    const int from = part[v];
    for (NetId e : hg.vertex_nets[v]) {
      const auto eu = static_cast<std::size_t>(e);
      const int here = from == 0 ? cnt0[eu] : cnt1[eu];
      const int there = from == 0 ? cnt1[eu] : cnt0[eu];
      if (here == 1 && there > 0) gain += hg.net_weights[eu];  // uncuts
      if (there == 0 && here > 1) gain -= hg.net_weights[eu];  // cuts
    }
    return gain;
  };

  // Lazy max-heap of candidate moves.
  struct Candidate {
    double gain;
    std::size_t v;
    std::uint64_t version;
    bool operator<(const Candidate& o) const { return gain < o.gain; }
  };
  std::vector<std::uint64_t> version(n, 0);
  std::priority_queue<Candidate> heap;
  for (std::size_t v = 0; v < n; ++v) {
    heap.push({gain_of(v), v, 0});
  }

  std::vector<char> locked(n, 0);
  std::vector<std::size_t> move_order;
  move_order.reserve(n);
  double cum_gain = 0.0, best_gain = 0.0;
  std::size_t best_prefix = 0;

  auto apply_move = [&](std::size_t v) {
    const int from = part[v];
    const int to = 1 - from;
    for (NetId e : hg.vertex_nets[v]) {
      const auto eu = static_cast<std::size_t>(e);
      (from == 0 ? cnt0[eu] : cnt1[eu])--;
      (to == 0 ? cnt0[eu] : cnt1[eu])++;
    }
    w0 += (to == 0 ? hg.vertex_weights[v] : -hg.vertex_weights[v]);
    part[v] = to;
    // Invalidate neighbors' cached gains.
    for (NetId e : hg.vertex_nets[v]) {
      for (VertexId u : hg.nets[static_cast<std::size_t>(e)]) {
        const auto uu = static_cast<std::size_t>(u);
        if (!locked[uu]) {
          ++version[uu];
          heap.push({gain_of(uu), uu, version[uu]});
        }
      }
    }
  };

  while (!heap.empty()) {
    const Candidate c = heap.top();
    heap.pop();
    if (locked[c.v] || c.version != version[c.v]) continue;
    // Balance feasibility of moving c.v to the other side.
    const double w = hg.vertex_weights[c.v];
    const double new_w0 = part[c.v] == 0 ? w0 - w : w0 + w;
    const double lo = target0 - tolerance, hi = target0 + tolerance;
    if (new_w0 < lo || new_w0 > hi) continue;

    locked[c.v] = 1;
    apply_move(c.v);
    move_order.push_back(c.v);
    cum_gain += c.gain;
    if (cum_gain > best_gain + 1e-12) {
      best_gain = cum_gain;
      best_prefix = move_order.size();
    }
  }

  // Roll back moves beyond the best prefix.
  for (std::size_t i = move_order.size(); i > best_prefix; --i) {
    const std::size_t v = move_order[i - 1];
    part[v] = 1 - part[v];
  }
  return best_gain;
}

/// Balance repair: while side 0's weight is outside [target0 - tol,
/// target0 + tol], move the cut-cheapest vertex from the heavy side.
/// FM alone only chases cut gain, so coarse-level imbalance (one heavy
/// merged vertex overshooting the target) would otherwise survive
/// uncoarsening untouched.
void rebalance(const WorkHg& hg, std::vector<int>& part, double target0,
               double tolerance) {
  const auto n = static_cast<std::size_t>(hg.vertex_count());
  const std::size_t n_nets = hg.nets.size();
  std::vector<int> cnt0(n_nets, 0), cnt1(n_nets, 0);
  double w0 = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (part[v] == 0) w0 += hg.vertex_weights[v];
  }
  for (std::size_t e = 0; e < n_nets; ++e) {
    for (VertexId v : hg.nets[e]) {
      (part[static_cast<std::size_t>(v)] == 0 ? cnt0[e] : cnt1[e])++;
    }
  }

  auto gain_of = [&](std::size_t v) {
    double gain = 0.0;
    const int from = part[v];
    for (NetId e : hg.vertex_nets[v]) {
      const auto eu = static_cast<std::size_t>(e);
      const int here = from == 0 ? cnt0[eu] : cnt1[eu];
      const int there = from == 0 ? cnt1[eu] : cnt0[eu];
      if (here == 1 && there > 0) gain += hg.net_weights[eu];
      if (there == 0 && here > 1) gain -= hg.net_weights[eu];
    }
    return gain;
  };

  for (std::size_t guard = 0; guard < n; ++guard) {
    int heavy;
    if (w0 > target0 + tolerance) {
      heavy = 0;
    } else if (w0 < target0 - tolerance) {
      heavy = 1;
    } else {
      break;
    }
    // Best vertex to eject: highest cut gain; break ties toward weights
    // that bring w0 closest to target.
    std::size_t best = n;
    double best_score = -1e300;
    for (std::size_t v = 0; v < n; ++v) {
      if (part[v] != heavy) continue;
      const double w = hg.vertex_weights[v];
      const double new_w0 = heavy == 0 ? w0 - w : w0 + w;
      const double score =
          gain_of(v) - std::abs(new_w0 - target0) * 1e-9;
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    if (best == n) break;  // heavy side empty
    const int to = 1 - heavy;
    for (NetId e : hg.vertex_nets[best]) {
      const auto eu = static_cast<std::size_t>(e);
      (heavy == 0 ? cnt0[eu] : cnt1[eu])--;
      (to == 0 ? cnt0[eu] : cnt1[eu])++;
    }
    w0 += (to == 0 ? hg.vertex_weights[best] : -hg.vertex_weights[best]);
    part[best] = to;
  }
}

/// Bisects `hg` into sides with weight targets (target0, rest).
std::vector<int> bisect(const WorkHg& top, double target0_fraction,
                        const HgPartitionOptions& options, emc::Rng& rng) {
  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const WorkHg* current = &top;
  while (current->vertex_count() > options.coarsen_target) {
    CoarseLevel level = coarsen_once(*current, rng);
    if (level.coarse.vertex_count() >=
        current->vertex_count() - current->vertex_count() / 20) {
      break;  // matching stalled; stop coarsening
    }
    levels.push_back(std::move(level));
    current = &levels.back().coarse;
  }

  const double w_total = std::accumulate(
      current->vertex_weights.begin(), current->vertex_weights.end(), 0.0);
  const double target0 = w_total * target0_fraction;
  const double tolerance =
      std::max(options.epsilon * w_total,
               *std::max_element(current->vertex_weights.begin(),
                                 current->vertex_weights.end()) *
                   1.01);

  std::vector<int> part = initial_bisection(*current, target0, rng);
  rebalance(*current, part, target0, tolerance);
  for (int pass = 0; pass < options.fm_passes; ++pass) {
    if (fm_pass(*current, part, target0, tolerance) <= 0.0) break;
  }

  // Uncoarsening with refinement at each level.
  for (std::size_t li = levels.size(); li-- > 0;) {
    const WorkHg& fine =
        (li == 0) ? top : levels[li - 1].coarse;
    const auto& map = levels[li].fine_to_coarse;
    std::vector<int> fine_part(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine_part[v] = part[static_cast<std::size_t>(map[v])];
    }
    part = std::move(fine_part);

    const double fw_total = std::accumulate(
        fine.vertex_weights.begin(), fine.vertex_weights.end(), 0.0);
    const double ft0 = fw_total * target0_fraction;
    const double ftol =
        std::max(options.epsilon * fw_total,
                 *std::max_element(fine.vertex_weights.begin(),
                                   fine.vertex_weights.end()) *
                     1.01);
    rebalance(fine, part, ft0, ftol);
    for (int pass = 0; pass < options.fm_passes; ++pass) {
      if (fm_pass(fine, part, ft0, ftol) <= 0.0) break;
    }
  }
  return part;
}

/// Recursive bisection driver writing final part ids into `out`.
void recurse(const WorkHg& hg, std::vector<VertexId> global_ids,
             int part_base, int n_parts, const HgPartitionOptions& options,
             emc::Rng& rng, std::vector<int>& out) {
  if (n_parts == 1 || hg.vertex_count() == 0) {
    for (VertexId gid : global_ids) {
      out[static_cast<std::size_t>(gid)] = part_base;
    }
    return;
  }

  const int k0 = n_parts / 2;
  const int k1 = n_parts - k0;
  const double frac0 = static_cast<double>(k0) / static_cast<double>(n_parts);
  const std::vector<int> side = bisect(hg, frac0, options, rng);

  // Build the two induced sub-hypergraphs.
  for (int s = 0; s < 2; ++s) {
    WorkHg sub;
    std::vector<VertexId> sub_ids;
    std::vector<VertexId> local(static_cast<std::size_t>(hg.vertex_count()),
                                -1);
    for (std::size_t v = 0; v < side.size(); ++v) {
      if (side[v] == s) {
        local[v] = static_cast<VertexId>(sub.vertex_weights.size());
        sub.vertex_weights.push_back(hg.vertex_weights[v]);
        sub_ids.push_back(global_ids[v]);
      }
    }
    std::vector<VertexId> proj;
    for (std::size_t e = 0; e < hg.nets.size(); ++e) {
      proj.clear();
      for (VertexId v : hg.nets[e]) {
        const VertexId lv = local[static_cast<std::size_t>(v)];
        if (lv >= 0) proj.push_back(lv);
      }
      if (proj.size() >= 2) {
        sub.nets.push_back(proj);
        sub.net_weights.push_back(hg.net_weights[e]);
      }
    }
    sub.rebuild_vertex_nets();
    recurse(sub, std::move(sub_ids), part_base + (s == 0 ? 0 : k0),
            s == 0 ? k0 : k1, options, rng, out);
  }
}

}  // namespace

std::vector<int> partition_hypergraph(const Hypergraph& h,
                                      const HgPartitionOptions& options) {
  if (options.n_parts < 1) {
    throw std::invalid_argument("partition_hypergraph: n_parts < 1");
  }
  std::vector<int> out(static_cast<std::size_t>(h.vertex_count()), 0);
  if (options.n_parts == 1 || h.vertex_count() == 0) return out;

  emc::Rng rng(options.seed);
  WorkHg top = WorkHg::from(h);
  std::vector<VertexId> ids(static_cast<std::size_t>(h.vertex_count()));
  std::iota(ids.begin(), ids.end(), VertexId{0});

  // Recursive bisection compounds per-level imbalance, so spread the
  // caller's epsilon across the ~log2(k) levels each vertex traverses.
  HgPartitionOptions scaled = options;
  int levels = 0;
  for (int k = options.n_parts - 1; k > 0; k >>= 1) ++levels;
  scaled.epsilon = options.epsilon / static_cast<double>(std::max(1, levels));

  recurse(top, std::move(ids), 0, scaled.n_parts, scaled, rng, out);
  return out;
}

BalanceResult hypergraph_balance(const Hypergraph& h, int n_parts,
                                 std::uint64_t seed) {
  BalanceResult r;
  r.algorithm = "hypergraph";
  emc::Timer timer;
  HgPartitionOptions options;
  options.n_parts = n_parts;
  options.seed = seed;
  r.assignment = partition_hypergraph(h, options);
  r.balance_seconds = timer.seconds();
  return r;
}

}  // namespace emc::lb
