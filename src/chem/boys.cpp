#include "chem/boys.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "chem/constants.hpp"

namespace emc::chem {

namespace {

/// Ascending series for F_m(x):
///   F_m(x) = e^{-x} / 2 * sum_{k>=0} (2m-1)!! (2x)^k / (2m+2k+1)!!
/// expressed as the equivalent Kummer series; converges fast for x < ~35.
double boys_series(int m, double x) {
  const double expmx = std::exp(-x);
  double term = 1.0 / (2.0 * static_cast<double>(m) + 1.0);
  double sum = term;
  for (int k = 1; k < 200; ++k) {
    term *= 2.0 * x / (2.0 * static_cast<double>(m + k) + 1.0);
    sum += term;
    if (term < 1e-17 * sum) break;
  }
  return expmx * sum;
}

}  // namespace

void boys(double x, std::span<double> out) {
  if (out.empty()) return;
  if (x < 0.0) throw std::invalid_argument("boys: x must be >= 0");
  const int m_max = static_cast<int>(out.size()) - 1;

  if (x < 35.0) {
    out[static_cast<std::size_t>(m_max)] = boys_series(m_max, x);
    const double expmx = std::exp(-x);
    for (int m = m_max - 1; m >= 0; --m) {
      out[static_cast<std::size_t>(m)] =
          (2.0 * x * out[static_cast<std::size_t>(m + 1)] + expmx) /
          (2.0 * static_cast<double>(m) + 1.0);
    }
  } else {
    // Asymptotic: F_0(x) ~ sqrt(pi / (4x)); e^{-x} underflows relevance.
    out[0] = 0.5 * std::sqrt(kPi / x);
    const double inv2x = 1.0 / (2.0 * x);
    for (int m = 1; m <= m_max; ++m) {
      out[static_cast<std::size_t>(m)] =
          out[static_cast<std::size_t>(m - 1)] *
          (2.0 * static_cast<double>(m) - 1.0) * inv2x;
    }
  }
}

double boys(int m, double x) {
  std::vector<double> buf(static_cast<std::size_t>(m) + 1);
  boys(x, buf);
  return buf[static_cast<std::size_t>(m)];
}

}  // namespace emc::chem
