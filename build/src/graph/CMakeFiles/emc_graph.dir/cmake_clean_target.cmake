file(REMOVE_RECURSE
  "libemc_graph.a"
)
