file(REMOVE_RECURSE
  "CMakeFiles/test_chem_eri_pairs.dir/test_chem_eri_pairs.cpp.o"
  "CMakeFiles/test_chem_eri_pairs.dir/test_chem_eri_pairs.cpp.o.d"
  "test_chem_eri_pairs"
  "test_chem_eri_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_eri_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
