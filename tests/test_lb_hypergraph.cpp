// Multilevel hypergraph partitioner tests: validity, balance, cut
// quality versus naive splits, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "lb/hypergraph_partition.hpp"
#include "lb/simple.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::lb;
using emc::Rng;
using emc::graph::Hypergraph;
using emc::graph::NetId;
using emc::graph::VertexId;

std::vector<double> vertex_weights(const Hypergraph& h) {
  std::vector<double> w(static_cast<std::size_t>(h.vertex_count()));
  for (VertexId v = 0; v < h.vertex_count(); ++v) {
    w[static_cast<std::size_t>(v)] = h.vertex_weight(v);
  }
  return w;
}

TEST(HgPartitionTest, TrivialCases) {
  Hypergraph::Builder b(4);
  b.add_net({0, 1});
  const Hypergraph h = b.build();

  HgPartitionOptions one;
  one.n_parts = 1;
  const auto part1 = partition_hypergraph(h, one);
  for (int p : part1) EXPECT_EQ(p, 0);

  HgPartitionOptions bad;
  bad.n_parts = 0;
  EXPECT_THROW(partition_hypergraph(h, bad), std::invalid_argument);
}

TEST(HgPartitionTest, EveryVertexGetsValidPart) {
  Rng rng(3);
  const Hypergraph h =
      emc::graph::make_random_hypergraph(120, 80, 4, 0.5, 4.0, rng);
  HgPartitionOptions options;
  options.n_parts = 6;
  const auto part = partition_hypergraph(h, options);
  ASSERT_EQ(part.size(), 120u);
  std::set<int> used;
  for (int p : part) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 6);
    used.insert(p);
  }
  EXPECT_EQ(used.size(), 6u);  // no empty parts on this size
}

TEST(HgPartitionTest, BalanceWithinTolerance) {
  Rng rng(5);
  const Hypergraph h =
      emc::graph::make_random_hypergraph(200, 150, 3, 1.0, 1.0, rng);
  HgPartitionOptions options;
  options.n_parts = 4;
  options.epsilon = 0.10;
  const auto part = partition_hypergraph(h, options);
  const auto w = vertex_weights(h);
  Assignment a(part.begin(), part.end());
  // Unit weights, 200 vertices over 4 parts: mean 50; recursive bisection
  // with per-level slack can compound, so allow a loose envelope.
  EXPECT_LT(imbalance(w, a, 4), 1.35);
}

TEST(HgPartitionTest, CutsGridCheaperThanRandomSplit) {
  // A 2D grid modeled as a hypergraph (one net per edge). The partitioner
  // should find a far cheaper cut than a cyclic striping.
  const int rows = 12, cols = 12;
  const auto grid = emc::graph::make_grid_graph(rows, cols);
  Hypergraph::Builder b(grid.vertex_count());
  for (VertexId v = 0; v < grid.vertex_count(); ++v) {
    for (VertexId u : grid.neighbors(v)) {
      if (u > v) b.add_net({v, u});
    }
  }
  const Hypergraph h = b.build();

  HgPartitionOptions options;
  options.n_parts = 2;
  const auto part = partition_hypergraph(h, options);
  const double cut = h.connectivity_cut(part, 2);

  const auto striped = cyclic_assignment(
      static_cast<std::size_t>(h.vertex_count()), 2);
  const std::vector<int> striped_part(striped.begin(), striped.end());
  const double striped_cut = h.connectivity_cut(striped_part, 2);

  // A clean bisection of a 12x12 grid cuts ~12 edges; striping cuts ~all.
  EXPECT_LT(cut, 0.25 * striped_cut);
  EXPECT_LE(cut, 3.0 * rows);
}

TEST(HgPartitionTest, DeterministicForFixedSeed) {
  Rng rng(7);
  const Hypergraph h =
      emc::graph::make_random_hypergraph(90, 60, 4, 0.5, 2.0, rng);
  HgPartitionOptions options;
  options.n_parts = 3;
  options.seed = 1234;
  const auto a = partition_hypergraph(h, options);
  const auto b = partition_hypergraph(h, options);
  EXPECT_EQ(a, b);
}

TEST(HgPartitionTest, MorePartsThanVertices) {
  Hypergraph::Builder b(3);
  b.add_net({0, 1, 2});
  const Hypergraph h = b.build();
  HgPartitionOptions options;
  options.n_parts = 8;
  const auto part = partition_hypergraph(h, options);
  // Validity is what matters; parts may be empty.
  for (int p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
  }
}

TEST(HgBalanceTest, WrapperReportsTiming) {
  Rng rng(11);
  const Hypergraph h =
      emc::graph::make_random_hypergraph(150, 100, 4, 0.5, 5.0, rng);
  const BalanceResult r = hypergraph_balance(h, 4);
  EXPECT_EQ(r.algorithm, "hypergraph");
  EXPECT_GT(r.balance_seconds, 0.0);
  validate_assignment(r.assignment, 4);
  EXPECT_EQ(r.assignment.size(), 150u);
}

class HgPartsSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HgPartsSweepTest, ValidAcrossPartCounts) {
  Rng rng(13);
  const Hypergraph h =
      emc::graph::make_random_hypergraph(160, 120, 4, 0.5, 3.0, rng);
  HgPartitionOptions options;
  options.n_parts = GetParam();
  const auto part = partition_hypergraph(h, options);
  Assignment a(part.begin(), part.end());
  validate_assignment(a, options.n_parts);
  // Every part id in range and cut is finite/consistent.
  const double cut = h.connectivity_cut(part, options.n_parts);
  EXPECT_GE(cut, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, HgPartsSweepTest,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

}  // namespace
