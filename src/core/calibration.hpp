#pragma once

// Cost-model calibration: relate the analytic (flop-unit) task-cost
// estimates to wall-time measurements of the real kernel, producing the
// scale factor the simulator uses and a quality report.

#include <span>

namespace emc::core {

struct CalibrationReport {
  double scale = 0.0;       ///< least-squares seconds per analytic unit
  double pearson = 0.0;     ///< linear correlation of the two vectors
  double spearman = 0.0;    ///< rank correlation
  std::size_t samples = 0;
};

/// Fits measured ~ scale * estimated (no intercept, least squares) and
/// reports correlation quality. Throws std::invalid_argument on size
/// mismatch or empty input.
CalibrationReport calibrate_cost_model(std::span<const double> estimated,
                                       std::span<const double> measured);

}  // namespace emc::core
