#include "core/distributed_fock.hpp"

#include <atomic>
#include <stdexcept>

#include "lb/simple.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emc::core {

namespace {

/// Stateless loss decision for one (task, attempt) execution; same hash
/// construction as the PGAS/simulator fault layers. Rank-independent by
/// design: whichever rank picks the task up sees the same verdict.
bool task_attempt_lost(const DistributedFockOptions::TaskFaultOptions& tf,
                       std::int64_t task, int attempt) {
  std::uint64_t h = tf.seed ^
                    (static_cast<std::uint64_t>(task) + 1) *
                        0x9e3779b97f4a7c15ULL ^
                    (static_cast<std::uint64_t>(attempt) + 1) *
                        0xbf58476d1ce4e5b9ULL;
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  return u < tf.fail_prob;
}

}  // namespace

DistributedFockBuilder::DistributedFockBuilder(
    const chem::BasisSet& basis, pgas::Runtime& runtime,
    DistributedFockOptions options)
    : basis_(&basis), runtime_(&runtime), options_(std::move(options)),
      fock_(basis, options_.screen_threshold), tasks_(fock_.make_tasks()) {
  if (options_.metrics != nullptr) attach_metrics();
}

void DistributedFockBuilder::attach_metrics() {
  util::MetricsRegistry& reg = *options_.metrics;
  runtime_->set_metrics(&reg);
  metrics_.builds = &reg.counter("fock/builds");
  metrics_.tasks = &reg.counter("fock/tasks");
  metrics_.task_reexecs = &reg.counter("fock/task_reexecutions");
  metrics_.kets_scanned = &reg.counter("fock/ket_pairs_scanned");
  metrics_.kets_survived = &reg.counter("fock/ket_pairs_survived");
  metrics_.skip_rate = &reg.gauge("fock/screening_skip_rate");
  metrics_.phase_get = &reg.gauge("fock/phase_get_seconds");
  metrics_.phase_execute = &reg.gauge("fock/phase_execute_seconds");
  metrics_.phase_accumulate = &reg.gauge("fock/phase_accumulate_seconds");

  // Screening is Schwarz-only (density-independent), so the per-iteration
  // skip rate is a property of the basis: tally it once here.
  scan_total_ = 0.0;
  survived_total_ = 0.0;
  for (const auto& task : tasks_) {
    const chem::TaskCostFeatures f = fock_.task_cost_features(task);
    scan_total_ += f.scan;
    survived_total_ += f.quartets;
  }
  metrics_.skip_rate->set(
      scan_total_ > 0.0 ? 1.0 - survived_total_ / scan_total_ : 0.0);

  // Shell-pair cache inventory: entries and primitive pairs held.
  const chem::ShellPairList& pairs = fock_.shell_pairs();
  std::int64_t prim_pairs = 0;
  const int n_shells = static_cast<int>(basis_->shell_count());
  for (int i = 0; i < n_shells; ++i) {
    for (int j = 0; j <= i; ++j) {
      prim_pairs += static_cast<std::int64_t>(pairs.pair(i, j).prims.size());
    }
  }
  reg.gauge("fock/shell_pair_cache_entries")
      .set(static_cast<double>(pairs.size()));
  reg.gauge("fock/shell_pair_cache_prim_pairs")
      .set(static_cast<double>(prim_pairs));
}

lb::Assignment DistributedFockBuilder::initial_assignment() const {
  const int ranks = runtime_->size();
  if (options_.static_balancer == "block") {
    return lb::block_assignment(tasks_.size(), ranks);
  }
  if (options_.static_balancer == "cyclic") {
    return lb::cyclic_assignment(tasks_.size(), ranks);
  }
  if (options_.static_balancer == "lpt") {
    std::vector<double> costs;
    costs.reserve(tasks_.size());
    for (const auto& task : tasks_) {
      costs.push_back(fock_.estimate_task_cost(task));
    }
    return lb::lpt_assignment(costs, ranks);
  }
  throw std::invalid_argument(
      "DistributedFockBuilder: unknown static balancer '" +
      options_.static_balancer + "'");
}

linalg::Matrix DistributedFockBuilder::build_g(
    const linalg::Matrix& density) {
  EMC_PROF_SPAN("fock/build_g");
  const auto n = static_cast<std::size_t>(basis_->function_count());
  if (density.rows() != n || density.cols() != n) {
    throw std::invalid_argument("build_g: density shape mismatch");
  }
  const int ranks = runtime_->size();

  // Publish the density; ranks will fetch it one-sided.
  pgas::GlobalArray density_ga(n, n, ranks);
  pgas::GlobalArray j_ga(n, n, ranks);
  pgas::GlobalArray k_ga(n, n, ranks);
  if (options_.metrics != nullptr) {
    density_ga.set_metrics(options_.metrics);
    j_ga.set_metrics(options_.metrics);
    k_ga.set_metrics(options_.metrics);
  }
  density_ga.put(0, 0, 0, n, n,
                 std::span<const double>(density.data(), n * n),
                 pgas::CommCostModel{});

  const lb::Assignment assignment = initial_assignment();
  const auto n_tasks = static_cast<std::int64_t>(tasks_.size());

  // Per-rank working state allocated up front so the SPMD body can use
  // it without synchronization.
  std::vector<linalg::Matrix> local_density(
      static_cast<std::size_t>(ranks), linalg::Matrix(n, n));
  std::vector<linalg::Matrix> local_j(static_cast<std::size_t>(ranks),
                                      linalg::Matrix(n, n));
  std::vector<linalg::Matrix> local_k(static_cast<std::size_t>(ranks),
                                      linalg::Matrix(n, n));

  const DistributedFockOptions::TaskFaultOptions& tf = options_.task_faults;
  std::atomic<std::int64_t> reexecs{0};
  const exec::TaskBody body = [&](std::int64_t t, int rank) {
    const auto ru = static_cast<std::size_t>(rank);
    if (tf.enabled()) {
      // Lost attempts are decided before the kernel runs, so partial
      // contributions never touch the local J/K buffers; each loss just
      // costs its delay and the task goes again. The last attempt is
      // forced through.
      int attempt = 0;
      while (attempt + 1 < tf.max_attempts &&
             task_attempt_lost(tf, t, attempt)) {
        pgas::inject_delay(tf.reexec_delay_ns);
        ++attempt;
      }
      if (attempt > 0) {
        reexecs.fetch_add(attempt, std::memory_order_relaxed);
      }
    }
    fock_.execute_task(tasks_[static_cast<std::size_t>(t)],
                       local_density[ru], local_j[ru], local_k[ru]);
  };

  // Phase 1 (inside each scheduler's SPMD region is not possible here —
  // schedulers own the region), so fetch + accumulate are their own SPMD
  // phases around the scheduled execution. This mirrors GA codes:
  // GA_Get(P) ... do work ... GA_Acc(F) with barriers between phases.
  emc::Timer phase;
  {
    EMC_PROF_SPAN("fock/phase_get");
    runtime_->run([&](pgas::Context& ctx) {
      const auto ru = static_cast<std::size_t>(ctx.rank());
      density_ga.get(ctx.rank(), 0, 0, n, n,
                     std::span<double>(local_density[ru].data(), n * n),
                     ctx.cost_model());
    });
  }
  if (metrics_.phase_get != nullptr) metrics_.phase_get->add(phase.seconds());

  phase.reset();
  {
    EMC_PROF_SPAN("fock/phase_execute");
    switch (options_.model) {
      case ExecModel::kStatic:
        last_stats_ = exec::run_static(*runtime_, n_tasks, assignment, body);
        break;
      case ExecModel::kCounter:
        last_stats_ = exec::run_counter(*runtime_, n_tasks,
                                        options_.counter_chunk, body);
        break;
      case ExecModel::kWorkStealing:
        last_stats_ = exec::run_work_stealing(*runtime_, n_tasks, assignment,
                                              body, options_.steal);
        break;
    }
  }
  if (metrics_.phase_execute != nullptr) {
    metrics_.phase_execute->add(phase.seconds());
  }

  phase.reset();
  {
    EMC_PROF_SPAN("fock/phase_accumulate");
    runtime_->run([&](pgas::Context& ctx) {
      const auto ru = static_cast<std::size_t>(ctx.rank());
      j_ga.accumulate(ctx.rank(), 0, 0, n, n,
                      std::span<const double>(local_j[ru].data(), n * n),
                      ctx.cost_model());
      k_ga.accumulate(ctx.rank(), 0, 0, n, n,
                      std::span<const double>(local_k[ru].data(), n * n),
                      ctx.cost_model());
    });
  }
  if (metrics_.phase_accumulate != nullptr) {
    metrics_.phase_accumulate->add(phase.seconds());
  }

  linalg::Matrix j_total(n, n), k_total(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      j_total(r, c) = j_ga.at(r, c);
      k_total(r, c) = k_ga.at(r, c);
    }
  }
  ++builds_;
  last_reexecs_ = reexecs.load(std::memory_order_relaxed);
  if (metrics_.builds != nullptr) {
    metrics_.builds->add(1);
    metrics_.tasks->add(n_tasks);
    metrics_.task_reexecs->add(last_reexecs_);
    metrics_.kets_scanned->add(static_cast<std::int64_t>(scan_total_));
    metrics_.kets_survived->add(static_cast<std::int64_t>(survived_total_));
  }
  return chem::FockBuilder::combine_jk(j_total, k_total);
}

chem::GBuilder DistributedFockBuilder::as_g_builder() {
  return [this](const linalg::Matrix& density) { return build_g(density); };
}

}  // namespace emc::core
