#include "linalg/blas.hpp"

#include <stdexcept>

namespace emc::linalg {

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, b, 0.0, c);
  return c;
}

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  if (a.cols() != b.rows() || c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("gemm: shape mismatch");
  }
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows
  // of B and C.
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = &c(i, 0);
    if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * a(i, p);
      if (aip == 0.0) continue;
      const double* bp = b.row(p).data();
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) {
    throw std::invalid_argument("matvec: shape mismatch");
  }
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    const double* ai = a.row(i).data();
    for (std::size_t j = 0; j < a.cols(); ++j) s += ai[j] * x[j];
    y[i] = s;
  }
  return y;
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Matrix congruence(const Matrix& x, const Matrix& b) {
  return matmul(x.transposed(), matmul(b, x));
}

}  // namespace emc::linalg
