#pragma once

// Shared helpers for the experiment benches: standard workloads, the
// header every bench prints so runs are self-describing and replayable,
// and the JSON report writer the artifact-emitting benches share.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "sim/machine.hpp"

namespace emc::bench {

/// Peak resident-set size of this process so far, in bytes (0 where the
/// platform offers no getrusage). Linux reports ru_maxrss in KiB, macOS
/// in bytes; both are high-water marks, so call it at the end of a run
/// — or between phases to attribute growth — and report it alongside
/// timing: events/sec without the memory footprint hides half the
/// scalability story.
inline std::int64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(usage.ru_maxrss);
#else
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// Machine setup shared by every bench driver. `ppn > 0` pins the
/// procs-per-node (clamped to `procs`, typically from a --ppn flag);
/// `ppn == 0` keeps the benches' historical default of min(16, procs).
/// Centralized so the node topology is set one way everywhere and the
/// network model (MachineConfig::network) is layered on consistently.
inline sim::MachineConfig make_machine(int procs, int ppn = 0) {
  sim::MachineConfig config;
  config.n_procs = procs;
  config.procs_per_node =
      ppn > 0 ? std::min(ppn, procs) : std::min(16, procs);
  return config;
}

/// Streaming JSON emitter with automatic comma/indent management, shared
/// by every bench that writes a machine-readable report (BENCH_*.json).
/// Usage mirrors the document structure:
///
///   JsonWriter w(out);
///   w.begin_object();
///   w.field("bench", "bench_kernel");
///   w.begin_array("classes");
///   w.begin_object(); w.field("speedup", 3.1); w.end_object();
///   w.end_array();
///   w.end_object();
///
/// raw() splices pre-rendered JSON (e.g. MetricsRegistry::write_json
/// output) as a value without re-parsing it. Keys are expected to be
/// code-controlled; string values get minimal escaping (quote,
/// backslash, control characters).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object() { open('{'); }
  void begin_object(const std::string& key) { open_keyed(key, '{'); }
  void end_object() { close('}'); }
  void begin_array(const std::string& key) { open_keyed(key, '['); }
  void end_array() { close(']'); }

  void field(const std::string& key, const std::string& value) {
    key_prefix(key);
    out_ << quoted(value);
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  /// NaN/Inf have no JSON representation (streaming them produces `nan`
  /// / `inf` tokens no parser accepts) — they are emitted as null.
  void field(const std::string& key, double value) {
    key_prefix(key);
    write_double(value);
  }
  void field(const std::string& key, std::int64_t value) {
    key_prefix(key);
    out_ << value;
  }
  void field(const std::string& key, int value) {
    field(key, static_cast<std::int64_t>(value));
  }
  void field(const std::string& key, std::uint64_t value) {
    key_prefix(key);
    out_ << value;
  }
  void field(const std::string& key, bool value) {
    key_prefix(key);
    out_ << (value ? "true" : "false");
  }
  /// Splices `json` verbatim as the value of `key`.
  void raw(const std::string& key, const std::string& json) {
    key_prefix(key);
    out_ << json;
  }
  /// Scalar array element (null for NaN/Inf, as with field()).
  void value(double v) {
    element_prefix();
    write_double(v);
  }

 private:
  void write_double(double v) {
    if (std::isfinite(v)) {
      out_ << v;
    } else {
      out_ << "null";
    }
  }

  struct Frame {
    bool is_array = false;
    int count = 0;
  };

  static std::string quoted(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        q += '\\';
        q += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        q += buf;
      } else {
        q += c;
      }
    }
    q += '"';
    return q;
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
  }
  /// Comma + newline + indent before an element of the enclosing frame.
  void element_prefix() {
    if (!stack_.empty()) {
      if (stack_.back().count++ > 0) out_ << ",";
      out_ << "\n";
      indent();
    }
  }
  void key_prefix(const std::string& key) {
    element_prefix();
    out_ << quoted(key) << ": ";
  }
  void open(char bracket) {
    element_prefix();
    out_ << bracket;
    stack_.push_back(Frame{bracket == '[', 0});
  }
  void open_keyed(const std::string& key, char bracket) {
    key_prefix(key);
    out_ << bracket;
    stack_.push_back(Frame{bracket == '[', 0});
  }
  void close(char bracket) {
    const bool had_elements = !stack_.empty() && stack_.back().count > 0;
    if (!stack_.empty()) stack_.pop_back();
    if (had_elements) {
      out_ << "\n";
      indent();
    }
    out_ << bracket;
    if (stack_.empty()) out_ << "\n";
  }

  std::ostream& out_;
  std::vector<Frame> stack_;
};

/// Standard workload for cluster-scale simulations: a 27-molecule water
/// cluster (135 shells, 9180 shell-pair tasks) — large enough for 1024
/// simulated procs, small enough to build in seconds.
inline core::TaskModel standard_workload(
    const std::string& name = "water27") {
  core::TaskModelOptions options;
  options.basis_name = "sto-3g";
  return core::build_task_model(name, options);
}

inline void print_header(const std::string& experiment,
                         const std::string& claim,
                         const core::TaskModel& model,
                         std::uint64_t seed = 1) {
  std::cout << "##############################################\n"
            << "# " << experiment << "\n"
            << "# claim: " << claim << "\n"
            << "# workload: " << model.molecule.size() << " atoms, "
            << model.basis.function_count() << " basis functions, "
            << model.task_count() << " tasks, total cost "
            << model.total_cost() << " sim-seconds\n"
            << "# seed: " << seed << "\n"
            << "##############################################\n";
}

}  // namespace emc::bench
