// Discrete-event simulator tests: conservation laws, analytic cross
// checks, determinism, and the qualitative orderings the paper's
// experiments rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "lb/simple.hpp"
#include "sim/machine.hpp"
#include "sim/simulators.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::sim;
using emc::lb::Assignment;

MachineConfig quiet_machine(int procs) {
  MachineConfig config;
  config.n_procs = procs;
  config.procs_per_node = 8;
  return config;
}

std::vector<double> skewed_costs(std::size_t n, std::uint64_t seed) {
  emc::Rng rng(seed);
  std::vector<double> costs(n);
  for (auto& c : costs) c = std::exp(rng.uniform(-9.0, -4.0));  // heavy tail
  return costs;
}

std::int64_t total_tasks(const SimResult& r) {
  return std::accumulate(r.tasks_executed.begin(), r.tasks_executed.end(),
                         std::int64_t{0});
}

TEST(MachineConfigTest, TopologyLatencies) {
  MachineConfig c = quiet_machine(32);
  EXPECT_EQ(c.node_of(0), 0);
  EXPECT_EQ(c.node_of(7), 0);
  EXPECT_EQ(c.node_of(8), 1);
  EXPECT_DOUBLE_EQ(c.link_latency(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.link_latency(0, 1), c.intra_node_latency);
  EXPECT_DOUBLE_EQ(c.link_latency(0, 9), c.inter_node_latency);
}

TEST(CoreSpeedsTest, NoiseBounds) {
  MachineConfig c = quiet_machine(64);
  c.noise_amplitude = 0.3;
  const auto speeds = draw_core_speeds(c);
  ASSERT_EQ(speeds.size(), 64u);
  for (double s : speeds) {
    EXPECT_GT(s, 0.7 - 1e-12);
    EXPECT_LE(s, 1.0);
  }
  // No noise -> all exactly 1.
  c.noise_amplitude = 0.0;
  for (double s : draw_core_speeds(c)) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(SimulateStaticTest, MatchesHandComputedMakespan) {
  MachineConfig c = quiet_machine(2);
  c.task_overhead = 0.0;
  const std::vector<double> costs{1.0, 2.0, 3.0};
  const Assignment a{0, 0, 1};
  const SimResult r = simulate_static(c, costs, a);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.busy[0], 3.0);
  EXPECT_DOUBLE_EQ(r.busy[1], 3.0);
  EXPECT_DOUBLE_EQ(r.utilization(), 1.0);
  EXPECT_EQ(total_tasks(r), 3);
}

TEST(SimulateStaticTest, TaskOverheadCounted) {
  MachineConfig c = quiet_machine(1);
  c.task_overhead = 0.5;
  const std::vector<double> costs{1.0, 1.0};
  const SimResult r = simulate_static(c, costs, Assignment{0, 0});
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);   // 2 * (0.5 + 1.0)
  EXPECT_DOUBLE_EQ(r.busy[0], 2.0);    // overhead is not busy time
}

TEST(SimulateCounterTest, ExecutesEverythingOnce) {
  MachineConfig c = quiet_machine(8);
  const auto costs = skewed_costs(500, 3);
  const SimResult r = simulate_counter(c, costs, 5);
  EXPECT_EQ(total_tasks(r), 500);
  // Each proc ends with one failed grab; ops >= procs.
  EXPECT_GE(r.counter_ops, 8);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(SimulateCounterTest, SingleProcMatchesSerialTime) {
  MachineConfig c = quiet_machine(1);
  c.task_overhead = 0.0;
  c.counter_service = 0.0;
  const std::vector<double> costs{1.0, 2.0, 3.0};
  const SimResult r = simulate_counter(c, costs, 10);
  EXPECT_NEAR(r.makespan, 6.0, 1e-12);
}

TEST(SimulateCounterTest, ContentionGrowsWithProcs) {
  // With tiny tasks, the serialized counter dominates: per-op wait must
  // grow as more procs hammer it.
  const std::vector<double> costs(2000, 1e-7);
  MachineConfig small = quiet_machine(4);
  MachineConfig big = quiet_machine(64);
  const SimResult rs = simulate_counter(small, costs, 1);
  const SimResult rb = simulate_counter(big, costs, 1);
  const double wait_small =
      rs.counter_wait / static_cast<double>(rs.counter_ops);
  const double wait_big =
      rb.counter_wait / static_cast<double>(rb.counter_ops);
  EXPECT_GT(wait_big, wait_small);
}

TEST(SimulateCounterTest, LargerChunksReduceCounterOps) {
  const auto costs = skewed_costs(1000, 7);
  MachineConfig c = quiet_machine(16);
  const SimResult fine = simulate_counter(c, costs, 1);
  const SimResult coarse = simulate_counter(c, costs, 32);
  EXPECT_GT(fine.counter_ops, coarse.counter_ops);
}

TEST(SimulateStealTest, ExecutesEverythingOnce) {
  MachineConfig c = quiet_machine(16);
  const auto costs = skewed_costs(800, 11);
  const auto initial = emc::lb::block_assignment(costs.size(), 16);
  std::vector<int> executed_by;
  const SimResult r =
      simulate_work_stealing(c, costs, initial, {}, &executed_by);
  EXPECT_EQ(total_tasks(r), 800);
  for (int p : executed_by) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 16);
  }
}

TEST(SimulateStealTest, DeterministicForSeed) {
  MachineConfig c = quiet_machine(16);
  const auto costs = skewed_costs(500, 13);
  const auto initial = emc::lb::block_assignment(costs.size(), 16);
  StealOptions options;
  options.seed = 99;
  const SimResult a = simulate_work_stealing(c, costs, initial, options);
  const SimResult b = simulate_work_stealing(c, costs, initial, options);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
}

TEST(SimulateStealTest, RescuesPathologicalImbalance) {
  // All work on proc 0: static is serial, stealing must parallelize.
  MachineConfig c = quiet_machine(16);
  const std::vector<double> costs(512, 1e-4);
  const Assignment all_on_zero(costs.size(), 0);
  const SimResult ws = simulate_work_stealing(c, costs, all_on_zero);
  const SimResult st = simulate_static(c, costs, all_on_zero);
  EXPECT_GT(ws.steals, 0);
  EXPECT_LT(ws.makespan, 0.5 * st.makespan);
}

TEST(SimulateStealTest, NoStealsWhenPerfectlyBalanced) {
  // Identical costs, perfect initial balance, zero task overhead: every
  // proc finishes simultaneously, so failed attempts may occur at the
  // very end but successful steals should be rare or zero.
  MachineConfig c = quiet_machine(8);
  const std::vector<double> costs(800, 1e-5);
  const auto initial = emc::lb::block_assignment(costs.size(), 8);
  const SimResult r = simulate_work_stealing(c, costs, initial);
  EXPECT_EQ(total_tasks(r), 800);
  // With 100 equal tasks per proc, any steals that do happen must be few.
  EXPECT_LT(r.steals, 40);
}

TEST(SimulateStealTest, StealHalfMovesFewerRoundTrips) {
  // steal-half should need fewer successful steals than steal-one to
  // drain the same skewed distribution.
  MachineConfig c = quiet_machine(16);
  const std::vector<double> costs(1024, 5e-5);
  const Assignment all_on_zero(costs.size(), 0);
  StealOptions one;
  one.steal_half = false;
  StealOptions half;
  half.steal_half = true;
  const SimResult r1 = simulate_work_stealing(c, costs, all_on_zero, one);
  const SimResult rh = simulate_work_stealing(c, costs, all_on_zero, half);
  EXPECT_LT(rh.steals, r1.steals);
}

TEST(SimulateRetentiveTest, LaterRoundsImprove) {
  // Retention: round 2+ inherits the stolen placement, so steals and
  // makespan should drop relative to round 1.
  MachineConfig c = quiet_machine(32);
  const auto costs = skewed_costs(2048, 17);
  const Assignment all_on_zero(costs.size(), 0);
  const auto rounds = simulate_retentive(c, costs, all_on_zero, 5);
  ASSERT_EQ(rounds.size(), 5u);
  EXPECT_GT(rounds[0].steals, rounds[4].steals);
  EXPECT_GT(rounds[0].makespan, rounds[4].makespan);
  for (const auto& r : rounds) {
    EXPECT_EQ(total_tasks(r), 2048);
  }
}

TEST(SimulateNoiseTest, StaticDegradesStealingTolerates) {
  // The paper's "energy-induced variability" claim: static scheduling
  // eats the slowest core's slowdown; work stealing routes around it.
  const auto costs = skewed_costs(4096, 23);
  MachineConfig clean = quiet_machine(32);
  MachineConfig noisy = quiet_machine(32);
  noisy.noise_amplitude = 0.3;

  const auto lpt = emc::lb::lpt_assignment(costs, 32);
  const double static_clean =
      simulate_static(clean, costs, lpt).makespan;
  const double static_noisy =
      simulate_static(noisy, costs, lpt).makespan;
  const double ws_clean =
      simulate_work_stealing(clean, costs, lpt).makespan;
  const double ws_noisy =
      simulate_work_stealing(noisy, costs, lpt).makespan;

  const double static_hit = static_noisy / static_clean;
  const double ws_hit = ws_noisy / ws_clean;
  EXPECT_GT(static_hit, 1.15);  // static eats the slow core
  EXPECT_LT(ws_hit, static_hit);
}

TEST(SimulateTest, InputValidation) {
  MachineConfig c = quiet_machine(2);
  const std::vector<double> costs{1.0, -1.0};
  EXPECT_THROW(simulate_static(c, costs, Assignment{0, 1}),
               std::invalid_argument);
  const std::vector<double> ok{1.0, 1.0};
  EXPECT_THROW(simulate_static(c, ok, Assignment{0}),
               std::invalid_argument);
  EXPECT_THROW(simulate_counter(c, ok, 0), std::invalid_argument);
  MachineConfig bad = quiet_machine(0);
  EXPECT_THROW(simulate_static(bad, ok, Assignment{0, 0}),
               std::invalid_argument);
}

TEST(SimulateTest, EmptyTaskListIsFine) {
  MachineConfig c = quiet_machine(4);
  const std::vector<double> none;
  const SimResult r = simulate_static(c, none, Assignment{});
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  const SimResult rc = simulate_counter(c, none, 4);
  EXPECT_EQ(total_tasks(rc), 0);
  const SimResult rw = simulate_work_stealing(c, none, Assignment{});
  EXPECT_EQ(total_tasks(rw), 0);
}

}  // namespace
