# Empty dependencies file for bench_lb_cost.
# This may be replaced when dependencies are built.
