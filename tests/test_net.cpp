// Unit tests for src/net: topology routing, link-occupancy congestion,
// LogGP message costs, the simulators' network plumbing, and — most
// load-bearing — the legacy back-compat guarantee: a default (flat)
// NetworkConfig must reproduce the seed simulators bitwise.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/task_model.hpp"
#include "lb/simple.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "pgas/runtime.hpp"
#include "sim/simulators.hpp"
#include "util/rng.hpp"

namespace {

using emc::net::MessageCost;
using emc::net::NetworkConfig;
using emc::net::NetworkModel;
using emc::net::Topology;
using emc::net::TopologyKind;
using emc::sim::MachineConfig;
using emc::sim::SimResult;

std::vector<int> route_of(const Topology& topo, int a, int b) {
  std::vector<int> path;
  topo.route(a, b, path);
  return path;
}

// ---------------------------------------------------------------------------
// Topology
// ---------------------------------------------------------------------------

TEST(TopologyTest, NamesRoundTrip) {
  for (TopologyKind kind :
       {TopologyKind::kLegacyFlat, TopologyKind::kCrossbar,
        TopologyKind::kFatTree, TopologyKind::kTorus}) {
    EXPECT_EQ(emc::net::parse_topology(emc::net::topology_name(kind)),
              kind);
  }
  EXPECT_THROW(emc::net::parse_topology("dragonfly"),
               std::invalid_argument);
}

TEST(TopologyTest, CrossbarRoutesThroughBothNics) {
  NetworkConfig config;
  config.topology = TopologyKind::kCrossbar;
  const Topology topo = Topology::build(config, 4);
  EXPECT_EQ(topo.link_count(), 8);  // 4 nic-up + 4 nic-down
  const auto path = route_of(topo, 0, 3);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0);      // nic-up[0]
  EXPECT_EQ(path[1], 4 + 3);  // nic-down[3]
  EXPECT_TRUE(route_of(topo, 2, 2).empty());
  EXPECT_EQ(topo.hops(0, 3), 2);
  EXPECT_EQ(topo.hops(1, 1), 0);
}

TEST(TopologyTest, FatTreeAddsTrunkHopsAcrossSwitches) {
  NetworkConfig config;
  config.topology = TopologyKind::kFatTree;
  config.nodes_per_switch = 2;
  const Topology topo = Topology::build(config, 4);  // 2 leaf switches
  // Same switch: nic-up, nic-down only.
  EXPECT_EQ(route_of(topo, 0, 1).size(), 2u);
  EXPECT_EQ(topo.hops(0, 1), 2);
  // Cross switch: nic-up, leaf-up[0], leaf-down[1], nic-down.
  const auto path = route_of(topo, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 2 * 4 + 0);      // leaf-up[0]
  EXPECT_EQ(path[2], 2 * 4 + 2 + 1);  // leaf-down[1]
  EXPECT_EQ(path[3], 4 + 3);
  EXPECT_EQ(topo.hops(0, 3), 4);
}

TEST(TopologyTest, FatTreeTrunkCapacityFollowsOversubscription) {
  NetworkConfig config;
  config.topology = TopologyKind::kFatTree;
  config.nodes_per_switch = 4;
  config.oversubscription = 2;
  const Topology topo = Topology::build(config, 8);
  // NIC links are unit capacity; the trunked leaf uplinks carry
  // nodes_per_switch / oversubscription NIC-widths.
  EXPECT_EQ(topo.link_capacity(0), 1);
  EXPECT_EQ(topo.link_capacity(2 * 8 + 0), 2);
  config.oversubscription = 4;
  EXPECT_EQ(Topology::build(config, 8).link_capacity(2 * 8 + 0), 1);
}

TEST(TopologyTest, TorusUsesShortestWrapDimensionOrder) {
  NetworkConfig config;
  config.topology = TopologyKind::kTorus;
  config.torus_x = 3;
  config.torus_y = 3;
  const Topology topo = Topology::build(config, 9);
  // 0 -> 2 wraps backwards (-x): one hop, not two forward.
  const auto wrap = route_of(topo, 0, 2);
  ASSERT_EQ(wrap.size(), 1u);
  EXPECT_EQ(wrap[0], 0 * 4 + 1);  // cell 0, -x
  EXPECT_EQ(topo.hops(0, 2), 1);
  // 0 -> 4 routes x first (+x at cell 0), then y (+y at cell 1).
  const auto diag = route_of(topo, 0, 4);
  ASSERT_EQ(diag.size(), 2u);
  EXPECT_EQ(diag[0], 0 * 4 + 0);
  EXPECT_EQ(diag[1], 1 * 4 + 2);
  EXPECT_EQ(topo.hops(0, 4), 2);
}

TEST(TopologyTest, RejectsMalformedConfigs) {
  NetworkConfig config;
  config.topology = TopologyKind::kTorus;
  config.torus_x = 2;
  config.torus_y = 2;
  EXPECT_THROW(Topology::build(config, 5), std::invalid_argument);
  config = NetworkConfig{};
  config.topology = TopologyKind::kFatTree;
  config.nodes_per_switch = 0;
  EXPECT_THROW(Topology::build(config, 4), std::invalid_argument);
  config.nodes_per_switch = 4;
  config.oversubscription = 0;
  EXPECT_THROW(Topology::build(config, 4), std::invalid_argument);
  EXPECT_THROW(Topology::build(NetworkConfig{}, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// NetworkModel: LogGP costs and congestion
// ---------------------------------------------------------------------------

NetworkConfig crossbar_config(double bandwidth) {
  NetworkConfig config;
  config.topology = TopologyKind::kCrossbar;
  config.link_bandwidth = bandwidth;
  return config;
}

TEST(NetworkModelTest, MessageCostDecomposes) {
  NetworkConfig config = crossbar_config(1e6);
  config.per_message_overhead = 2e-6;
  // 2 procs, 1 per node -> inter-node, route = 2 unit-capacity links.
  NetworkModel net(config, 2, 1, 0.3e-6, 1.5e-6);
  const MessageCost cost = net.message_cost(0, 1, 1000);
  EXPECT_DOUBLE_EQ(cost.overhead, 2e-6);
  EXPECT_DOUBLE_EQ(cost.latency, 1.5e-6);
  EXPECT_DOUBLE_EQ(cost.serialization, 2.0 * 1000.0 / 1e6);
  EXPECT_DOUBLE_EQ(cost.total(),
                   cost.overhead + cost.latency + cost.serialization);
  // Local messages are free; same-node remote ones pay intra latency.
  EXPECT_DOUBLE_EQ(net.message_cost(0, 0, 1000).total(), 0.0);
}

TEST(NetworkModelTest, ConcurrentTransfersSerializeOnSharedLinks) {
  // 1 MB/s links, 1 MB messages: each link takes 1 s per message.
  NetworkModel net(crossbar_config(1e6), 2, 1, 0.3e-6, 1.5e-6);
  double w1 = 0.0, w2 = 0.0;
  const double first = net.send(0, 1, 0.0, 1000000, &w1);
  const double second = net.send(0, 1, 0.0, 1000000, &w2);
  // First: 1 s up + 1 s down + endpoint latency. Second queues a full
  // second behind the first on both links.
  EXPECT_DOUBLE_EQ(first, 2.0 + 1.5e-6);
  EXPECT_DOUBLE_EQ(second, 3.0 + 1.5e-6);
  EXPECT_DOUBLE_EQ(w1, 0.0);
  EXPECT_NEAR(w2, 1.0, 1e-9);
  EXPECT_EQ(net.stats().messages, 2);
  EXPECT_EQ(net.stats().congested_messages, 1);
  EXPECT_NEAR(net.stats().link_wait, 1.0, 1e-9);
  EXPECT_NEAR(net.max_link_busy(), 2.0, 1e-9);
  net.reset();
  EXPECT_EQ(net.stats().messages, 0);
  EXPECT_DOUBLE_EQ(net.max_link_busy(), 0.0);
}

TEST(NetworkModelTest, InfiniteBandwidthDegeneratesToLatency) {
  NetworkModel net(crossbar_config(0.0), 2, 1, 0.3e-6, 1.5e-6);
  // No serialization, no occupancy: both sends deliver at issue + L.
  EXPECT_EQ(net.send(0, 1, 0.25, 1 << 20), 0.25 + 1.5e-6);
  EXPECT_EQ(net.send(0, 1, 0.25, 1 << 20), 0.25 + 1.5e-6);
  EXPECT_EQ(net.stats().congested_messages, 0);
}

TEST(NetworkModelTest, OversubscribedTrunkIsSlower) {
  NetworkConfig config;
  config.topology = TopologyKind::kFatTree;
  config.nodes_per_switch = 4;
  config.link_bandwidth = 1e6;
  config.oversubscription = 1;
  NetworkModel full(config, 8, 1, 0.3e-6, 1.5e-6);
  config.oversubscription = 4;
  NetworkModel thin(config, 8, 1, 0.3e-6, 1.5e-6);
  // Cross-switch message: trunk capacity 4 vs 1.
  const double fast = full.send(0, 7, 0.0, 1000000);
  const double slow = thin.send(0, 7, 0.0, 1000000);
  EXPECT_GT(slow, fast);
}

// ---------------------------------------------------------------------------
// Legacy back-compat: the golden reference scenario
// ---------------------------------------------------------------------------

// Fixed scenario: P = 16, 4 procs/node, 64 lognormal-ish task costs from
// Rng(123). The expected values are hexfloat captures from the seed
// simulator (pre-src/net); a default NetworkConfig must reproduce them
// bit for bit. If a change legitimately alters the seed arithmetic,
// recapture — but that breaks EXP reproducibility, so think twice.
struct GoldenScenario {
  MachineConfig config;
  std::vector<double> costs;
  emc::lb::Assignment block;

  GoldenScenario() {
    config.n_procs = 16;
    config.procs_per_node = 4;
    emc::Rng rng(123);
    costs.resize(64);
    for (double& c : costs) c = std::exp(rng.uniform(-9.0, -4.0));
    block = emc::lb::block_assignment(costs.size(), config.n_procs);
  }
};

TEST(LegacyBackCompatTest, DefaultConfigReproducesSeedMakespansBitwise) {
  const GoldenScenario s;
  ASSERT_TRUE(s.config.network.legacy());
  EXPECT_EQ(emc::sim::simulate_static(s.config, s.costs, s.block).makespan,
            0x1.b1b46f96a036bp-6);
  EXPECT_EQ(emc::sim::simulate_counter(s.config, s.costs, 2).makespan,
            0x1.a0872850c722p-6);
  EXPECT_EQ(emc::sim::simulate_hierarchical_counter(s.config, s.costs, 8, 2)
                .makespan,
            0x1.6aef0ec5206f1p-6);
  EXPECT_EQ(
      emc::sim::simulate_hybrid(s.config, s.costs, s.block, 0.3, 2).makespan,
      0x1.7a32095efa335p-6);
  const SimResult ws =
      emc::sim::simulate_work_stealing(s.config, s.costs, s.block);
  EXPECT_EQ(ws.makespan, 0x1.6f3cbb768439cp-6);
  EXPECT_EQ(ws.steals, 15);
}

TEST(LegacyBackCompatTest, BandwidthFieldsAreInertUnderFlatTopology) {
  // Satellite guarantee: flat topology + infinite bandwidth + zero
  // per-byte cost is the seed model, whatever the sizing fields say.
  GoldenScenario s;
  s.config.network.link_bandwidth = 0.0;   // infinite
  s.config.network.per_message_overhead = 0.0;
  s.config.network.task_payload_bytes = 1 << 20;
  s.config.network.control_bytes = 4096;
  ASSERT_TRUE(s.config.network.legacy());
  EXPECT_EQ(emc::sim::simulate_counter(s.config, s.costs, 2).makespan,
            0x1.a0872850c722p-6);
  const SimResult ws =
      emc::sim::simulate_work_stealing(s.config, s.costs, s.block);
  EXPECT_EQ(ws.makespan, 0x1.6f3cbb768439cp-6);
}

TEST(LegacyBackCompatTest, UncongestedCrossbarMatchesCounterFamilyBitwise) {
  // With infinite bandwidth, zero overhead, and zero payload, crossbar
  // routing adds only exact +0.0 terms to every counter-family leg, so
  // even a non-legacy topology reproduces the seed makespans.
  GoldenScenario s;
  s.config.network.topology = TopologyKind::kCrossbar;
  s.config.network.link_bandwidth = 0.0;
  ASSERT_FALSE(s.config.network.legacy());
  EXPECT_EQ(emc::sim::simulate_counter(s.config, s.costs, 2).makespan,
            0x1.a0872850c722p-6);
  EXPECT_EQ(emc::sim::simulate_hierarchical_counter(s.config, s.costs, 8, 2)
                .makespan,
            0x1.6aef0ec5206f1p-6);
  EXPECT_EQ(
      emc::sim::simulate_hybrid(s.config, s.costs, s.block, 0.3, 2).makespan,
      0x1.7a32095efa335p-6);
}

// ---------------------------------------------------------------------------
// Simulator plumbing: sized messages, congestion surfaced in results
// ---------------------------------------------------------------------------

TEST(SimulatorNetTest, CounterRunPopulatesNetStats) {
  GoldenScenario s;
  s.config.network.topology = TopologyKind::kCrossbar;
  const SimResult r = emc::sim::simulate_counter(s.config, s.costs, 2);
  EXPECT_GT(r.net_messages, 0);
  EXPECT_GT(r.net_bytes, 0.0);
}

TEST(SimulatorNetTest, PayloadFetchesEmitNetTransferEvents) {
  GoldenScenario s;
  s.config.network.topology = TopologyKind::kCrossbar;
  s.config.network.task_payload_bytes = 64 * 1024;
  s.config.network.link_bandwidth = 1e9;
  s.config.record_trace = true;
  const SimResult r = emc::sim::simulate_counter(s.config, s.costs, 2);
  int transfers = 0;
  for (const auto& ev : r.trace) {
    if (ev.type == emc::sim::TraceEventType::kNetTransfer) ++transfers;
  }
  EXPECT_GT(transfers, 0);
  EXPECT_STREQ(
      emc::sim::trace_event_name(emc::sim::TraceEventType::kNetTransfer),
      "net-transfer");
  EXPECT_STREQ(
      emc::sim::trace_event_name(emc::sim::TraceEventType::kLinkWait),
      "link-wait");
}

TEST(SimulatorNetTest, OversubscribedFatTreeCongestsAndSlowsRun) {
  GoldenScenario s;
  const double legacy_makespan =
      emc::sim::simulate_counter(s.config, s.costs, 2).makespan;

  s.config.network.topology = TopologyKind::kFatTree;
  s.config.network.nodes_per_switch = 2;
  s.config.network.oversubscription = 2;
  s.config.network.link_bandwidth = 1e8;
  s.config.network.task_payload_bytes = 256 * 1024;
  const SimResult congested =
      emc::sim::simulate_counter(s.config, s.costs, 2);
  EXPECT_GT(congested.net_link_wait, 0.0);
  EXPECT_GT(congested.net_congested, 0);
  EXPECT_GT(congested.makespan, legacy_makespan);
}

TEST(SimulatorNetTest, WorkStealingChargesSizedResponses) {
  GoldenScenario s;
  s.config.network.topology = TopologyKind::kCrossbar;
  s.config.network.link_bandwidth = 1e8;
  s.config.network.task_payload_bytes = 256 * 1024;
  const SimResult ws =
      emc::sim::simulate_work_stealing(s.config, s.costs, s.block);
  EXPECT_GT(ws.net_messages, 0);
  // Steal responses carry payloads: bytes moved must exceed the pure
  // control traffic of the same message count.
  EXPECT_GT(ws.net_bytes,
            static_cast<double>(ws.net_messages) *
                static_cast<double>(s.config.network.control_bytes));
}

TEST(SimulatorNetTest, DeterministicUnderCongestion) {
  GoldenScenario s;
  s.config.network.topology = TopologyKind::kFatTree;
  s.config.network.nodes_per_switch = 2;
  s.config.network.oversubscription = 2;
  s.config.network.link_bandwidth = 1e8;
  s.config.network.task_payload_bytes = 128 * 1024;
  const SimResult a = emc::sim::simulate_counter(s.config, s.costs, 4);
  const SimResult b = emc::sim::simulate_counter(s.config, s.costs, 4);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.net_link_wait, b.net_link_wait);
  EXPECT_EQ(a.net_messages, b.net_messages);
}

// ---------------------------------------------------------------------------
// PGAS cost model + task payload sizing
// ---------------------------------------------------------------------------

TEST(CommCostModelTest, FromTopologyLegacyMapsToEndpointLatencies) {
  const auto cost = emc::pgas::CommCostModel::from_topology(
      NetworkConfig{}, 8, 4);
  EXPECT_EQ(cost.local_ns, 300u);
  EXPECT_EQ(cost.remote_ns, 1500u);
  EXPECT_EQ(cost.per_byte_ns, 0u);
  EXPECT_EQ(cost.counter_ns, 3000u);
}

TEST(CommCostModelTest, FromTopologyPricesBandwidthAndHops) {
  NetworkConfig config = crossbar_config(1e9);
  config.per_message_overhead = 0.5e-6;
  const auto cost =
      emc::pgas::CommCostModel::from_topology(config, 8, 1);
  // Every inter-node route is 2 unit-capacity links at 1 GB/s: 2 ns/B.
  EXPECT_EQ(cost.per_byte_ns, 2u);
  EXPECT_EQ(cost.remote_ns, 2000u);  // 1.5 us + 0.5 us overhead
  EXPECT_EQ(cost.counter_ns, 2 * cost.remote_ns);
  EXPECT_THROW(
      emc::pgas::CommCostModel::from_topology(NetworkConfig{}, 0, 1),
      std::invalid_argument);
}

TEST(TaskPayloadTest, MeanTaskCommBytesMatchesStripeSizes) {
  const emc::core::TaskModel model = emc::core::build_task_model("water");
  const std::size_t bytes = emc::core::mean_task_comm_bytes(model);
  EXPECT_GT(bytes, 0u);
  // Upper bound: no task can move more than four full stripes of the
  // widest shell (cartesian d = 6 functions) in each direction.
  const std::size_t n =
      static_cast<std::size_t>(model.basis.function_count());
  EXPECT_LE(bytes, 8u * 4u * 6u * n);
  EXPECT_EQ(emc::core::mean_task_comm_bytes(emc::core::TaskModel{}), 0u);
}

}  // namespace
