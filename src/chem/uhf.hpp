#pragma once

// Unrestricted Hartree-Fock for open-shell systems. Spin-alpha and
// spin-beta orbitals are optimized independently:
//
//   F_a = H + J(P_a + P_b) - K(P_a),   F_b likewise.
//
// The two-electron work reuses the same shell-pair task machinery as
// RHF; each UHF iteration executes the task list once per spin density,
// so every parallel executor studied in this library applies unchanged.

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"
#include "linalg/matrix.hpp"

namespace emc::chem {

struct UhfOptions {
  int max_iterations = 200;
  double energy_tolerance = 1e-9;
  double error_tolerance = 1e-6;
  double screen_threshold = 1e-10;
  int net_charge = 0;
  /// 2S+1; 1 = singlet, 2 = doublet, ... Electron parity must match.
  int multiplicity = 1;
  /// Mixing factor applied to the beta HOMO/LUMO guess to break
  /// alpha/beta symmetry for singlet diradicals (0 disables).
  double guess_mix = 0.0;
};

struct UhfResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;
  double electronic_energy = 0.0;
  double nuclear_repulsion = 0.0;
  int n_alpha = 0;
  int n_beta = 0;
  /// <S^2> expectation value; (S(S+1)) for a pure spin state.
  double s_squared = 0.0;
  std::vector<double> alpha_orbital_energies;
  std::vector<double> beta_orbital_energies;
  linalg::Matrix density_alpha;  ///< P_a (occupation 1 per spin orbital)
  linalg::Matrix density_beta;
};

/// Runs UHF. Throws std::invalid_argument if charge/multiplicity are
/// inconsistent with the electron count.
UhfResult run_uhf(const Molecule& molecule, const BasisSet& basis,
                  const UhfOptions& options = {});

}  // namespace emc::chem
