// EXP-15: fit analytic performance models on small-P simulation sweeps,
// validate them on held-out larger P, and extrapolate to the P = 1M
// regime no discrete-event replay can reach.
//
// The paper's question — which execution model wins at scale? — is
// answered here twice: by the simulator where it can afford to run, and
// by compositional PMNF models (src/perfmodel) everywhere else. Each
// (execution model, topology) pair gets a composed model built along
// the simulator's own structure:
//
//   makespan ~ serial( compute span      B = max per-proc busy (flat),
//                      protocol overhead O = makespan_flat - B,
//                      link contention   N = makespan_topo - makespan_flat )
//
// with each leaf fitted independently by cross-validated NNLS over a
// small PMNF basis in (procs, intensity). Training sweeps are ordinary
// identity-keyed bench cells, so the fitter can equally train from this
// bench's own fresh runs or from a checked-in BENCH_model_fit.json via
// --train-from (the bench_model_fit_ingest ctest gate does exactly
// that).
//
// Self-checks (exit nonzero on violation; the ctest smoke gates):
//   1. accuracy: per (model, topology), the median relative error of
//      the predictions at held-out P — none seen in training, the
//      largest >= 4x the largest training P — is <= 15%;
//   2. ranking: at the largest held-out P, ordering the execution
//      models by predicted makespan reproduces the simulated ordering
//      on every topology (pairs the simulation separates by <= 5% are
//      crossing near that P and do not gate);
//   3. ingest round trip: re-parsing the just-written report and
//      refitting from its sweep cells reproduces every leaf coefficient
//      bitwise (format_double round-trips exactly; identities key the
//      CV split);
//   4. the report re-parses with a valid manifest envelope.
//
// The report's "extrapolation" section carries the P = 1M headline:
// per topology, the predicted makespan of every execution model at
// P = 1M, the winning model, and the crossover points where the
// predicted winner changes between the largest training P and 1M.
//
// Flags:
//   --smoke            small sweep + all gates (CI)
//   --train-from=PATH  ingest the training sweep from an existing
//                      report instead of simulating it (held-out
//                      validation points are always simulated fresh)
//   --mean-cost=S      mean synthetic task cost, sim-seconds (1e-5)
//   --report=PATH      JSON report (default BENCH_model_fit.json)
//   --seed=N           workload + CV-split seed (default 1)
//   --profile          enable the scoped-span profiler

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lb/simple.hpp"
#include "net/topology.hpp"
#include "perfmodel/compose.hpp"
#include "perfmodel/fit.hpp"
#include "perfmodel/sweep_ingest.hpp"
#include "perfmodel/term_basis.hpp"
#include "sim/simulators.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;
using namespace emc::sim;
namespace pm = emc::perfmodel;

struct Options {
  bool smoke = false;
  bool profile = false;
  /// Mean task cost is set low enough that every protocol's
  /// serialization knee (counter saturates at P ~ mean / service) sits
  /// BELOW the training range: extrapolating a fit across a regime
  /// change is exactly the failure mode the paper warns about, so the
  /// sweep trains where the asymptotic shapes already dominate.
  double mean_cost = 2.0e-6;
  std::string report_path = "BENCH_model_fit.json";
  std::string train_from;
  std::uint64_t seed = 1;
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--profile") {
      opt.profile = true;
    } else if (parse_flag(arg, "mean-cost", &value)) {
      opt.mean_cost = std::stod(value);
    } else if (parse_flag(arg, "report", &value)) {
      opt.report_path = value;
    } else if (parse_flag(arg, "train-from", &value)) {
      opt.train_from = value;
    } else if (parse_flag(arg, "seed", &value)) {
      opt.seed = std::stoull(value);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Enough tasks per proc that max-of-blocks order statistics and steal
/// counts are smooth across P — the fit should see protocol shapes, not
/// sampling noise.
constexpr int kTasksPerProc = 64;
/// Small nodes keep the fat-tree's leaf count meaningful at the bottom
/// of the training range (P=64 -> 4 leaf switches): trunk congestion is
/// already in its asymptotic shape instead of switching on mid-sweep.
constexpr int kProcsPerNode = 8;
/// Counter service well above both the per-payload transfer time
/// (0.25 * mean task) and the refill round-trip latency: acquisition —
/// the protocol under study — is then the scaling bottleneck
/// everywhere, with the counters fully saturated from the bottom of
/// the sweep. With the default service the counter serves a 64-task
/// home stripe faster than that home's NIC can push the payloads (the
/// net term becomes burst-queueing noise no analytic form
/// extrapolates), and the hierarchical counter's global home idles
/// between refills (a gap regime whose slope drifts with intensity and
/// P until far beyond the training range).
constexpr double kCounterService = 5.0e-6;
/// Heterogeneity axis: task costs ~ mean * uniform(1 - h, 1 + h).
constexpr double kTrainIntensities[] = {0.3, 0.6, 0.9};
constexpr double kHoldoutIntensities[] = {0.6, 0.9};
constexpr double kIntensityHi = 0.9;  ///< ranking / extrapolation point
constexpr char kFlat[] = "flat";
constexpr char kFatTree[] = "fat-tree";

/// Stateless per-(P, intensity) workload seed, so a cell's cost vector
/// never depends on sweep order or on which cells were simulated.
std::uint64_t cell_seed(std::uint64_t seed, int procs, double intensity) {
  std::uint64_t state =
      seed ^ (static_cast<std::uint64_t>(procs) * 0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(intensity * 10.0 + 0.5) << 32);
  return splitmix64(state);
}

std::vector<double> synthetic_costs(std::int64_t n, double mean,
                                    double intensity, std::uint64_t seed) {
  std::vector<double> costs(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (double& c : costs) {
    c = rng.uniform(1.0 - intensity, 1.0 + intensity) * mean;
  }
  return costs;
}

struct ModelDef {
  std::string name;
  std::function<SimResult(const MachineConfig&, std::span<const double>,
                          const lb::Assignment&)>
      run;
};

std::vector<ModelDef> execution_models(const Options& opt) {
  return {
      {"static",
       [](const MachineConfig& c, std::span<const double> costs,
          const lb::Assignment& block) {
         return simulate_static(c, costs, block);
       }},
      {"counter",
       [](const MachineConfig& c, std::span<const double> costs,
          const lb::Assignment&) {
         return simulate_counter(c, costs, /*chunk=*/1);
       }},
      {"hier",
       [](const MachineConfig& c, std::span<const double> costs,
          const lb::Assignment&) {
         // Chunk 2 keeps the global counter fully saturated across the
         // sweep (like the flat counter, at half the grab rate): a
         // partially saturated counter's slope varies with intensity in
         // a direction the non-negative basis cannot express.
         return simulate_hierarchical_counter(c, costs, /*node_chunk=*/2,
                                              /*proc_chunk=*/1);
       }},
      {"ws",
       [opt](const MachineConfig& c, std::span<const double> costs,
             const lb::Assignment& block) {
         StealOptions steal;
         steal.seed = opt.seed + 7;
         // Node-first victims keep cross-fabric steal traffic bounded:
         // uniform stealing's payload waits saturate toward a plateau
         // no polynomial-log basis can express.
         steal.victim = VictimPolicy::kNodeFirst;
         return simulate_work_stealing(c, costs, block, steal);
       }},
  };
}

/// The contended fabric of the sweep: a 2:1-oversubscribed fat-tree
/// sized so one task payload costs a quarter of a mean task on its NIC
/// link — enough that the fabric visibly taxes the dynamic protocols
/// (round trips and payload drains on every remote grab) without the
/// payload bursts themselves becoming the bottleneck (see
/// kCounterService).
net::NetworkConfig fat_tree_network(double mean_cost) {
  net::NetworkConfig config;
  config.topology = net::TopologyKind::kFatTree;
  config.nodes_per_switch = 2;
  config.oversubscription = 2;
  config.task_payload_bytes = 512;
  config.link_bandwidth = 512.0 / (0.25 * mean_cost);
  return config;
}

pm::SweepCell make_cell(const std::string& model,
                        const std::string& topology, int procs,
                        double intensity, double makespan, double compute,
                        double protocol, double net) {
  pm::SweepCell cell;
  cell.labels["model"] = model;
  cell.labels["topology"] = topology;
  cell.values["procs"] = static_cast<double>(procs);
  cell.values["intensity"] = intensity;
  cell.values["makespan_s"] = makespan;
  cell.values["compute_s"] = compute;
  cell.values["protocol_s"] = protocol;
  cell.values["net_s"] = net;
  return cell;
}

/// Runs `model` at (procs, intensity) on the flat and fat-tree fabrics
/// and decomposes the makespan into the compositional components.
/// Returns the flat cell and the fat-tree cell.
std::vector<pm::SweepCell> measure(const Options& opt, const ModelDef& model,
                                   int procs, double intensity) {
  const std::int64_t tasks =
      static_cast<std::int64_t>(procs) * kTasksPerProc;
  const std::vector<double> costs = synthetic_costs(
      tasks, opt.mean_cost, intensity, cell_seed(opt.seed, procs, intensity));
  const lb::Assignment block = lb::block_assignment(costs.size(), procs);

  MachineConfig flat = bench::make_machine(procs, kProcsPerNode);
  flat.scheduler = SchedulerKind::kCalendarQueue;
  flat.counter_service = kCounterService;
  MachineConfig fat = flat;
  fat.network = fat_tree_network(opt.mean_cost);

  const SimResult flat_run = model.run(flat, costs, block);
  const SimResult fat_run = model.run(fat, costs, block);

  const double compute =
      *std::max_element(flat_run.busy.begin(), flat_run.busy.end());
  const double protocol = std::max(0.0, flat_run.makespan - compute);
  const double net = std::max(0.0, fat_run.makespan - flat_run.makespan);

  return {make_cell(model.name, kFlat, procs, intensity, flat_run.makespan,
                    compute, protocol, 0.0),
          make_cell(model.name, kFatTree, procs, intensity,
                    fat_run.makespan, compute, protocol, net)};
}

pm::Sweep simulate_training(const Options& opt,
                            const std::vector<ModelDef>& models,
                            const std::vector<int>& train_procs) {
  pm::Sweep sweep;
  for (const ModelDef& model : models) {
    for (const int procs : train_procs) {
      for (const double intensity : kTrainIntensities) {
        for (pm::SweepCell& cell : measure(opt, model, procs, intensity)) {
          sweep.cells.push_back(std::move(cell));
        }
      }
    }
  }
  return sweep;
}

/// The PMNF hypothesis grid: procs terms (polynomial x polylog),
/// intensity terms, and procs x intensity interactions. The procs grid
/// is capped at exponent 1: nothing in these execution models scales
/// worse than linear x polylog in P (serialization at a single home is
/// the worst case), and superlinear hypotheses exist only to mimic
/// regime knees inside the training range — the classic way an
/// extrapolating fit goes wrong.
std::vector<pm::Term> candidate_terms() {
  pm::BasisOptions procs_grid;
  procs_grid.exponents = {0.0, 0.5, 1.0};
  procs_grid.log_exponents = {0, 1, 2};
  const std::vector<pm::Term> procs =
      pm::predictor_terms("procs", procs_grid);
  pm::BasisOptions intensity_grid;
  intensity_grid.exponents = {0.0, 1.0, 2.0};
  intensity_grid.log_exponents = {0};
  const std::vector<pm::Term> intensity =
      pm::predictor_terms("intensity", intensity_grid);
  std::vector<pm::Term> candidates = procs;
  candidates.insert(candidates.end(), intensity.begin(), intensity.end());
  const std::vector<pm::Term> crosses =
      pm::cross_terms(procs, {intensity.front()});  // * intensity^1
  candidates.insert(candidates.end(), crosses.begin(), crosses.end());
  return candidates;
}

struct GroupModel {
  std::string model;
  std::string topology;
  pm::FittedModel compute;
  pm::FittedModel protocol;
  pm::FittedModel net;  ///< fat-tree groups only
  pm::ComposedModel composed;
  std::vector<double> holdout_errors;

  double holdout_median() const {
    std::vector<double> sorted = holdout_errors;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    if (n == 0) return 0.0;
    return n % 2 == 1 ? sorted[n / 2]
                      : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  }
};

GroupModel fit_group(const pm::Sweep& sweep, const std::string& model,
                     const std::string& topology,
                     const std::vector<pm::Term>& candidates,
                     const pm::FitOptions& options) {
  const std::map<std::string, std::string> flat_labels{
      {"model", model}, {"topology", kFlat}};
  const std::vector<std::string> predictors{"procs", "intensity"};

  // Compute span and protocol overhead are topology-independent by
  // construction (decomposed on the flat fabric); the net leaf carries
  // everything the contended topology adds.
  const pm::FittedModel compute = pm::fit_model(
      candidates,
      pm::to_samples(sweep, flat_labels, predictors, "compute_s"), options);
  const pm::FittedModel protocol = pm::fit_model(
      candidates,
      pm::to_samples(sweep, flat_labels, predictors, "protocol_s"),
      options);

  std::vector<pm::ComposedModel> parts{
      pm::ComposedModel::leaf(compute, "compute"),
      pm::ComposedModel::leaf(protocol, "protocol")};
  pm::FittedModel net;
  if (topology != kFlat) {
    net = pm::fit_model(
        candidates,
        pm::to_samples(sweep, {{"model", model}, {"topology", topology}},
                       predictors, "net_s"),
        options);
    parts.push_back(pm::ComposedModel::leaf(net, "net"));
  }
  pm::ComposedModel composed =
      pm::ComposedModel::serial(std::move(parts), model + "@" + topology);
  return GroupModel{model,        topology, compute, protocol, net,
                    std::move(composed), {}};
}

std::vector<GroupModel> fit_all(const pm::Sweep& sweep,
                                const std::vector<ModelDef>& models,
                                const std::vector<pm::Term>& candidates,
                                const pm::FitOptions& options) {
  std::vector<GroupModel> groups;
  for (const std::string& topology : {std::string(kFlat),
                                      std::string(kFatTree)}) {
    for (const ModelDef& model : models) {
      groups.push_back(
          fit_group(sweep, model.name, topology, candidates, options));
    }
  }
  return groups;
}

bool leaves_bitwise_equal(const GroupModel& a, const GroupModel& b) {
  const auto equal = [](const pm::FittedModel& x, const pm::FittedModel& y) {
    if (x.coefficients.size() != y.coefficients.size()) return false;
    for (std::size_t i = 0; i < x.coefficients.size(); ++i) {
      if (x.coefficients[i] != y.coefficients[i]) return false;
      if (!(x.terms[i] == y.terms[i])) return false;
    }
    return true;
  };
  return equal(a.compute, b.compute) && equal(a.protocol, b.protocol) &&
         equal(a.net, b.net);
}

struct HoldoutPoint {
  std::string model;
  std::string topology;
  int procs = 0;
  double intensity = 0.0;
  double simulated = 0.0;
  double predicted = 0.0;

  double rel_error() const {
    return std::abs(predicted - simulated) /
           std::max(std::abs(simulated), 1e-12);
  }
};

struct Crossover {
  std::string before;  ///< predicted winner below the crossover
  std::string after;   ///< predicted winner above it
  double procs = 0.0;  ///< geometric midpoint of the bracketing grid Ps
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (opt.profile) emc::util::Profiler::global().set_enabled(true);

  std::cout << "##############################################\n"
            << "# bench_model_fit (EXP-15): analytic performance models\n"
            << "# claim: compositional PMNF fits trained on small-P\n"
            << "#   sweeps predict held-out larger-P makespans and\n"
            << "#   extrapolate the execution-model ranking to P = 1M\n"
            << "# seed: " << opt.seed << "\n"
            << "##############################################\n";

  const std::vector<int> train_procs =
      opt.smoke
          ? std::vector<int>{64, 96, 128, 192, 256, 384, 512, 768, 1024}
          : std::vector<int>{64, 96, 128, 192, 256, 384, 512, 768, 1024,
                             1536, 2048};
  const std::vector<int> holdout_procs =
      opt.smoke ? std::vector<int>{4096} : std::vector<int>{8192};
  const std::vector<ModelDef> models = execution_models(opt);

  // --- Training sweep ---------------------------------------------------
  pm::Sweep sweep;
  if (opt.train_from.empty()) {
    std::cout << "\ntraining sweep (fresh simulation, P in {";
    for (std::size_t i = 0; i < train_procs.size(); ++i) {
      std::cout << (i ? ", " : "") << train_procs[i];
    }
    std::cout << "}):\n";
    sweep = simulate_training(opt, models, train_procs);
  } else {
    std::cout << "\ntraining sweep ingested from " << opt.train_from
              << ":\n";
    std::ifstream in(opt.train_from);
    if (!in) {
      std::cerr << "FAIL: cannot read " << opt.train_from << "\n";
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      sweep = pm::load_sweep_text(buf.str(), "sweep");
    } catch (const std::exception& e) {
      std::cerr << "FAIL: ingest: " << e.what() << "\n";
      return 1;
    }
  }
  int max_train_procs = 0;
  for (const pm::SweepCell& cell : sweep.cells) {
    max_train_procs = std::max(
        max_train_procs, static_cast<int>(cell.values.at("procs")));
  }
  std::cout << "  " << sweep.cells.size() << " cells, largest P "
            << max_train_procs << "\n";

  // --- Fits -------------------------------------------------------------
  pm::FitOptions fit_options;
  fit_options.seed = opt.seed;
  // Stricter than the library default: a term must buy a 5% CV
  // improvement to enter. Slow-growth leaves (static compute, ws net)
  // otherwise admit noise terms that dominate at extrapolated P.
  fit_options.min_improvement = 0.05;
  const std::vector<pm::Term> candidates = candidate_terms();
  const std::vector<GroupModel> fitted =
      fit_all(sweep, models, candidates, fit_options);
  std::vector<GroupModel> groups = fitted;  // gains holdout errors below
  std::cout << "\nfitted models (" << candidates.size()
            << " candidate terms each):\n";
  for (const GroupModel& g : groups) {
    std::cout << g.composed.describe(1);
  }

  // --- Held-out validation ---------------------------------------------
  std::cout << "\nheld-out validation (fresh simulation, P in {";
  for (std::size_t i = 0; i < holdout_procs.size(); ++i) {
    std::cout << (i ? ", " : "") << holdout_procs[i];
  }
  std::cout << "}, intensities {";
  for (std::size_t i = 0; i < std::size(kHoldoutIntensities); ++i) {
    std::cout << (i ? ", " : "") << kHoldoutIntensities[i];
  }
  std::cout << "}):\n";
  if (holdout_procs.back() < 4 * max_train_procs) {
    std::cerr << "FAIL: largest holdout P " << holdout_procs.back()
              << " is under 4x the largest training P " << max_train_procs
              << "\n";
    return 1;
  }

  std::vector<HoldoutPoint> holdout;
  for (const ModelDef& model : models) {
    for (const int procs : holdout_procs) {
      for (const double intensity : kHoldoutIntensities) {
        const std::vector<pm::SweepCell> cells =
            measure(opt, model, procs, intensity);
        for (const pm::SweepCell& cell : cells) {
          HoldoutPoint point;
          point.model = model.name;
          point.topology = cell.labels.at("topology");
          point.procs = procs;
          point.intensity = intensity;
          point.simulated = cell.values.at("makespan_s");
          holdout.push_back(point);
        }
      }
    }
  }
  const pm::Point one_million{{"procs", 1.0e6},
                              {"intensity", kIntensityHi}};
  for (GroupModel& g : groups) {
    for (HoldoutPoint& point : holdout) {
      if (point.model != g.model || point.topology != g.topology) continue;
      point.predicted = g.composed.evaluate(
          {{"procs", static_cast<double>(point.procs)},
           {"intensity", point.intensity}});
      g.holdout_errors.push_back(point.rel_error());
    }
  }

  bool accuracy_ok = true;
  for (const GroupModel& g : groups) {
    const double median = g.holdout_median();
    const bool ok = median <= 0.15;
    accuracy_ok = accuracy_ok && ok;
    std::cout << "  " << g.model << " @ " << g.topology
              << ": median holdout error " << median * 100.0 << "%"
              << (ok ? "" : "  FAIL (> 15%)") << "\n";
    if (!ok) {
      std::cerr << "FAIL: " << g.model << " @ " << g.topology
                << " misses the 15% holdout gate\n";
    }
  }

  // --- Ranking at the largest held-out P --------------------------------
  const int rank_procs = holdout_procs.back();
  bool ranking_ok = true;
  std::vector<std::pair<std::string, std::string>> rankings;  // topo, order
  for (const std::string& topology : {std::string(kFlat),
                                      std::string(kFatTree)}) {
    std::vector<const HoldoutPoint*> at_p;
    for (const HoldoutPoint& point : holdout) {
      if (point.topology == topology && point.procs == rank_procs &&
          point.intensity == kIntensityHi) {
        at_p.push_back(&point);
      }
    }
    auto order = [&](auto key) {
      std::vector<const HoldoutPoint*> sorted = at_p;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [&](const HoldoutPoint* a, const HoldoutPoint* b) {
                         return key(*a) < key(*b);
                       });
      std::string names;
      for (const HoldoutPoint* p : sorted) {
        if (!names.empty()) names += " < ";
        names += p->model;
      }
      return names;
    };
    const std::string simulated =
        order([](const HoldoutPoint& p) { return p.simulated; });
    const std::string predicted =
        order([](const HoldoutPoint& p) { return p.predicted; });
    // Pairwise gate with a near-tie tolerance: a swap only fails when
    // the simulation clearly separates the pair. Two models whose
    // simulated makespans sit within 5% of each other are crossing
    // right around this P, and their order is not a modelling claim.
    bool ok = true;
    for (std::size_t i = 0; i < at_p.size(); ++i) {
      for (std::size_t j = i + 1; j < at_p.size(); ++j) {
        const HoldoutPoint& a = *at_p[i];
        const HoldoutPoint& b = *at_p[j];
        const double gap = std::abs(a.simulated - b.simulated) /
                           std::max(a.simulated, b.simulated);
        if (gap <= 0.05) continue;
        ok = ok && ((a.simulated < b.simulated) ==
                    (a.predicted < b.predicted));
      }
    }
    ranking_ok = ranking_ok && ok;
    rankings.emplace_back(topology, simulated);
    std::cout << "  ranking @ " << topology << " P=" << rank_procs
              << ": simulated [" << simulated << "], predicted ["
              << predicted << "]"
              << (ok ? (simulated == predicted ? "" : "  (near-tie swap)")
                     : "  FAIL")
              << "\n";
    if (!ok) {
      std::cerr << "FAIL: predicted ranking diverges from simulated on "
                << topology << "\n";
    }
  }

  // --- Extrapolation to P = 1M ------------------------------------------
  struct Extrapolation {
    std::string topology;
    std::vector<std::pair<std::string, double>> at_1m;  // model, seconds
    std::string winner;
    std::vector<Crossover> crossovers;
  };
  std::vector<Extrapolation> extrapolations;
  std::cout << "\nextrapolation to P = 1M:\n";
  for (const std::string& topology : {std::string(kFlat),
                                      std::string(kFatTree)}) {
    Extrapolation ex;
    ex.topology = topology;
    std::vector<const GroupModel*> topo_groups;
    for (const GroupModel& g : groups) {
      if (g.topology == topology) topo_groups.push_back(&g);
    }
    const auto winner_at = [&](double procs) {
      const GroupModel* best = nullptr;
      double best_value = 0.0;
      for (const GroupModel* g : topo_groups) {
        const double value = g->composed.evaluate(
            {{"procs", procs}, {"intensity", kIntensityHi}});
        if (best == nullptr || value < best_value) {
          best = g;
          best_value = value;
        }
      }
      return best->model;
    };
    // 48 log-spaced steps from the largest training P to 1M; a winner
    // change between adjacent grid points is recorded at the bracket's
    // geometric midpoint.
    const int steps = 48;
    const double lo = static_cast<double>(max_train_procs);
    const double ratio = std::pow(1.0e6 / lo, 1.0 / steps);
    std::string current = winner_at(lo);
    double procs = lo;
    for (int i = 1; i <= steps; ++i) {
      const double next_procs = lo * std::pow(ratio, i);
      const std::string next = winner_at(next_procs);
      if (next != current) {
        ex.crossovers.push_back(
            Crossover{current, next, std::sqrt(procs * next_procs)});
        current = next;
      }
      procs = next_procs;
    }
    for (const GroupModel* g : topo_groups) {
      ex.at_1m.emplace_back(g->model, g->composed.evaluate(one_million));
    }
    ex.winner = current;
    extrapolations.push_back(ex);
    std::cout << "  " << topology << ": winner " << ex.winner;
    for (const Crossover& c : ex.crossovers) {
      std::cout << "; " << c.before << " -> " << c.after << " near P="
                << static_cast<std::int64_t>(c.procs);
    }
    std::cout << "\n";
    for (const auto& [model, seconds] : ex.at_1m) {
      std::cout << "    " << model << ": " << seconds << " s predicted\n";
    }
  }

  const bool passed = accuracy_ok && ranking_ok;

  // --- Report -----------------------------------------------------------
  std::ofstream out(opt.report_path);
  if (!out) {
    std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
    return 1;
  }
  {
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_model_fit",
                               opt.smoke ? "smoke" : "full", opt.seed);
    json.field("bench", "bench_model_fit");
    json.field("mode", opt.smoke ? "smoke" : "full");
    json.field("seed", opt.seed);
    json.field("mean_task_cost_s", opt.mean_cost);
    json.field("tasks_per_proc", kTasksPerProc);
    json.field("trained_from",
               opt.train_from.empty() ? "simulation" : opt.train_from);
    json.begin_array("sweep");
    for (const pm::SweepCell& cell : sweep.cells) {
      json.begin_object();
      json.field("model", cell.labels.at("model"));
      json.field("topology", cell.labels.at("topology"));
      json.field("procs", cell.values.at("procs"));
      json.field("intensity", cell.values.at("intensity"));
      json.field("makespan_s", cell.values.at("makespan_s"));
      json.field("compute_s", cell.values.at("compute_s"));
      json.field("protocol_s", cell.values.at("protocol_s"));
      json.field("net_s", cell.values.at("net_s"));
      json.end_object();
    }
    json.end_array();
    json.begin_array("fits");
    for (const GroupModel& g : groups) {
      json.begin_object();
      json.field("model", g.model);
      json.field("topology", g.topology);
      json.field("compute_formula", g.compute.to_string());
      json.field("compute_cv_error", g.compute.cv_error);
      json.field("protocol_formula", g.protocol.to_string());
      json.field("protocol_cv_error", g.protocol.cv_error);
      if (g.topology != kFlat) {
        json.field("net_formula", g.net.to_string());
        json.field("net_cv_error", g.net.cv_error);
      }
      json.field("holdout_median_rel_error", g.holdout_median());
      json.field("gate_ok", g.holdout_median() <= 0.15);
      json.end_object();
    }
    json.end_array();
    json.begin_array("holdout");
    for (const HoldoutPoint& point : holdout) {
      json.begin_object();
      json.field("model", point.model);
      json.field("topology", point.topology);
      json.field("procs", point.procs);
      json.field("intensity", point.intensity);
      json.field("makespan_s", point.simulated);
      json.field("predicted_s", point.predicted);
      json.field("rel_error", point.rel_error());
      json.end_object();
    }
    json.end_array();
    json.begin_array("ranking");
    for (std::size_t i = 0; i < rankings.size(); ++i) {
      json.begin_object();
      json.field("topology", rankings[i].first);
      json.field("procs", rank_procs);
      json.field("order", rankings[i].second);
      json.end_object();
    }
    json.end_array();
    json.begin_array("extrapolation");
    for (const Extrapolation& ex : extrapolations) {
      json.begin_object();
      json.field("topology", ex.topology);
      json.field("procs", 1000000);
      json.field("winner", ex.winner);
      json.begin_array("predicted_s");
      for (const auto& [model, seconds] : ex.at_1m) {
        json.begin_object();
        json.field("model", model);
        json.field("value_s", seconds);
        json.end_object();
      }
      json.end_array();
      json.begin_array("crossovers");
      for (const Crossover& c : ex.crossovers) {
        json.begin_object();
        json.field("before", c.before);
        json.field("after", c.after);
        json.field("procs", c.procs);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.begin_object("checks");
    json.field("accuracy_ok", accuracy_ok);
    json.field("ranking_ok", ranking_ok);
    json.field("passed", passed);
    json.end_object();
    emc::bench::write_run_footer(json);
    json.end_object();
  }
  out.close();
  std::cout << "\nwrote " << opt.report_path << "\n";

  // --- Self-checks on the artifact --------------------------------------
  // 1. the manifest envelope must validate; 2. refitting from the
  // report's own sweep cells must reproduce every leaf bitwise.
  bool refit_ok = false;
  {
    std::ifstream in(opt.report_path);
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      const emc::util::JsonValue doc = emc::util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
      const pm::Sweep reread = pm::load_sweep(doc, "sweep");
      const std::vector<GroupModel> refit =
          fit_all(reread, models, candidates, fit_options);
      refit_ok = refit.size() == fitted.size();
      for (std::size_t i = 0; refit_ok && i < refit.size(); ++i) {
        refit_ok = leaves_bitwise_equal(refit[i], fitted[i]);
        if (!refit_ok) {
          std::cerr << "FAIL: ingest refit of " << fitted[i].model << " @ "
                    << fitted[i].topology
                    << " is not bitwise identical\n";
        }
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: report round trip: " << e.what() << "\n";
      return 1;
    }
  }
  if (refit_ok) {
    std::cout << "ingest refit: bitwise identical\n";
  }

  if (opt.profile) {
    std::cout << "\nprofiler spans:\n";
    emc::util::Profiler::global().write_text(std::cout);
  }

  if (!passed || !refit_ok) return 1;
  std::cout << "PASS\n";
  return 0;
}
