
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/basis.cpp" "src/chem/CMakeFiles/emc_chem.dir/basis.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/basis.cpp.o.d"
  "/root/repo/src/chem/boys.cpp" "src/chem/CMakeFiles/emc_chem.dir/boys.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/boys.cpp.o.d"
  "/root/repo/src/chem/element.cpp" "src/chem/CMakeFiles/emc_chem.dir/element.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/element.cpp.o.d"
  "/root/repo/src/chem/eri.cpp" "src/chem/CMakeFiles/emc_chem.dir/eri.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/eri.cpp.o.d"
  "/root/repo/src/chem/fock.cpp" "src/chem/CMakeFiles/emc_chem.dir/fock.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/fock.cpp.o.d"
  "/root/repo/src/chem/integrals.cpp" "src/chem/CMakeFiles/emc_chem.dir/integrals.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/integrals.cpp.o.d"
  "/root/repo/src/chem/molecule.cpp" "src/chem/CMakeFiles/emc_chem.dir/molecule.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/molecule.cpp.o.d"
  "/root/repo/src/chem/mp2.cpp" "src/chem/CMakeFiles/emc_chem.dir/mp2.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/mp2.cpp.o.d"
  "/root/repo/src/chem/properties.cpp" "src/chem/CMakeFiles/emc_chem.dir/properties.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/properties.cpp.o.d"
  "/root/repo/src/chem/scf.cpp" "src/chem/CMakeFiles/emc_chem.dir/scf.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/scf.cpp.o.d"
  "/root/repo/src/chem/shell_pair.cpp" "src/chem/CMakeFiles/emc_chem.dir/shell_pair.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/shell_pair.cpp.o.d"
  "/root/repo/src/chem/uhf.cpp" "src/chem/CMakeFiles/emc_chem.dir/uhf.cpp.o" "gcc" "src/chem/CMakeFiles/emc_chem.dir/uhf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/emc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
