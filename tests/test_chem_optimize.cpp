// Mulliken charges and geometry optimization tests.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chem/properties.hpp"
#include "chem/scf.hpp"

namespace {

using namespace emc::chem;

TEST(MullikenTest, ChargesSumToNetCharge) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const ScfResult r = run_rhf(water, bs);
  const auto q = mulliken_charges(r.density, bs, water);
  ASSERT_EQ(q.size(), 3u);
  const double total = std::accumulate(q.begin(), q.end(), 0.0);
  EXPECT_NEAR(total, 0.0, 1e-8);
}

TEST(MullikenTest, WaterPolarity) {
  const Molecule water = make_water();
  const BasisSet bs = BasisSet::build(water, "sto-3g");
  const ScfResult r = run_rhf(water, bs);
  const auto q = mulliken_charges(r.density, bs, water);
  // Oxygen (atom 0) carries negative charge, hydrogens positive and
  // equal by symmetry.
  EXPECT_LT(q[0], -0.2);
  EXPECT_GT(q[1], 0.1);
  EXPECT_NEAR(q[1], q[2], 1e-8);
}

TEST(MullikenTest, HomonuclearIsNeutral) {
  const Molecule h2 = make_h2(1.4);
  const BasisSet bs = BasisSet::build(h2, "sto-3g");
  const ScfResult r = run_rhf(h2, bs);
  const auto q = mulliken_charges(r.density, bs, h2);
  EXPECT_NEAR(q[0], 0.0, 1e-8);
  EXPECT_NEAR(q[1], 0.0, 1e-8);
}

TEST(GradientTest, EquilibriumHasSmallGradientStretchedDoesNot) {
  // Near the STO-3G H2 minimum (~1.346 a0) the gradient is tiny; at
  // 2.0 a0 it is clearly positive along the bond (restoring force).
  const auto g_eq = numerical_gradient(make_h2(1.346), "sto-3g");
  EXPECT_LT(std::abs(g_eq[1][2]), 5e-3);

  const auto g_far = numerical_gradient(make_h2(2.0), "sto-3g");
  EXPECT_GT(g_far[1][2], 0.02);  // dE/dz > 0: pull the far H back
  // Newton's third law: forces opposite and equal.
  EXPECT_NEAR(g_far[0][2], -g_far[1][2], 1e-6);
  // No force perpendicular to the bond.
  EXPECT_NEAR(g_far[0][0], 0.0, 1e-6);
  EXPECT_NEAR(g_far[0][1], 0.0, 1e-6);
}

TEST(OptimizeTest, H2FindsKnownMinimum) {
  // The RHF/STO-3G H2 equilibrium bond length is 1.346 a0
  // (Szabo & Ostlund Table 3.11 gives 1.35).
  OptimizeOptions options;
  options.gradient_tolerance = 2e-4;
  const OptimizeResult r =
      optimize_geometry(make_h2(1.2), "sto-3g", options);
  EXPECT_TRUE(r.converged);

  const auto& a = r.geometry.atoms()[0].xyz;
  const auto& b = r.geometry.atoms()[1].xyz;
  const double bond = std::sqrt(std::pow(a[0] - b[0], 2) +
                                std::pow(a[1] - b[1], 2) +
                                std::pow(a[2] - b[2], 2));
  EXPECT_NEAR(bond, 1.346, 0.01);
  // Szabo & Ostlund: E = -1.11751 at the STO-3G optimum.
  EXPECT_NEAR(r.energy, -1.1175, 5e-4);
}

TEST(OptimizeTest, EnergyNeverIncreases) {
  OptimizeOptions options;
  options.max_steps = 5;
  options.gradient_tolerance = 1e-9;  // force several steps
  const double e_start = run_rhf(make_h2(1.1),
                                 BasisSet::build(make_h2(1.1), "sto-3g"))
                             .energy;
  const OptimizeResult r =
      optimize_geometry(make_h2(1.1), "sto-3g", options);
  EXPECT_LE(r.energy, e_start + 1e-12);
}

}  // namespace
