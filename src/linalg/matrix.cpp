#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace emc::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Matrix::trace() const {
  if (!square()) throw std::logic_error("trace: matrix not square");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

bool Matrix::almost_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool Matrix::is_symmetric(double tol) const {
  if (!square()) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

void Matrix::check_same_shape(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(rhs);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(rhs);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      os << std::setw(precision + 8) << (*this)(r, c);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace emc::linalg
