#pragma once

// Restricted Hartree–Fock driver with DIIS convergence acceleration.
//
// This is the reference (sequential) implementation of the kernel whose
// parallel execution the rest of the library studies; the parallel
// executors must reproduce its Fock matrices bit-for-bit up to summation
// order.

#include <functional>
#include <string>
#include <vector>

#include "chem/basis.hpp"
#include "chem/fock.hpp"
#include "chem/molecule.hpp"
#include "linalg/matrix.hpp"

namespace emc::chem {

struct ScfOptions {
  int max_iterations = 100;
  double energy_tolerance = 1e-9;     ///< |dE| convergence threshold
  double error_tolerance = 1e-6;      ///< DIIS error norm threshold
  int diis_size = 8;                  ///< history length (0 disables DIIS)
  double screen_threshold = 1e-10;    ///< Schwarz screening
  int net_charge = 0;
};

struct ScfResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;              ///< total (electronic + nuclear)
  double electronic_energy = 0.0;
  double nuclear_repulsion = 0.0;
  double kinetic_energy = 0.0;      ///< tr(P T), for virial checks
  std::vector<double> orbital_energies;
  linalg::Matrix density;           ///< converged total density P
  linalg::Matrix fock;              ///< converged Fock matrix
};

/// Pluggable G(P) builder so parallel executors can be swapped in for
/// the two-electron build while reusing the SCF iteration logic.
using GBuilder =
    std::function<linalg::Matrix(const linalg::Matrix& density)>;

/// Runs RHF using the default sequential Fock builder.
ScfResult run_rhf(const Molecule& molecule, const BasisSet& basis,
                  const ScfOptions& options = {});

/// Runs RHF with a caller-supplied two-electron G(P) builder.
ScfResult run_rhf_with_builder(const Molecule& molecule,
                               const BasisSet& basis, const GBuilder& g,
                               const ScfOptions& options = {});

}  // namespace emc::chem
