file(REMOVE_RECURSE
  "CMakeFiles/test_chem_scf.dir/test_chem_scf.cpp.o"
  "CMakeFiles/test_chem_scf.dir/test_chem_scf.cpp.o.d"
  "test_chem_scf"
  "test_chem_scf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
