#include "perfmodel/term_basis.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace emc::perfmodel {

namespace {

/// Renders an exponent compactly: "2" not "2.000000", "0.5" as is.
std::string exponent_string(double e) {
  std::ostringstream out;
  out << e;
  return out.str();
}

std::string term_name(const std::vector<Factor>& factors) {
  if (factors.empty()) return "1";
  std::string name;
  for (const Factor& f : factors) {
    if (f.exponent != 0.0) {
      if (!name.empty()) name += "*";
      name += f.predictor + "^" + exponent_string(f.exponent);
    }
    if (f.log_exponent != 0) {
      if (!name.empty()) name += "*";
      name += "log2(" + f.predictor + ")^" +
              std::to_string(f.log_exponent);
    }
  }
  return name.empty() ? "1" : name;
}

}  // namespace

Term::Term(std::vector<Factor> factors) : factors_(std::move(factors)) {
  name_ = term_name(factors_);
}

double Term::evaluate(const Point& point) const {
  double value = 1.0;
  for (const Factor& f : factors_) {
    const auto it = point.find(f.predictor);
    if (it == point.end()) {
      throw std::invalid_argument("term " + name_ +
                                  ": predictor missing from point: " +
                                  f.predictor);
    }
    const double x = it->second;
    if (f.exponent != 0.0) value *= std::pow(x, f.exponent);
    if (f.log_exponent != 0) {
      value *= std::pow(std::log2(x), f.log_exponent);
    }
  }
  if (!std::isfinite(value)) {
    throw std::domain_error("term " + name_ +
                            " evaluates non-finite at the given point");
  }
  return value;
}

Term Term::operator*(const Term& other) const {
  std::vector<Factor> product = factors_;
  product.insert(product.end(), other.factors_.begin(),
                 other.factors_.end());
  return Term(std::move(product));
}

std::vector<Term> predictor_terms(const std::string& predictor,
                                  const BasisOptions& options) {
  std::vector<Term> terms;
  for (const double a : options.exponents) {
    for (const int b : options.log_exponents) {
      if (a == 0.0 && b == 0) continue;
      terms.push_back(Term({Factor{predictor, a, b}}));
    }
  }
  return terms;
}

std::vector<Term> cross_terms(const std::vector<Term>& a,
                              const std::vector<Term>& b) {
  std::vector<Term> products;
  products.reserve(a.size() * b.size());
  for (const Term& x : a) {
    for (const Term& y : b) products.push_back(x * y);
  }
  return products;
}

}  // namespace emc::perfmodel
