#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace emc::core {

namespace {

double pearson_of(std::span<const double> a, std::span<const double> b) {
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma, xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

std::vector<double> ranks_of(std::span<const double> v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    r[idx[i]] = static_cast<double>(i);
  }
  return r;
}

}  // namespace

CalibrationReport calibrate_cost_model(std::span<const double> estimated,
                                       std::span<const double> measured) {
  if (estimated.size() != measured.size()) {
    throw std::invalid_argument("calibrate_cost_model: size mismatch");
  }
  if (estimated.empty()) {
    throw std::invalid_argument("calibrate_cost_model: empty input");
  }

  // Least squares through the origin: scale = <e, m> / <e, e>.
  double em = 0.0, ee = 0.0;
  for (std::size_t i = 0; i < estimated.size(); ++i) {
    em += estimated[i] * measured[i];
    ee += estimated[i] * estimated[i];
  }

  CalibrationReport report;
  report.samples = estimated.size();
  report.scale = ee > 0.0 ? em / ee : 0.0;
  report.pearson = pearson_of(estimated, measured);
  const auto ra = ranks_of(estimated);
  const auto rb = ranks_of(measured);
  report.spearman = pearson_of(ra, rb);
  return report;
}

}  // namespace emc::core
