#pragma once

// Distributed dense 2D array with Global-Arrays-style one-sided access.
//
// The array is partitioned into row stripes, one per rank (the owner).
// Any rank may Get, Put, or Accumulate any rectangular patch; operations
// touching stripes owned by other ranks pay the cost model's remote
// latency. Accumulate is atomic per stripe (mutex), matching ARMCI's
// element-wise atomic accumulate guarantee.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "pgas/runtime.hpp"

namespace emc::pgas {

class GlobalArray {
 public:
  /// rows x cols array distributed over n_ranks row stripes.
  GlobalArray(std::size_t rows, std::size_t cols, int n_ranks);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  int ranks() const { return n_ranks_; }

  /// Owner rank of a given row.
  int owner_of_row(std::size_t row) const;
  /// [first, last) row range owned by `rank`.
  std::pair<std::size_t, std::size_t> local_rows(int rank) const;

  /// Copies the patch [r0, r0+h) x [c0, c0+w) into `out` (row-major,
  /// h*w elements). `caller` pays remote latency for non-owned stripes.
  void get(int caller, std::size_t r0, std::size_t c0, std::size_t h,
           std::size_t w, std::span<double> out,
           const CommCostModel& cost) const;

  /// Overwrites the patch from `in` (row-major h*w).
  void put(int caller, std::size_t r0, std::size_t c0, std::size_t h,
           std::size_t w, std::span<const double> in,
           const CommCostModel& cost);

  /// Atomically adds `in` into the patch (ARMCI_Acc semantics).
  void accumulate(int caller, std::size_t r0, std::size_t c0, std::size_t h,
                  std::size_t w, std::span<const double> in,
                  const CommCostModel& cost);

  /// Fills the whole array with a value (collective-free convenience for
  /// initialization before an SPMD region).
  void fill(double value);

  /// Attaches a metrics registry: get/put/accumulate record per-caller
  /// operation counts and bytes moved ("pgas/r<k>/get_ops",
  /// "pgas/r<k>/get_bytes", likewise put/acc) plus fault-injected retry
  /// counts ("pgas/r<k>/op_retries"). The names carry no array
  /// identity, so several arrays sharing a registry accumulate into the
  /// same per-rank totals. Counters are resolved once here; nullptr
  /// detaches. The registry must outlive the array.
  void set_metrics(util::MetricsRegistry* registry);

  /// Direct read access for verification after all ranks quiesce.
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  void check_patch(std::size_t r0, std::size_t c0, std::size_t h,
                   std::size_t w) const;
  /// Replays the drop/retry protocol (resolve_with_retries) before a
  /// one-sided op when `cost.faults_enabled()`. Each caller advances its
  /// own op-sequence stream, so a fixed per-rank operation order replays
  /// the same drops regardless of thread interleaving. Records retries
  /// into "pgas/r<k>/op_retries" when metrics are attached.
  void resolve_faults(int caller, std::size_t n_bytes,
                      const CommCostModel& cost) const;
  /// Invokes fn(stripe_rank, row_first, row_last) for each stripe the
  /// row range [r0, r0+h) intersects.
  template <typename Fn>
  void for_each_stripe(std::size_t r0, std::size_t h, Fn&& fn) const;

  /// Pre-resolved per-rank counters for one op kind (ops + bytes).
  struct OpMetrics {
    std::vector<util::Counter*> ops;
    std::vector<util::Counter*> bytes;
    void record(int caller, std::size_t n_bytes) const {
      if (caller < 0 || caller >= static_cast<int>(ops.size())) return;
      const auto k = static_cast<std::size_t>(caller);
      ops[k]->add(1);
      bytes[k]->add(static_cast<std::int64_t>(n_bytes));
    }
  };

  std::size_t rows_, cols_;
  int n_ranks_;
  std::vector<double> data_;
  mutable std::vector<std::mutex> stripe_mutexes_;
  // Per-caller one-sided op sequence (slot 0 for anonymous callers,
  // slot k+1 for rank k), feeding the drop-decision hash.
  mutable std::vector<std::atomic<std::uint64_t>> op_seq_;
  bool metrics_attached_ = false;
  OpMetrics get_metrics_, put_metrics_, acc_metrics_;
  std::vector<util::Counter*> retry_metrics_;
};

}  // namespace emc::pgas
