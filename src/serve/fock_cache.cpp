#include "serve/fock_cache.hpp"

#include <stdexcept>
#include <utility>

namespace emc::serve {

FockCache::FockCache(std::size_t capacity, double screen_threshold,
                     util::MetricsRegistry* metrics)
    : capacity_(capacity), screen_threshold_(screen_threshold) {
  if (capacity_ < 1) {
    throw std::invalid_argument("FockCache: capacity must be >= 1");
  }
  if (metrics != nullptr) {
    hits_metric_ = &metrics->counter("serve/cache_hits");
    misses_metric_ = &metrics->counter("serve/cache_misses");
    evictions_metric_ = &metrics->counter("serve/cache_evictions");
    entries_metric_ = &metrics->gauge("serve/cache_entries");
  }
}

std::shared_ptr<const FockCacheEntry> FockCache::build_entry(
    const std::string& molecule, const std::string& basis) const {
  auto entry = std::make_shared<FockCacheEntry>();
  entry->molecule_name = molecule;
  entry->basis_name = basis;
  entry->molecule = chem::make_named_molecule(molecule);
  entry->basis = chem::BasisSet::build(entry->molecule, basis);
  // The builder keeps a pointer to entry->basis; the entry is
  // shared_ptr-owned and never moved, so the address is stable.
  entry->builder =
      std::make_unique<chem::FockBuilder>(entry->basis, screen_threshold_);
  return entry;
}

std::shared_ptr<const FockCacheEntry> FockCache::get(
    const std::string& molecule, const std::string& basis) {
  const std::string key = molecule + "|" + basis;

  std::promise<std::shared_ptr<const FockCacheEntry>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = resident_.find(key);
    if (it != resident_.end()) {
      ++stats_.hits;
      if (hits_metric_ != nullptr) hits_metric_->add();
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.entry;
    }
    const auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      // Another thread is constructing this key; wait on its future
      // outside the lock. The construction is shared, so this counts as
      // a hit and the miss count stays equal to distinct keys built.
      ++stats_.hits;
      if (hits_metric_ != nullptr) hits_metric_->add();
      auto future = fit->second;
      lock.unlock();
      return future.get();
    }
    ++stats_.misses;
    if (misses_metric_ != nullptr) misses_metric_->add();
    inflight_.emplace(key, promise.get_future().share());
  }

  // Construct outside the lock: basis + shell-pair + Schwarz setup is
  // the expensive part and must not serialize unrelated lookups.
  std::shared_ptr<const FockCacheEntry> entry;
  try {
    entry = build_entry(molecule, basis);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    promise.set_exception(std::current_exception());
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.push_front(key);
    resident_.emplace(key, Resident{entry, lru_.begin()});
    while (resident_.size() > capacity_) {
      const std::string& victim = lru_.back();
      resident_.erase(victim);  // holders' shared_ptrs keep it alive
      lru_.pop_back();
      ++stats_.evictions;
      if (evictions_metric_ != nullptr) evictions_metric_->add();
    }
    if (entries_metric_ != nullptr) {
      entries_metric_->set(static_cast<double>(resident_.size()));
    }
    inflight_.erase(key);
  }
  promise.set_value(entry);
  return entry;
}

FockCache::Stats FockCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t FockCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resident_.size();
}

double FockCache::hit_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t total = stats_.hits + stats_.misses;
  return total > 0
             ? static_cast<double>(stats_.hits) / static_cast<double>(total)
             : 0.0;
}

}  // namespace emc::serve
