file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_fock.dir/test_distributed_fock.cpp.o"
  "CMakeFiles/test_distributed_fock.dir/test_distributed_fock.cpp.o.d"
  "test_distributed_fock"
  "test_distributed_fock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_fock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
