#include "util/report_cells.hpp"

namespace emc::util {

const std::vector<std::string>& cell_identity_keys() {
  static const std::vector<std::string> keys{
      "model",     "class",  "topology", "molecule",  "workload",
      "name",      "case",   "kind",     "scheduler", "intensity",
      "component", "role",   "procs",    "tasks",     "thief",
      "victim",    "oversubscription",
  };
  return keys;
}

std::string cell_identity(const JsonValue& cell) {
  if (cell.kind != JsonValue::Kind::kObject) return "";
  std::string key;
  for (const std::string& id : cell_identity_keys()) {
    if (!cell.has(id)) continue;
    const JsonValue& v = cell.object.at(id);
    std::string rendered;
    if (v.kind == JsonValue::Kind::kString) {
      rendered = v.str;
    } else if (v.kind == JsonValue::Kind::kNumber) {
      rendered = format_double(v.number);
    } else {
      continue;
    }
    if (!key.empty()) key += ",";
    key += id + "=" + rendered;
  }
  return key;
}

}  // namespace emc::util
