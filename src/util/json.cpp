#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace emc::util {

JsonValue JsonParser::parse() {
  JsonValue v = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing characters");
  return v;
}

void JsonParser::fail(const std::string& what) const {
  throw std::runtime_error("JSON parse error at byte " +
                           std::to_string(pos_) + ": " + what);
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

char JsonParser::peek() {
  skip_ws();
  if (pos_ >= text_.size()) fail("unexpected end");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool JsonParser::consume_literal(const char* lit) {
  const std::size_t n = std::string(lit).size();
  if (text_.compare(pos_, n, lit) == 0) {
    pos_ += n;
    return true;
  }
  return false;
}

JsonValue JsonParser::parse_value() {
  const char c = peek();
  if (c == '{') return parse_object();
  if (c == '[') return parse_array();
  if (c == '"') {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.str = parse_string();
    return v;
  }
  JsonValue v;
  if (consume_literal("true")) {
    v.kind = JsonValue::Kind::kBool;
    v.boolean = true;
    return v;
  }
  if (consume_literal("false")) {
    v.kind = JsonValue::Kind::kBool;
    return v;
  }
  if (consume_literal("null")) return v;
  // Non-finite doubles have no JSON representation; emitters that stream
  // them raw produce exactly these tokens (optionally signed). Name the
  // failure instead of falling through to a generic number error.
  for (const char* bad : {"nan", "NaN", "-nan", "-NaN", "inf", "Infinity",
                          "-inf", "-Infinity"}) {
    if (consume_literal(bad)) fail("non-finite literal is not valid JSON");
  }
  return parse_number();
}

std::string JsonParser::parse_string() {
  expect('"');
  std::string s;
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\') {
      if (pos_ >= text_.size()) fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        case 'u':
          // Validation only needs structural fidelity, not code points.
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          pos_ += 4;
          c = '?';
          break;
        default: c = e; break;
      }
    }
    s += c;
  }
  if (pos_ >= text_.size()) fail("unterminated string");
  ++pos_;  // closing quote
  return s;
}

JsonValue JsonParser::parse_number() {
  const std::size_t start = pos_;
  if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
    ++pos_;
  }
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '+' || text_[pos_] == '-')) {
    ++pos_;
  }
  if (pos_ == start) fail("expected a value");
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  try {
    v.number = std::stod(text_.substr(start, pos_ - start));
  } catch (const std::exception&) {
    fail("bad number");
  }
  // stod accepts "inf"/"nan" spellings and saturates huge exponents like
  // 1e999 to infinity without throwing on all platforms — reject both.
  if (!std::isfinite(v.number)) fail("non-finite number");
  return v;
}

JsonValue JsonParser::parse_array() {
  expect('[');
  JsonValue v;
  v.kind = JsonValue::Kind::kArray;
  if (peek() == ']') {
    ++pos_;
    return v;
  }
  for (;;) {
    v.array.push_back(parse_value());
    const char c = peek();
    ++pos_;
    if (c == ']') return v;
    if (c != ',') fail("expected ',' or ']'");
  }
}

JsonValue JsonParser::parse_object() {
  expect('{');
  JsonValue v;
  v.kind = JsonValue::Kind::kObject;
  if (peek() == '}') {
    ++pos_;
    return v;
  }
  for (;;) {
    const std::string key = parse_string();
    expect(':');
    v.object[key] = parse_value();
    const char c = peek();
    ++pos_;
    if (c == '}') return v;
    if (c != ',') fail("expected ',' or '}'");
  }
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace emc::util
