#pragma once

// Aligned plain-text tables and CSV emission for benchmark reports.
//
// Every bench binary reports its rows through a Table so that the printed
// output mirrors the corresponding table/figure series in the paper and
// can be redirected to CSV for plotting.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace emc {

/// A cell is a string, an integer, or a double (formatted with
/// column-specific precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Sets decimal precision used for double cells (default 4).
  void set_precision(int digits) { precision_ = digits; }

  void add_row(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }
  const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders the table with aligned columns.
  std::string to_text() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Prints to_text() to the stream, preceded by an optional title.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace emc
