// Tests for molecules, elements, and basis-set construction.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/basis.hpp"
#include "chem/constants.hpp"
#include "chem/element.hpp"
#include "chem/molecule.hpp"

namespace {

using namespace emc::chem;

TEST(ElementTest, RoundTrip) {
  EXPECT_EQ(atomic_number("H"), 1);
  EXPECT_EQ(atomic_number("C"), 6);
  EXPECT_EQ(atomic_number("O"), 8);
  EXPECT_STREQ(element_symbol(7), "N");
  for (int z = 1; z <= 18; ++z) {
    EXPECT_EQ(atomic_number(element_symbol(z)), z);
  }
}

TEST(ElementTest, UnknownThrows) {
  EXPECT_THROW(atomic_number("Xx"), std::invalid_argument);
  EXPECT_THROW(element_symbol(0), std::invalid_argument);
  EXPECT_THROW(element_symbol(99), std::invalid_argument);
}

TEST(MoleculeTest, H2Geometry) {
  const Molecule m = make_h2(1.4);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.electron_count(), 2);
  EXPECT_NEAR(m.nuclear_repulsion(), 1.0 / 1.4, 1e-12);
}

TEST(MoleculeTest, WaterComposition) {
  const Molecule m = make_water();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m.total_charge_z(), 10);
  EXPECT_EQ(m.electron_count(), 10);
  EXPECT_GT(m.nuclear_repulsion(), 0.0);
}

TEST(MoleculeTest, WaterOhBondLength) {
  const Molecule m = make_water();
  const auto& o = m.atoms()[0].xyz;
  const auto& h = m.atoms()[1].xyz;
  const double r = std::sqrt(std::pow(o[0] - h[0], 2) +
                             std::pow(o[1] - h[1], 2) +
                             std::pow(o[2] - h[2], 2));
  EXPECT_NEAR(r * kBohrToAngstrom, 0.9572, 1e-6);
}

TEST(MoleculeTest, MethaneComposition) {
  const Molecule m = make_methane();
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.electron_count(), 10);
}

TEST(MoleculeTest, WaterClusterScales) {
  for (int n : {1, 2, 4, 8}) {
    const Molecule m = make_water_cluster(n);
    EXPECT_EQ(m.size(), static_cast<std::size_t>(3 * n));
    EXPECT_EQ(m.electron_count(), 10 * n);
  }
}

TEST(MoleculeTest, WaterClusterAtomsDistinct) {
  const Molecule m = make_water_cluster(8);
  // No two atoms should coincide (a bad generator stacks molecules).
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = i + 1; j < m.size(); ++j) {
      const auto& a = m.atoms()[i].xyz;
      const auto& b = m.atoms()[j].xyz;
      const double d2 = std::pow(a[0] - b[0], 2) + std::pow(a[1] - b[1], 2) +
                        std::pow(a[2] - b[2], 2);
      EXPECT_GT(d2, 0.25) << "atoms " << i << " and " << j << " overlap";
    }
  }
}

TEST(MoleculeTest, AlkaneComposition) {
  for (int n : {1, 2, 4, 6}) {
    const Molecule m = make_alkane(n);
    EXPECT_EQ(m.size(), static_cast<std::size_t>(n + 2 * n + 2));
    EXPECT_EQ(m.electron_count(), 6 * n + (2 * n + 2));
  }
}

TEST(MoleculeTest, NamedLookup) {
  EXPECT_EQ(make_named_molecule("h2").size(), 2u);
  EXPECT_EQ(make_named_molecule("water").size(), 3u);
  EXPECT_EQ(make_named_molecule("water4").size(), 12u);
  EXPECT_EQ(make_named_molecule("alkane3").size(), 11u);
  EXPECT_THROW(make_named_molecule("unobtainium"), std::invalid_argument);
  EXPECT_THROW(make_named_molecule("water0"), std::invalid_argument);
}

TEST(CartesianTest, ComponentCounts) {
  EXPECT_EQ(cartesian_components(0).size(), 1u);
  EXPECT_EQ(cartesian_components(1).size(), 3u);
  EXPECT_EQ(cartesian_components(2).size(), 6u);
  EXPECT_EQ(cartesian_count(3), 10);
}

TEST(CartesianTest, ComponentsSumToL) {
  for (int l = 0; l <= 3; ++l) {
    for (const auto& c : cartesian_components(l)) {
      EXPECT_EQ(c.total(), l);
    }
  }
}

TEST(CartesianTest, CanonicalOrderForP) {
  const auto p = cartesian_components(1);
  EXPECT_EQ(p[0].lx, 1);  // x
  EXPECT_EQ(p[1].ly, 1);  // y
  EXPECT_EQ(p[2].lz, 1);  // z
}

TEST(BasisTest, Sto3gShellCounts) {
  const Molecule h2 = make_h2();
  const BasisSet bs = BasisSet::build(h2, "sto-3g");
  EXPECT_EQ(bs.shell_count(), 2u);   // one s shell per H
  EXPECT_EQ(bs.function_count(), 2);

  const Molecule water = make_water();
  const BasisSet wb = BasisSet::build(water, "sto-3g");
  // O: 1s, 2s, 2p ; H: 1s each -> 5 shells, 5+2 = 7 functions.
  EXPECT_EQ(wb.shell_count(), 5u);
  EXPECT_EQ(wb.function_count(), 7);
}

TEST(BasisTest, G631ShellCounts) {
  const Molecule water = make_water();
  const BasisSet wb = BasisSet::build(water, "6-31g");
  // O: s, s, p, s, p (5 shells, 1+1+3+1+3 = 9 fn); H: s, s (2 fn each).
  EXPECT_EQ(wb.shell_count(), 9u);
  EXPECT_EQ(wb.function_count(), 13);
}

TEST(BasisTest, FirstFunctionOffsetsAreContiguous) {
  const BasisSet bs = BasisSet::build(make_water(), "6-31g");
  int expected = 0;
  for (const Shell& s : bs.shells()) {
    EXPECT_EQ(s.first_function, expected);
    expected += s.function_count();
  }
  EXPECT_EQ(expected, bs.function_count());
}

TEST(BasisTest, UnknownBasisThrows) {
  EXPECT_THROW(BasisSet::build(make_h2(), "cc-pvqz"), std::invalid_argument);
}

TEST(BasisTest, UnsupportedElementThrows) {
  Molecule m;
  m.add_atom(14, 0.0, 0.0, 0.0);  // Si not in the table
  EXPECT_THROW(BasisSet::build(m, "sto-3g"), std::invalid_argument);
}

TEST(BasisTest, PrimitiveNormSelfOverlap) {
  // N^2 * integral of (x^l e^{-a r^2})^2 must be 1 for any a, l.
  for (double a : {0.3, 1.0, 4.2}) {
    for (int l = 0; l <= 2; ++l) {
      const double norm = primitive_norm(a, l, 0, 0);
      // Self overlap of the raw primitive:
      // (pi/2a)^{3/2} * (2l-1)!! / (4a)^l.
      double dfact = 1.0;
      for (int k = 2 * l - 1; k > 1; k -= 2) dfact *= k;
      const double raw = std::pow(kPi / (2.0 * a), 1.5) * dfact /
                         std::pow(4.0 * a, l);
      EXPECT_NEAR(norm * norm * raw, 1.0, 1e-12);
    }
  }
}

TEST(BasisTest, ComponentNormMismatchThrows) {
  const BasisSet bs = BasisSet::build(make_h2(), "sto-3g");
  EXPECT_THROW(bs.shells()[0].component_norm(1, 0, 0),
               std::invalid_argument);
}

}  // namespace
