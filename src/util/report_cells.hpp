#pragma once

// Identity-keyed addressing of BENCH_*.json report cells, shared by
// every consumer of the bench pipeline's artifacts: tools/bench_compare
// (regression diffs) and src/perfmodel (training-sweep ingestion).
//
// A "cell" is one object inside an array-of-objects sweep (one (model,
// procs, topology, ...) point). Cells are addressed by the
// concatenation of the identity fields they carry — "model=ws,procs=256"
// — so reordering or growing an array never changes a cell's address,
// and two consumers looking at the same report agree on what each
// number is. The identity-field list here is the single source of
// truth; bench_compare's cell matching and perfmodel's sweep ingestion
// both read it.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace emc::util {

/// Identity fields used to address array-of-object cells, in priority
/// order. A field joins a cell's address only when present with a
/// string or number value.
const std::vector<std::string>& cell_identity_keys();

/// The identity address of one cell ("model=ws,procs=256"), built from
/// every identity field it carries, or "" when it carries none (or is
/// not an object). Numbers are rendered through format_double, so the
/// address survives a JSON round trip unchanged.
std::string cell_identity(const JsonValue& cell);

}  // namespace emc::util
