#pragma once

// Simulated cluster model: processors grouped into nodes, per-operation
// latencies calibrated to Global-Arrays-class interconnects, and optional
// per-core performance variability ("energy-induced" noise).
//
// This is the substitution for the paper's physical cluster (see
// DESIGN.md): scheduling behaviour depends on task costs and relative
// overheads, both of which this model captures; absolute times are in
// seconds but their meaning is "simulated seconds".

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace emc::sim {

struct MachineConfig {
  int n_procs = 64;
  int procs_per_node = 16;

  /// Latencies in (simulated) seconds. Defaults approximate published
  /// ARMCI/IB numbers: ~1.5 us one-sided remote op, ~0.3 us on-node.
  double intra_node_latency = 0.3e-6;
  double inter_node_latency = 1.5e-6;
  double counter_service = 0.1e-6;  ///< serialization at the counter home
  double task_overhead = 0.05e-6;   ///< per-task dispatch cost
  double steal_fail_retry = 0.5e-6; ///< back-off after a failed steal

  /// Per-core static speed variability: core speeds are drawn uniformly
  /// from [1 - noise_amplitude, 1]; 0 disables.
  double noise_amplitude = 0.0;

  /// When true, simulators record per-task (proc, start, end) events in
  /// SimResult::trace for timeline analysis.
  bool record_trace = false;

  std::uint64_t seed = 1;

  int node_of(int proc) const { return proc / procs_per_node; }
  /// Latency of a one-sided operation from `from` to `to`.
  double link_latency(int from, int to) const {
    if (from == to) return 0.0;
    return node_of(from) == node_of(to) ? intra_node_latency
                                        : inter_node_latency;
  }
};

/// Per-core speed factors (execution time divides by the factor).
std::vector<double> draw_core_speeds(const MachineConfig& config);

/// One task execution in a recorded trace.
struct TaskEvent {
  int proc = 0;
  double start = 0.0;
  double end = 0.0;
};

struct SimResult {
  double makespan = 0.0;                 ///< simulated completion time
  std::vector<double> busy;              ///< per-proc task-execution time
  std::vector<std::int64_t> tasks_executed;
  std::int64_t steals = 0;
  std::int64_t steal_attempts = 0;
  std::int64_t counter_ops = 0;
  double counter_wait = 0.0;             ///< total time spent on counter
  double steal_wait = 0.0;               ///< total time spent stealing
  std::vector<TaskEvent> trace;          ///< per-task events, if recorded

  /// Mean busy fraction = sum(busy) / (P * makespan); EXP-3's metric.
  double utilization() const;
};

/// Bins the recorded trace into `bins` equal slices of [0, makespan] and
/// returns the fraction of processors busy in each — the utilization-
/// over-time curve of the paper's figures. Requires record_trace.
/// Throws std::invalid_argument if the trace is empty or bins < 1.
std::vector<double> utilization_timeline(const SimResult& result,
                                         int n_procs, int bins);

}  // namespace emc::sim
