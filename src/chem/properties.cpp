#include "chem/properties.hpp"

#include <cmath>
#include <stdexcept>

#include "chem/integrals.hpp"
#include "linalg/blas.hpp"

namespace emc::chem {

std::vector<double> mulliken_charges(const linalg::Matrix& density,
                                     const BasisSet& basis,
                                     const Molecule& molecule) {
  const linalg::Matrix s = overlap_matrix(basis);
  const linalg::Matrix ps = linalg::matmul(density, s);

  std::vector<double> charges(molecule.size());
  for (std::size_t a = 0; a < molecule.size(); ++a) {
    charges[a] = static_cast<double>(molecule.atoms()[a].z);
  }
  for (const Shell& shell : basis.shells()) {
    const auto atom = static_cast<std::size_t>(shell.atom_index);
    for (int f = 0; f < shell.function_count(); ++f) {
      const auto i = static_cast<std::size_t>(shell.first_function + f);
      charges[atom] -= ps(i, i);
    }
  }
  return charges;
}

namespace {

double energy_at(const Molecule& molecule, const std::string& basis_name,
                 const ScfOptions& options) {
  const BasisSet basis = BasisSet::build(molecule, basis_name);
  const ScfResult r = run_rhf(molecule, basis, options);
  if (!r.converged) {
    throw std::runtime_error("optimize: SCF did not converge at a "
                             "displaced geometry");
  }
  return r.energy;
}

Molecule displaced(const Molecule& m, std::size_t atom, int dim,
                   double delta) {
  Molecule out = m;
  std::vector<Atom> atoms = out.atoms();
  Molecule rebuilt;
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    Vec3 xyz = atoms[a].xyz;
    if (a == atom) xyz[static_cast<std::size_t>(dim)] += delta;
    rebuilt.add_atom(atoms[a].z, xyz[0], xyz[1], xyz[2]);
  }
  return rebuilt;
}

}  // namespace

std::vector<Vec3> numerical_gradient(const Molecule& molecule,
                                     const std::string& basis_name,
                                     const ScfOptions& options,
                                     double step) {
  std::vector<Vec3> grad(molecule.size(), Vec3{});
  for (std::size_t a = 0; a < molecule.size(); ++a) {
    for (int d = 0; d < 3; ++d) {
      const double plus =
          energy_at(displaced(molecule, a, d, step), basis_name, options);
      const double minus =
          energy_at(displaced(molecule, a, d, -step), basis_name, options);
      grad[a][static_cast<std::size_t>(d)] =
          (plus - minus) / (2.0 * step);
    }
  }
  return grad;
}

OptimizeResult optimize_geometry(const Molecule& start,
                                 const std::string& basis_name,
                                 const OptimizeOptions& options) {
  OptimizeResult result;
  result.geometry = start;
  result.energy = energy_at(start, basis_name, options.scf);

  double step = options.initial_step;
  for (int iter = 0; iter < options.max_steps; ++iter) {
    const auto grad = numerical_gradient(result.geometry, basis_name,
                                         options.scf, options.fd_step);
    double gmax = 0.0;
    for (const Vec3& g : grad) {
      for (double component : g) {
        gmax = std::max(gmax, std::abs(component));
      }
    }
    result.gradient_norm = gmax;
    result.steps = iter;
    if (gmax < options.gradient_tolerance) {
      result.converged = true;
      return result;
    }

    // Steepest descent with backtracking: halve the step until the
    // energy actually drops.
    bool improved = false;
    for (int attempt = 0; attempt < 12; ++attempt) {
      Molecule trial;
      for (std::size_t a = 0; a < result.geometry.size(); ++a) {
        const Atom& atom = result.geometry.atoms()[a];
        trial.add_atom(atom.z, atom.xyz[0] - step * grad[a][0],
                       atom.xyz[1] - step * grad[a][1],
                       atom.xyz[2] - step * grad[a][2]);
      }
      const double trial_energy =
          energy_at(trial, basis_name, options.scf);
      if (trial_energy < result.energy) {
        result.geometry = std::move(trial);
        result.energy = trial_energy;
        improved = true;
        step *= 1.2;  // tentative growth after success
        break;
      }
      step *= 0.5;
    }
    if (!improved) {
      // Line search exhausted: we are at (numerical) stationarity.
      result.converged = result.gradient_norm <
                         10.0 * options.gradient_tolerance;
      return result;
    }
  }
  return result;
}

}  // namespace emc::chem
