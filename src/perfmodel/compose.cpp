#include "perfmodel/compose.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::perfmodel {

ComposedModel ComposedModel::leaf(FittedModel model, std::string label) {
  ComposedModel node;
  node.kind_ = Kind::kLeaf;
  node.label_ = std::move(label);
  node.model_ = std::move(model);
  return node;
}

ComposedModel ComposedModel::serial(std::vector<ComposedModel> parts,
                                    std::string label) {
  if (parts.empty()) {
    throw std::invalid_argument("ComposedModel::serial: no parts");
  }
  ComposedModel node;
  node.kind_ = Kind::kSerial;
  node.label_ = std::move(label);
  node.parts_ = std::move(parts);
  return node;
}

ComposedModel ComposedModel::parallel(std::vector<ComposedModel> parts,
                                      std::string label) {
  if (parts.empty()) {
    throw std::invalid_argument("ComposedModel::parallel: no parts");
  }
  ComposedModel node;
  node.kind_ = Kind::kParallel;
  node.label_ = std::move(label);
  node.parts_ = std::move(parts);
  return node;
}

double ComposedModel::evaluate(const Point& point) const {
  switch (kind_) {
    case Kind::kLeaf:
      return model_.evaluate(point);
    case Kind::kSerial: {
      double sum = 0.0;
      for (const ComposedModel& part : parts_) {
        sum += part.evaluate(point);
      }
      return sum;
    }
    case Kind::kParallel: {
      double best = parts_.front().evaluate(point);
      for (std::size_t i = 1; i < parts_.size(); ++i) {
        best = std::max(best, parts_[i].evaluate(point));
      }
      return best;
    }
  }
  return 0.0;
}

const FittedModel& ComposedModel::fitted() const {
  if (kind_ != Kind::kLeaf) {
    throw std::logic_error("ComposedModel::fitted on a non-leaf node");
  }
  return model_;
}

std::string ComposedModel::describe(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (kind_) {
    case Kind::kLeaf:
      return pad + "leaf " + label_ + ": " + model_.to_string() + "\n";
    case Kind::kSerial:
    case Kind::kParallel: {
      std::string out = pad +
                        (kind_ == Kind::kSerial ? "serial " : "parallel ") +
                        label_ + "\n";
      for (const ComposedModel& part : parts_) {
        out += part.describe(indent + 1);
      }
      return out;
    }
  }
  return "";
}

}  // namespace emc::perfmodel
