// SCF-as-a-service quickstart: stand up an in-process ScfServer, submit
// a small multi-tenant request mix, and print per-job results plus the
// cross-request cache and admission accounting.
//
//   ./scf_server [--workers N] [--queue N] [--cache N]
//
// Three tenants share the server: a free tier of tiny Fock builds, a
// batch tier of medium builds, and a premium tier running full SCF at
// the highest priority. Repeated (molecule, basis) pairs hit the shared
// FockCache, so only the distinct chemistries pay shell-pair + Schwarz
// construction.

#include <cstdio>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "util/metrics.hpp"

int main(int argc, char** argv) {
  using emc::serve::JobRequest;
  using emc::serve::JobResult;
  using emc::serve::ScfServer;
  using emc::serve::ServerOptions;

  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 32;
  options.cache_capacity = 4;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg == "--workers") {
      options.workers = std::stoi(argv[i + 1]);
    } else if (arg == "--queue") {
      options.queue_capacity =
          static_cast<std::size_t>(std::stoul(argv[i + 1]));
    } else if (arg == "--cache") {
      options.cache_capacity =
          static_cast<std::size_t>(std::stoul(argv[i + 1]));
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  emc::util::MetricsRegistry metrics;
  options.metrics = &metrics;

  ScfServer server(options);
  server.start();

  struct Spec {
    const char* molecule;
    const char* basis;
    JobRequest::Kind kind;
    int tenant;
    int priority;
  };
  const Spec specs[] = {
      {"h2", "sto-3g", JobRequest::Kind::kFockBuild, 0, 0},
      {"h2", "6-31g", JobRequest::Kind::kFockBuild, 0, 0},
      {"water", "sto-3g", JobRequest::Kind::kFockBuild, 1, 1},
      {"h2", "sto-3g", JobRequest::Kind::kFockBuild, 0, 0},
      {"water", "sto-3g", JobRequest::Kind::kScf, 2, 2},
      {"methane", "sto-3g", JobRequest::Kind::kFockBuild, 1, 1},
      {"h2", "6-31g", JobRequest::Kind::kFockBuild, 0, 0},
      {"h2", "sto-3g", JobRequest::Kind::kScf, 2, 2},
  };
  std::vector<std::future<JobResult>> futures;
  for (const Spec& s : specs) {
    JobRequest req;
    req.molecule = s.molecule;
    req.basis = s.basis;
    req.kind = s.kind;
    req.tenant = s.tenant;
    req.priority = s.priority;
    auto sub = server.submit(req);
    if (sub.admit != ScfServer::Admit::kAccepted) {
      std::cout << "request " << s.molecule << "/" << s.basis
                << " not admitted\n";
    }
    futures.push_back(std::move(sub.result));
  }

  server.drain();
  std::cout << "job  tenant  chemistry           result\n";
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    const Spec& s = specs[i];
    std::printf("%3lld  t%d      %-8s/%-8s  ",
                static_cast<long long>(r.job_id), s.tenant, s.molecule,
                s.basis);
    if (!r.ok) {
      std::cout << "FAILED: " << r.error << "\n";
    } else if (s.kind == JobRequest::Kind::kScf) {
      std::printf("E = %.10f Ha (%d iterations)\n", r.energy,
                  r.scf_iterations);
    } else {
      std::printf("|G| = %.6f (digest %016llx)\n", r.g_norm,
                  static_cast<unsigned long long>(r.g_digest));
    }
  }

  const auto cache_stats = server.cache().stats();
  const auto counts = server.counts();
  server.stop();
  std::cout << "\ncache: " << cache_stats.hits << " hits, "
            << cache_stats.misses << " misses, " << cache_stats.evictions
            << " evictions (hit rate " << server.cache().hit_rate()
            << ")\n"
            << "admission: " << counts.accepted << " accepted, "
            << counts.rejected << " rejected, " << counts.shed
            << " shed; " << counts.completed << " completed\n";

  const auto snap = metrics.snapshot();
  for (const int tenant : {0, 1, 2}) {
    const std::string name =
        "serve/t" + std::to_string(tenant) + "/latency_seconds";
    const auto it = snap.histograms.find(name);
    if (it == snap.histograms.end()) continue;
    std::printf("t%d latency: p50=%.2gms p99=%.2gms (%lld jobs)\n", tenant,
                it->second.p50 * 1e3, it->second.p99 * 1e3,
                static_cast<long long>(it->second.count));
  }
  return 0;
}
