#pragma once

// Classical static balancers: block, cyclic, and LPT greedy bin-packing.

#include "lb/partition.hpp"

namespace emc::lb {

/// Contiguous block distribution (what a naive static schedule does):
/// task t goes to part floor(t * P / n).
Assignment block_assignment(std::size_t n_tasks, int n_parts);

/// Round-robin: task t goes to part t mod P.
Assignment cyclic_assignment(std::size_t n_tasks, int n_parts);

/// Longest-processing-time greedy: tasks in decreasing weight order, each
/// to the currently least-loaded part. 4/3-approximate for makespan.
Assignment lpt_assignment(std::span<const double> weights, int n_parts);

}  // namespace emc::lb
