#!/usr/bin/env sh
# Regenerates the checked-in bench baselines under bench/baselines/ from
# a built tree. Run after an INTENDED change to bench output (new cells,
# new fields, a deliberate perf characteristic shift), then commit the
# diff — CI's release-smoke job gates every run against these files.
#
# Usage: tools/update_baselines.sh [build-dir]   (default: build)
set -eu

build="${1:-build}"
repo="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
baselines="$repo/bench/baselines"
compare="$repo/$build/tools/bench_compare"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

run() {
  name="$1"; shift
  echo "== $name"
  # Run from a scratch dir so side artifacts (chrome traces) stay out of
  # the repo, and route each report through bench_compare
  # --update-baseline so it is validated before it lands.
  (cd "$scratch" && "$repo/$build/bench/$name" "$@" >/dev/null)
}

run bench_simspeed --smoke --report="$scratch/BENCH_simspeed.json"
run bench_kernel   --smoke --json="$scratch/BENCH_kernel.json"
run bench_faults   --smoke --report="$scratch/BENCH_faults.json"
run bench_topology --smoke --report="$scratch/BENCH_topology.json"
run bench_trace    --smoke --report="$scratch/BENCH_trace.json" \
                   --trace=BENCH_trace.chrome.json
run bench_hybrid   --smoke --report="$scratch/BENCH_hybrid.json"
run bench_serve    --smoke --report="$scratch/BENCH_serve.json"
run bench_model_fit --smoke --report="$scratch/BENCH_model_fit.json"

mkdir -p "$baselines"
for b in simspeed kernel faults topology trace hybrid serve model_fit; do
  "$compare" --update-baseline \
    "$baselines/BENCH_$b.json" "$scratch/BENCH_$b.json"
done
echo "baselines updated; review with: git diff bench/baselines/"
