// Full Hartree-Fock runner: choose a molecule and basis on the command
// line, run RHF (optionally through the parallel work-stealing executor)
// and print the energy decomposition and orbital spectrum.
//
//   ./build/examples/scf_hartree_fock --molecule water --basis 6-31g
//   ./build/examples/scf_hartree_fock --molecule alkane4 --ranks 4

#include <iostream>
#include <vector>

#include "chem/fock.hpp"
#include "chem/mp2.hpp"
#include "chem/scf.hpp"
#include "chem/uhf.hpp"
#include "exec/schedulers.hpp"
#include "lb/simple.hpp"
#include "pgas/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;

  std::string molecule_name = "water";
  std::string basis_name = "sto-3g";
  std::string method = "rhf";
  std::int64_t ranks = 1;
  std::int64_t net_charge = 0;
  std::int64_t multiplicity = 1;
  bool verbose = false;

  Cli cli("scf_hartree_fock", "Hartree-Fock / MP2 driver");
  cli.add_string("molecule", 'm',
                 "molecule: h2, water, methane, benzene, water<k>, "
                 "alkane<k>",
                 &molecule_name);
  cli.add_string("basis", 'b', "basis set: sto-3g, 6-31g, 6-31g*",
                 &basis_name);
  cli.add_string("method", 'M', "method: rhf, uhf, or mp2", &method);
  cli.add_int("ranks", 'r', "PGAS ranks for the parallel Fock build (rhf)",
              &ranks);
  cli.add_int("charge", 'q', "net molecular charge", &net_charge);
  cli.add_int("multiplicity", 'S', "spin multiplicity 2S+1 (uhf)",
              &multiplicity);
  cli.add_flag("verbose", 'v', "print orbital energies", &verbose);
  if (!cli.parse(argc, argv)) return 1;

  const chem::Molecule mol = chem::make_named_molecule(molecule_name);
  const chem::BasisSet basis = chem::BasisSet::build(mol, basis_name);
  std::cout << molecule_name << " (" << mol.size() << " atoms, "
            << mol.electron_count(static_cast<int>(net_charge))
            << " electrons) in " << basis_name << " ("
            << basis.function_count() << " functions, "
            << basis.shell_count() << " shells)\n";

  chem::ScfOptions options;
  options.net_charge = static_cast<int>(net_charge);

  if (method == "uhf") {
    chem::UhfOptions uhf_options;
    uhf_options.net_charge = static_cast<int>(net_charge);
    uhf_options.multiplicity = static_cast<int>(multiplicity);
    Timer uhf_timer;
    const chem::UhfResult r = chem::run_uhf(mol, basis, uhf_options);
    if (!r.converged) {
      std::cerr << "UHF did not converge\n";
      return 1;
    }
    std::cout << "UHF converged in " << r.iterations << " iterations, "
              << uhf_timer.seconds() << " s\n"
              << "  E(total) = " << r.energy << " Hartree\n"
              << "  n_alpha = " << r.n_alpha << ", n_beta = " << r.n_beta
              << ", <S^2> = " << r.s_squared << "\n";
    return 0;
  }
  if (method == "mp2") {
    Timer mp2_timer;
    const chem::Mp2Result r = chem::run_mp2(mol, basis, options);
    std::cout << "MP2 finished in " << mp2_timer.seconds() << " s\n"
              << "  E(MP2 total)   = " << r.total_energy << " Hartree\n"
              << "  E(2)           = " << r.correlation_energy << "\n"
              << "  same-spin      = " << r.same_spin << "\n"
              << "  opposite-spin  = " << r.opposite_spin << "\n";
    return 0;
  }
  if (method != "rhf") {
    std::cerr << "unknown method '" << method << "'\n";
    return 1;
  }

  Timer timer;
  chem::ScfResult result;
  if (ranks <= 1) {
    result = chem::run_rhf(mol, basis, options);
  } else {
    // Parallel Fock build: tasks executed under work stealing, per-rank
    // J/K accumulators merged per iteration.
    const chem::FockBuilder builder(basis, options.screen_threshold);
    pgas::Runtime runtime(static_cast<int>(ranks));
    const auto tasks = builder.make_tasks();
    const auto n = static_cast<std::size_t>(basis.function_count());

    result = chem::run_rhf_with_builder(
        mol, basis,
        [&](const linalg::Matrix& density) {
          std::vector<linalg::Matrix> j(static_cast<std::size_t>(ranks),
                                        linalg::Matrix(n, n));
          std::vector<linalg::Matrix> k(static_cast<std::size_t>(ranks),
                                        linalg::Matrix(n, n));
          exec::run_work_stealing(
              runtime, static_cast<std::int64_t>(tasks.size()),
              lb::block_assignment(tasks.size(), static_cast<int>(ranks)),
              [&](std::int64_t t, int rank) {
                builder.execute_task(tasks[static_cast<std::size_t>(t)],
                                     density,
                                     j[static_cast<std::size_t>(rank)],
                                     k[static_cast<std::size_t>(rank)]);
              });
          linalg::Matrix jt(n, n), kt(n, n);
          for (std::int64_t r = 0; r < ranks; ++r) {
            jt += j[static_cast<std::size_t>(r)];
            kt += k[static_cast<std::size_t>(r)];
          }
          return chem::FockBuilder::combine_jk(jt, kt);
        },
        options);
  }
  const double seconds = timer.seconds();

  if (!result.converged) {
    std::cerr << "SCF did not converge in " << result.iterations
              << " iterations\n";
    return 1;
  }
  std::cout << "converged in " << result.iterations << " iterations, "
            << seconds << " s\n"
            << "  E(total)      = " << result.energy << " Hartree\n"
            << "  E(electronic) = " << result.electronic_energy << "\n"
            << "  E(nuclear)    = " << result.nuclear_repulsion << "\n"
            << "  E(kinetic)    = " << result.kinetic_energy
            << "  (virial -V/T = "
            << -(result.energy - result.kinetic_energy) /
                   result.kinetic_energy
            << ")\n";

  if (verbose) {
    std::cout << "orbital energies (Hartree):\n";
    const int n_occ =
        mol.electron_count(static_cast<int>(net_charge)) / 2;
    for (std::size_t i = 0; i < result.orbital_energies.size(); ++i) {
      std::cout << "  " << (static_cast<int>(i) < n_occ ? "occ " : "virt")
                << "  " << result.orbital_energies[i] << "\n";
    }
  }
  return 0;
}
