// Tests for assignment metrics and the classical balancers.

#include <gtest/gtest.h>

#include <algorithm>

#include "lb/partition.hpp"
#include "lb/simple.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc::lb;

TEST(PartitionMetricsTest, LoadsAndMakespan) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const Assignment a{0, 0, 1, 1};
  const auto loads = part_loads(w, a, 2);
  EXPECT_DOUBLE_EQ(loads[0], 3.0);
  EXPECT_DOUBLE_EQ(loads[1], 7.0);
  EXPECT_DOUBLE_EQ(makespan(w, a, 2), 7.0);
  EXPECT_DOUBLE_EQ(imbalance(w, a, 2), 7.0 / 5.0);
}

TEST(PartitionMetricsTest, MismatchThrows) {
  const std::vector<double> w{1.0};
  const Assignment a{0, 1};
  EXPECT_THROW(part_loads(w, a, 2), std::invalid_argument);
}

TEST(PartitionMetricsTest, OutOfRangePartThrows) {
  const std::vector<double> w{1.0};
  EXPECT_THROW(part_loads(w, Assignment{5}, 2), std::invalid_argument);
  EXPECT_THROW(validate_assignment(Assignment{-1}, 2),
               std::invalid_argument);
}

TEST(BlockAssignmentTest, ContiguousAndComplete) {
  const Assignment a = block_assignment(10, 3);
  ASSERT_EQ(a.size(), 10u);
  validate_assignment(a, 3);
  // Non-decreasing (contiguity).
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Every part non-empty when tasks >= parts.
  for (int p = 0; p < 3; ++p) {
    EXPECT_NE(std::find(a.begin(), a.end(), p), a.end());
  }
}

TEST(BlockAssignmentTest, EqualCountsWhenDivisible) {
  const Assignment a = block_assignment(12, 4);
  std::vector<int> counts(4, 0);
  for (int p : a) ++counts[static_cast<std::size_t>(p)];
  for (int c : counts) EXPECT_EQ(c, 3);
}

TEST(CyclicAssignmentTest, RoundRobin) {
  const Assignment a = cyclic_assignment(7, 3);
  const Assignment expected{0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(a, expected);
}

TEST(LptTest, ClassicWorstCaseInstance) {
  // Weights {5,4,3,3,3} on 2 parts: optimum is 9 ({5,4} vs {3,3,3}) but
  // LPT schedules 5|4, 3->4-side(7), 3->5-side(8), 3->7-side(10). This is
  // the textbook instance showing LPT's 4/3-ish gap — pin the behaviour.
  const std::vector<double> w{5.0, 4.0, 3.0, 3.0, 3.0};
  const Assignment a = lpt_assignment(w, 2);
  EXPECT_DOUBLE_EQ(makespan(w, a, 2), 10.0);
}

TEST(LptTest, BeatsBlockOnSkewedWeights) {
  emc::Rng rng(31);
  std::vector<double> w(200);
  for (auto& x : w) x = std::exp(rng.uniform(0.0, 5.0));  // heavy tail
  const double lpt_ms = makespan(w, lpt_assignment(w, 8), 8);
  const double block_ms = makespan(w, block_assignment(w.size(), 8), 8);
  EXPECT_LT(lpt_ms, block_ms);
}

TEST(LptTest, ApproximationGuarantee) {
  // LPT is a 4/3 - 1/(3m) approximation; check against the trivial lower
  // bound max(mean load, max weight) across random instances.
  emc::Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 2 + static_cast<int>(rng.below(6));
    std::vector<double> w(20 + rng.below(40));
    double total = 0.0, biggest = 0.0;
    for (auto& x : w) {
      x = rng.uniform(0.1, 10.0);
      total += x;
      biggest = std::max(biggest, x);
    }
    const double lower = std::max(total / m, biggest);
    const double ms = makespan(w, lpt_assignment(w, m), m);
    EXPECT_LE(ms, lower * (4.0 / 3.0) + 1e-9);
  }
}

TEST(BalancersTest, RejectBadPartCount) {
  EXPECT_THROW(block_assignment(5, 0), std::invalid_argument);
  EXPECT_THROW(cyclic_assignment(5, 0), std::invalid_argument);
  const std::vector<double> w{1.0};
  EXPECT_THROW(lpt_assignment(w, 0), std::invalid_argument);
}

TEST(LptTest, MorePartsThanTasks) {
  const std::vector<double> w{3.0, 1.0};
  const Assignment a = lpt_assignment(w, 5);
  validate_assignment(a, 5);
  EXPECT_DOUBLE_EQ(makespan(w, a, 5), 3.0);
  EXPECT_NE(a[0], a[1]);
}

}  // namespace
