file(REMOVE_RECURSE
  "CMakeFiles/test_chem_mp2.dir/test_chem_mp2.cpp.o"
  "CMakeFiles/test_chem_mp2.dir/test_chem_mp2.cpp.o.d"
  "test_chem_mp2"
  "test_chem_mp2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_mp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
