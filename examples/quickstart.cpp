// Quickstart: the library in ~40 lines.
//
//  1. Build a molecule and run Hartree-Fock on it.
//  2. Turn its Fock build into a weighted task list.
//  3. Balance the tasks with semi-matching and replay static scheduling
//     vs work stealing on a simulated 64-core cluster.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "chem/basis.hpp"
#include "chem/molecule.hpp"
#include "chem/scf.hpp"
#include "core/experiment.hpp"
#include "core/task_model.hpp"
#include "lb/simple.hpp"
#include "sim/simulators.hpp"

int main() {
  using namespace emc;

  // 1. Chemistry: restricted Hartree-Fock on a water molecule.
  const chem::Molecule water = chem::make_water();
  const chem::BasisSet basis = chem::BasisSet::build(water, "sto-3g");
  const chem::ScfResult scf = chem::run_rhf(water, basis);
  std::cout << "RHF/STO-3G water: E = " << scf.energy << " Hartree in "
            << scf.iterations << " iterations\n";

  // 2. Task model: the Fock build of a 8-molecule cluster as work units.
  const core::TaskModel model = core::build_task_model("water8");
  std::cout << "water8 Fock build: " << model.task_count()
            << " tasks, total cost " << model.total_cost()
            << " simulated seconds\n";

  // 3. Execution models on a simulated 64-core cluster.
  core::ExperimentConfig config;
  config.machine.n_procs = 64;

  const auto semi = core::balance_tasks(model, "semi-matching", 64, config);
  const auto static_run =
      sim::simulate_static(config.machine, model.costs, semi.assignment);
  const auto steal_run = sim::simulate_work_stealing(
      config.machine, model.costs,
      lb::block_assignment(model.task_count(), 64));

  std::cout << "static + semi-matching: " << static_run.makespan * 1e3
            << " ms (" << static_run.utilization() * 100 << "% utilized)\n"
            << "work stealing:          " << steal_run.makespan * 1e3
            << " ms (" << steal_run.utilization() * 100 << "% utilized, "
            << steal_run.steals << " steals)\n";
  return 0;
}
