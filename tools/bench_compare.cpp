// bench_compare: regression gate over two BENCH_*.json reports.
//
//   bench_compare [options] baseline.json candidate.json
//
// Exit codes:
//   0  candidate matches baseline under the gating policy
//   1  deterministic regression, invalid manifest, or unparseable report
//   2  usage or I/O error
//
// Options:
//   --noise=X          relative noise band for hostware values (default 0.5)
//   --rel-tol=X        relative tolerance for gated doubles (default 1e-7)
//   --abs-tol=X        absolute tolerance for gated doubles (default 1e-9)
//   --strict-noise     escalate noise-band violations to failures
//   --md=PATH          also write the markdown delta table to PATH
//   --update-baseline  overwrite baseline.json with candidate.json bytes
//                      (after validating the candidate's manifest) and exit 0

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_compare_lib.hpp"
#include "manifest.hpp"
#include "util/json.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--noise=X] [--rel-tol=X] [--abs-tol=X] [--strict-noise]\n"
               "       [--md=PATH] [--update-baseline] baseline.json "
               "candidate.json\n";
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  emc::tools::CompareOptions opt;
  std::string md_path;
  bool update_baseline = false;
  std::string paths[2];
  int npaths = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--noise=", 0) == 0) {
      if (!parse_double(arg.c_str() + 8, opt.noise)) return usage(argv[0]);
    } else if (arg.rfind("--rel-tol=", 0) == 0) {
      if (!parse_double(arg.c_str() + 10, opt.rel_tol)) return usage(argv[0]);
    } else if (arg.rfind("--abs-tol=", 0) == 0) {
      if (!parse_double(arg.c_str() + 10, opt.abs_tol)) return usage(argv[0]);
    } else if (arg == "--strict-noise") {
      opt.strict_noise = true;
    } else if (arg.rfind("--md=", 0) == 0) {
      md_path = arg.substr(5);
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "bench_compare: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else if (npaths < 2) {
      paths[npaths++] = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (npaths != 2) return usage(argv[0]);

  std::string texts[2];
  for (int i = 0; i < 2; ++i) {
    if (!read_file(paths[i], texts[i])) {
      // A missing baseline is a first-run situation, not a regression:
      // --update-baseline is allowed to create it.
      if (i == 0 && update_baseline) continue;
      std::cerr << "bench_compare: cannot read '" << paths[i] << "'\n";
      return 2;
    }
  }

  emc::util::JsonValue docs[2];
  for (int i = 0; i < 2; ++i) {
    // When replacing the baseline its current contents are irrelevant
    // (it may be missing or stale); only the candidate must validate.
    if (i == 0 && update_baseline) continue;
    try {
      docs[i] = emc::util::parse_json(texts[i]);
    } catch (const std::exception& e) {
      std::cerr << "bench_compare: '" << paths[i]
                << "' is not valid JSON: " << e.what() << "\n";
      return 1;
    }
    const std::string bad = emc::bench::manifest_error(docs[i]);
    if (!bad.empty()) {
      std::cerr << "bench_compare: '" << paths[i]
                << "' fails manifest validation: " << bad << "\n";
      return 1;
    }
  }

  if (update_baseline) {
    std::ofstream out(paths[0], std::ios::binary | std::ios::trunc);
    if (!out || !(out << texts[1])) {
      std::cerr << "bench_compare: cannot write '" << paths[0] << "'\n";
      return 2;
    }
    std::cerr << "bench_compare: baseline '" << paths[0]
              << "' updated from '" << paths[1] << "'\n";
    return 0;
  }

  const emc::tools::CompareResult result =
      emc::tools::compare_reports(docs[0], docs[1], opt);
  const std::string report =
      emc::tools::markdown_report(paths[0], paths[1], result);
  std::cout << report;
  if (!md_path.empty()) {
    std::ofstream out(md_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << report)) {
      std::cerr << "bench_compare: cannot write '" << md_path << "'\n";
      return 2;
    }
  }
  return result.ok() ? 0 : 1;
}
