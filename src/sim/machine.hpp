#pragma once

// Simulated cluster model: processors grouped into nodes, per-operation
// latencies calibrated to Global-Arrays-class interconnects, and optional
// per-core performance variability ("energy-induced" noise).
//
// This is the substitution for the paper's physical cluster (see
// DESIGN.md): scheduling behaviour depends on task costs and relative
// overheads, both of which this model captures; absolute times are in
// seconds but their meaning is "simulated seconds".

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace emc::sim {

/// Perturbation model for the resilience experiments (EXP-9b): transient
/// per-proc slowdowns or stalls, dropped one-sided operations with
/// exponential-backoff retries, and a counter-home outage window. All
/// randomness derives from MachineConfig::seed, so a faulted run replays
/// exactly (same seed + same model => same makespan, trace, and retry
/// counts).
struct FaultModel {
  /// Probability that a given proc suffers one transient fault window.
  double fault_prob = 0.0;
  /// Window onset drawn uniformly from [onset_min, onset_max] seconds.
  double onset_min = 0.0;
  double onset_max = 0.0;
  /// Window length in simulated seconds.
  double duration = 0.0;
  /// Core speed multiplier inside the window, in [0, 1]. 0 is a full
  /// stall: the in-flight task's work is lost and the task re-executes
  /// from scratch once the window closes (a kTaskReexec trace event).
  double slowdown_factor = 0.0;

  /// Probability that a one-sided op round trip (counter fetch-and-add,
  /// steal request) is dropped and must be retried.
  double drop_prob = 0.0;
  /// Backoff before retry k (0-based) is retry_backoff * multiplier^k.
  double retry_backoff = 0.5e-6;
  double backoff_multiplier = 2.0;
  /// Consecutive drops are capped here; the next attempt is forced
  /// through (models protocol-level recovery), bounding every retry loop.
  int max_retries = 16;

  /// Counter-home outage: requests arriving inside
  /// [outage_start, outage_start + outage_duration) are held until the
  /// window closes. A negative start disables the outage.
  double outage_start = -1.0;
  double outage_duration = 0.0;

  bool enabled() const {
    return fault_prob > 0.0 || drop_prob > 0.0 ||
           (outage_start >= 0.0 && outage_duration > 0.0);
  }
};

struct MachineConfig {
  int n_procs = 64;
  int procs_per_node = 16;

  /// Latencies in (simulated) seconds. Defaults approximate published
  /// ARMCI/IB numbers: ~1.5 us one-sided remote op, ~0.3 us on-node.
  double intra_node_latency = 0.3e-6;
  double inter_node_latency = 1.5e-6;
  double counter_service = 0.1e-6;  ///< serialization at the counter home
  double task_overhead = 0.05e-6;   ///< per-task dispatch cost
  double steal_fail_retry = 0.5e-6; ///< back-off after a failed steal

  /// Per-core static speed variability: core speeds are drawn uniformly
  /// from [1 - noise_amplitude, 1]; 0 disables.
  double noise_amplitude = 0.0;

  /// When true, simulators record typed TraceEvents (task executions,
  /// steal attempts with victim provenance, counter round trips) in
  /// SimResult::trace for timeline/anatomy analysis and Chrome-trace
  /// export. Off by default: recording must cost nothing when disabled.
  bool record_trace = false;

  /// Fault injection; FaultModel{} (all zeros) means a benign machine.
  FaultModel faults;

  /// Interconnect model (src/net): topology, per-link bandwidth, and
  /// message sizing. The default legacy-flat config reproduces the seed
  /// simulator bitwise — link_latency below is its closed form. Anything
  /// else routes every simulated message over shared links whose
  /// occupancy serializes concurrent transfers (congestion shows up as
  /// kLinkWait trace events and SimResult::net_link_wait).
  net::NetworkConfig network;

  /// Event-scheduler backend the simulators drain. kBinaryHeap is the
  /// default oracle (bitwise identical to the seed); kCalendarQueue is
  /// the O(1) backend for the P >= 10k regime. Both pop the identical
  /// event sequence, so results never depend on this knob — only speed
  /// does (tests/test_sim_schedulers.cpp pins the identity).
  SchedulerKind scheduler = SchedulerKind::kBinaryHeap;

  /// When set, each simulate_* run exports its network counters here
  /// (net/messages, net/link_wait_seconds, net/hottest_link, ...) via
  /// net::NetworkModel::write_metrics. Not owned; may be null.
  util::MetricsRegistry* metrics = nullptr;

  std::uint64_t seed = 1;

  int node_of(int proc) const { return proc / procs_per_node; }
  /// Latency floor of a one-sided operation from `from` to `to` — the
  /// legacy flat model's entire cost, and every topology's uncongested
  /// endpoint term.
  double link_latency(int from, int to) const {
    if (from == to) return 0.0;
    return node_of(from) == node_of(to) ? intra_node_latency
                                        : inter_node_latency;
  }
};

/// Builds the stateful per-run network for this machine. Each simulator
/// constructs one so link occupancy starts empty per run.
net::NetworkModel make_network(const MachineConfig& config);

/// Per-core speed factors (execution time divides by the factor).
std::vector<double> draw_core_speeds(const MachineConfig& config);

/// One compiled fault window: proc runs at `factor` speed inside
/// [start, end); factor == 0 stalls the proc and loses in-flight work.
struct FaultWindow {
  double start = 0.0;
  double end = 0.0;
  double factor = 1.0;

  bool exists() const { return end > start; }
};

/// Deterministic replay schedule compiled from MachineConfig::{faults,
/// seed, n_procs}: at most one fault window per proc, stateless-hash
/// drop decisions, and the counter-home outage. Every simulator builds
/// one; when the model is disabled all queries are cheap no-ops.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  /// Compiles the schedule; throws std::invalid_argument on a malformed
  /// model (probabilities outside [0, 1), negative durations/backoff,
  /// onset_max < onset_min, max_retries < 1).
  explicit FaultSchedule(const MachineConfig& config);

  bool active() const { return active_; }
  const FaultModel& model() const { return model_; }
  /// The fault window of `proc` (exists() == false when unfaulted).
  const FaultWindow& window(int proc) const;

  /// Finish time of `work` seconds of execution starting at `start` on
  /// `proc`, honoring the proc's fault window. A stall loses in-flight
  /// work: `restarts` (if non-null) is incremented and `last_restart`
  /// (if non-null) receives the time the surviving execution began.
  double finish_time(int proc, double start, double work,
                     int* restarts = nullptr,
                     double* last_restart = nullptr) const;

  /// Deterministic drop decision for retry `attempt` of logical op
  /// `op_seq` issued by `proc`. Always false once attempt reaches
  /// max_retries, so retry loops terminate.
  bool drop_op(int proc, std::uint64_t op_seq, int attempt) const;

  /// Backoff delay before retry `attempt` (0-based).
  double backoff(int attempt) const;

  /// Earliest time the counter home can see a request arriving at
  /// `arrival` (pushed past the outage window when one is configured).
  double outage_release(double arrival) const;

 private:
  FaultModel model_;
  std::uint64_t seed_ = 0;
  bool active_ = false;
  std::vector<FaultWindow> windows_;  ///< one slot per proc
};

struct SimResult {
  double makespan = 0.0;                 ///< simulated completion time
  std::vector<double> busy;              ///< per-proc task-execution time
  std::vector<std::int64_t> tasks_executed;
  std::int64_t steals = 0;
  std::int64_t steal_attempts = 0;
  std::int64_t counter_ops = 0;
  double counter_wait = 0.0;             ///< total time spent on counter
  double steal_wait = 0.0;               ///< total time spent stealing
  std::int64_t op_retries = 0;           ///< one-sided ops dropped+retried
  std::int64_t tasks_reexecuted = 0;     ///< executions lost to stalls
  std::int64_t net_messages = 0;         ///< messages through the network
  std::int64_t net_congested = 0;        ///< messages that queued on a link
  double net_bytes = 0.0;                ///< payload bytes moved
  double net_link_wait = 0.0;            ///< total link-queue wait, seconds
  std::int64_t events_processed = 0;     ///< event-loop pops (sim-speed
                                         ///< denominator for events/sec)
  std::vector<TraceEvent> trace;         ///< typed events, if recorded

  /// Mean busy fraction = sum(busy) / (P * makespan); EXP-3's metric.
  double utilization() const;
};

/// Bins the recorded trace into `bins` equal slices of [0, makespan] and
/// returns the fraction of processors busy in each — the utilization-
/// over-time curve of the paper's figures. Requires record_trace.
/// Throws std::invalid_argument if the trace is empty or bins < 1.
/// (Convenience over the span-based overload in sim/trace.hpp.)
std::vector<double> utilization_timeline(const SimResult& result,
                                         int n_procs, int bins);

/// Concatenates the traces of a multi-round run (simulate_retentive /
/// simulate_persistence) into one timeline: round r's events are offset
/// by the cumulative makespan of rounds [0, r), with a kIterationBoundary
/// event (task = round index, proc = 0) marking each round's start.
std::vector<TraceEvent> merge_round_traces(
    std::span<const SimResult> rounds);

}  // namespace emc::sim
