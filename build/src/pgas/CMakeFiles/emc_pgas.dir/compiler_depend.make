# Empty compiler generated dependencies file for emc_pgas.
# This may be replaced when dependencies are built.
