file(REMOVE_RECURSE
  "CMakeFiles/test_chem_basis.dir/test_chem_basis.cpp.o"
  "CMakeFiles/test_chem_basis.dir/test_chem_basis.cpp.o.d"
  "test_chem_basis"
  "test_chem_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
