// EXP-9b driver: resilience of the execution models under fault
// injection. Two parts:
//
// 1. Simulated degradation sweep. The same workload is replayed under
//    static (LPT), shared-counter, hierarchical-counter, and
//    work-stealing scheduling while a FaultModel of increasing intensity
//    stalls processors (losing in-flight work), drops one-sided round
//    trips (exponential-backoff retries), and takes the counter home
//    offline for a window. Reported metric: makespan degradation
//    relative to the same model's fault-free run. The paper-level claim
//    under test: dynamic models — work stealing above all — degrade
//    gracefully because lost capacity is rerouted, while a static
//    schedule has no recourse and absorbs every stall into its tail.
//    Every configuration is simulated twice; the runs must agree
//    bitwise (makespan, retry counts, trace length) or the driver fails
//    — fault injection may not break determinism.
//
// 2. Real-runtime correctness. A threaded PGAS Fock build (2 ranks,
//    static model) runs fault-free and then with task re-execution plus
//    dropped/retried one-sided ops. The two G matrices must match
//    BITWISE: faults cost time, never accuracy. (2 ranks + a fixed
//    task->rank map keep the accumulate ordering bitwise-commutative,
//    so the comparison is exact, not toleranced.)
//
// The JSON report is re-read and validated with the strict util/json
// parser, so an unguarded NaN/Inf in the emitter fails the smoke gate.
//
// Flags:
//   --smoke            tiny workload (water, P=8) for CI
//   --model-procs=P    simulated processors (default 64)
//   --ppn=N            procs per node (default min(16, procs))
//   --molecule=NAME    workload molecule (default water27)
//   --report=PATH      JSON report output (default BENCH_faults.json)
//
// Exit status: nonzero on any determinism violation, on work stealing
// degrading worse than static at top intensity, on a Fock bitwise
// mismatch, or on an invalid report file.

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/distributed_fock.hpp"
#include "core/task_model.hpp"
#include "lb/simple.hpp"
#include "linalg/matrix.hpp"
#include "pgas/runtime.hpp"
#include "sim/simulators.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace {

using namespace emc;
using namespace emc::sim;

struct Options {
  bool smoke = false;
  std::string molecule = "water27";
  int procs = 64;
  int ppn = 0;  ///< 0 = make_machine default of min(16, procs)
  std::string report_path = "BENCH_faults.json";
};

/// Fault model scaled by `intensity` in [0, 1]. `ideal` is the
/// fault-free per-proc work (T1 / P), which sets the natural scale for
/// window lengths: at intensity 1 roughly half the procs stall for most
/// of a proc's worth of work, a fifth of one-sided round trips drop,
/// and the counter home is dark for a fifth of the schedule.
FaultModel fault_model_at(double intensity, double ideal) {
  FaultModel f;
  f.fault_prob = 0.5 * intensity;
  f.onset_min = 0.1 * ideal;
  f.onset_max = 0.4 * ideal;
  f.duration = 0.8 * ideal * intensity;
  f.slowdown_factor = 0.0;  // full stall; in-flight work is lost
  f.drop_prob = 0.2 * intensity;
  if (intensity > 0.0) {
    f.outage_start = 0.5 * ideal;
    f.outage_duration = 0.2 * ideal * intensity;
  }
  return f;
}

struct SweepPoint {
  double intensity = 0.0;
  double makespan = 0.0;
  double degradation = 1.0;  ///< makespan / fault-free makespan
  double utilization = 0.0;
  std::int64_t op_retries = 0;
  std::int64_t tasks_reexecuted = 0;
  std::int64_t fault_windows = 0;
};

struct ModelSweep {
  std::string name;
  std::vector<SweepPoint> points;
};

std::int64_t count_fault_windows(const SimResult& r) {
  std::int64_t n = 0;
  for (const TraceEvent& ev : r.trace) {
    if (ev.type == TraceEventType::kFaultStart) ++n;
  }
  return n;
}

/// Runs one (model, intensity) configuration twice and checks the
/// replays agree exactly. Returns the result; sets `deterministic`.
template <typename RunFn>
SimResult run_twice(const RunFn& run, const MachineConfig& config,
                    bool* deterministic) {
  const SimResult a = run(config);
  const SimResult b = run(config);
  *deterministic = a.makespan == b.makespan &&
                   a.op_retries == b.op_retries &&
                   a.tasks_reexecuted == b.tasks_reexecuted &&
                   a.steals == b.steals &&
                   a.counter_ops == b.counter_ops &&
                   a.trace.size() == b.trace.size();
  return a;
}

/// Part 2: fault-free vs fault-injected PGAS Fock build, bitwise.
struct FockFaultCheck {
  bool bitwise_match = false;
  std::int64_t task_reexecutions = 0;
  std::int64_t op_retries = 0;
  std::int64_t nxtval_retries = 0;
  std::string molecule;
  std::size_t n_basis = 0;
};

FockFaultCheck run_fock_fault_check(const Options& opt) {
  FockFaultCheck check;
  check.molecule = opt.smoke ? "water" : "water2";
  core::TaskModelOptions model_opts;
  const core::TaskModel model =
      core::build_task_model(check.molecule, model_opts);
  const auto n = static_cast<std::size_t>(model.basis.function_count());
  check.n_basis = n;

  linalg::Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) density(i, i) = 1.0;

  core::DistributedFockOptions fock_opts;
  fock_opts.model = core::ExecModel::kStatic;  // fixed task->rank map
  fock_opts.static_balancer = "lpt";

  pgas::CommCostModel clean_cost;
  clean_cost.remote_ns = 200;
  clean_cost.counter_ns = 100;
  pgas::Runtime clean_runtime(2, clean_cost);
  core::DistributedFockBuilder clean(model.basis, clean_runtime, fock_opts);
  const linalg::Matrix g_clean = clean.build_g(density);

  // Same build under fire: every one-sided op may drop (and retry with
  // backoff), every task may be lost pre-execution and re-run.
  pgas::CommCostModel faulty_cost = clean_cost;
  faulty_cost.drop_prob = 0.10;
  faulty_cost.retry_backoff_ns = 100;
  util::MetricsRegistry registry;
  pgas::Runtime faulty_runtime(2, faulty_cost);
  core::DistributedFockOptions faulty_opts = fock_opts;
  faulty_opts.task_faults.fail_prob = 0.25;
  faulty_opts.task_faults.reexec_delay_ns = 1000;
  faulty_opts.metrics = &registry;
  core::DistributedFockBuilder faulty(model.basis, faulty_runtime,
                                      faulty_opts);
  const linalg::Matrix g_faulty = faulty.build_g(density);

  check.bitwise_match =
      std::memcmp(g_clean.data(), g_faulty.data(),
                  n * n * sizeof(double)) == 0;
  check.task_reexecutions = faulty.last_task_reexecutions();
  check.op_retries = registry.counter("pgas/r0/op_retries").value() +
                     registry.counter("pgas/r1/op_retries").value();
  check.nxtval_retries = registry.counter("pgas/nxtval_retries").value();
  return check;
}

int run(const Options& opt) {
  core::TaskModelOptions model_opts;
  const core::TaskModel model =
      core::build_task_model(opt.molecule, model_opts);
  emc::bench::print_header(
      "bench_faults (EXP-9b)",
      "work stealing degrades gracefully under faults; static collapses",
      model);

  const std::span<const double> costs = model.costs;
  double total_cost = 0.0;
  for (double c : costs) total_cost += c;
  const double ideal = total_cost / opt.procs;

  MachineConfig base = emc::bench::make_machine(opt.procs, opt.ppn);
  base.record_trace = true;
  base.seed = 42;

  std::vector<double> lpt_costs(costs.begin(), costs.end());
  const lb::Assignment lpt = lb::lpt_assignment(lpt_costs, opt.procs);
  const lb::Assignment block = lb::block_assignment(costs.size(), opt.procs);

  struct ModelDef {
    const char* name;
    std::function<SimResult(const MachineConfig&)> run;
  };
  const std::vector<ModelDef> models = {
      {"static", [&](const MachineConfig& c) {
         return simulate_static(c, costs, lpt);
       }},
      {"counter", [&](const MachineConfig& c) {
         return simulate_counter(c, costs, 4);
       }},
      {"hier", [&](const MachineConfig& c) {
         return simulate_hierarchical_counter(c, costs, 32, 4);
       }},
      {"ws", [&](const MachineConfig& c) {
         return simulate_work_stealing(c, costs, block);
       }},
  };

  const std::vector<double> intensities = {0.0, 0.25, 0.5, 0.75, 1.0};
  std::vector<ModelSweep> sweeps;
  bool all_deterministic = true;

  for (const ModelDef& def : models) {
    ModelSweep sweep;
    sweep.name = def.name;
    double baseline = 0.0;
    for (double intensity : intensities) {
      MachineConfig config = base;
      config.faults = fault_model_at(intensity, ideal);
      bool deterministic = false;
      const SimResult r = run_twice(def.run, config, &deterministic);
      if (!deterministic) {
        std::cerr << "FAIL: " << def.name << " @ intensity " << intensity
                  << " is not deterministic across replays\n";
        all_deterministic = false;
      }
      SweepPoint p;
      p.intensity = intensity;
      p.makespan = r.makespan;
      if (intensity == 0.0) baseline = r.makespan;
      p.degradation = baseline > 0.0 ? r.makespan / baseline : 1.0;
      p.utilization = r.utilization();
      p.op_retries = r.op_retries;
      p.tasks_reexecuted = r.tasks_reexecuted;
      p.fault_windows = count_fault_windows(r);
      sweep.points.push_back(p);
    }
    sweeps.push_back(std::move(sweep));
  }

  std::cout << "\nmakespan degradation vs fault intensity (P=" << opt.procs
            << ", x1.00 = own fault-free makespan):\n";
  std::cout << "  intensity";
  for (const auto& s : sweeps) std::cout << "\t" << s.name;
  std::cout << "\n";
  for (std::size_t i = 0; i < intensities.size(); ++i) {
    std::cout << "  " << intensities[i];
    for (const auto& s : sweeps) {
      std::cout << "\tx" << s.points[i].degradation;
    }
    std::cout << "\n";
  }
  std::cout << "retries at top intensity:";
  for (const auto& s : sweeps) {
    std::cout << " " << s.name << "=" << s.points.back().op_retries;
  }
  std::cout << "\nre-executions at top intensity:";
  for (const auto& s : sweeps) {
    std::cout << " " << s.name << "=" << s.points.back().tasks_reexecuted;
  }
  std::cout << "\n";

  // The claim under test: at top intensity work stealing must degrade
  // no worse than the static schedule.
  const double static_deg = sweeps[0].points.back().degradation;
  const double ws_deg = sweeps.back().points.back().degradation;
  const bool graceful = ws_deg <= static_deg + 1e-9;
  std::cout << "graceful-degradation check: ws x" << ws_deg
            << " vs static x" << static_deg << " -> "
            << (graceful ? "ok" : "VIOLATED") << "\n";

  const FockFaultCheck fock = run_fock_fault_check(opt);
  std::cout << "pgas Fock under faults (" << fock.molecule << ", 2 ranks): "
            << (fock.bitwise_match ? "bitwise match" : "MISMATCH") << ", "
            << fock.task_reexecutions << " task re-executions, "
            << fock.op_retries << " op retries, " << fock.nxtval_retries
            << " nxtval retries\n";

  {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "FAIL: cannot write " << opt.report_path << "\n";
      return 1;
    }
    emc::bench::JsonWriter json(out);
    json.begin_object();
    emc::bench::write_manifest(json, "bench_faults",
                               opt.smoke ? "smoke" : "full", 0);
    json.field("bench", "bench_faults");
    json.field("experiment", "EXP-9b");
    json.field("molecule", opt.molecule);
    json.field("procs", opt.procs);
    json.field("tasks", static_cast<std::int64_t>(model.task_count()));
    json.field("ideal_per_proc_s", ideal);
    json.field("deterministic", all_deterministic);
    json.begin_array("models");
    for (const auto& s : sweeps) {
      json.begin_object();
      json.field("model", s.name);
      json.begin_array("sweep");
      for (const SweepPoint& p : s.points) {
        json.begin_object();
        json.field("intensity", p.intensity);
        json.field("makespan_s", p.makespan);
        json.field("degradation", p.degradation);
        json.field("utilization", p.utilization);
        json.field("op_retries", p.op_retries);
        json.field("tasks_reexecuted", p.tasks_reexecuted);
        json.field("fault_windows", p.fault_windows);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.begin_object("graceful_degradation");
    json.field("ws", ws_deg);
    json.field("static", static_deg);
    json.field("ok", graceful);
    json.end_object();
    json.begin_object("fock_fault_check");
    json.field("molecule", fock.molecule);
    json.field("basis_functions", static_cast<std::int64_t>(fock.n_basis));
    json.field("bitwise_match", fock.bitwise_match);
    json.field("task_reexecutions", fock.task_reexecutions);
    json.field("op_retries", fock.op_retries);
    json.field("nxtval_retries", fock.nxtval_retries);
    json.end_object();
    emc::bench::write_run_footer(json);
    json.end_object();
  }

  // Validate the artifact with the strict parser (rejects NaN/Inf) and
  // check the manifest envelope.
  {
    std::ifstream in(opt.report_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      const util::JsonValue doc = util::parse_json(buf.str());
      const std::string bad = emc::bench::manifest_error(doc);
      if (!bad.empty()) {
        std::cerr << "FAIL: report manifest invalid: " << bad << "\n";
        return 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "FAIL: " << opt.report_path << " is invalid JSON: "
                << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "wrote " << opt.report_path << " (validated)\n";

  if (!all_deterministic || !graceful || !fock.bitwise_match) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
      opt.molecule = "water";
      opt.procs = 8;
    } else if (arg.rfind("--model-procs=", 0) == 0) {
      opt.procs = std::stoi(arg.substr(14));
    } else if (arg.rfind("--ppn=", 0) == 0) {
      opt.ppn = std::stoi(arg.substr(6));
    } else if (arg.rfind("--molecule=", 0) == 0) {
      opt.molecule = arg.substr(11);
    } else if (arg.rfind("--report=", 0) == 0) {
      opt.report_path = arg.substr(9);
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::cerr << "FAIL: " << e.what() << "\n";
    return 1;
  }
}
