# Empty compiler generated dependencies file for loadbalance_compare.
# This may be replaced when dependencies are built.
