#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace emc::net {

namespace {

// Flow-mode constants: utilization is measured against at least one
// microsecond of elapsed simulated time (avoids a divide-by-~0 spike at
// t = 0), and clamped at 95% so the wait term stays finite (19x the
// serialization time at the cap).
constexpr double kFlowMinElapsed = 1.0e-6;
constexpr double kFlowMaxUtilization = 0.95;

}  // namespace

NetworkModel::NetworkModel(const NetworkConfig& config, int n_procs,
                           int procs_per_node, double intra_latency,
                           double inter_latency)
    : config_(config),
      n_procs_(n_procs),
      procs_per_node_(procs_per_node),
      intra_latency_(intra_latency),
      inter_latency_(inter_latency) {
  if (n_procs < 1 || procs_per_node < 1) {
    throw std::invalid_argument("NetworkModel: bad proc counts");
  }
  const int n_nodes = (n_procs + procs_per_node - 1) / procs_per_node;
  topology_ = Topology::build(config, n_nodes);
  link_free_.assign(static_cast<std::size_t>(topology_.link_count()), 0.0);
  link_busy_.assign(link_free_.size(), 0.0);
}

double NetworkModel::base_latency(int src_proc, int dst_proc) const {
  if (src_proc == dst_proc) return 0.0;
  const double endpoint = node_of(src_proc) == node_of(dst_proc)
                              ? intra_latency_
                              : inter_latency_;
  if (config_.legacy() || config_.per_hop_latency <= 0.0) return endpoint;
  return endpoint +
         config_.per_hop_latency *
             topology_.hops(node_of(src_proc), node_of(dst_proc));
}

MessageCost NetworkModel::message_cost(int src_proc, int dst_proc,
                                       std::size_t bytes) const {
  MessageCost cost;
  if (src_proc == dst_proc) return cost;
  cost.latency = base_latency(src_proc, dst_proc);
  if (config_.legacy()) return cost;
  cost.overhead = config_.per_message_overhead;
  if (config_.link_bandwidth > 0.0) {
    const int a = node_of(src_proc);
    const int b = node_of(dst_proc);
    if (a != b) {
      std::vector<int> path;
      topology_.route(a, b, path);
      for (int link : path) {
        cost.serialization +=
            static_cast<double>(bytes) /
            (config_.link_bandwidth * topology_.link_capacity(link));
      }
    }
  }
  return cost;
}

double NetworkModel::send(int src_proc, int dst_proc, double issue,
                          std::size_t bytes, double* wait) {
  if (wait != nullptr) *wait = 0.0;
  if (config_.legacy()) {
    // Seed model, preserved expression-for-expression: delivery is
    // issue + link_latency with no occupancy and no overhead.
    ++stats_.messages;
    stats_.bytes += static_cast<double>(bytes);
    return issue + base_latency(src_proc, dst_proc);
  }
  ++stats_.messages;
  stats_.bytes += static_cast<double>(bytes);
  if (src_proc == dst_proc) return issue;

  double t = issue + config_.per_message_overhead;
  const int a = node_of(src_proc);
  const int b = node_of(dst_proc);
  double queued = 0.0;
  if (a != b && !link_free_.empty()) {
    route_scratch_.clear();
    topology_.route(a, b, route_scratch_);
    for (int link : route_scratch_) {
      const auto lu = static_cast<std::size_t>(link);
      const double ser =
          config_.link_bandwidth > 0.0
              ? static_cast<double>(bytes) /
                    (config_.link_bandwidth * topology_.link_capacity(link))
              : 0.0;
      // Zero-width transfers (infinite bandwidth or empty payload) do
      // not occupy the link and cannot be queued behind: the model then
      // degenerates to pure latency, like the legacy one.
      if (ser > 0.0) {
        if (config_.congestion == CongestionMode::kFlow) {
          // Aggregate-flow approximation: charge the M/M/1-style
          // expected wait ser * u / (1 - u) for the link's utilization
          // so far instead of booking the transfer. u is clamped so a
          // saturated link costs a large finite penalty rather than
          // diverging.
          const double elapsed = std::max(t, kFlowMinElapsed);
          const double u =
              std::min(link_busy_[lu] / elapsed, kFlowMaxUtilization);
          const double flow_wait = ser * u / (1.0 - u);
          queued += flow_wait;
          link_busy_[lu] += ser;
          stats_.serialization += ser;
          t += flow_wait + ser;
        } else {
          const double start = std::max(t, link_free_[lu]);
          queued += start - t;
          link_free_[lu] = start + ser;
          link_busy_[lu] += ser;
          stats_.serialization += ser;
          t = start + ser;
        }
      }
      t += config_.per_hop_latency;
    }
  }
  const double endpoint = a == b ? intra_latency_ : inter_latency_;
  if (queued > 0.0) {
    ++stats_.congested_messages;
    stats_.link_wait += queued;
    if (wait != nullptr) *wait = queued;
  }
  return t + endpoint;
}

double NetworkModel::round_trip(int src_proc, int dst_proc, double issue,
                                std::size_t request_bytes,
                                std::size_t response_bytes, double* wait) {
  if (config_.legacy()) {
    stats_.messages += 2;
    stats_.bytes +=
        static_cast<double>(request_bytes + response_bytes);
    if (wait != nullptr) *wait = 0.0;
    // The seed simulators' round-trip expression, kept bitwise:
    // issue + 2.0 * latency (NOT (issue + L) + L).
    return issue + 2.0 * base_latency(src_proc, dst_proc);
  }
  double w1 = 0.0, w2 = 0.0;
  const double there = send(src_proc, dst_proc, issue, request_bytes, &w1);
  const double back = send(dst_proc, src_proc, there, response_bytes, &w2);
  if (wait != nullptr) *wait = w1 + w2;
  return back;
}

double NetworkModel::max_link_busy() const {
  double best = 0.0;
  for (double b : link_busy_) best = std::max(best, b);
  return best;
}

void NetworkModel::reset() {
  std::fill(link_free_.begin(), link_free_.end(), 0.0);
  std::fill(link_busy_.begin(), link_busy_.end(), 0.0);
  stats_ = Stats{};
}

void NetworkModel::write_metrics(util::MetricsRegistry& registry) const {
  registry.counter("net/messages").add(stats_.messages);
  registry.counter("net/congested_messages").add(stats_.congested_messages);
  registry.gauge("net/bytes").add(stats_.bytes);
  registry.gauge("net/link_wait_seconds").add(stats_.link_wait);
  registry.gauge("net/serialization_seconds").add(stats_.serialization);
  registry.gauge("net/links").set(static_cast<double>(topology_.link_count()));
  int hottest = -1;
  double busy = 0.0;
  for (std::size_t l = 0; l < link_busy_.size(); ++l) {
    if (link_busy_[l] > busy) {
      busy = link_busy_[l];
      hottest = static_cast<int>(l);
    }
  }
  registry.gauge("net/max_link_busy_seconds").set(busy);
  if (hottest >= 0) {
    registry.gauge("net/hottest_link").set(static_cast<double>(hottest));
  }
}

}  // namespace emc::net
