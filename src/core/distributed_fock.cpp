#include "core/distributed_fock.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "exec/tree_reduction.hpp"
#include "exec/ws_deque.hpp"
#include "lb/simple.hpp"
#include "util/profiler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace emc::core {

namespace {

/// Stateless loss decision for one (task, attempt) execution; same hash
/// construction as the PGAS/simulator fault layers. Rank- and
/// thread-independent by design: whichever executor picks the task up
/// sees the same verdict, so re-execution counts are deterministic
/// under any schedule.
bool task_attempt_lost(const DistributedFockOptions::TaskFaultOptions& tf,
                       std::int64_t task, int attempt) {
  std::uint64_t h = tf.seed ^
                    (static_cast<std::uint64_t>(task) + 1) *
                        0x9e3779b97f4a7c15ULL ^
                    (static_cast<std::uint64_t>(attempt) + 1) *
                        0xbf58476d1ce4e5b9ULL;
  const double u = static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
  return u < tf.fail_prob;
}

/// Decorrelated per-executor victim-selection seed.
std::uint64_t executor_seed(std::uint64_t base, int rank, int tid,
                            int threads) {
  std::uint64_t s = base ^
                    (static_cast<std::uint64_t>(rank) *
                         static_cast<std::uint64_t>(threads) +
                     static_cast<std::uint64_t>(tid) + 1) *
                        0x9e3779b97f4a7c15ULL;
  return splitmix64(s);
}

}  // namespace

void JkBufferPool::set_shape(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (n_ == n) return;
  storage_.clear();
  free_.clear();
  n_ = n;
}

JkBuffer* JkBufferPool::acquire() {
  JkBuffer* buffer = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      buffer = free_.back();
      free_.pop_back();
    }
  }
  if (buffer == nullptr) {
    auto owned = std::make_unique<JkBuffer>();
    owned->j = linalg::Matrix(n_, n_);  // fresh matrices are zero
    owned->k = linalg::Matrix(n_, n_);
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(mutex_);
    storage_.push_back(std::move(owned));
    return buffer;
  }
  // Recycled buffer: zero outside the lock.
  std::fill(buffer->j.data(), buffer->j.data() + n_ * n_, 0.0);
  std::fill(buffer->k.data(), buffer->k.data() + n_ * n_, 0.0);
  return buffer;
}

void JkBufferPool::release(JkBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(buffer);
}

std::size_t JkBufferPool::allocated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return storage_.size();
}

DistributedFockBuilder::DistributedFockBuilder(
    const chem::BasisSet& basis, pgas::Runtime& runtime,
    DistributedFockOptions options)
    : basis_(&basis), runtime_(&runtime), options_(std::move(options)),
      fock_(basis, options_.screen_threshold), tasks_(fock_.make_tasks()) {
  if (options_.threads < 1) {
    throw std::invalid_argument("DistributedFockBuilder: threads must be >= 1");
  }
  make_slots();
  pools_.reserve(static_cast<std::size_t>(runtime_->size()));
  for (int r = 0; r < runtime_->size(); ++r) {
    pools_.push_back(std::make_unique<exec::ThreadPool>(options_.threads));
  }
  buffer_pool_.set_shape(static_cast<std::size_t>(basis_->function_count()));
  // Screening totals are Schwarz-only (density-independent): a property
  // of the basis + threshold, both fixed here, so tally once and add
  // per build.
  for (const auto& task : tasks_) {
    const chem::TaskCostFeatures f = fock_.task_cost_features(task);
    scan_total_ += f.scan;
    survived_total_ += f.quartets;
  }
  if (options_.metrics != nullptr) attach_metrics();
}

void DistributedFockBuilder::make_slots() {
  const auto n_tasks = static_cast<std::int64_t>(tasks_.size());
  slots_.clear();
  slot_costs_.clear();
  if (n_tasks == 0) return;
  const std::int64_t max_slots = std::max<std::int64_t>(1, options_.intra_slots);
  const std::int64_t n_slots = std::min(max_slots, n_tasks);
  std::vector<double> costs(static_cast<std::size_t>(n_tasks));
  double total = 0.0;
  for (std::int64_t t = 0; t < n_tasks; ++t) {
    costs[static_cast<std::size_t>(t)] =
        fock_.estimate_task_cost(tasks_[static_cast<std::size_t>(t)]);
    total += costs[static_cast<std::size_t>(t)];
  }
  // Greedy cost-balanced cut into exactly n_slots contiguous non-empty
  // ranges. Depends only on the task list and intra_slots — never on
  // ranks, threads, or policy — so the reduction-tree leaf set is a
  // fixed function of the problem (the bitwise-determinism anchor).
  slots_.reserve(static_cast<std::size_t>(n_slots));
  slot_costs_.reserve(static_cast<std::size_t>(n_slots));
  std::int64_t first = 0;
  double acc = 0.0;
  double slot_cost = 0.0;
  for (std::int64_t t = 0; t < n_tasks; ++t) {
    acc += costs[static_cast<std::size_t>(t)];
    slot_cost += costs[static_cast<std::size_t>(t)];
    const std::int64_t tasks_left = n_tasks - t - 1;
    const std::int64_t slots_left =
        n_slots - static_cast<std::int64_t>(slots_.size()) - 1;
    const bool quota =
        slots_left > 0 &&
        acc >= total * static_cast<double>(slots_.size() + 1) /
                   static_cast<double>(n_slots);
    if (tasks_left == 0 || tasks_left == slots_left || quota) {
      slots_.emplace_back(first, t + 1);
      slot_costs_.push_back(slot_cost);
      first = t + 1;
      slot_cost = 0.0;
    }
  }
}

void DistributedFockBuilder::attach_metrics() {
  util::MetricsRegistry& reg = *options_.metrics;
  runtime_->set_metrics(&reg);
  metrics_.builds = &reg.counter("fock/builds");
  metrics_.tasks = &reg.counter("fock/tasks");
  metrics_.task_reexecs = &reg.counter("fock/task_reexecutions");
  metrics_.kets_scanned = &reg.counter("fock/ket_pairs_scanned");
  metrics_.kets_survived = &reg.counter("fock/ket_pairs_survived");
  metrics_.skip_rate = &reg.gauge("fock/screening_skip_rate");
  metrics_.phase_get = &reg.gauge("fock/phase_get_seconds");
  metrics_.phase_execute = &reg.gauge("fock/phase_execute_seconds");
  metrics_.phase_accumulate = &reg.gauge("fock/phase_accumulate_seconds");
  metrics_.reduction_buffers = &reg.gauge("fock/reduction_buffers");

  metrics_.skip_rate->set(
      scan_total_ > 0.0 ? 1.0 - survived_total_ / scan_total_ : 0.0);
  reg.gauge("fock/reduction_slots")
      .set(static_cast<double>(slots_.size()));

  // Shell-pair cache inventory: entries and primitive pairs held.
  const chem::ShellPairList& pairs = fock_.shell_pairs();
  std::int64_t prim_pairs = 0;
  const int n_shells = static_cast<int>(basis_->shell_count());
  for (int i = 0; i < n_shells; ++i) {
    for (int j = 0; j <= i; ++j) {
      prim_pairs += static_cast<std::int64_t>(pairs.pair(i, j).prims.size());
    }
  }
  reg.gauge("fock/shell_pair_cache_entries")
      .set(static_cast<double>(pairs.size()));
  reg.gauge("fock/shell_pair_cache_prim_pairs")
      .set(static_cast<double>(prim_pairs));
}

lb::Assignment DistributedFockBuilder::slot_assignment() const {
  const int ranks = runtime_->size();
  if (options_.static_balancer == "block") {
    return lb::block_assignment(slots_.size(), ranks);
  }
  if (options_.static_balancer == "cyclic") {
    return lb::cyclic_assignment(slots_.size(), ranks);
  }
  if (options_.static_balancer == "lpt") {
    return lb::lpt_assignment(slot_costs_, ranks);
  }
  throw std::invalid_argument(
      "DistributedFockBuilder: unknown static balancer '" +
      options_.static_balancer + "'");
}

exec::ExecutionStats DistributedFockBuilder::run_hybrid(
    const lb::Assignment& slot_assign,
    const std::vector<linalg::Matrix>& density,
    std::vector<JkBuffer*>& rank_roots,
    std::atomic<std::int64_t>& reexecs) {
  const int ranks = runtime_->size();
  const int threads = options_.threads;
  const auto n_slots = static_cast<std::int64_t>(slots_.size());
  exec::ExecutionStats stats;
  stats.ranks.assign(static_cast<std::size_t>(ranks), exec::RankStats{});
  rank_roots.assign(static_cast<std::size_t>(ranks), nullptr);

  // Per-rank reduction trees over the FULL slot index space. Leaves a
  // rank did not execute are completed empty after its loop drains, so
  // the tree shape — and therefore the grouping of the rank's partial
  // sum — is a pure function of (slot partition, executed-slot set).
  std::vector<std::unique_ptr<exec::TreeReduction<JkBuffer>>> trees;
  trees.reserve(static_cast<std::size_t>(ranks));
  const auto merge = [](JkBuffer& left, JkBuffer& right) {
    left.j += right.j;
    left.k += right.k;
  };
  const auto recycle = [this](JkBuffer* b) { buffer_pool_.release(b); };
  for (int r = 0; r < ranks; ++r) {
    trees.push_back(std::make_unique<exec::TreeReduction<JkBuffer>>(
        n_slots, merge, recycle));
  }

  // Ascending slot lists per rank (static model and stealing seed).
  std::vector<std::vector<std::int64_t>> rank_slots(
      static_cast<std::size_t>(ranks));
  for (std::int64_t s = 0; s < n_slots; ++s) {
    rank_slots[static_cast<std::size_t>(
                   slot_assign[static_cast<std::size_t>(s)])]
        .push_back(s);
  }

  const DistributedFockOptions::TaskFaultOptions& tf = options_.task_faults;
  std::atomic<bool> aborted{false};

  // Executes one slot serially in ascending task order into a pooled
  // zeroed buffer, then delivers the partial to the rank's tree.
  const auto execute_slot = [&](std::int64_t s, int rank,
                                exec::RankStats& ts) {
    JkBuffer* buffer = buffer_pool_.acquire();
    emc::Timer busy;
    const auto [task_first, task_last] =
        slots_[static_cast<std::size_t>(s)];
    for (std::int64_t t = task_first; t < task_last; ++t) {
      if (tf.enabled()) {
        // Losses are decided before the kernel runs, so partial
        // contributions never touch the buffer; each loss just costs
        // its delay. The last attempt is forced through.
        int attempt = 0;
        while (attempt + 1 < tf.max_attempts &&
               task_attempt_lost(tf, t, attempt)) {
          pgas::inject_delay(tf.reexec_delay_ns);
          ++attempt;
        }
        if (attempt > 0) {
          reexecs.fetch_add(attempt, std::memory_order_relaxed);
        }
      }
      fock_.execute_task(tasks_[static_cast<std::size_t>(t)],
                         density[static_cast<std::size_t>(rank)],
                         buffer->j, buffer->k);
    }
    ts.busy_seconds += busy.seconds();
    ts.tasks_executed += task_last - task_first;
    trees[static_cast<std::size_t>(rank)]->complete(s, buffer);
  };

  // Shared state for the global (inter-rank) dynamic models.
  pgas::GlobalCounter global_counter(0);
  if (options_.model == ExecModel::kCounter &&
      runtime_->metrics() != nullptr) {
    global_counter.attach_metrics(*runtime_->metrics(), ranks);
  }
  std::vector<std::unique_ptr<exec::WsDeque>> global_deques;
  std::atomic<std::int64_t> remaining_global{n_slots};
  if (options_.model == ExecModel::kWorkStealing) {
    // One deque per executor (rank, thread); capacity n_slots so
    // steal-half migrations can never overflow anyone.
    global_deques.resize(static_cast<std::size_t>(ranks) *
                         static_cast<std::size_t>(threads));
    for (auto& d : global_deques) {
      d = std::make_unique<exec::WsDeque>(
          static_cast<std::size_t>(std::max<std::int64_t>(1, n_slots)));
    }
    // Seed each rank's slots cyclically over its threads, pushed in
    // descending order so owner pops proceed in ascending slot order.
    for (int r = 0; r < ranks; ++r) {
      const auto& mine = rank_slots[static_cast<std::size_t>(r)];
      for (std::size_t i = mine.size(); i-- > 0;) {
        global_deques[static_cast<std::size_t>(r) *
                          static_cast<std::size_t>(threads) +
                      i % static_cast<std::size_t>(threads)]
            ->push(mine[i]);
      }
    }
  }

  emc::Timer wall;
  runtime_->run([&](pgas::Context& ctx) {
    const int rank = ctx.rank();
    const auto ru = static_cast<std::size_t>(rank);
    std::vector<exec::RankStats> tstats(static_cast<std::size_t>(threads));
    exec::ThreadPool& pool = *pools_[ru];

    switch (options_.model) {
      case ExecModel::kStatic: {
        const std::vector<std::int64_t>& mine = rank_slots[ru];
        switch (options_.intra_policy) {
          case IntraPolicy::kStatic: {
            // Cyclic static slices of the rank's slot list.
            pool.run([&](int tid) {
              try {
                auto& ts = tstats[static_cast<std::size_t>(tid)];
                for (std::size_t i = static_cast<std::size_t>(tid);
                     i < mine.size();
                     i += static_cast<std::size_t>(threads)) {
                  if (aborted.load(std::memory_order_relaxed)) break;
                  execute_slot(mine[i], rank, ts);
                }
              } catch (...) {
                aborted.store(true, std::memory_order_relaxed);
                throw;
              }
            });
            break;
          }
          case IntraPolicy::kCounter: {
            // Rank-local nxtval over the rank's slot list. Intra-node
            // fetch_add is priced free — it is a real atomic, not a
            // network round trip.
            pgas::GlobalCounter next(0);
            const pgas::CommCostModel free_cost{};
            const std::int64_t chunk =
                std::max<std::int64_t>(1, options_.intra_chunk);
            const auto count = static_cast<std::int64_t>(mine.size());
            pool.run([&](int tid) {
              try {
                auto& ts = tstats[static_cast<std::size_t>(tid)];
                while (!aborted.load(std::memory_order_relaxed)) {
                  const std::int64_t i = next.fetch_add(chunk, free_cost, rank);
                  ++ts.counter_ops;
                  if (i >= count) break;
                  const std::int64_t end = std::min(i + chunk, count);
                  for (std::int64_t s = i;
                       s < end && !aborted.load(std::memory_order_relaxed);
                       ++s) {
                    execute_slot(mine[static_cast<std::size_t>(s)], rank, ts);
                  }
                }
              } catch (...) {
                aborted.store(true, std::memory_order_relaxed);
                throw;
              }
            });
            break;
          }
          case IntraPolicy::kWorkStealing: {
            // Per-thread Chase–Lev deques, victims within the rank.
            std::vector<std::unique_ptr<exec::WsDeque>> deques(
                static_cast<std::size_t>(threads));
            for (auto& d : deques) {
              d = std::make_unique<exec::WsDeque>(
                  std::max<std::size_t>(1, mine.size()));
            }
            for (std::size_t i = mine.size(); i-- > 0;) {
              deques[i % static_cast<std::size_t>(threads)]->push(mine[i]);
            }
            std::atomic<std::int64_t> remaining{
                static_cast<std::int64_t>(mine.size())};
            pool.run([&](int tid) {
              try {
                auto& ts = tstats[static_cast<std::size_t>(tid)];
                exec::WsDeque& my_deque =
                    *deques[static_cast<std::size_t>(tid)];
                emc::Rng rng(executor_seed(options_.steal.seed, rank, tid,
                                           threads));
                while (remaining.load(std::memory_order_relaxed) > 0 &&
                       !aborted.load(std::memory_order_relaxed)) {
                  if (auto s = my_deque.pop()) {
                    execute_slot(*s, rank, ts);
                    remaining.fetch_sub(1, std::memory_order_relaxed);
                    continue;
                  }
                  if (threads == 1) continue;
                  auto victim = static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(threads - 1)));
                  if (victim >= tid) ++victim;
                  ++ts.steal_attempts;
                  exec::WsDeque& vd =
                      *deques[static_cast<std::size_t>(victim)];
                  if (auto s = vd.steal()) {
                    ++ts.steals;
                    if (options_.steal.steal_half) {
                      std::int64_t extra = vd.size_estimate() / 2;
                      while (extra-- > 0) {
                        if (auto more = vd.steal()) {
                          my_deque.push(*more);
                        } else {
                          break;
                        }
                      }
                    }
                    execute_slot(*s, rank, ts);
                    remaining.fetch_sub(1, std::memory_order_relaxed);
                  }
                }
              } catch (...) {
                aborted.store(true, std::memory_order_relaxed);
                throw;
              }
            });
            break;
          }
        }
        break;
      }
      case ExecModel::kCounter: {
        // Global self-scheduling: EVERY executor thread of every rank
        // hits the shared nxtval — the intra policy degenerates into
        // the inter one, which is exactly how GA codes oversubscribe
        // the counter in hybrid runs (R·T contenders per grab).
        const std::int64_t chunk =
            std::max<std::int64_t>(1, options_.counter_chunk);
        pool.run([&](int tid) {
          try {
            auto& ts = tstats[static_cast<std::size_t>(tid)];
            while (!aborted.load(std::memory_order_relaxed)) {
              const std::int64_t s0 =
                  global_counter.fetch_add(chunk, ctx.cost_model(), rank);
              ++ts.counter_ops;
              if (s0 >= n_slots) break;
              const std::int64_t end = std::min(s0 + chunk, n_slots);
              for (std::int64_t s = s0;
                   s < end && !aborted.load(std::memory_order_relaxed);
                   ++s) {
                execute_slot(s, rank, ts);
              }
            }
          } catch (...) {
            aborted.store(true, std::memory_order_relaxed);
            throw;
          }
        });
        break;
      }
      case ExecModel::kWorkStealing: {
        // Two-level stealing over ranks × threads deques: co-threads
        // first (free), remote ranks second (pays the injected remote
        // latency), mirroring hierarchical victim selection.
        const int n_exec = ranks * threads;
        pool.run([&](int tid) {
          try {
            auto& ts = tstats[static_cast<std::size_t>(tid)];
            const auto g = ru * static_cast<std::size_t>(threads) +
                           static_cast<std::size_t>(tid);
            exec::WsDeque& my_deque = *global_deques[g];
            emc::Rng rng(
                executor_seed(options_.steal.seed, rank, tid, threads));
            const auto steal_from = [&](exec::WsDeque& vd) -> bool {
              ++ts.steal_attempts;
              if (auto s = vd.steal()) {
                ++ts.steals;
                if (options_.steal.steal_half) {
                  std::int64_t extra = vd.size_estimate() / 2;
                  while (extra-- > 0) {
                    if (auto more = vd.steal()) {
                      my_deque.push(*more);
                    } else {
                      break;
                    }
                  }
                }
                execute_slot(*s, rank, ts);
                remaining_global.fetch_sub(1, std::memory_order_relaxed);
                return true;
              }
              return false;
            };
            while (remaining_global.load(std::memory_order_relaxed) > 0 &&
                   !aborted.load(std::memory_order_relaxed)) {
              if (auto s = my_deque.pop()) {
                execute_slot(*s, rank, ts);
                remaining_global.fetch_sub(1, std::memory_order_relaxed);
                continue;
              }
              if (n_exec == 1) continue;
              if (threads > 1) {
                auto vt = static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(threads - 1)));
                if (vt >= tid) ++vt;
                if (steal_from(*global_deques[ru * static_cast<std::size_t>(
                                                       threads) +
                                              static_cast<std::size_t>(vt)])) {
                  continue;
                }
              }
              if (ranks > 1) {
                const auto pick = static_cast<std::int64_t>(rng.below(
                    static_cast<std::uint64_t>((ranks - 1) * threads)));
                auto vr = static_cast<int>(pick / threads);
                if (vr >= rank) ++vr;
                const auto vt = static_cast<std::size_t>(pick % threads);
                pgas::inject_delay(ctx.cost_model().remote_ns);
                steal_from(*global_deques[static_cast<std::size_t>(vr) *
                                              static_cast<std::size_t>(
                                                  threads) +
                                          vt]);
              }
            }
          } catch (...) {
            aborted.store(true, std::memory_order_relaxed);
            throw;
          }
        });
        break;
      }
    }

    exec::RankStats& mine = stats.ranks[ru];
    for (const exec::RankStats& ts : tstats) {
      mine.tasks_executed += ts.tasks_executed;
      mine.busy_seconds += ts.busy_seconds;
      mine.steal_attempts += ts.steal_attempts;
      mine.steals += ts.steals;
      mine.counter_ops += ts.counter_ops;
    }
    // Slots this rank never executed are empty leaves; with them closed
    // the tree collapses to this rank's partial.
    trees[ru]->complete_missing();
    rank_roots[ru] = trees[ru]->take_root();
  });
  stats.wall_seconds = wall.seconds();
  return stats;
}

linalg::Matrix DistributedFockBuilder::build_g(
    const linalg::Matrix& density) {
  EMC_PROF_SPAN("fock/build_g");
  const auto n = static_cast<std::size_t>(basis_->function_count());
  if (density.rows() != n || density.cols() != n) {
    throw std::invalid_argument("build_g: density shape mismatch");
  }
  const int ranks = runtime_->size();

  // Publish the density; ranks will fetch it one-sided.
  pgas::GlobalArray density_ga(n, n, ranks);
  pgas::GlobalArray j_ga(n, n, ranks);
  pgas::GlobalArray k_ga(n, n, ranks);
  if (options_.metrics != nullptr) {
    density_ga.set_metrics(options_.metrics);
    j_ga.set_metrics(options_.metrics);
    k_ga.set_metrics(options_.metrics);
  }
  density_ga.put(0, 0, 0, n, n,
                 std::span<const double>(density.data(), n * n),
                 pgas::CommCostModel{});

  const lb::Assignment slot_assign = slot_assignment();

  // Per-rank density replicas (the one full-replica set the GA pattern
  // genuinely needs). J/K no longer get 2·ranks·n² replicas of their
  // own: threads accumulate into pooled per-slot buffers that fold
  // through the reduction tree, so the live set is bounded by
  // ranks·(threads + log2 slots) buffers.
  std::vector<linalg::Matrix> local_density(
      static_cast<std::size_t>(ranks), linalg::Matrix(n, n));
  std::vector<JkBuffer*> rank_roots;
  std::atomic<std::int64_t> reexecs{0};

  // Fetch + execute + accumulate are their own SPMD phases. This
  // mirrors GA codes: GA_Get(P) ... do work ... GA_Acc(F) with
  // barriers between phases.
  emc::Timer phase;
  {
    EMC_PROF_SPAN("fock/phase_get");
    runtime_->run([&](pgas::Context& ctx) {
      const auto ru = static_cast<std::size_t>(ctx.rank());
      density_ga.get(ctx.rank(), 0, 0, n, n,
                     std::span<double>(local_density[ru].data(), n * n),
                     ctx.cost_model());
    });
  }
  if (metrics_.phase_get != nullptr) metrics_.phase_get->add(phase.seconds());

  phase.reset();
  {
    EMC_PROF_SPAN("fock/phase_execute");
    last_stats_ = run_hybrid(slot_assign, local_density, rank_roots, reexecs);
  }
  if (metrics_.phase_execute != nullptr) {
    metrics_.phase_execute->add(phase.seconds());
  }

  phase.reset();
  {
    EMC_PROF_SPAN("fock/phase_accumulate");
    runtime_->run([&](pgas::Context& ctx) {
      const auto ru = static_cast<std::size_t>(ctx.rank());
      const JkBuffer* root = rank_roots[ru];
      if (root == nullptr) return;  // rank executed no slots
      j_ga.accumulate(ctx.rank(), 0, 0, n, n,
                      std::span<const double>(root->j.data(), n * n),
                      ctx.cost_model());
      k_ga.accumulate(ctx.rank(), 0, 0, n, n,
                      std::span<const double>(root->k.data(), n * n),
                      ctx.cost_model());
    });
  }
  for (JkBuffer* root : rank_roots) {
    if (root != nullptr) buffer_pool_.release(root);
  }
  if (metrics_.phase_accumulate != nullptr) {
    metrics_.phase_accumulate->add(phase.seconds());
  }

  linalg::Matrix j_total(n, n), k_total(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      j_total(r, c) = j_ga.at(r, c);
      k_total(r, c) = k_ga.at(r, c);
    }
  }
  ++builds_;
  last_reexecs_ = reexecs.load(std::memory_order_relaxed);
  if (metrics_.builds != nullptr) {
    metrics_.builds->add(1);
    metrics_.tasks->add(static_cast<std::int64_t>(tasks_.size()));
    metrics_.task_reexecs->add(last_reexecs_);
    // Per-build tally of the fixed screening totals, rounded to nearest
    // (truncation undercounted by up to one ket pair per build).
    metrics_.kets_scanned->add(std::llround(scan_total_));
    metrics_.kets_survived->add(std::llround(survived_total_));
    metrics_.reduction_buffers->set(
        static_cast<double>(buffer_pool_.allocated()));
  }
  return chem::FockBuilder::combine_jk(j_total, k_total);
}

chem::GBuilder DistributedFockBuilder::as_g_builder() {
  return [this](const linalg::Matrix& density) { return build_g(density); };
}

}  // namespace emc::core
