#include "pgas/global_array.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/profiler.hpp"

namespace emc::pgas {

namespace {

void resolve_op_counters(util::MetricsRegistry& registry, int n_ranks,
                         const char* op, std::vector<util::Counter*>& ops,
                         std::vector<util::Counter*>& bytes) {
  ops.clear();
  bytes.clear();
  for (int r = 0; r < n_ranks; ++r) {
    const std::string prefix = "pgas/r" + std::to_string(r) + "/";
    ops.push_back(&registry.counter(prefix + op + "_ops"));
    bytes.push_back(&registry.counter(prefix + op + "_bytes"));
  }
}

}  // namespace

void GlobalArray::set_metrics(util::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_attached_ = false;
    get_metrics_ = {};
    put_metrics_ = {};
    acc_metrics_ = {};
    retry_metrics_.clear();
    return;
  }
  resolve_op_counters(*registry, n_ranks_, "get", get_metrics_.ops,
                      get_metrics_.bytes);
  resolve_op_counters(*registry, n_ranks_, "put", put_metrics_.ops,
                      put_metrics_.bytes);
  resolve_op_counters(*registry, n_ranks_, "acc", acc_metrics_.ops,
                      acc_metrics_.bytes);
  retry_metrics_.clear();
  for (int r = 0; r < n_ranks_; ++r) {
    retry_metrics_.push_back(
        &registry->counter("pgas/r" + std::to_string(r) + "/op_retries"));
  }
  metrics_attached_ = true;
}

void GlobalArray::resolve_faults(int caller, std::size_t n_bytes,
                                 const CommCostModel& cost) const {
  if (!cost.faults_enabled()) return;
  const std::size_t slot =
      (caller >= 0 && caller < n_ranks_)
          ? static_cast<std::size_t>(caller) + 1
          : 0;
  const std::uint64_t seq =
      op_seq_[slot].fetch_add(1, std::memory_order_relaxed);
  // A dropped attempt wastes the full remote round trip for the patch.
  const int retries = resolve_with_retries(
      cost, caller, seq, cost.transfer_cost(true, n_bytes));
  if (retries > 0 && metrics_attached_ && caller >= 0 &&
      caller < static_cast<int>(retry_metrics_.size())) {
    retry_metrics_[static_cast<std::size_t>(caller)]->add(retries);
  }
}

GlobalArray::GlobalArray(std::size_t rows, std::size_t cols, int n_ranks)
    : rows_(rows), cols_(cols), n_ranks_(n_ranks), data_(rows * cols, 0.0),
      stripe_mutexes_(static_cast<std::size_t>(n_ranks)),
      op_seq_(static_cast<std::size_t>(n_ranks) + 1) {
  if (n_ranks < 1) throw std::invalid_argument("GlobalArray: n_ranks < 1");
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("GlobalArray: empty array");
  }
}

int GlobalArray::owner_of_row(std::size_t row) const {
  // Block distribution: rank r owns rows [r*rows/P, (r+1)*rows/P).
  return static_cast<int>(row * static_cast<std::size_t>(n_ranks_) / rows_);
}

std::pair<std::size_t, std::size_t> GlobalArray::local_rows(int rank) const {
  const auto p = static_cast<std::size_t>(n_ranks_);
  const auto r = static_cast<std::size_t>(rank);
  // Inverse of owner_of_row's floor distribution.
  const std::size_t first = (r * rows_ + p - 1) / p;
  const std::size_t last = ((r + 1) * rows_ + p - 1) / p;
  return {std::min(first, rows_), std::min(last, rows_)};
}

void GlobalArray::check_patch(std::size_t r0, std::size_t c0, std::size_t h,
                              std::size_t w) const {
  if (r0 + h > rows_ || c0 + w > cols_ || h == 0 || w == 0) {
    throw std::out_of_range("GlobalArray: patch out of range");
  }
}

template <typename Fn>
void GlobalArray::for_each_stripe(std::size_t r0, std::size_t h,
                                  Fn&& fn) const {
  std::size_t row = r0;
  const std::size_t end = r0 + h;
  while (row < end) {
    const int rank = owner_of_row(row);
    const std::size_t stripe_end =
        std::min(end, local_rows(rank).second);
    fn(rank, row, stripe_end);
    row = stripe_end;
  }
}

void GlobalArray::get(int caller, std::size_t r0, std::size_t c0,
                      std::size_t h, std::size_t w, std::span<double> out,
                      const CommCostModel& cost) const {
  EMC_PROF_SPAN("pgas/get");
  check_patch(r0, c0, h, w);
  if (out.size() < h * w) throw std::invalid_argument("get: buffer too small");
  resolve_faults(caller, h * w * sizeof(double), cost);
  if (metrics_attached_) get_metrics_.record(caller, h * w * sizeof(double));
  for_each_stripe(r0, h, [&](int rank, std::size_t first, std::size_t last) {
    inject_delay(cost.transfer_cost(rank != caller,
                                    (last - first) * w * sizeof(double)));
    for (std::size_t r = first; r < last; ++r) {
      const double* src = data_.data() + r * cols_ + c0;
      std::copy(src, src + w, out.data() + (r - r0) * w);
    }
  });
}

void GlobalArray::put(int caller, std::size_t r0, std::size_t c0,
                      std::size_t h, std::size_t w,
                      std::span<const double> in, const CommCostModel& cost) {
  EMC_PROF_SPAN("pgas/put");
  check_patch(r0, c0, h, w);
  if (in.size() < h * w) throw std::invalid_argument("put: buffer too small");
  resolve_faults(caller, h * w * sizeof(double), cost);
  if (metrics_attached_) put_metrics_.record(caller, h * w * sizeof(double));
  for_each_stripe(r0, h, [&](int rank, std::size_t first, std::size_t last) {
    inject_delay(cost.transfer_cost(rank != caller,
                                    (last - first) * w * sizeof(double)));
    std::lock_guard<std::mutex> lock(
        stripe_mutexes_[static_cast<std::size_t>(rank)]);
    for (std::size_t r = first; r < last; ++r) {
      const double* src = in.data() + (r - r0) * w;
      std::copy(src, src + w, data_.data() + r * cols_ + c0);
    }
  });
}

void GlobalArray::accumulate(int caller, std::size_t r0, std::size_t c0,
                             std::size_t h, std::size_t w,
                             std::span<const double> in,
                             const CommCostModel& cost) {
  EMC_PROF_SPAN("pgas/accumulate");
  check_patch(r0, c0, h, w);
  if (in.size() < h * w) {
    throw std::invalid_argument("accumulate: buffer too small");
  }
  resolve_faults(caller, h * w * sizeof(double), cost);
  if (metrics_attached_) acc_metrics_.record(caller, h * w * sizeof(double));
  for_each_stripe(r0, h, [&](int rank, std::size_t first, std::size_t last) {
    inject_delay(cost.transfer_cost(rank != caller,
                                    (last - first) * w * sizeof(double)));
    std::lock_guard<std::mutex> lock(
        stripe_mutexes_[static_cast<std::size_t>(rank)]);
    for (std::size_t r = first; r < last; ++r) {
      const double* src = in.data() + (r - r0) * w;
      double* dst = data_.data() + r * cols_ + c0;
      for (std::size_t c = 0; c < w; ++c) dst[c] += src[c];
    }
  });
}

void GlobalArray::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace emc::pgas
