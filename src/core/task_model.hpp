#pragma once

// The study's task model: the Fock build of a concrete molecule/basis is
// turned into a weighted task list plus the structures each balancer
// needs (bipartite locality graph for semi-matching, task-interaction
// hypergraph for partitioning).
//
// Task costs can be *measured* (each task executed once against a model
// density on this machine — the honest calibration used by benches) or
// *estimated* analytically (flop-weighted quartet counts — the cheap
// inspector model a production run would use).

#include <cstdint>
#include <string>
#include <vector>

#include "chem/basis.hpp"
#include "chem/fock.hpp"
#include "chem/molecule.hpp"
#include "graph/hypergraph.hpp"
#include "lb/semi_matching.hpp"

namespace emc::core {

struct TaskModel {
  chem::Molecule molecule;
  chem::BasisSet basis;
  std::vector<chem::ShellPairTask> tasks;
  std::vector<double> costs;       ///< per-task cost (seconds)
  std::vector<int> shell_atom;     ///< owning atom per shell

  std::size_t task_count() const { return tasks.size(); }
  int shell_count() const { return static_cast<int>(shell_atom.size()); }
  double total_cost() const;
};

struct TaskModelOptions {
  std::string basis_name = "sto-3g";
  double screen_threshold = 1e-10;
  /// If true, run every task once and record wall time; otherwise use
  /// the analytic estimate scaled to ~seconds.
  bool measure_costs = false;
  /// Analytic cost scale: estimated flop units are multiplied by this to
  /// produce simulated seconds (default calibrated to the shell-pair
  /// cached ERI kernel's fitted ~55ns per primitive-quartet-function
  /// unit; see bench_kernel --calibrate).
  double analytic_cost_scale = 5.3e-8;
};

/// Builds the task model for a named molecule (see make_named_molecule).
TaskModel build_task_model(const std::string& molecule_name,
                           const TaskModelOptions& options = {});

/// Same, for an explicit molecule.
TaskModel build_task_model(const chem::Molecule& molecule,
                           const TaskModelOptions& options = {});

/// Owner of a shell's matrix stripe under the P-way block distribution
/// the PGAS layer uses.
int shell_owner(int shell, int n_shells, int n_procs);

/// Mean bytes a task moves when it executes away from its home stripe:
/// the bra shells' density row-stripes fetched plus the matching J/K
/// Fock stripes accumulated back, as 8-byte doubles. This is the sized
/// payload the contention-aware network model (src/net) charges per
/// dynamically migrated task (NetworkConfig::task_payload_bytes).
std::size_t mean_task_comm_bytes(const TaskModel& model);

/// Bipartite locality instance for semi-matching: task (i,j) is eligible
/// on the owners of shells i and j plus `window` neighbouring procs on
/// each side (window >= n_procs degenerates to the complete instance).
lb::BipartiteTaskGraph make_locality_instance(const TaskModel& model,
                                              int n_procs, int window = 1);

/// Task-interaction hypergraph: one net per shell connecting all tasks
/// whose bra pair touches that shell (tasks sharing a bra shell reuse the
/// same Fock/density stripes). Vertex weights are task costs.
graph::Hypergraph make_task_hypergraph(const TaskModel& model);

/// Executes every task against a model density and returns measured wall
/// seconds per task. Each task is timed `repeats` times and the minimum
/// kept (the standard de-noising for microsecond-scale kernels on a
/// shared machine).
std::vector<double> measure_task_costs(const TaskModel& model,
                                       double screen_threshold,
                                       int repeats = 3);

}  // namespace emc::core
