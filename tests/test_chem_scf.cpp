// SCF driver tests: literature energies, physical invariants, Fock-build
// decomposition correctness.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/eri.hpp"
#include "chem/fock.hpp"
#include "chem/integrals.hpp"
#include "chem/scf.hpp"
#include "linalg/blas.hpp"

namespace {

using namespace emc::chem;
using emc::linalg::Matrix;

TEST(ScfTest, H2Sto3gEnergyMatchesSzabo) {
  const Molecule mol = make_h2(1.4);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const ScfResult r = run_rhf(mol, basis);
  EXPECT_TRUE(r.converged);
  // Szabo & Ostlund: E_total = -1.1167 at R = 1.4 a0.
  EXPECT_NEAR(r.energy, -1.1167, 2e-4);
  EXPECT_NEAR(r.nuclear_repulsion, 1.0 / 1.4, 1e-12);
}

TEST(ScfTest, WaterSto3gEnergy) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const ScfResult r = run_rhf(mol, basis);
  EXPECT_TRUE(r.converged);
  // RHF/STO-3G at the experimental geometry: ~ -74.963 Eh.
  EXPECT_NEAR(r.energy, -74.9629, 5e-3);
}

TEST(ScfTest, Water631gEnergyBelowSto3g) {
  // The variational principle demands the bigger basis gives lower E.
  const Molecule mol = make_water();
  const ScfResult small = run_rhf(mol, BasisSet::build(mol, "sto-3g"));
  const ScfResult big = run_rhf(mol, BasisSet::build(mol, "6-31g"));
  EXPECT_TRUE(big.converged);
  EXPECT_LT(big.energy, small.energy);
  // Literature RHF/6-31G for water is about -75.98 Eh.
  EXPECT_NEAR(big.energy, -75.98, 5e-2);
}

TEST(ScfTest, DensityTraceCountsElectrons) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const ScfResult r = run_rhf(mol, basis);
  const Matrix s = overlap_matrix(basis);
  // tr(P S) = number of electrons.
  const Matrix ps = emc::linalg::matmul(r.density, s);
  EXPECT_NEAR(ps.trace(), 10.0, 1e-8);
}

TEST(ScfTest, VirialRatioNearTwo) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const ScfResult r = run_rhf(mol, basis);
  // -V/T = 2 exactly at basis-set-optimal geometry; within a few percent
  // here.
  const double v = r.energy - r.kinetic_energy;
  EXPECT_NEAR(-v / r.kinetic_energy, 2.0, 0.05);
}

TEST(ScfTest, OrbitalEnergiesOrderedAndOccupiedNegative) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const ScfResult r = run_rhf(mol, basis);
  ASSERT_EQ(r.orbital_energies.size(),
            static_cast<std::size_t>(basis.function_count()));
  for (std::size_t i = 1; i < r.orbital_energies.size(); ++i) {
    EXPECT_LE(r.orbital_energies[i - 1], r.orbital_energies[i]);
  }
  // All five occupied orbitals of water are bound.
  for (int o = 0; o < 5; ++o) {
    EXPECT_LT(r.orbital_energies[static_cast<std::size_t>(o)], 0.0);
  }
}

TEST(ScfTest, OddElectronCountThrows) {
  Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);  // lone H atom, 1 electron
  const BasisSet basis = BasisSet::build(m, "sto-3g");
  EXPECT_THROW(run_rhf(m, basis), std::invalid_argument);
}

TEST(ScfTest, ChargedSpeciesRuns) {
  // H2+ would be odd; use H3+ (2 electrons, charge +1).
  Molecule m;
  const double r = 1.65;  // near-equilateral H3+
  m.add_atom(1, 0.0, 0.0, 0.0);
  m.add_atom(1, r, 0.0, 0.0);
  m.add_atom(1, r / 2.0, r * std::sqrt(3.0) / 2.0, 0.0);
  const BasisSet basis = BasisSet::build(m, "sto-3g");
  ScfOptions options;
  options.net_charge = 1;
  const ScfResult result = run_rhf(m, basis, options);
  EXPECT_TRUE(result.converged);
  // H3+/STO-3G total energy is around -1.27 Eh near equilibrium.
  EXPECT_NEAR(result.energy, -1.27, 0.05);
}

TEST(ScfTest, DiisAcceleratesConvergence) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  ScfOptions with_diis;
  ScfOptions without_diis;
  without_diis.diis_size = 0;
  without_diis.max_iterations = 200;
  const ScfResult a = run_rhf(mol, basis, with_diis);
  const ScfResult b = run_rhf(mol, basis, without_diis);
  EXPECT_TRUE(a.converged);
  EXPECT_TRUE(b.converged);
  EXPECT_NEAR(a.energy, b.energy, 1e-6);
  EXPECT_LE(a.iterations, b.iterations);
}

TEST(ScfTest, ScreeningDoesNotChangeEnergy) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  ScfOptions screened;
  screened.screen_threshold = 1e-9;
  ScfOptions unscreened;
  unscreened.screen_threshold = 0.0;
  const ScfResult a = run_rhf(mol, basis, screened);
  const ScfResult b = run_rhf(mol, basis, unscreened);
  EXPECT_NEAR(a.energy, b.energy, 1e-7);
}

TEST(FockBuilderTest, TaskCountIsTriangular) {
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto tasks = builder.make_tasks();
  const auto ns = basis.shell_count();
  EXPECT_EQ(tasks.size(), ns * (ns + 1) / 2);
  // Ranks are the canonical pair ranks, strictly increasing.
  for (std::size_t t = 1; t < tasks.size(); ++t) {
    EXPECT_LT(tasks[t - 1].rank, tasks[t].rank);
  }
}

TEST(FockBuilderTest, TaskSumMatchesMonolithicBuild) {
  // Union of per-task J/K contributions must equal build_g exactly.
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto n = static_cast<std::size_t>(basis.function_count());

  Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = 0.1 * static_cast<double>(i + j) + (i == j ? 1.0 : 0.0);
    }
  }

  Matrix j_acc(n, n), k_acc(n, n);
  for (const auto& task : builder.make_tasks()) {
    builder.execute_task(task, density, j_acc, k_acc);
  }
  const Matrix g_tasks = FockBuilder::combine_jk(j_acc, k_acc);
  const Matrix g_mono = builder.build_g(density);
  EXPECT_TRUE(g_tasks.almost_equal(g_mono, 1e-12));
}

TEST(FockBuilderTest, GMatrixMatchesDenseTensorContraction) {
  // G built from shell quartets with 8-fold symmetry must equal the naive
  // contraction of the full ERI tensor.
  const Molecule mol = make_water();
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis, /*screen=*/0.0);
  const auto n = static_cast<std::size_t>(basis.function_count());

  Matrix density(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      density(i, j) = ((i * 7 + j * 3) % 5) * 0.05 + (i == j ? 0.8 : 0.0);
    }
  }
  // Symmetrize: RHF densities are symmetric and the builder assumes it.
  Matrix sym = density;
  sym += density.transposed();
  sym *= 0.5;

  const Matrix g = builder.build_g(sym);

  const auto eri = full_eri_tensor(basis);
  const auto idx = [n](std::size_t i, std::size_t j, std::size_t k,
                       std::size_t l) {
    return ((i * n + j) * n + k) * n + l;
  };
  Matrix expected(n, n);
  for (std::size_t mu = 0; mu < n; ++mu) {
    for (std::size_t nu = 0; nu < n; ++nu) {
      double s = 0.0;
      for (std::size_t la = 0; la < n; ++la) {
        for (std::size_t sg = 0; sg < n; ++sg) {
          s += sym(la, sg) * (eri[idx(mu, nu, la, sg)] -
                              0.5 * eri[idx(mu, la, nu, sg)]);
        }
      }
      expected(mu, nu) = s;
    }
  }
  EXPECT_TRUE(g.almost_equal(expected, 1e-10));
}

TEST(FockBuilderTest, QuartetCountsDecreaseWithScreening) {
  const Molecule mol = make_water_cluster(3);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder loose(basis, 1e-6);
  const FockBuilder tight(basis, 0.0);
  std::uint64_t n_loose = 0, n_tight = 0;
  for (const auto& task : loose.make_tasks()) {
    n_loose += loose.count_task_quartets(task);
    n_tight += tight.count_task_quartets(task);
  }
  EXPECT_LT(n_loose, n_tight);
  EXPECT_GT(n_loose, 0u);
}

TEST(FockBuilderTest, EstimatedCostsPositiveAndHeterogeneous) {
  const Molecule mol = make_water_cluster(2);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const auto tasks = builder.make_tasks();
  double min_cost = 1e300, max_cost = 0.0;
  for (const auto& task : tasks) {
    const double c = builder.estimate_task_cost(task);
    EXPECT_GE(c, 0.0);
    min_cost = std::min(min_cost, c);
    max_cost = std::max(max_cost, c);
  }
  // The first task (0,0) does 1 quartet; the last does ~n_pairs of them —
  // heterogeneity is what the whole study is about.
  EXPECT_GT(max_cost, 10.0 * min_cost);
}

TEST(ScfTest, ParallelizableBuilderHookWorks) {
  // run_rhf_with_builder with the stock builder must equal run_rhf.
  const Molecule mol = make_h2(1.4);
  const BasisSet basis = BasisSet::build(mol, "sto-3g");
  const FockBuilder builder(basis);
  const ScfResult a = run_rhf(mol, basis);
  const ScfResult b = run_rhf_with_builder(
      mol, basis,
      [&builder](const Matrix& p) { return builder.build_g(p); });
  EXPECT_NEAR(a.energy, b.energy, 1e-12);
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace
