#include "chem/shell_pair.hpp"

#include <cmath>

#include "chem/constants.hpp"

namespace emc::chem {

namespace {

/// 2 pi^{5/2}, the universal ERI prefactor numerator.
constexpr double kTwoPiToFiveHalves = 34.986836655249725;

}  // namespace

ShellPairData make_shell_pair(const Shell& sa, const Shell& sb) {
  ShellPairData pair;
  pair.la = sa.l;
  pair.lb = sb.l;
  pair.first_a = sa.first_function;
  pair.first_b = sb.first_function;
  pair.comps_a = cartesian_components(sa.l);
  pair.comps_b = cartesian_components(sb.l);

  pair.norm_a.reserve(pair.comps_a.size());
  for (const CartesianComponent& c : pair.comps_a) {
    pair.norm_a.push_back(sa.component_norm(c.lx, c.ly, c.lz));
  }
  pair.norm_b.reserve(pair.comps_b.size());
  for (const CartesianComponent& c : pair.comps_b) {
    pair.norm_b.push_back(sb.component_norm(c.lx, c.ly, c.lz));
  }

  const double dx = sa.center[0] - sb.center[0];
  const double dy = sa.center[1] - sb.center[1];
  const double dz = sa.center[2] - sb.center[2];
  const double ab2 = dx * dx + dy * dy + dz * dz;

  pair.prims.reserve(sa.exponents.size() * sb.exponents.size());
  for (std::size_t i = 0; i < sa.exponents.size(); ++i) {
    const double a = sa.exponents[i];
    for (std::size_t j = 0; j < sb.exponents.size(); ++j) {
      const double b = sb.exponents[j];
      const double p = a + b;
      const double coeff = sa.coefficients[i] * sb.coefficients[j];
      const Vec3 center{(a * sa.center[0] + b * sb.center[0]) / p,
                        (a * sa.center[1] + b * sb.center[1]) / p,
                        (a * sa.center[2] + b * sb.center[2]) / p};
      const double kab = std::exp(-a * b / p * ab2);
      // sqrt of the s-approximated primitive (ab|ab) = 2 pi^{5/2}
      // (cab Kab)^2 / (p^2 sqrt(2p)); see header.
      const double bound = std::abs(coeff) * kab *
                           std::sqrt(kTwoPiToFiveHalves /
                                     (p * p * std::sqrt(2.0 * p)));
      pair.max_bound = std::max(pair.max_bound, bound);
      pair.prims.push_back(PrimitivePairData{
          p, coeff / p, center, bound,
          HermiteE(sa.l, sb.l, a, b, sa.center[0], sb.center[0]),
          HermiteE(sa.l, sb.l, a, b, sa.center[1], sb.center[1]),
          HermiteE(sa.l, sb.l, a, b, sa.center[2], sb.center[2])});
    }
  }
  return pair;
}

ShellPairList::ShellPairList(const BasisSet& basis) : basis_(&basis) {
  const auto& shells = basis.shells();
  const std::size_t n = shells.size();
  pairs_.reserve(n * (n + 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      pairs_.push_back(make_shell_pair(shells[i], shells[j]));
    }
  }
}

}  // namespace emc::chem
