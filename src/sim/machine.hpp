#pragma once

// Simulated cluster model: processors grouped into nodes, per-operation
// latencies calibrated to Global-Arrays-class interconnects, and optional
// per-core performance variability ("energy-induced" noise).
//
// This is the substitution for the paper's physical cluster (see
// DESIGN.md): scheduling behaviour depends on task costs and relative
// overheads, both of which this model captures; absolute times are in
// seconds but their meaning is "simulated seconds".

#include <cstdint>
#include <span>
#include <vector>

#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace emc::sim {

struct MachineConfig {
  int n_procs = 64;
  int procs_per_node = 16;

  /// Latencies in (simulated) seconds. Defaults approximate published
  /// ARMCI/IB numbers: ~1.5 us one-sided remote op, ~0.3 us on-node.
  double intra_node_latency = 0.3e-6;
  double inter_node_latency = 1.5e-6;
  double counter_service = 0.1e-6;  ///< serialization at the counter home
  double task_overhead = 0.05e-6;   ///< per-task dispatch cost
  double steal_fail_retry = 0.5e-6; ///< back-off after a failed steal

  /// Per-core static speed variability: core speeds are drawn uniformly
  /// from [1 - noise_amplitude, 1]; 0 disables.
  double noise_amplitude = 0.0;

  /// When true, simulators record typed TraceEvents (task executions,
  /// steal attempts with victim provenance, counter round trips) in
  /// SimResult::trace for timeline/anatomy analysis and Chrome-trace
  /// export. Off by default: recording must cost nothing when disabled.
  bool record_trace = false;

  std::uint64_t seed = 1;

  int node_of(int proc) const { return proc / procs_per_node; }
  /// Latency of a one-sided operation from `from` to `to`.
  double link_latency(int from, int to) const {
    if (from == to) return 0.0;
    return node_of(from) == node_of(to) ? intra_node_latency
                                        : inter_node_latency;
  }
};

/// Per-core speed factors (execution time divides by the factor).
std::vector<double> draw_core_speeds(const MachineConfig& config);

struct SimResult {
  double makespan = 0.0;                 ///< simulated completion time
  std::vector<double> busy;              ///< per-proc task-execution time
  std::vector<std::int64_t> tasks_executed;
  std::int64_t steals = 0;
  std::int64_t steal_attempts = 0;
  std::int64_t counter_ops = 0;
  double counter_wait = 0.0;             ///< total time spent on counter
  double steal_wait = 0.0;               ///< total time spent stealing
  std::vector<TraceEvent> trace;         ///< typed events, if recorded

  /// Mean busy fraction = sum(busy) / (P * makespan); EXP-3's metric.
  double utilization() const;
};

/// Bins the recorded trace into `bins` equal slices of [0, makespan] and
/// returns the fraction of processors busy in each — the utilization-
/// over-time curve of the paper's figures. Requires record_trace.
/// Throws std::invalid_argument if the trace is empty or bins < 1.
/// (Convenience over the span-based overload in sim/trace.hpp.)
std::vector<double> utilization_timeline(const SimResult& result,
                                         int n_procs, int bins);

/// Concatenates the traces of a multi-round run (simulate_retentive /
/// simulate_persistence) into one timeline: round r's events are offset
/// by the cumulative makespan of rounds [0, r), with a kIterationBoundary
/// event (task = round index, proc = 0) marking each round's start.
std::vector<TraceEvent> merge_round_traces(
    std::span<const SimResult> rounds);

}  // namespace emc::sim
