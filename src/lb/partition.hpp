#pragma once

// Common types and quality metrics for task-to-processor assignments.
//
// Every load balancer in this library maps a weighted task list to P
// parts and is judged by the same metrics: makespan (max part load) and
// imbalance ratio (max/mean), matching how the paper compares balancers.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace emc::lb {

/// assignment[t] = processor owning task t.
using Assignment = std::vector<int>;

/// Per-processor total load under an assignment.
std::vector<double> part_loads(std::span<const double> weights,
                               const Assignment& assignment, int n_parts);

/// Max part load (the quantity dynamic schedulers race to minimize).
double makespan(std::span<const double> weights, const Assignment& assignment,
                int n_parts);

/// Max/mean part load; 1.0 is perfect.
double imbalance(std::span<const double> weights,
                 const Assignment& assignment, int n_parts);

/// Throws std::invalid_argument if any task is unassigned (< 0) or maps
/// outside [0, n_parts).
void validate_assignment(const Assignment& assignment, int n_parts);

/// Result of a balancer run, including its own cost (EXP-5 compares
/// balancer runtimes).
struct BalanceResult {
  Assignment assignment;
  double balance_seconds = 0.0;  ///< wall time spent balancing
  std::string algorithm;
};

}  // namespace emc::lb
