#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace emc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_io_mutex;
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace detail {

void log_write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << "[" << log_level_name(level) << "] " << message << "\n";
}

}  // namespace detail
}  // namespace emc
